//! Session-level lint integration: `EXPLAIN LINT` through a live
//! [`onesql_core::Session`], the `lint` session knob, and the tier-1 lint
//! gate over the SQL scripts the repo ships (the NEXMark full-stack suite,
//! which the consistency checker's scenarios reuse verbatim).

use onesql_core::StatementResult;
use onesql_nexmark::queries;
use onesql_plan::Severity;

/// A channel source with an event-time column plus a file sink — the
/// smallest catalog most tests need.
const PRELUDE: &str = "\
CREATE SOURCE bids (t TIMESTAMP, price INT, auction INT, WATERMARK FOR t)
  WITH (connector = 'channel');
CREATE SINK out WITH (connector = 'file', path = '/tmp/lint_out.csv');
";

fn codes(diags: &[onesql_plan::Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.code).collect()
}

// ---------------------------------------------------------------------------
// EXPLAIN LINT through the session
// ---------------------------------------------------------------------------

#[test]
fn explain_lint_statement_form_uses_session_catalog() {
    let mut session = onesql_connect::session();
    session.execute_script(PRELUDE).unwrap();
    // DISTINCT over an unbounded stream: keyed state never freed.
    let result = session
        .execute("EXPLAIN LINT SELECT DISTINCT auction FROM bids")
        .unwrap();
    let report = result.render_lint().expect("EXPLAIN LINT renders a report");
    assert!(report.contains("OSQL001"), "report: {report}");
    assert!(report.contains("at line 1"), "report: {report}");
}

#[test]
fn explain_lint_statement_form_clean_bill() {
    let mut session = onesql_connect::session();
    session.execute_script(PRELUDE).unwrap();
    let result = session
        .execute("EXPLAIN LINT SELECT price FROM bids WHERE price > 10")
        .unwrap();
    assert_eq!(result.render_lint().as_deref(), Some("no lint findings"));
}

#[test]
fn explain_lint_script_form_lints_quoted_script() {
    let mut session = onesql_connect::session();
    // The quoted-script form analyzes a whole self-contained script,
    // catalog evolution included ('' escapes a quote inside the literal).
    let result = session
        .execute(
            "EXPLAIN LINT 'CREATE SOURCE s (t TIMESTAMP, v INT, WATERMARK FOR t) \
               WITH (connector = ''channel'');
             CREATE SINK snk WITH (connector = ''file'', path = ''/tmp/o'');
             INSERT INTO snk SELECT wend, COUNT(*) FROM Tumble(data => TABLE(s),
               timecol => DESCRIPTOR(t), dur => INTERVAL ''1'' MINUTE)
               GROUP BY wend EMIT STREAM;'",
        )
        .unwrap();
    let StatementResult::Diagnostics {
        script,
        diagnostics,
    } = &result
    else {
        panic!("expected Diagnostics, got {result:?}");
    };
    // Windowed aggregate emitting without AFTER WATERMARK.
    assert_eq!(codes(diagnostics), ["OSQL003"]);
    // Spans index into the *inner* script text, so render works off it.
    let span = diagnostics[0].span;
    assert!(script[span.start..span.end].starts_with("INSERT INTO snk"));
}

#[test]
fn explain_lint_reports_bind_errors_with_position() {
    let mut session = onesql_connect::session();
    session.execute_script(PRELUDE).unwrap();
    let result = session
        .execute("EXPLAIN LINT SELECT no_such_col FROM bids")
        .unwrap();
    let report = result.render_lint().unwrap();
    assert!(report.contains("OSQL000"), "report: {report}");
    assert!(report.contains("error"), "report: {report}");
}

// ---------------------------------------------------------------------------
// The `lint` session knob
// ---------------------------------------------------------------------------

/// A script with a warning (ungated windowed emit) that still executes.
const WARNING_SCRIPT: &str = "\
CREATE SOURCE bids (t TIMESTAMP, price INT, auction INT, WATERMARK FOR t)
  WITH (connector = 'channel');
CREATE SINK out WITH (connector = 'file', path = '/tmp/lint_warn.csv');
INSERT INTO out SELECT wend, COUNT(*) FROM Tumble(data => TABLE(bids),
  timecol => DESCRIPTOR(t), dur => INTERVAL '1' MINUTE)
  GROUP BY wend EMIT STREAM;";

/// A script with an error-severity finding: the two INSERTs disagree on
/// the sink's schema (OSQL006).
const ERROR_SCRIPT: &str = "\
CREATE SOURCE bids (t TIMESTAMP, price INT, auction INT, WATERMARK FOR t)
  WITH (connector = 'channel');
CREATE SINK out WITH (connector = 'file', path = '/tmp/lint_err.csv');
INSERT INTO out SELECT price FROM bids EMIT STREAM;
INSERT INTO out SELECT price, auction FROM bids EMIT STREAM;";

#[test]
fn warn_mode_attaches_diagnostics_and_executes() {
    let mut session = onesql_connect::session();
    let outcome = session.execute_script(WARNING_SCRIPT).unwrap();
    assert_eq!(codes(&outcome.diagnostics), ["OSQL003"]);
    // Warn is the default: the script still ran to a pipeline.
    assert_eq!(outcome.results.len(), 3);
}

#[test]
fn strict_mode_refuses_error_findings() {
    let mut session = onesql_connect::session();
    session.execute("SET lint = 'strict'").unwrap();
    let err = session.execute_script(ERROR_SCRIPT).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("lint (strict)"), "error: {msg}");
    assert!(msg.contains("OSQL006"), "error: {msg}");
    assert!(msg.contains("SET lint = 'warn'"), "error: {msg}");
}

#[test]
fn strict_mode_lets_warnings_through() {
    let mut session = onesql_connect::session();
    session.execute("SET lint = 'strict'").unwrap();
    let outcome = session.execute_script(WARNING_SCRIPT).unwrap();
    // Strict only blocks Error severity; warnings attach and execute.
    assert_eq!(codes(&outcome.diagnostics), ["OSQL003"]);
}

#[test]
fn off_mode_skips_analysis() {
    let mut session = onesql_connect::session();
    session.execute("SET lint = 'off'").unwrap();
    let outcome = session.execute_script(WARNING_SCRIPT).unwrap();
    assert!(outcome.diagnostics.is_empty());
    assert_eq!(outcome.results.len(), 3);
}

#[test]
fn warn_mode_executes_scripts_with_error_findings() {
    // OSQL006 is severity Error, but only strict mode turns it into a
    // refusal; warn mode reports it and proceeds.
    let mut session = onesql_connect::session();
    let outcome = session.execute_script(ERROR_SCRIPT).unwrap();
    assert_eq!(codes(&outcome.diagnostics), ["OSQL006"]);
    assert_eq!(outcome.diagnostics[0].severity, Severity::Error);
    assert_eq!(outcome.results.len(), 4);
}

#[test]
fn lint_script_uses_session_state_for_knob_checks() {
    let mut session = onesql_connect::session();
    session.execute("SET lint = 'off'").unwrap();
    // `lint_script` is on-demand analysis: it works even when the
    // execute-time hook is off.
    let diags = session.lint_script(WARNING_SCRIPT);
    assert_eq!(codes(&diags), ["OSQL003"]);
}

// ---------------------------------------------------------------------------
// Connector-declared streams
// ---------------------------------------------------------------------------

#[test]
fn nexmark_declared_streams_are_visible_to_the_analyzer() {
    let session = onesql_connect::session();
    // A schema-less nexmark CREATE SOURCE declares Person/Auction/Bid;
    // the analyzer must bind `Bid` without executing the CREATE.
    let diags = session.lint_script(
        "CREATE SOURCE nex WITH (connector = 'nexmark', seed = 1, events = 100);
         CREATE SINK out WITH (connector = 'file', path = '/tmp/lint_nex.csv');
         INSERT INTO out SELECT auction, price FROM Bid EMIT STREAM;",
    );
    assert!(codes(&diags).is_empty(), "diags: {diags:?}");
}

// ---------------------------------------------------------------------------
// Tier-1 lint gate: every shipped NEXMark full-stack script
// ---------------------------------------------------------------------------

/// Queries whose join carries no time-bounded predicate, so their join
/// state can never be freed (q7's `Bid.dateTime >= wend - INTERVAL ...`
/// bound is the suite's counter-example).
const UNBOUNDED_JOINS: [&str; 3] = ["q3", "q4_avg_by_category", "q8"];

#[test]
fn shipped_nexmark_scripts_lint_as_classified() {
    let session = onesql_connect::session();
    let sink = std::path::Path::new("/tmp/lint_gate.csv");
    for gated in [false, true] {
        let config = queries::ScriptConfig {
            gated,
            ..queries::ScriptConfig::default()
        };
        for spec in queries::full_stack() {
            let script = queries::full_stack_script(spec.sql, sink, &config);
            let diags = session.lint_script(&script);
            let codes = codes(&diags);
            let name = spec.name;

            // The analyzer's shard-key verdict must match the suite's own
            // hand-written `shardable` classification (default config runs
            // 2 workers over a partitioned source).
            assert_eq!(
                codes.contains(&"OSQL002"),
                !spec.shardable,
                "{name} (gated={gated}): shard findings disagree with \
                 FullStackSpec::shardable: {codes:?}"
            );
            // Ungated windowed queries leak per-row revisions to the sink;
            // gating the EMIT clears the finding.
            assert_eq!(
                codes.contains(&"OSQL003"),
                spec.gate_col.is_some() && !gated,
                "{name} (gated={gated}): watermark-gate findings disagree \
                 with FullStackSpec::gate_col: {codes:?}"
            );
            // Joins without a time bound hold state forever; q7 is bounded.
            assert_eq!(
                codes.contains(&"OSQL001"),
                UNBOUNDED_JOINS.contains(&name),
                "{name} (gated={gated}): unbounded-state findings changed: \
                 {codes:?}"
            );
            // Shipped scripts must bind and must never trip an
            // error-severity finding — strict mode could run them all.
            assert!(
                diags.iter().all(|d| d.severity < Severity::Error),
                "{name} (gated={gated}): shipped script has error-severity \
                 findings: {diags:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Shipped example scripts (mirrors of the scripts the examples build at
// runtime — paths/knobs substituted with representative values). Each
// example's intentional findings are pinned here; a new finding in one
// of these shapes means the example regressed.
// ---------------------------------------------------------------------------

/// `examples/sql_pipeline.rs`: Q7 over a partitioned net source into a
/// changelog sink. The ungated EMIT is the point of the example (it
/// prints the raw changelog), so OSQL003 is the pinned remainder.
const SQL_PIPELINE_SCRIPT: &str = "\
CREATE STREAM Person (id INT, name STRING, email STRING, city STRING,
                      state STRING, dateTime TIMESTAMP,
                      WATERMARK FOR dateTime);
CREATE STREAM Auction (id INT, itemName STRING, initialBid INT,
                       reserve INT, dateTime TIMESTAMP, expires TIMESTAMP,
                       seller INT, category INT,
                       WATERMARK FOR dateTime);
CREATE STREAM Bid (auction INT, bidder INT, price INT,
                   dateTime TIMESTAMP, WATERMARK FOR dateTime);
CREATE PARTITIONED SOURCE feed
  WITH (connector = 'net', addr = 'unix:/tmp/q7.sock',
        partitions = 4, streams = 'Person,Auction,Bid',
        poll_wait_ms = 10000);
CREATE SINK wins WITH (connector = 'changelog');";

#[test]
fn example_sql_pipeline_script_pins_to_the_ungated_emit() {
    let session = onesql_connect::session();
    let script = format!(
        "{SQL_PIPELINE_SCRIPT}\nEXPLAIN {q7};\nINSERT INTO wins {q7} EMIT STREAM;",
        q7 = queries::Q7
    );
    let diags = session.lint_script(&script);
    assert_eq!(codes(&diags), ["OSQL003"], "diags: {diags:?}");
}

#[test]
fn example_observe_pipeline_script_pins_to_the_ungated_emit() {
    // `examples/observe_pipeline.rs`: Q7 watched by a metrics pipeline.
    // The q7 INSERT deliberately streams the raw changelog (OSQL003);
    // the observer INSERT is gated and must stay clean.
    let session = onesql_connect::session();
    let script = format!(
        "SET workers = 1;
         SET batch_size = 64;
         SET max_batch = 128;
         CREATE PARTITIONED SOURCE nex
           WITH (connector = 'nexmark', seed = 7, events = 4000, partitions = 4);
         CREATE SINK q7_out WITH (connector = 'changelog');
         INSERT INTO q7_out {q7} EMIT STREAM;
         CREATE SOURCE sys_metrics WITH (connector = 'metrics', pipelines = 'q7_out');
         CREATE SINK lag WITH (connector = 'changelog');
         INSERT INTO lag
           SELECT T.wend, MAX(T.value) AS peak_lag_ms
           FROM Tumble(data => TABLE(sys_metrics), timecol => DESCRIPTOR(mtime),
                       dur => INTERVAL '1' MINUTE) T
           WHERE T.metric = 'watermark_lag_ms'
           GROUP BY T.wend
           EMIT STREAM AFTER WATERMARK;",
        q7 = queries::Q7
    );
    let diags = session.lint_script(&script);
    assert_eq!(codes(&diags), ["OSQL003"], "diags: {diags:?}");
    assert!(diags[0].message.contains("q7_out"), "{}", diags[0].message);
}

#[test]
fn example_durable_pipeline_script_lints_clean() {
    // `examples/durable_pipeline.rs`: filter-only pipeline, workers
    // aligned with partitions, transactional file sink.
    let session = onesql_connect::session();
    let diags = session.lint_script(
        "SET workers = 4;
         SET batch_size = 128;
         SET max_batch = 256;
         CREATE PARTITIONED SOURCE nex
           WITH (connector = 'nexmark', seed = 42, events = 20000, partitions = 4);
         CREATE SINK out WITH (connector = 'file', path = '/tmp/durable.csv',
                               transactional = TRUE);
         INSERT INTO out
           SELECT auction, price, dateTime FROM Bid WHERE price > 900 EMIT STREAM;",
    );
    assert!(codes(&diags).is_empty(), "diags: {diags:?}");
}

#[test]
fn shipped_scripts_shard_clean_on_one_worker() {
    let session = onesql_connect::session();
    let sink = std::path::Path::new("/tmp/lint_gate1.csv");
    let config = queries::ScriptConfig {
        workers: 1,
        partitions: 1,
        gated: true,
        ..queries::ScriptConfig::default()
    };
    for spec in queries::full_stack() {
        let script = queries::full_stack_script(spec.sql, sink, &config);
        let diags = session.lint_script(&script);
        assert!(
            !codes(&diags).contains(&"OSQL002"),
            "{}: OSQL002 must not fire with workers = 1: {diags:?}",
            spec.name
        );
    }
}
