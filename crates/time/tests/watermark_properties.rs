//! Property tests on the watermark machinery: monotonicity is the whole
//! point of a watermark (§3.2.2: "a watermark is a monotonic function from
//! processing time to event time").

use proptest::prelude::*;

use onesql_time::{
    AscendingWatermarks, BoundedOutOfOrderness, Watermark, WatermarkGenerator, WatermarkTracker,
};
use onesql_types::{Duration, Ts};

proptest! {
    /// Generators never regress, whatever the event order.
    #[test]
    fn generators_are_monotonic(
        events in prop::collection::vec(-1_000_000i64..1_000_000, 1..100),
        bound in 0i64..100_000,
    ) {
        let mut asc = AscendingWatermarks::new();
        let mut boo = BoundedOutOfOrderness::new(Duration(bound));
        let mut last_asc = Watermark::MIN;
        let mut last_boo = Watermark::MIN;
        for &e in &events {
            asc.on_event(Ts(e));
            boo.on_event(Ts(e));
            prop_assert!(asc.current() >= last_asc);
            prop_assert!(boo.current() >= last_boo);
            last_asc = asc.current();
            last_boo = boo.current();
        }
    }

    /// The bounded generator's promise holds: no event it has seen is
    /// *ahead* of watermark + bound... i.e. the watermark trails the max
    /// seen by exactly the bound.
    #[test]
    fn bounded_promise(
        events in prop::collection::vec(0i64..1_000_000, 1..100),
        bound in 0i64..100_000,
    ) {
        let mut g = BoundedOutOfOrderness::new(Duration(bound));
        let mut max_seen = i64::MIN;
        for &e in &events {
            g.on_event(Ts(e));
            max_seen = max_seen.max(e);
            prop_assert_eq!(g.current(), Watermark(Ts(max_seen - bound)));
        }
    }

    /// The tracker's combined watermark is always min over inputs, is
    /// monotonic, and only reports when it advances.
    #[test]
    fn tracker_is_min_and_monotonic(
        observations in prop::collection::vec((0usize..3, -1000i64..1000), 1..200),
    ) {
        let mut t = WatermarkTracker::new(3);
        let mut maxima = [i64::MIN; 3];
        let mut last_combined = Watermark::MIN;
        for &(port, wm) in &observations {
            let advanced = t.observe(port, Watermark(Ts(wm)));
            maxima[port] = maxima[port].max(wm);
            let expected = (0..3)
                .map(|i| maxima[i])
                .min()
                .expect("three ports");
            let expected = if expected == i64::MIN {
                Watermark::MIN
            } else {
                Watermark(Ts(expected))
            };
            prop_assert_eq!(t.combined(), expected);
            if let Some(a) = advanced {
                prop_assert!(a > last_combined, "advance must be strict");
                last_combined = a;
            } else {
                // Silent: the combined watermark has not passed what was
                // already reported downstream.
                prop_assert!(t.combined() <= last_combined);
            }
        }
    }
}
