//! Observability, black-box: a live NEXMark Q7 pipeline observed *with
//! SQL* — a second pipeline reading the `metrics` source connector — must
//! see the first one's counters advance while it runs and land exactly on
//! the final totals. `SHOW PIPELINES` reports both driver kinds,
//! `EXPLAIN ANALYZE` runs the query and returns real metrics, and the
//! counters that describe *data* (not scheduling) survive kill →
//! `RESTORE PIPELINE` bit-exactly. Finally, the latency histogram the
//! whole layer leans on is exercised property-style: merges commute and
//! `record` accepts the entire `u64` domain.

use std::path::{Path, PathBuf};

use crossbeam::channel::Receiver;
use proptest::prelude::*;

use onesql::connect::{session, MetricKind, MetricRow, SinkEvent};
use onesql::core::observe::Histogram;
use onesql::{ChannelPublisher, SqlPipeline, StatementResult};
use onesql_nexmark::queries;
use onesql_types::{row, Ts};

const EVENTS: u64 = 3_000;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("onesql_observability")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The sharded NEXMark Q7 pipeline from `tests/durable_checkpoint.rs`,
/// writing a transactional file sink (so kill → restore is exercised on
/// the same artifact the durability suite pins).
fn q7_script(sink_path: &Path) -> String {
    format!(
        "SET workers = 2;
         SET batch_size = 64;
         SET max_batch = 128;
         CREATE PARTITIONED SOURCE nex
           WITH (connector = 'nexmark', seed = 7, events = {EVENTS}, partitions = 4);
         CREATE SINK out WITH (connector = 'file', path = '{}', transactional = TRUE);
         INSERT INTO out {} EMIT STREAM;",
        sink_path.display(),
        queries::Q7
    )
}

fn assemble(sink_path: &Path) -> (onesql::Session, SqlPipeline) {
    let mut s = session();
    let pipeline = s
        .execute_script(&q7_script(sink_path))
        .unwrap()
        .into_pipeline()
        .unwrap();
    (s, pipeline)
}

fn step_until(pipeline: &mut SqlPipeline, events: u64) {
    while pipeline.as_sharded_mut().expect("sharded").events_in() < events {
        pipeline.step().unwrap();
    }
}

/// The counters whose values are determined by the *data* alone —
/// identical between an uninterrupted run and a kill/restore run.
/// Scheduling-shaped metrics (rounds, batch sizes, latency histograms)
/// legitimately differ between incarnations and are excluded.
fn data_rows(rows: &[MetricRow]) -> Vec<(String, i64)> {
    rows.iter()
        .filter(|r| {
            matches!(r.name.as_str(), "events_in" | "events_out" | "bytes_in")
                || (r.name.starts_with("source.")
                    && (r.name.ends_with(".rows") || r.name.ends_with(".bytes")))
        })
        .map(|r| (r.name.clone(), r.value))
        .collect()
}

// ---------------------------------------------------------------------------
// The acceptance bar: pure-SQL observation of a live pipeline.
// ---------------------------------------------------------------------------

#[test]
fn sql_observes_a_live_nexmark_q7_pipeline() {
    // One script defines *both* pipelines: Q7 itself, and an observer
    // whose source is the engine's own telemetry. The observer's query
    // is ordinary SQL over an ordinary stream.
    let mut s = session();
    let script = format!(
        "SET workers = 2;
         SET batch_size = 64;
         SET max_batch = 128;
         CREATE PARTITIONED SOURCE nex
           WITH (connector = 'nexmark', seed = 7, events = {EVENTS}, partitions = 4);
         CREATE SINK q7_out WITH (connector = 'changelog');
         INSERT INTO q7_out {} EMIT STREAM;
         CREATE SOURCE sys_metrics WITH (connector = 'metrics', pipelines = 'q7_out');
         CREATE SINK watch WITH (connector = 'channel', capacity = 65536);
         INSERT INTO watch
           SELECT mtime, value FROM sys_metrics WHERE metric = 'events_in'
           EMIT STREAM;",
        queries::Q7
    );
    let mut pipelines = s.execute_script(&script).unwrap().pipelines();
    assert_eq!(pipelines.len(), 2, "the script assembles two pipelines");
    let mut observer = pipelines.pop().unwrap();
    let mut q7 = pipelines.pop().unwrap();
    assert!(q7.is_sharded() && !observer.is_sharded());
    let watch = s
        .take_handle::<Receiver<SinkEvent>>("watch")
        .expect("the channel sink exports its receiver");

    // Interleave: the observer polls the hub while Q7 is mid-flight.
    while q7.as_sharded_mut().unwrap().events_in() < EVENTS {
        q7.step().unwrap();
        observer.step().unwrap();
    }
    q7.run().unwrap(); // drain + finish: publishes the final snapshot
    observer.run().unwrap(); // sees finished=true and completes

    let mut observed: Vec<i64> = Vec::new();
    while let Ok(event) = watch.try_recv() {
        if let SinkEvent::Rows(rows) = event {
            for r in &rows {
                assert!(!r.undo, "the metric stream is insert-only");
                observed.push(r.row.values()[1].as_int().unwrap());
            }
        }
    }
    assert!(
        observed.len() > 1,
        "more than one snapshot observed: {observed:?}"
    );
    assert!(
        observed.windows(2).all(|w| w[0] <= w[1]),
        "events_in is monotone: {observed:?}"
    );
    assert!(
        observed[0] < EVENTS as i64,
        "the first observation caught the pipeline mid-flight: {observed:?}"
    );
    assert_eq!(
        *observed.last().unwrap(),
        EVENTS as i64,
        "the last observation is the final total"
    );
}

// ---------------------------------------------------------------------------
// SHOW PIPELINES: one row set per live pipeline, both driver kinds.
// ---------------------------------------------------------------------------

#[test]
fn show_pipelines_reports_plain_and_sharded_drivers() {
    let mut s = session();
    let script = format!(
        "CREATE SOURCE S (t TIMESTAMP, v INT, WATERMARK FOR t)
           WITH (connector = 'channel', capacity = 32);
         CREATE SINK plain_out WITH (connector = 'changelog');
         INSERT INTO plain_out SELECT v FROM S EMIT STREAM;
         SET workers = 2;
         SET batch_size = 64;
         SET max_batch = 128;
         CREATE PARTITIONED SOURCE nex
           WITH (connector = 'nexmark', seed = 7, events = {EVENTS}, partitions = 4);
         CREATE SINK sharded_out WITH (connector = 'changelog');
         INSERT INTO sharded_out {} EMIT STREAM;",
        queries::Q7
    );
    let mut pipelines = s.execute_script(&script).unwrap().pipelines();
    let mut sharded = pipelines.pop().unwrap();
    let mut plain = pipelines.pop().unwrap();

    // Run the plain one to completion, step the sharded one mid-flight,
    // then hand both to the session and ask in SQL.
    let publishers = s
        .take_handle::<Vec<ChannelPublisher>>("S")
        .expect("the channel source exports its publishers");
    for i in 0..10i64 {
        publishers[0].insert(Ts(i), row!(Ts(i), i)).unwrap();
    }
    publishers[0].finish().unwrap();
    plain.run().unwrap();
    step_until(&mut sharded, EVENTS / 2);
    s.adopt_pipeline(plain).unwrap();
    s.adopt_pipeline(sharded).unwrap();

    let StatementResult::Pipelines(infos) = s.execute("SHOW PIPELINES").unwrap() else {
        panic!("expected Pipelines");
    };
    assert_eq!(infos.len(), 2);
    let plain_info = infos.iter().find(|i| i.name == "plain_out").unwrap();
    let sharded_info = infos.iter().find(|i| i.name == "sharded_out").unwrap();
    assert!(!plain_info.sharded);
    assert!(sharded_info.sharded);

    let events_in = |rows: &[MetricRow]| {
        rows.iter()
            .find(|r| r.name == "events_in")
            .map(|r| (r.kind, r.value))
            .unwrap()
    };
    let (kind, fed) = events_in(&plain_info.rows);
    assert_eq!(kind, MetricKind::Counter);
    assert_eq!(fed, 10, "the finished plain pipeline's count is final");
    let (_, mid) = events_in(&sharded_info.rows);
    assert!(
        mid >= (EVENTS / 2) as i64 && mid < EVENTS as i64,
        "the sharded pipeline is mid-flight: {mid}"
    );
    // The per-source breakdown aggregates a partitioned source into one
    // entry, and its row count matches the pipeline total (Q7 has a
    // single input).
    let source_rows: Vec<&MetricRow> = sharded_info
        .rows
        .iter()
        .filter(|r| r.name.starts_with("source.") && r.name.ends_with(".rows"))
        .collect();
    assert_eq!(source_rows.len(), 1);
    assert_eq!(source_rows[0].value, mid);
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE: the plan, plus metrics from actually running it.
// ---------------------------------------------------------------------------

#[test]
fn explain_analyze_runs_the_query_and_reports_metrics() {
    let mut s = session();
    s.execute("CREATE SOURCE nex WITH (connector = 'nexmark', seed = 3, events = 500)")
        .unwrap();
    let result = s
        .execute("EXPLAIN ANALYZE SELECT auction, price FROM Bid WHERE price > 0 EMIT STREAM")
        .unwrap();
    let StatementResult::Analyzed { plan, rows } = result else {
        panic!("expected Analyzed");
    };
    assert!(plan.contains("Scan"), "{plan}");
    let events_in = rows.iter().find(|r| r.name == "events_in").unwrap();
    assert!(
        events_in.value > 0,
        "EXPLAIN ANALYZE ran the pipeline for real"
    );
    assert!(
        rows.iter().any(|r| r.name == "round_micros_count"),
        "latency histograms are part of the report"
    );

    // The throwaway run must not disturb the session: the same source
    // still feeds an ordinary pipeline afterwards.
    let mut pipeline = s
        .execute_script(
            "CREATE SINK out WITH (connector = 'changelog');
             INSERT INTO out SELECT auction FROM Bid EMIT STREAM;",
        )
        .unwrap()
        .into_pipeline()
        .unwrap();
    let metrics = pipeline.run().unwrap();
    assert!(metrics.events_in > 0);
}

#[test]
fn explain_analyze_requires_a_fed_stream_and_leaves_the_session_usable() {
    let mut s = session();
    s.execute("CREATE STREAM S (t TIMESTAMP, v INT, WATERMARK FOR t)")
        .unwrap();
    let err = s
        .execute("EXPLAIN ANALYZE SELECT v FROM S EMIT STREAM")
        .unwrap_err()
        .to_string();
    assert!(err.contains("no CREATE SOURCE feeds"), "{err}");

    // The failure is clean: the session still executes statements.
    s.execute("CREATE SOURCE nex WITH (connector = 'nexmark', seed = 1, events = 10)")
        .unwrap();
    let result = s
        .execute("EXPLAIN ANALYZE SELECT auction FROM Bid EMIT STREAM")
        .unwrap();
    assert!(matches!(result, StatementResult::Analyzed { .. }));
}

// ---------------------------------------------------------------------------
// Kill → RESTORE PIPELINE: data-determined counters continue monotonically
// and end exactly where an uninterrupted run ends.
// ---------------------------------------------------------------------------

#[test]
fn metrics_survive_kill_and_restore() {
    let dir = scratch_dir("metrics-restore");
    let store = dir.join("store");
    let reference = dir.join("reference.csv");
    let recovered = dir.join("recovered.csv");

    // The oracle: one uninterrupted run's final metrics.
    let (_s, mut oracle) = assemble(&reference);
    oracle.run().unwrap();
    let expected = oracle.metrics();
    assert_eq!(expected.events_in, EVENTS);

    // Incarnation 1: checkpoint mid-stream via SQL (so the persist cost
    // lands in the pipeline's own metrics), keep running, get killed.
    let (mut s1, mut victim) = assemble(&recovered);
    step_until(&mut victim, EVENTS / 3);
    let at_checkpoint = victim.metrics();
    s1.adopt_pipeline(victim).unwrap();
    s1.execute(&format!("CHECKPOINT PIPELINE out TO '{}'", store.display()))
        .unwrap();
    let StatementResult::Pipelines(infos) = s1.execute("SHOW PIPELINES").unwrap() else {
        panic!("expected Pipelines");
    };
    let checkpoints = infos[0]
        .rows
        .iter()
        .find(|r| r.name == "checkpoints")
        .unwrap();
    assert_eq!(
        checkpoints.value, 1,
        "the SQL checkpoint shows up in the pipeline's own counters"
    );
    let mut victim = s1.take_pipeline("out").unwrap();
    step_until(&mut victim, EVENTS / 2); // rows past the checkpoint: discarded
    drop(victim);
    drop(s1); // kill

    // Incarnation 2: fresh session, RESTORE, and the counters resume at
    // the checkpoint — not at zero, not at the kill point.
    let mut s2 = session();
    let script = format!(
        "{} RESTORE PIPELINE out FROM '{}';",
        q7_script(&recovered),
        store.display()
    );
    let mut restored = s2.execute_script(&script).unwrap().into_pipeline().unwrap();
    let resumed = restored.metrics();
    assert_eq!(resumed.restores, 1);
    assert_eq!(resumed.checkpoint_epoch, 1);
    assert_eq!(resumed.events_in, at_checkpoint.events_in);
    assert_eq!(resumed.events_out, at_checkpoint.events_out);
    assert_eq!(resumed.bytes_in, at_checkpoint.bytes_in);
    for (r, c) in resumed.sources.iter().zip(&at_checkpoint.sources) {
        assert_eq!(
            (r.events, r.bytes),
            (c.events, c.bytes),
            "source {}",
            r.name
        );
    }

    // Run to completion: the data-determined counters land exactly on
    // the uninterrupted run's totals (monotone continuation, no double
    // counting of the replayed span).
    restored.run().unwrap();
    let finished = restored.metrics();
    assert!(finished.events_in >= resumed.events_in, "monotone");
    assert_eq!(
        data_rows(&finished.render_rows()),
        data_rows(&expected.render_rows())
    );

    // And the SQL view agrees with the Rust view.
    s2.adopt_pipeline(restored).unwrap();
    let StatementResult::Pipelines(infos) = s2.execute("SHOW PIPELINES").unwrap() else {
        panic!("expected Pipelines");
    };
    assert_eq!(
        data_rows(&infos[0].rows),
        data_rows(&expected.render_rows())
    );
}

// ---------------------------------------------------------------------------
// Hub ordering is pinned: snapshots (and so SHOW PIPELINES, the metrics
// connector, and every renderer above them) list pipelines in label
// order, regardless of publication order.
// ---------------------------------------------------------------------------

#[test]
fn hub_snapshots_are_ordered_by_label_not_publication() {
    use onesql::connect::PipelineMetrics;
    use onesql::core::observe::hub;

    let labels = ["zz_ordering_pin", "aa_ordering_pin", "mm_ordering_pin"];
    for label in labels {
        hub().publish(label, Ts(1), false, true, PipelineMetrics::default());
    }
    let seen: Vec<String> = hub()
        .snapshots()
        .into_iter()
        .map(|s| s.pipeline)
        .filter(|p| p.ends_with("_ordering_pin"))
        .collect();
    assert_eq!(
        seen,
        ["aa_ordering_pin", "mm_ordering_pin", "zz_ordering_pin"],
        "snapshot order is the sorted label order, not publication order"
    );
    // The full listing is sorted too — the invariant SHOW PIPELINES and
    // the `metrics` connector lean on for deterministic output.
    let all: Vec<String> = hub().snapshots().into_iter().map(|s| s.pipeline).collect();
    let mut sorted = all.clone();
    sorted.sort();
    assert_eq!(all, sorted);
    for label in labels {
        hub().clear(label);
    }
}

// ---------------------------------------------------------------------------
// The histogram under the whole layer: property tests.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Recording values in any order, or recording into shards and
    /// merging (in either order), yields the same histogram — the
    /// property the sharded driver's per-worker merge depends on.
    #[test]
    fn histogram_merge_is_order_independent(
        a in prop::collection::vec(any::<u64>(), 0..64),
        b in prop::collection::vec(any::<u64>(), 0..64),
    ) {
        let mut all = Histogram::default();
        for &v in a.iter().chain(b.iter()) {
            all.record(v);
        }
        let (mut ha, mut hb) = (Histogram::default(), Histogram::default());
        for &v in &a { ha.record(v); }
        for &v in &b { hb.record(v); }

        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        for merged in [&ab, &ba] {
            prop_assert_eq!(merged.bucket_counts(), all.bucket_counts());
            prop_assert_eq!(merged.count(), all.count());
            prop_assert_eq!(merged.sum(), all.sum());
            prop_assert_eq!(merged.min(), all.min());
            prop_assert_eq!(merged.max(), all.max());
        }
    }

    /// `record` accepts the full u64 domain without panicking, and every
    /// value lands in the bucket whose bounds contain it.
    #[test]
    fn histogram_record_never_panics_and_buckets_contain_their_values(
        values in prop::collection::vec(any::<u64>(), 1..64),
    ) {
        let mut h = Histogram::default();
        for &v in &values {
            h.record(v);
            let idx = Histogram::bucket_of(v);
            let (lo, hi) = Histogram::bucket_bounds(idx);
            prop_assert!(lo <= v && v <= hi, "{v} outside bucket {idx}: [{lo}, {hi}]");
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
        prop_assert_eq!(h.min(), *values.iter().min().unwrap());
        prop_assert_eq!(h.quantile(1.0), h.quantile(0.5).max(h.quantile(1.0)), "quantiles are monotone");
    }
}
