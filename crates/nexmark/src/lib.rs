#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! NEXMark workload support.
//!
//! NEXMark [Tucker et al.] models an online auction platform with three
//! streams — `Person`, `Auction`, `Bid` — plus a static `Category` table.
//! The paper (§4) uses NEXMark Query 7 as its running example and the
//! benchmark as its performance reference. This crate provides:
//!
//! - [`paper`]: the *exact* dataset of §4 (the 8:07–8:21 timeline of bids
//!   and watermarks) and the paper's Query 7 SQL — the fixture every
//!   listing reproduction runs against;
//! - [`model`]: typed rows and schemas for the NEXMark entities;
//! - [`generator`]: a deterministic, seeded event generator with
//!   configurable event-time skew (the substitute for the original
//!   distributed data feed — see DESIGN.md substitutions);
//! - [`queries`]: the NEXMark query suite expressed in the paper's dialect.

pub mod generator;
pub mod model;
pub mod paper;
pub mod queries;

pub use generator::{GeneratorConfig, NexmarkEvent, NexmarkGenerator};
pub use paper::{paper_timeline, PaperEvent, PAPER_Q7_SQL};
