//! NEXMark Query 7 with CQL semantics (the paper's Listing 1).
//!
//! ```sql
//! SELECT Rstream(B.price, B.itemid)
//! FROM   Bid [RANGE 10 MINUTE SLIDE 10 MINUTE] B
//! WHERE  B.price = (SELECT MAX(B1.price) FROM Bid [RANGE 10 MINUTE SLIDE 10 MINUTE] B1)
//! ```
//!
//! "Every ten minutes, the query processes the bids of the previous ten
//! minutes. It computes the highest price of the last ten minutes
//! (subquery) and uses the value to select the highest bid of the last ten
//! minutes. The result is appended to a stream." (§4)
//!
//! Out-of-order arrival is handled the STREAM way: an [`InOrderBuffer`]
//! with heartbeats feeds the windows in timestamp order. CQL's implicit
//! logical clock means time is metadata, not data: the output rows carry
//! only `(price, item)`.

use onesql_tvr::Bag;
use onesql_types::{Duration, Result, Row, Ts, Value};

use crate::buffer::InOrderBuffer;
use crate::rstream::rstream;
use crate::window::RangeWindow;

/// A running CQL Query 7. Feed bids (optionally out of order) plus
/// heartbeats; collect the `Rstream` output with [`CqlQuery7::results`].
pub struct CqlQuery7 {
    buffer: InOrderBuffer,
    window: RangeWindow,
    evaluations: Vec<(Ts, Bag)>,
    finished: bool,
}

impl Default for CqlQuery7 {
    fn default() -> Self {
        Self::new()
    }
}

impl CqlQuery7 {
    /// A fresh query with the Listing 1 window: `RANGE 10 MINUTE SLIDE 10
    /// MINUTE`.
    pub fn new() -> CqlQuery7 {
        CqlQuery7 {
            buffer: InOrderBuffer::new(),
            window: RangeWindow::new(Duration::from_minutes(10), Duration::from_minutes(10)),
            evaluations: Vec::new(),
            finished: false,
        }
    }

    /// Offer a bid `(bidtime, price, item)`, possibly out of order.
    /// Returns false if the bid arrived behind the last heartbeat and was
    /// dropped.
    pub fn bid(&mut self, bidtime: Ts, price: i64, item: &str) -> bool {
        self.buffer
            .push(bidtime, onesql_types::row!(bidtime, price, item))
    }

    /// Process a heartbeat, releasing buffered bids to the window operator
    /// in order.
    pub fn heartbeat(&mut self, ts: Ts) {
        for (tuple_ts, row) in self.buffer.heartbeat(ts) {
            self.evaluations.extend(self.window.push(tuple_ts, row));
        }
    }

    /// Declare the input complete and flush remaining window evaluations.
    pub fn finish(&mut self, end: Ts) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.heartbeat(end);
        self.evaluations.extend(self.window.finish(end));
    }

    /// The `Rstream(B.price, B.itemid)` output: per evaluation, the bids
    /// whose price equals the window's max, projected to `(price, item)`.
    pub fn results(&self) -> Result<Vec<(Ts, Row)>> {
        let mut filtered = Vec::with_capacity(self.evaluations.len());
        for (t, bag) in &self.evaluations {
            // Subquery: MAX(price) over the same window.
            let mut max: Option<i64> = None;
            for row in bag.rows() {
                let price = row.value(1)?.as_int()?;
                if max.is_none_or(|m| price > m) {
                    max = Some(price);
                }
            }
            // Main query: bids with price = max, projected.
            let mut out = Bag::new();
            if let Some(m) = max {
                for row in bag.rows() {
                    if row.value(1)?.as_int()? == m {
                        out.insert(Row::new(vec![Value::Int(m), row.value(2)?.clone()]));
                    }
                }
            }
            filtered.push((*t, out));
        }
        Ok(rstream(&filtered))
    }

    /// Peak number of tuples the in-order buffer held (the latency/state
    /// cost of CQL's buffering approach, measured by benchmark B6).
    pub fn peak_buffered(&self) -> usize {
        self.buffer.peak_buffered()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onesql_types::row;

    /// The paper's §4 dataset, fed with its watermarks as heartbeats.
    fn run_paper_dataset() -> CqlQuery7 {
        let mut q = CqlQuery7::new();
        q.heartbeat(Ts::hm(8, 5));
        q.bid(Ts::hm(8, 7), 2, "A");
        q.bid(Ts::hm(8, 11), 3, "B");
        q.bid(Ts::hm(8, 5), 4, "C"); // dropped: behind the 8:05 heartbeat? no — equal, dropped
        q.heartbeat(Ts::hm(8, 8));
        q.bid(Ts::hm(8, 9), 5, "D");
        q.heartbeat(Ts::hm(8, 12));
        q.bid(Ts::hm(8, 13), 1, "E");
        q.bid(Ts::hm(8, 17), 6, "F");
        q.finish(Ts::hm(8, 20));
        q
    }

    #[test]
    fn q7_produces_one_answer_per_window() {
        // In-order feed (the classical CQL setting).
        let mut q = CqlQuery7::new();
        for (m, p, i) in [
            (5, 4, "C"),
            (7, 2, "A"),
            (9, 5, "D"),
            (11, 3, "B"),
            (13, 1, "E"),
            (17, 6, "F"),
        ] {
            q.bid(Ts::hm(8, m), p, i);
        }
        q.heartbeat(Ts::hm(8, 18));
        q.finish(Ts::hm(8, 20));
        assert_eq!(
            q.results().unwrap(),
            vec![
                (Ts::hm(8, 10), row!(5i64, "D")),
                (Ts::hm(8, 20), row!(6i64, "F")),
            ]
        );
    }

    #[test]
    fn out_of_order_data_behind_heartbeat_is_lost() {
        // The same dataset fed in the paper's *arrival* order: bid C
        // (bidtime 8:05) arrives after the 8:05 heartbeat and is dropped —
        // exactly the brittleness of the buffering approach the paper
        // contrasts with watermarks.
        let q = run_paper_dataset();
        let results = q.results().unwrap();
        // Window 1 (ends 8:10): C was dropped, so max is D ($5) — same
        // answer here, but only because C wasn't the max.
        assert_eq!(
            results,
            vec![
                (Ts::hm(8, 10), row!(5i64, "D")),
                (Ts::hm(8, 20), row!(6i64, "F")),
            ]
        );
    }

    #[test]
    fn equal_max_bids_all_stream() {
        let mut q = CqlQuery7::new();
        q.bid(Ts::hm(8, 2), 7, "X");
        q.bid(Ts::hm(8, 3), 7, "Y");
        q.finish(Ts::hm(8, 10));
        let r = q.results().unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.contains(&(Ts::hm(8, 10), row!(7i64, "X"))));
        assert!(r.contains(&(Ts::hm(8, 10), row!(7i64, "Y"))));
    }

    #[test]
    fn empty_windows_produce_nothing() {
        let mut q = CqlQuery7::new();
        q.bid(Ts::hm(8, 2), 1, "A");
        // Finish far in the future: intermediate empty windows are silent.
        q.finish(Ts::hm(9, 0));
        let r = q.results().unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn buffering_cost_is_observable() {
        let mut q = CqlQuery7::new();
        for m in 0..20 {
            q.bid(Ts::hm(8, 19 - m), 1, "x");
        }
        q.finish(Ts::hm(8, 30));
        assert!(q.peak_buffered() >= 20);
    }
}
