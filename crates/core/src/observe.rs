//! Structured tracing and metrics for the streaming runtime.
//!
//! The paper's thesis — one SQL dialect for every layer — extends to the
//! runtime's own health: watermark lag, backpressure, checkpoint cost and
//! wire traffic should be observable *as a stream*, queryable with the same
//! windowed SQL users write against their own data. This module supplies the
//! three pieces that make that possible without any crates.io dependency:
//!
//! * a **tracing facade** ([`TraceEvent`], [`TraceSink`], [`install`]) that
//!   hot paths emit span/counter/gauge/sample events into. When no sink is
//!   installed the cost of an emission site is a single relaxed atomic load;
//!   tests and tools install a sink to capture the raw event stream.
//! * a log-bucketed latency [`Histogram`] with fixed power-of-two bucket
//!   boundaries, so recorded artifacts (bench JSON, checkpoint summaries)
//!   stay comparable across PRs and merges are order-independent.
//! * a process-wide [`MetricsHub`] where labelled pipeline drivers publish
//!   [`PipelineSnapshot`]s — versioned, event-timed copies of their
//!   [`PipelineMetrics`] — which the
//!   `metrics` source connector turns back into rows with event-time.
//!
//! See `docs/OBSERVABILITY.md` for the span/counter vocabulary.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use onesql_types::Ts;

use crate::connect::PipelineMetrics;

// ---------------------------------------------------------------------------
// Tracing facade
// ---------------------------------------------------------------------------

/// A single structured telemetry event.
///
/// Names are dot-separated, lowercase, and stable: they form the public
/// vocabulary documented in `docs/OBSERVABILITY.md`. Durations are always
/// microseconds; byte counts are always raw bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent<'a> {
    /// A named operation began.
    SpanEnter {
        /// Span name, e.g. `checkpoint.save`.
        name: &'a str,
    },
    /// A named operation finished after `micros` microseconds.
    SpanExit {
        /// Span name, matching the corresponding [`TraceEvent::SpanEnter`].
        name: &'a str,
        /// Wall-clock duration of the span in microseconds.
        micros: u64,
    },
    /// A monotone counter advanced by `delta`.
    Counter {
        /// Counter name, e.g. `net.consumer.frames`.
        name: &'a str,
        /// Increment (never negative; counters are monotone).
        delta: u64,
    },
    /// A point-in-time level, e.g. a queue depth or batch size.
    Gauge {
        /// Gauge name, e.g. `driver.batch_size`.
        name: &'a str,
        /// Current value.
        value: i64,
    },
    /// One observation destined for a histogram.
    Sample {
        /// Series name, e.g. `checkpoint.persist_micros`.
        name: &'a str,
        /// Observed value.
        value: u64,
    },
    /// A completed causal span (see [`TraceSpan`]). Unlike the
    /// fire-and-forget `SpanEnter`/`SpanExit` pair, the record carries
    /// span/parent IDs and scope, so a [`FlightRecorder`] can stitch
    /// records into one causal trace across threads and processes.
    Span {
        /// The closed span. `record.seq` is 0 until a recorder assigns one.
        record: &'a TraceRecord,
    },
}

/// A consumer of [`TraceEvent`]s.
///
/// Implementations must be cheap and non-blocking: events are emitted from
/// driver hot loops. The runtime never emits while holding its own locks.
pub trait TraceSink: Send + Sync {
    /// Receive one event. Borrowed names are only valid for the call.
    fn event(&self, event: &TraceEvent<'_>);
}

static TRACE_ON: AtomicBool = AtomicBool::new(false);

fn trace_slot() -> &'static Mutex<Option<Arc<dyn TraceSink>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<dyn TraceSink>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Install a global trace sink; subsequent [`emit`]s are delivered to it.
///
/// Replaces any previously installed sink. Tracing stays enabled until
/// [`uninstall`] is called.
pub fn install(sink: Arc<dyn TraceSink>) {
    *trace_slot()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(sink);
    TRACE_ON.store(true, Ordering::Release);
}

/// Remove the global trace sink, returning emission sites to their
/// single-atomic-load fast path.
pub fn uninstall() {
    TRACE_ON.store(false, Ordering::Release);
    *trace_slot()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
}

/// Whether a trace sink is currently installed.
///
/// Callers with non-trivial event construction cost should check this first;
/// [`emit`] checks it again internally, so racing an [`uninstall`] is benign.
#[inline]
pub fn enabled() -> bool {
    TRACE_ON.load(Ordering::Relaxed)
}

/// Deliver one event to the installed sink, if any.
#[inline]
pub fn emit(event: TraceEvent<'_>) {
    if !enabled() {
        return;
    }
    emit_slow(&event);
}

#[cold]
fn emit_slow(event: &TraceEvent<'_>) {
    // Clone the Arc out of the slot so the sink runs without the lock held
    // (a sink may itself emit, e.g. when wrapping another sink).
    let sink = trace_slot()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    if let Some(sink) = sink {
        sink.event(event);
    }
}

/// Emit a counter increment.
#[inline]
pub fn counter(name: &str, delta: u64) {
    emit(TraceEvent::Counter { name, delta });
}

/// Emit a gauge level.
#[inline]
pub fn gauge(name: &str, value: i64) {
    emit(TraceEvent::Gauge { name, value });
}

/// Emit a histogram observation.
#[inline]
pub fn sample(name: &str, value: u64) {
    emit(TraceEvent::Sample { name, value });
}

/// RAII span: emits `SpanEnter` on construction and `SpanExit` (with the
/// elapsed microseconds) on drop. Also usable as a plain stopwatch via
/// [`Span::elapsed_micros`].
pub struct Span {
    name: &'static str,
    start: Instant,
}

impl Span {
    /// Start a span named `name`.
    pub fn enter(name: &'static str) -> Span {
        emit(TraceEvent::SpanEnter { name });
        Span {
            name,
            start: Instant::now(),
        }
    }

    /// Microseconds since the span started, saturated to `u64`.
    pub fn elapsed_micros(&self) -> u64 {
        self.start.elapsed().as_micros().min(u64::MAX as u128) as u64
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        emit(TraceEvent::SpanExit {
            name: self.name,
            micros: self.elapsed_micros(),
        });
    }
}

/// A plain wall-clock stopwatch for code that records durations into a
/// [`Histogram`] (and optionally also [`sample`]s them).
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Stopwatch {
        Stopwatch(Instant::now())
    }

    /// Elapsed microseconds, saturated to `u64`.
    pub fn micros(&self) -> u64 {
        self.0.elapsed().as_micros().min(u64::MAX as u128) as u64
    }
}

// ---------------------------------------------------------------------------
// Causal spans and the flight recorder
// ---------------------------------------------------------------------------

/// A completed causal span: the flight recorder's unit of storage and the
/// payload of [`TraceEvent::Span`].
///
/// Span IDs are process-unique and never 0; `parent == 0` marks a root.
/// IDs embed a per-process epoch in their high 32 bits, so records from a
/// producer process and a consumer process never collide and a parent ID
/// carried across the OSQW wire stays meaningful on the other side.
/// Timestamps are microseconds since the UNIX epoch (anchored once per
/// process, then monotone), so traces from cooperating processes line up
/// on one Chrome-trace timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Recorder-assigned insertion sequence (strictly increasing per
    /// recorder; 0 on a record that has not been recorded yet).
    pub seq: u64,
    /// This span's process-unique ID (never 0).
    pub span: u64,
    /// Parent span ID, or 0 for a root span. The parent may live in
    /// another thread or another process (wire-carried context).
    pub parent: u64,
    /// Stable dot-separated span name, e.g. `driver.round`.
    pub name: &'static str,
    /// Pipeline label in effect when the span opened ("" when unlabelled).
    pub pipeline: String,
    /// Worker index, or -1 outside any sharded worker.
    pub worker: i32,
    /// Source partition, or -1 when the span is not partition-scoped.
    pub partition: i32,
    /// Microseconds since the UNIX epoch when the span opened.
    pub start_micros: u64,
    /// Microseconds since the UNIX epoch when the span closed.
    pub end_micros: u64,
}

/// Wall-anchored monotone clock: micros since the UNIX epoch, anchored at
/// first use and advanced by `Instant` so it never regresses.
struct TraceClock {
    base_micros: u64,
    started: Instant,
}

fn trace_clock() -> &'static TraceClock {
    static CLOCK: OnceLock<TraceClock> = OnceLock::new();
    CLOCK.get_or_init(|| TraceClock {
        base_micros: SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros().min(u64::MAX as u128) as u64)
            .unwrap_or(0),
        started: Instant::now(),
    })
}

/// Microseconds since the UNIX epoch on the process trace clock.
pub fn trace_now_micros() -> u64 {
    let clock = trace_clock();
    clock
        .base_micros
        .saturating_add(clock.started.elapsed().as_micros().min(u64::MAX as u128) as u64)
}

static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

/// The per-process span-ID epoch: a 32-bit value derived from wall time
/// and the PID, shifted into the high half. Never 0, so no span ID is 0.
fn span_epoch() -> u64 {
    static EPOCH: OnceLock<u64> = OnceLock::new();
    *EPOCH.get_or_init(|| {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let pid = u64::from(std::process::id());
        let mixed = (nanos ^ pid.wrapping_mul(0x9e37_79b9_7f4a_7c15)) & 0xffff_ffff;
        mixed.max(1) << 32
    })
}

fn next_span_id() -> u64 {
    span_epoch() | (NEXT_SPAN.fetch_add(1, Ordering::Relaxed) & 0xffff_ffff)
}

/// Sampling divisor for root spans: 1 records every trace, N records one
/// root (and its whole tree) out of every N. Children inherit the root's
/// decision, so sampled traces are always complete.
static TRACE_SAMPLE: AtomicU64 = AtomicU64::new(1);
static ROOT_SEQ: AtomicU64 = AtomicU64::new(0);

/// Set the root-span sampling divisor (`SET trace = 'sample=N'`); 0 is
/// treated as 1 (record everything).
pub fn set_sample(divisor: u64) {
    TRACE_SAMPLE.store(divisor.max(1), Ordering::Relaxed);
}

/// The current root-span sampling divisor.
pub fn sample_divisor() -> u64 {
    TRACE_SAMPLE.load(Ordering::Relaxed).max(1)
}

fn sample_this_root() -> bool {
    let n = TRACE_SAMPLE.load(Ordering::Relaxed);
    n <= 1 || ROOT_SEQ.fetch_add(1, Ordering::Relaxed).is_multiple_of(n)
}

struct ThreadCtx {
    /// Innermost open span on this thread (0 = none).
    current: u64,
    /// Whether the current trace tree is being recorded.
    sampled: bool,
    /// Pipeline label stamped onto records opened on this thread.
    pipeline: Arc<str>,
    /// Worker index stamped onto records opened on this thread.
    worker: i32,
}

thread_local! {
    static CTX: RefCell<ThreadCtx> = RefCell::new(ThreadCtx {
        current: 0,
        sampled: false,
        pipeline: Arc::from(""),
        worker: -1,
    });
}

/// Stamp `label` onto spans subsequently opened on this thread.
pub fn set_thread_pipeline(label: &str) {
    CTX.with(|ctx| {
        let mut ctx = ctx.borrow_mut();
        if &*ctx.pipeline != label {
            ctx.pipeline = Arc::from(label);
        }
    });
}

/// Stamp `worker` onto spans subsequently opened on this thread (-1 =
/// not a worker thread).
pub fn set_thread_worker(worker: i32) {
    CTX.with(|ctx| ctx.borrow_mut().worker = worker);
}

/// The ID of this thread's innermost open *sampled* span, or 0. This is
/// the value to propagate to another thread or across the wire as a
/// parent: 0 means "don't stitch" (tracing off, or this tree unsampled).
pub fn current_span() -> u64 {
    CTX.with(|ctx| {
        let ctx = ctx.borrow();
        if ctx.sampled {
            ctx.current
        } else {
            0
        }
    })
}

/// RAII causal span: allocates a process-unique ID at open, becomes the
/// thread's current span, and on drop emits a [`TraceEvent::Span`] record
/// (when tracing is enabled and the tree is sampled). When tracing is
/// disabled at open the span is inert: one relaxed atomic load, nothing
/// else.
pub struct TraceSpan {
    span: u64,
    parent: u64,
    sampled: bool,
    name: &'static str,
    pipeline: Option<Arc<str>>,
    worker: i32,
    partition: i32,
    start_micros: u64,
    prev_current: u64,
    prev_sampled: bool,
}

impl TraceSpan {
    fn inert(name: &'static str) -> TraceSpan {
        TraceSpan {
            span: 0,
            parent: 0,
            sampled: false,
            name,
            pipeline: None,
            worker: -1,
            partition: -1,
            start_micros: 0,
            prev_current: 0,
            prev_sampled: false,
        }
    }

    fn open(name: &'static str, explicit_parent: Option<u64>) -> TraceSpan {
        if !enabled() {
            return TraceSpan::inert(name);
        }
        CTX.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            let (parent, sampled) = match explicit_parent {
                Some(p) if p != 0 => (p, true),
                _ if ctx.current != 0 => (ctx.current, ctx.sampled),
                _ => (0, sample_this_root()),
            };
            let span = next_span_id();
            let prev_current = ctx.current;
            let prev_sampled = ctx.sampled;
            ctx.current = span;
            ctx.sampled = sampled;
            TraceSpan {
                span,
                parent,
                sampled,
                name,
                pipeline: Some(ctx.pipeline.clone()),
                worker: ctx.worker,
                partition: -1,
                start_micros: trace_now_micros(),
                prev_current,
                prev_sampled,
            }
        })
    }

    /// Open a root span: a fresh trace tree (subject to the sampling
    /// divisor) unless a span is already open on this thread, in which
    /// case it nests like [`TraceSpan::child`].
    pub fn root(name: &'static str) -> TraceSpan {
        TraceSpan::open(name, None)
    }

    /// Open a child of this thread's current span (root if none).
    pub fn child(name: &'static str) -> TraceSpan {
        TraceSpan::open(name, None)
    }

    /// Open a span under an explicit parent ID — typically one carried
    /// from another thread ([`current_span`]) or across the wire. A
    /// parent of 0 falls back to [`TraceSpan::child`] semantics.
    pub fn with_parent(name: &'static str, parent: u64) -> TraceSpan {
        TraceSpan::open(name, Some(parent))
    }

    /// Stamp a source partition onto the record (builder style).
    pub fn partition(mut self, partition: i32) -> TraceSpan {
        self.partition = partition;
        self
    }

    /// This span's ID if it will be recorded, else 0. Propagate this —
    /// not the raw ID — so unsampled trees don't create orphan children.
    pub fn id(&self) -> u64 {
        if self.sampled {
            self.span
        } else {
            0
        }
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        if self.span == 0 {
            return;
        }
        CTX.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            ctx.current = self.prev_current;
            ctx.sampled = self.prev_sampled;
        });
        if self.sampled && enabled() {
            let record = TraceRecord {
                seq: 0,
                span: self.span,
                parent: self.parent,
                name: self.name,
                pipeline: self
                    .pipeline
                    .take()
                    .map(|p| p.to_string())
                    .unwrap_or_default(),
                worker: self.worker,
                partition: self.partition,
                start_micros: self.start_micros,
                end_micros: trace_now_micros(),
            };
            emit(TraceEvent::Span { record: &record });
        }
    }
}

/// Default ring capacity of the process-wide [`recorder`].
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

#[derive(Default)]
struct RecorderInner {
    next_seq: u64,
    ring: VecDeque<TraceRecord>,
}

/// A bounded, lock-light ring buffer of [`TraceRecord`]s.
///
/// "Lock-light" means one brief O(1) critical section per record: assign
/// a sequence number, evict the oldest record if full, push. Eviction is
/// strictly oldest-first, and because spans are recorded at *close* (a
/// child closes before its parent on any one thread), a retained child's
/// recorded parent is either still in the ring or was evicted as older —
/// never silently missing while newer records survive. That invariant is
/// what makes partial rings stitchable.
pub struct FlightRecorder {
    capacity: usize,
    inner: Mutex<RecorderInner>,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            inner: Mutex::new(RecorderInner::default()),
        }
    }

    /// The fixed ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append `record`, assigning and returning its sequence number.
    /// Evicts the oldest record when full.
    pub fn push(&self, mut record: TraceRecord) -> u64 {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.next_seq += 1;
        let seq = inner.next_seq;
        record.seq = seq;
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back(record);
        seq
    }

    /// All retained records, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .ring
            .iter()
            .cloned()
            .collect()
    }

    /// Retained records with a sequence number strictly greater than
    /// `seq`, oldest first (the `trace` connector's cursor read).
    pub fn since(&self, seq: u64) -> Vec<TraceRecord> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .ring
            .iter()
            .filter(|r| r.seq > seq)
            .cloned()
            .collect()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .ring
            .len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all retained records (sequence numbers keep counting).
    pub fn clear(&self) {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .ring
            .clear();
    }
}

impl TraceSink for FlightRecorder {
    fn event(&self, event: &TraceEvent<'_>) {
        if let TraceEvent::Span { record } = event {
            self.push((*record).clone());
        }
    }
}

/// The process-wide flight recorder. `SET trace = 'on'` installs it as
/// the trace sink; `SHOW TRACE`, the `trace` connector, and
/// `TRACE PIPELINE ... TO` all read it.
pub fn recorder() -> &'static Arc<FlightRecorder> {
    static REC: OnceLock<Arc<FlightRecorder>> = OnceLock::new();
    REC.get_or_init(|| Arc::new(FlightRecorder::new(DEFAULT_TRACE_CAPACITY)))
}

/// The stitching closure for one pipeline: records whose pipeline label
/// matches (case-insensitively), plus — transitively — every record
/// linked to those through span/parent IDs. Wire-carried parents pull a
/// producer process's spans into a consumer pipeline's trace and vice
/// versa; that closure is what `TRACE PIPELINE ... TO` exports.
pub fn stitched(records: &[TraceRecord], pipeline: &str) -> Vec<TraceRecord> {
    let mut ids: BTreeSet<u64> = records
        .iter()
        .filter(|r| r.pipeline.eq_ignore_ascii_case(pipeline))
        .flat_map(|r| [r.span, r.parent])
        .filter(|&id| id != 0)
        .collect();
    loop {
        let before = ids.len();
        for r in records {
            if ids.contains(&r.span) || (r.parent != 0 && ids.contains(&r.parent)) {
                ids.insert(r.span);
                if r.parent != 0 {
                    ids.insert(r.parent);
                }
            }
        }
        if ids.len() == before {
            break;
        }
    }
    records
        .iter()
        .filter(|r| r.pipeline.eq_ignore_ascii_case(pipeline) || ids.contains(&r.span))
        .cloned()
        .collect()
}

fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Render records as Chrome trace-event JSON (the array form), loadable
/// in `chrome://tracing` or Perfetto.
///
/// Each record becomes one complete (`"ph":"X"`) event: `ts` is the span
/// start, `dur` its length, both in microseconds. Processes on the
/// timeline are pipeline labels (`pid` by order of first appearance, with
/// `process_name` metadata); `tid` is worker + 1 (so non-worker spans are
/// thread 0). Span and parent IDs render as hex strings in `args` — JSON
/// numbers cannot carry 64-bit IDs exactly. Concatenating the record
/// arrays of two processes before rendering yields one merged trace.
pub fn chrome_trace_json(records: &[TraceRecord]) -> String {
    let mut pipelines: Vec<&str> = Vec::new();
    for r in records {
        if !pipelines.contains(&r.pipeline.as_str()) {
            pipelines.push(&r.pipeline);
        }
    }
    let mut out = String::from("[");
    let mut first = true;
    for (idx, label) in pipelines.iter().enumerate() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":\"",
            idx + 1
        ));
        json_escape(
            if label.is_empty() {
                "(unlabelled)"
            } else {
                label
            },
            &mut out,
        );
        out.push_str("\"}}");
    }
    for r in records {
        if !first {
            out.push(',');
        }
        first = false;
        let pid = pipelines
            .iter()
            .position(|p| *p == r.pipeline.as_str())
            .unwrap_or(0)
            + 1;
        let tid = i64::from(r.worker) + 1;
        out.push_str("\n{\"name\":\"");
        json_escape(r.name, &mut out);
        out.push_str(&format!(
            "\",\"cat\":\"onesql\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"span\":\"{:#x}\",\"parent\":\"{:#x}\",\"pipeline\":\"",
            r.start_micros,
            r.end_micros.saturating_sub(r.start_micros),
            r.span,
            r.parent,
        ));
        json_escape(&r.pipeline, &mut out);
        out.push_str(&format!(
            "\",\"partition\":{},\"seq\":{}}}}}",
            r.partition, r.seq
        ));
    }
    out.push_str("\n]\n");
    out
}

// ---------------------------------------------------------------------------
// Log-bucketed histogram
// ---------------------------------------------------------------------------

/// Number of buckets: one for zero plus one per power of two up to `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-boundary, log2-bucketed histogram of `u64` observations.
///
/// Bucket 0 holds exactly the value `0`; bucket `i >= 1` holds values in
/// `[2^(i-1), 2^i - 1]`. The boundaries are *fixed forever* (pinned by a
/// golden test) so that histograms recorded in different processes, rounds,
/// or PRs can be merged and compared. All arithmetic saturates; `record`
/// never panics for any `u64` input and merging is commutative and
/// associative (order-independent) as long as no saturation occurs — and
/// saturation itself is absorbing, so any merge order still agrees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        Histogram {
            counts: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index a value falls into.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The inclusive `[low, high]` range of values bucket `idx` covers.
    ///
    /// # Panics
    /// If `idx >= HISTOGRAM_BUCKETS`.
    pub fn bucket_bounds(idx: usize) -> (u64, u64) {
        assert!(idx < HISTOGRAM_BUCKETS, "bucket index out of range");
        if idx == 0 {
            (0, 0)
        } else if idx == 64 {
            (1u64 << 63, u64::MAX)
        } else {
            (1u64 << (idx - 1), (1u64 << idx) - 1)
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] = self.counts[Self::bucket_of(value)].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (integer division), or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Raw bucket counts, indexed by [`Histogram::bucket_of`].
    pub fn bucket_counts(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.counts
    }

    /// An upper bound on the `q`-quantile (`0.0..=1.0`): the upper boundary
    /// of the bucket containing the `ceil(q * count)`-th observation, clamped
    /// to the recorded maximum. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return Self::bucket_bounds(idx).1.min(self.max);
            }
        }
        self.max
    }

    /// Convenience: the p50 upper bound.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Convenience: the p99 upper bound.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

// ---------------------------------------------------------------------------
// Metric rows — the shared (name, kind, value) vocabulary
// ---------------------------------------------------------------------------

/// The kind of a rendered metric row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone within one pipeline incarnation chain (survives restore).
    Counter,
    /// Point-in-time level; may move in either direction.
    Gauge,
}

impl MetricKind {
    /// Stable lowercase spelling used in result rows.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// One rendered metric: the common currency of `SHOW PIPELINES`, the
/// `metrics` source connector, and `EXPLAIN ANALYZE`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricRow {
    /// Dot-separated metric name, e.g. `source.Bid.rows`.
    pub name: String,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// The value. Durations are microseconds; watermarks are epoch millis
    /// (`i64::MIN` when still `Watermark::MIN`); unknown lag renders as -1.
    pub value: i64,
}

impl MetricRow {
    /// Build a counter row.
    pub fn counter(name: impl Into<String>, value: u64) -> MetricRow {
        MetricRow {
            name: name.into(),
            kind: MetricKind::Counter,
            value: value.min(i64::MAX as u64) as i64,
        }
    }

    /// Build a gauge row.
    pub fn gauge(name: impl Into<String>, value: i64) -> MetricRow {
        MetricRow {
            name: name.into(),
            kind: MetricKind::Gauge,
            value,
        }
    }
}

// ---------------------------------------------------------------------------
// MetricsHub
// ---------------------------------------------------------------------------

/// A versioned, event-timed copy of one pipeline's metrics.
#[derive(Debug, Clone)]
pub struct PipelineSnapshot {
    /// Pipeline label (the `INSERT INTO` sink name under `Session` custody).
    pub pipeline: String,
    /// Event time of the snapshot: the driver's monotone processing clock.
    pub at: Ts,
    /// Process-wide publication sequence number; strictly increasing, so
    /// consumers can skip snapshots they have already rendered.
    pub seq: u64,
    /// Whether the publishing driver is sharded.
    pub sharded: bool,
    /// Whether the pipeline has finished (entries are kept after finish so
    /// observers never race removal).
    pub finished: bool,
    /// The metrics at publication time.
    pub metrics: PipelineMetrics,
}

#[derive(Default)]
struct HubInner {
    next_seq: u64,
    pipelines: BTreeMap<String, PipelineSnapshot>,
}

/// Process-wide registry of the latest metrics snapshot per labelled
/// pipeline. Drivers publish after every round; the `metrics` source
/// connector and `SHOW PIPELINES` read.
pub struct MetricsHub {
    inner: Mutex<HubInner>,
}

impl MetricsHub {
    fn new() -> MetricsHub {
        MetricsHub {
            inner: Mutex::new(HubInner::default()),
        }
    }

    /// Publish (replace) the snapshot for `pipeline`.
    pub fn publish(
        &self,
        pipeline: &str,
        at: Ts,
        sharded: bool,
        finished: bool,
        metrics: PipelineMetrics,
    ) {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.next_seq += 1;
        let seq = inner.next_seq;
        inner.pipelines.insert(
            pipeline.to_string(),
            PipelineSnapshot {
                pipeline: pipeline.to_string(),
                at,
                seq,
                sharded,
                finished,
                metrics,
            },
        );
    }

    /// The latest snapshot for `pipeline`, if it has ever published.
    pub fn latest(&self, pipeline: &str) -> Option<PipelineSnapshot> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pipelines
            .get(pipeline)
            .cloned()
    }

    /// All current snapshots, ordered by pipeline name.
    pub fn snapshots(&self) -> Vec<PipelineSnapshot> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pipelines
            .values()
            .cloned()
            .collect()
    }

    /// Remove the entry for `pipeline` (used when a pipeline is dropped).
    pub fn clear(&self, pipeline: &str) {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pipelines
            .remove(pipeline);
    }
}

/// The process-wide hub.
pub fn hub() -> &'static MetricsHub {
    static HUB: OnceLock<MetricsHub> = OnceLock::new();
    HUB.get_or_init(MetricsHub::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Capture(Mutex<Vec<String>>);

    impl TraceSink for Capture {
        fn event(&self, event: &TraceEvent<'_>) {
            let line = match event {
                TraceEvent::SpanEnter { name } => format!("enter {name}"),
                TraceEvent::SpanExit { name, .. } => format!("exit {name}"),
                TraceEvent::Counter { name, delta } => format!("counter {name} {delta}"),
                TraceEvent::Gauge { name, value } => format!("gauge {name} {value}"),
                TraceEvent::Sample { name, value } => format!("sample {name} {value}"),
                TraceEvent::Span { record } => {
                    format!("span {} parent={}", record.name, record.parent)
                }
            };
            self.0
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(line);
        }
    }

    /// Tests that install a global sink serialize on this lock so they
    /// don't clobber each other's sink mid-flight.
    fn install_lock() -> &'static Mutex<()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
    }

    #[test]
    fn facade_is_silent_without_sink_and_captures_with_one() {
        let _guard = install_lock()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // No sink: nothing observable, nothing panics.
        counter("quiet.counter", 1);
        assert!(!enabled());

        let sink = Arc::new(Capture::default());
        install(sink.clone());
        assert!(enabled());
        counter("loud.counter", 2);
        gauge("loud.gauge", -3);
        sample("loud.sample", 7);
        {
            let _span = Span::enter("loud.span");
        }
        uninstall();
        counter("quiet.again", 9);

        let lines = sink
            .0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        assert_eq!(
            lines,
            vec![
                "counter loud.counter 2",
                "gauge loud.gauge -3",
                "sample loud.sample 7",
                "enter loud.span",
                "exit loud.span",
            ]
        );
    }

    #[test]
    fn histogram_basics() {
        let mut h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);

        for v in [0u64, 1, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1110);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.mean(), 158);
        // p50 = 4th of 7 observations -> value 3, bucket [2,3] -> bound 3.
        assert_eq!(h.p50(), 3);
        // p99 lands in the last occupied bucket, clamped to max.
        assert_eq!(h.p99(), 1000);
    }

    #[test]
    fn histogram_extremes_never_panic() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.sum(), u64::MAX); // saturated
        let mut other = h.clone();
        other.merge(&h);
        assert_eq!(other.count(), 6);
    }

    /// Golden test: the bucket boundaries are part of the public contract.
    /// If this test fails you have changed the histogram geometry, which
    /// breaks comparability of recorded artifacts across PRs — don't.
    #[test]
    fn histogram_bucket_boundaries_are_pinned() {
        assert_eq!(HISTOGRAM_BUCKETS, 65);
        assert_eq!(Histogram::bucket_bounds(0), (0, 0));
        assert_eq!(Histogram::bucket_bounds(1), (1, 1));
        assert_eq!(Histogram::bucket_bounds(2), (2, 3));
        assert_eq!(Histogram::bucket_bounds(3), (4, 7));
        assert_eq!(Histogram::bucket_bounds(4), (8, 15));
        assert_eq!(Histogram::bucket_bounds(10), (512, 1023));
        assert_eq!(Histogram::bucket_bounds(20), (524_288, 1_048_575));
        assert_eq!(Histogram::bucket_bounds(63), (1u64 << 62, (1u64 << 63) - 1));
        assert_eq!(Histogram::bucket_bounds(64), (1u64 << 63, u64::MAX));
        // Buckets tile the whole u64 range with no gaps or overlaps.
        for idx in 1..HISTOGRAM_BUCKETS {
            let (lo, _) = Histogram::bucket_bounds(idx);
            let (_, prev_hi) = Histogram::bucket_bounds(idx - 1);
            assert_eq!(lo, prev_hi + 1, "gap at bucket {idx}");
        }
        // bucket_of agrees with the bounds at every edge.
        for idx in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(idx);
            assert_eq!(Histogram::bucket_of(lo), idx);
            assert_eq!(Histogram::bucket_of(hi), idx);
        }
    }

    #[test]
    fn hub_publishes_versioned_snapshots() {
        let hub = MetricsHub::new();
        let mut m = PipelineMetrics {
            events_in: 5,
            ..PipelineMetrics::default()
        };
        hub.publish("p1", Ts::from_millis(10), false, false, m.clone());
        m.events_in = 9;
        hub.publish("p1", Ts::from_millis(20), false, true, m);
        hub.publish(
            "p2",
            Ts::from_millis(5),
            true,
            false,
            PipelineMetrics::default(),
        );

        let p1 = hub.latest("p1").unwrap();
        assert_eq!(p1.metrics.events_in, 9);
        assert_eq!(p1.at, Ts::from_millis(20));
        assert!(p1.finished);
        let all = hub.snapshots();
        assert_eq!(all.len(), 2);
        assert!(all[0].seq != all[1].seq);
        assert!(hub.latest("p2").unwrap().seq > 0);
        hub.clear("p2");
        assert!(hub.latest("p2").is_none());
    }

    #[test]
    fn metric_row_constructors() {
        let c = MetricRow::counter("events_in", u64::MAX);
        assert_eq!(c.kind, MetricKind::Counter);
        assert_eq!(c.value, i64::MAX); // clamped, not wrapped
        let g = MetricRow::gauge("lag", -1);
        assert_eq!(g.kind.as_str(), "gauge");
        assert_eq!(g.value, -1);
    }

    #[test]
    fn trace_spans_record_causality_and_scope() {
        let _guard = install_lock()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let rec = Arc::new(FlightRecorder::new(1024));
        install(rec.clone());
        set_sample(1);
        set_thread_pipeline("unit_p");
        set_thread_worker(3);

        // Disabled-span path: an inert span neither records nor leaks ctx.
        let wire_parent;
        {
            let round = TraceSpan::root("driver.round");
            assert_ne!(round.id(), 0);
            assert_eq!(current_span(), round.id());
            {
                let ingest = TraceSpan::child("driver.ingest").partition(2);
                assert_eq!(current_span(), ingest.id());
                assert_ne!(ingest.id(), round.id());
            }
            wire_parent = current_span();
        }
        assert_eq!(current_span(), 0);
        // A consumer-side span stitched under a wire-carried parent.
        {
            let _remote = TraceSpan::with_parent("consumer.ingest", wire_parent);
        }
        uninstall();
        set_thread_pipeline("");
        set_thread_worker(-1);

        let records = rec.records();
        assert_eq!(records.len(), 3);
        // Children close before parents: ingest precedes round.
        assert_eq!(records[0].name, "driver.ingest");
        assert_eq!(records[1].name, "driver.round");
        assert_eq!(records[2].name, "consumer.ingest");
        assert_eq!(records[0].parent, records[1].span);
        assert_eq!(records[2].parent, records[1].span);
        assert_eq!(records[0].partition, 2);
        assert_eq!(records[1].partition, -1);
        for r in &records {
            assert_eq!(r.pipeline, "unit_p");
            assert_eq!(r.worker, 3);
            assert_ne!(r.span, 0);
            assert!(r.span >> 32 >= 1, "epoch in high bits");
            assert!(r.end_micros >= r.start_micros);
        }
        assert!(records[0].seq < records[1].seq && records[1].seq < records[2].seq);
        // IDs are unique.
        let mut ids: Vec<u64> = records.iter().map(|r| r.span).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn sampling_keeps_trees_complete() {
        let _guard = install_lock()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let rec = Arc::new(FlightRecorder::new(1024));
        install(rec.clone());
        set_sample(5);
        for _ in 0..10 {
            let _root = TraceSpan::root("sampled.root");
            let _child = TraceSpan::child("sampled.child");
        }
        set_sample(1);
        uninstall();
        let records = rec.records();
        // Exactly 2 of 10 roots sampled, each with its child.
        assert_eq!(records.len(), 4);
        for r in records.iter().filter(|r| r.parent != 0) {
            assert!(
                records.iter().any(|p| p.span == r.parent),
                "child's parent must be recorded with it"
            );
        }
    }

    #[test]
    fn flight_recorder_evicts_oldest_first() {
        let rec = FlightRecorder::new(3);
        assert_eq!(rec.capacity(), 3);
        let mk = |span: u64| TraceRecord {
            seq: 0,
            span,
            parent: 0,
            name: "evict.test",
            pipeline: String::new(),
            worker: -1,
            partition: -1,
            start_micros: 0,
            end_micros: 0,
        };
        for span in 1..=5 {
            rec.push(mk(span));
        }
        let records = rec.records();
        assert_eq!(records.len(), 3);
        assert_eq!(
            records.iter().map(|r| r.span).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
        assert_eq!(
            records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
        assert_eq!(rec.since(4).len(), 1);
        assert_eq!(rec.len(), 3);
        rec.clear();
        assert!(rec.is_empty());
        // Sequence numbers keep counting after a clear.
        assert_eq!(rec.push(mk(6)), 6);
    }

    #[test]
    fn stitching_follows_wire_links_across_pipelines() {
        let mk = |span: u64, parent: u64, pipeline: &str| TraceRecord {
            seq: 0,
            span,
            parent,
            name: "stitch.test",
            pipeline: pipeline.to_string(),
            worker: -1,
            partition: -1,
            start_micros: 0,
            end_micros: 0,
        };
        let records = vec![
            mk(1, 0, "producer"),  // producer round
            mk(2, 1, "producer"),  // producer emit (id carried on the wire)
            mk(3, 2, "consumer"),  // consumer ingest under the wire parent
            mk(4, 0, "consumer"),  // consumer round
            mk(9, 0, "bystander"), // unrelated pipeline
        ];
        let consumer = stitched(&records, "consumer");
        let spans: Vec<u64> = consumer.iter().map(|r| r.span).collect();
        assert_eq!(spans, vec![1, 2, 3, 4]);
        // And from the producer side the closure pulls the consumer in too.
        let producer = stitched(&records, "PRODUCER");
        let spans: Vec<u64> = producer.iter().map(|r| r.span).collect();
        assert_eq!(spans, vec![1, 2, 3]);
        assert!(stitched(&records, "bystander").iter().all(|r| r.span == 9));
    }

    /// Golden test: the Chrome trace-event JSON for a small fixed trace is
    /// pinned byte-for-byte. Changing it breaks recorded artifacts and
    /// external tooling that parses exports — don't.
    #[test]
    fn chrome_trace_json_is_pinned() {
        let records = vec![
            TraceRecord {
                seq: 1,
                span: 0x1_0000_0002,
                parent: 0x1_0000_0001,
                name: "driver.ingest",
                pipeline: "q7_out".to_string(),
                worker: 0,
                partition: 1,
                start_micros: 1_000_010,
                end_micros: 1_000_050,
            },
            TraceRecord {
                seq: 2,
                span: 0x1_0000_0001,
                parent: 0,
                name: "driver.round",
                pipeline: "q7_out".to_string(),
                worker: -1,
                partition: -1,
                start_micros: 1_000_000,
                end_micros: 1_000_100,
            },
        ];
        let json = chrome_trace_json(&records);
        let expected = concat!(
            "[\n",
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"q7_out\"}},\n",
            "{\"name\":\"driver.ingest\",\"cat\":\"onesql\",\"ph\":\"X\",\"ts\":1000010,\"dur\":40,\"pid\":1,\"tid\":1,",
            "\"args\":{\"span\":\"0x100000002\",\"parent\":\"0x100000001\",\"pipeline\":\"q7_out\",\"partition\":1,\"seq\":1}},\n",
            "{\"name\":\"driver.round\",\"cat\":\"onesql\",\"ph\":\"X\",\"ts\":1000000,\"dur\":100,\"pid\":1,\"tid\":0,",
            "\"args\":{\"span\":\"0x100000001\",\"parent\":\"0x0\",\"pipeline\":\"q7_out\",\"partition\":-1,\"seq\":2}}\n",
            "]\n",
        );
        assert_eq!(json, expected);
        // Empty input is a valid (empty) trace.
        assert_eq!(chrome_trace_json(&[]), "[\n]\n");
    }
}
