//! The engine's own telemetry as a stream: a source that turns
//! [`MetricsHub`](onesql_core::MetricsHub) snapshots into rows, so a
//! pipeline can be observed — windowed, joined, alerted on — with the
//! same SQL dialect that defined it. This is the paper's "one SQL"
//! thesis applied to operations: the monitoring query is just another
//! query.
//!
//! ```sql
//! CREATE SOURCE sys_metrics WITH (connector = 'metrics', pipelines = 'q7_out');
//! ```
//!
//! declares the stream `sys_metrics (mtime TIMESTAMP, pipeline STRING,
//! metric STRING, kind STRING, value INT, WATERMARK FOR mtime)`. Every
//! time a watched pipeline publishes a fresh snapshot (each scheduling
//! round of a labelled driver), the source emits one row per metric from
//! [`PipelineMetrics::render_rows`](onesql_core::connect::PipelineMetrics::render_rows),
//! event-timed at the snapshot's driver clock. The watermark follows the
//! *slowest* watched pipeline, so windows over the metric stream close
//! only when every watched pipeline has progressed past them.

use std::collections::BTreeMap;
use std::sync::Arc;

use onesql_core::connect::{
    AnySource, Exports, OptionBag, Source, SourceBatch, SourceConnector, SourceEvent, SourceSpec,
    SourceStatus,
};
use onesql_core::observe::{hub, PipelineSnapshot};
use onesql_tvr::Change;
use onesql_types::{DataType, Error, Field, Result, Row, Schema, SchemaRef, Ts, Value};

/// The fixed schema of the metric stream (the connector rejects an
/// inline column list): `mtime` is the event-time column, watermarked.
pub fn metrics_schema() -> Schema {
    Schema::new(vec![
        Field::event_time("mtime"),
        Field::new("pipeline", DataType::String),
        Field::new("metric", DataType::String),
        Field::new("kind", DataType::String),
        Field::new("value", DataType::Int),
    ])
}

/// Per-watched-pipeline cursor: the hub sequence number of the last
/// snapshot already rendered, and whether that snapshot was final.
#[derive(Default)]
struct Cursor {
    last_seq: u64,
    finished: bool,
    /// Driver clock of the last rendered snapshot (watermark input).
    at: Option<Ts>,
}

/// A [`Source`] streaming the metrics hub; see the [module docs](self).
pub struct MetricsSource {
    name: String,
    streams: Vec<String>,
    cursors: BTreeMap<String, Cursor>,
    /// Rows rendered but not yet handed to the driver (`poll_batch`
    /// respects `max_events`).
    pending: std::collections::VecDeque<SourceEvent>,
    /// Last watermark asserted (assertions must only advance).
    watermark: Option<Ts>,
}

impl MetricsSource {
    /// A source feeding stream `stream`, watching `pipelines` (labels
    /// under which drivers publish to the global hub).
    pub fn new(stream: impl Into<String>, pipelines: Vec<String>) -> MetricsSource {
        MetricsSource {
            name: "metrics".to_string(),
            streams: vec![stream.into()],
            cursors: pipelines
                .into_iter()
                .map(|p| (p.to_ascii_lowercase(), Cursor::default()))
                .collect(),
            pending: std::collections::VecDeque::new(),
            watermark: None,
        }
    }

    /// Render one snapshot into pending rows.
    fn render(&mut self, snapshot: &PipelineSnapshot) {
        for metric in snapshot.metrics.render_rows() {
            let row = Row::new(vec![
                Value::Ts(snapshot.at),
                Value::from(snapshot.pipeline.as_str()),
                Value::from(metric.name),
                Value::from(metric.kind.as_str()),
                Value::Int(metric.value),
            ]);
            self.pending.push_back(SourceEvent {
                stream: 0,
                ptime: snapshot.at,
                change: Change::insert(row),
            });
        }
    }
}

impl Source for MetricsSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn streams(&self) -> &[String] {
        &self.streams
    }

    fn poll_batch(&mut self, max_events: usize) -> Result<SourceBatch> {
        // Pull anything new out of the hub first.
        let fresh: Vec<PipelineSnapshot> = self
            .cursors
            .iter()
            .filter_map(|(pipeline, cursor)| {
                hub().latest(pipeline).filter(|s| s.seq > cursor.last_seq)
            })
            .collect();
        for snapshot in &fresh {
            self.render(snapshot);
            // The snapshot came from iterating `cursors`, so the entry
            // exists; skipping a vanished one only delays its metrics.
            if let Some(cursor) = self.cursors.get_mut(&snapshot.pipeline) {
                cursor.last_seq = snapshot.seq;
                cursor.finished = snapshot.finished;
                cursor.at = Some(snapshot.at);
            }
        }

        let mut batch = SourceBatch::empty(SourceStatus::Idle);
        while batch.events.len() < max_events {
            match self.pending.pop_front() {
                Some(event) => batch.events.push(event),
                None => break,
            }
        }

        // The metric stream's watermark trails the slowest watched
        // pipeline's driver clock by 1ms (future snapshots of that
        // pipeline may carry the same clock, and assertions are strict).
        if let Some(min_at) = self
            .cursors
            .values()
            .map(|c| c.at)
            .collect::<Option<Vec<_>>>()
            .and_then(|ats| ats.into_iter().min())
        {
            let candidate = Ts(min_at.0.saturating_sub(1));
            if self.watermark.is_none_or(|w| candidate > w) {
                self.watermark = Some(candidate);
                batch.watermark = Some(candidate);
            }
        }

        batch.status = if !self.pending.is_empty() || !batch.events.is_empty() {
            SourceStatus::Ready
        } else if self.cursors.values().all(|c| c.finished) {
            SourceStatus::Finished
        } else {
            SourceStatus::Idle
        };
        Ok(batch)
    }
}

/// Factory for `connector = 'metrics'`: requires `pipelines = 'a,b'`
/// (the labels to watch), defines its own schema, and is deliberately
/// unpartitionable — telemetry is a single low-volume stream.
pub struct MetricsConnector;

impl MetricsConnector {
    fn validate(spec: &SourceSpec, options: &mut OptionBag) -> Result<Vec<String>> {
        if spec.schema.is_some() {
            return Err(Error::plan(format!(
                "source '{}': connector 'metrics' defines its own schema \
                 (mtime TIMESTAMP, pipeline STRING, metric STRING, kind \
                 STRING, value INT); drop the column list",
                spec.name
            )));
        }
        if spec.partitioned {
            return Err(Error::plan(format!(
                "source '{}': connector 'metrics' is not partitionable",
                spec.name
            )));
        }
        let raw = options.require_str("pipelines")?;
        let pipelines: Vec<String> = raw
            .split(',')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .map(str::to_string)
            .collect();
        if pipelines.is_empty() {
            return Err(Error::plan(format!(
                "source '{}': option 'pipelines' names no pipeline; give \
                 the label(s) the watched pipelines publish under (their \
                 INSERT INTO targets)",
                spec.name
            )));
        }
        Ok(pipelines)
    }
}

impl SourceConnector for MetricsConnector {
    fn declare(
        &self,
        spec: &SourceSpec,
        options: &mut OptionBag,
    ) -> Result<Vec<(String, SchemaRef)>> {
        Self::validate(spec, options)?;
        Ok(vec![(spec.name.to_string(), Arc::new(metrics_schema()))])
    }

    fn build(
        &self,
        spec: &SourceSpec,
        options: &mut OptionBag,
        _exports: &mut Exports,
    ) -> Result<AnySource> {
        let pipelines = Self::validate(spec, options)?;
        Ok(AnySource::Plain(Box::new(MetricsSource::new(
            spec.name, pipelines,
        ))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onesql_core::connect::PipelineMetrics;
    use onesql_core::observe;

    fn publish(pipeline: &str, at: Ts, finished: bool, events_in: u64) {
        let metrics = PipelineMetrics {
            events_in,
            ..PipelineMetrics::default()
        };
        observe::hub().publish(pipeline, at, false, finished, metrics);
    }

    #[test]
    fn streams_snapshots_as_rows_with_trailing_watermark() {
        let label = "metrics_rs_unit_a";
        observe::hub().clear(label);
        let mut source = MetricsSource::new("sys_metrics", vec![label.to_string()]);

        // Nothing published yet: idle, no watermark.
        let batch = source.poll_batch(1024).unwrap();
        assert!(batch.events.is_empty());
        assert_eq!(batch.watermark, None);
        assert_eq!(batch.status, SourceStatus::Idle);

        publish(label, Ts(100), false, 7);
        let batch = source.poll_batch(1024).unwrap();
        assert!(!batch.events.is_empty());
        assert_eq!(batch.watermark, Some(Ts(99)));
        assert_eq!(batch.status, SourceStatus::Ready);
        let row = &batch.events[0].change.row;
        assert_eq!(row.values()[0], Value::Ts(Ts(100)));
        assert_eq!(row.values()[1], Value::from(label));
        let events_in = batch
            .events
            .iter()
            .map(|e| e.change.row.values())
            .find(|v| v[2] == Value::from("events_in"))
            .expect("events_in row present");
        assert_eq!(events_in[3], Value::from("counter"));
        assert_eq!(events_in[4], Value::Int(7));

        // Same snapshot again: nothing new, but not finished either.
        let batch = source.poll_batch(1024).unwrap();
        assert!(batch.events.is_empty());
        assert_eq!(batch.status, SourceStatus::Idle);

        publish(label, Ts(200), true, 9);
        // max_events is respected; leftovers arrive on the next poll.
        let batch = source.poll_batch(3).unwrap();
        assert_eq!(batch.events.len(), 3);
        assert_eq!(batch.status, SourceStatus::Ready);
        let batch = source.poll_batch(usize::MAX).unwrap();
        assert!(!batch.events.is_empty());
        let batch = source.poll_batch(usize::MAX).unwrap();
        assert!(batch.events.is_empty());
        assert_eq!(batch.status, SourceStatus::Finished);
        observe::hub().clear(label);
    }

    #[test]
    fn watermark_follows_the_slowest_watched_pipeline() {
        let (a, b) = ("metrics_rs_unit_b1", "metrics_rs_unit_b2");
        observe::hub().clear(a);
        observe::hub().clear(b);
        let mut source = MetricsSource::new("m", vec![a.to_string(), b.to_string()]);

        publish(a, Ts(500), false, 1);
        // Only one of two watched pipelines has published: no watermark.
        let batch = source.poll_batch(usize::MAX).unwrap();
        assert_eq!(batch.watermark, None);

        publish(b, Ts(50), false, 1);
        let batch = source.poll_batch(usize::MAX).unwrap();
        assert_eq!(batch.watermark, Some(Ts(49)));

        // The slow pipeline catching up advances the watermark.
        publish(b, Ts(600), true, 2);
        let batch = source.poll_batch(usize::MAX).unwrap();
        assert_eq!(batch.watermark, Some(Ts(499)));
        observe::hub().clear(a);
        observe::hub().clear(b);
    }

    #[test]
    fn connector_validates_its_options() {
        let registry = crate::default_registry();
        let mut session = onesql_core::Session::new(registry);
        let err = session
            .execute("CREATE SOURCE m (x INT) WITH (connector = 'metrics', pipelines = 'p')")
            .unwrap_err()
            .to_string();
        assert!(err.contains("defines its own schema"), "{err}");
        let err = session
            .execute("CREATE SOURCE m WITH (connector = 'metrics', pipelines = ' ')")
            .unwrap_err()
            .to_string();
        assert!(err.contains("names no pipeline"), "{err}");
        let err = session
            .execute("CREATE SOURCE m WITH (connector = 'metrics')")
            .unwrap_err()
            .to_string();
        assert!(err.contains("pipelines"), "{err}");
        session
            .execute("CREATE SOURCE m WITH (connector = 'metrics', pipelines = 'q7_out')")
            .unwrap();
    }
}
