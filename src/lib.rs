#![warn(missing_docs)]

//! Meta-crate re-exporting the onesql public API.
pub use onesql_core as core;
