//! A pipeline observing a pipeline, both in **pure SQL**: NEXMark Q7
//! runs under the label `q7_out`, and a second pipeline reads the
//! engine's own telemetry through the `metrics` source connector,
//! windowing Q7's watermark lag with the *same* `Tumble` the data
//! queries use. The monitoring query is just another query — the
//! paper's "one SQL dialect" thesis applied to operations.
//!
//! Run with: `cargo run --release --example observe_pipeline`

use std::sync::{Arc, Mutex};

use onesql::connect::session;
use onesql::StatementResult;
use onesql_nexmark::queries;
use onesql_types::Result;

const EVENTS: u64 = 4_000;

fn main() -> Result<()> {
    // One script, two pipelines. The `metrics` connector declares the
    // stream `sys_metrics (mtime, pipeline, metric, kind, value)`;
    // every scheduling round of the watched pipeline becomes rows, so
    // the observer can window them like any other stream.
    // One worker: Q7's global per-window MAX does not align with hash
    // routing, so `EXPLAIN LINT` flags OSQL002 for workers > 1 (the
    // driver still shards over the four source partitions).
    let script = format!(
        "SET workers = 1;
         SET batch_size = 64;
         SET max_batch = 128;
         CREATE PARTITIONED SOURCE nex
           WITH (connector = 'nexmark', seed = 7, events = {EVENTS}, partitions = 4);
         CREATE SINK q7_out WITH (connector = 'changelog');
         INSERT INTO q7_out {q7} EMIT STREAM;

         CREATE SOURCE sys_metrics WITH (connector = 'metrics', pipelines = 'q7_out');
         CREATE SINK lag WITH (connector = 'changelog');
         INSERT INTO lag
           SELECT T.wend, MAX(T.value) AS peak_lag_ms
           FROM Tumble(data => TABLE(sys_metrics), timecol => DESCRIPTOR(mtime),
                       dur => INTERVAL '1' MINUTE) T
           WHERE T.metric = 'watermark_lag_ms'
           GROUP BY T.wend
           EMIT STREAM AFTER WATERMARK;",
        q7 = queries::Q7,
    );

    let mut session = session();
    let mut pipelines = session.execute_script(&script)?.pipelines();
    let mut observer = pipelines.pop().expect("observer pipeline");
    let mut q7 = pipelines.pop().expect("q7 pipeline");
    let lag = session
        .take_handle::<Arc<Mutex<String>>>("lag")
        .expect("changelog sink exports its buffer");

    // Interleave the two drivers: the observer samples the hub while Q7
    // is mid-flight (a real deployment would run them in two threads or
    // two processes — the `metrics` hub is process-global).
    while q7.as_sharded_mut().expect("sharded").events_in() < EVENTS {
        q7.step()?;
        observer.step()?;
    }
    let q7_metrics = q7.run()?; // final snapshot carries finished = true
    let observer_metrics = observer.run()?; // ...which finishes the metric stream

    println!("== Q7 watermark lag, per 1-minute window (event time) ==");
    let rendered = lag.lock().unwrap();
    for line in rendered
        .lines()
        .rev()
        .take(8)
        .collect::<Vec<_>>()
        .iter()
        .rev()
    {
        println!("{line}");
    }
    drop(rendered);

    // The same numbers, asked for in SQL.
    session.adopt_pipeline(q7)?;
    session.adopt_pipeline(observer)?;
    let StatementResult::Pipelines(infos) = session.execute("SHOW PIPELINES")? else {
        panic!("expected Pipelines");
    };
    println!("== SHOW PIPELINES ==");
    for info in &infos {
        let value = |name: &str| {
            info.rows
                .iter()
                .find(|r| r.name == name)
                .map_or(0, |r| r.value)
        };
        println!(
            "{:8} sharded={:5} events_in={:6} events_out={:6} rounds={:4} p99_round={}us",
            info.name,
            info.sharded,
            value("events_in"),
            value("events_out"),
            value("rounds"),
            value("round_micros_p99"),
        );
    }

    assert_eq!(q7_metrics.events_in, EVENTS);
    assert!(q7_metrics.events_out > 0, "Q7 produced no output");
    assert!(
        observer_metrics.events_in > 0,
        "the observer saw no telemetry rows"
    );
    assert!(
        lag.lock().unwrap().lines().count() > 0,
        "no lag windows rendered"
    );
    assert_eq!(infos.len(), 2);
    println!(
        "== done: {} telemetry rows observed over {} Q7 rounds ==",
        observer_metrics.events_in, q7_metrics.rounds
    );
    Ok(())
}
