//! Durable checkpoints, black-box: a pipeline killed at any point and
//! restored from its on-disk checkpoint — in a *fresh* `Session`, purely
//! via `RESTORE PIPELINE ... FROM '<path>'` — must leave sink files
//! byte-identical to an uninterrupted run (cf. black-box consistency
//! checking: the only oracle is observable output, not internal state).
//! The kill/restore *choreography* itself lives in `onesql_checker`'s
//! nemesis (see `docs/CHECKING.md`); this file keeps the SQL statement
//! surface (`CHECKPOINT PIPELINE` / `RESTORE PIPELINE` results and
//! on-disk artifacts) and every way a checkpoint artifact can be damaged
//! — truncation, bit flips, wrong magic, future versions, a missing
//! manifest, restoring into the wrong pipeline or under changed schemas
//! — which must surface as a typed error, never a panic and never
//! silent duplication.

use std::path::{Path, PathBuf};

use proptest::prelude::*;

use onesql::connect::session;
use onesql::{PipelineCheckpoint, SqlPipeline, StatementResult};
use onesql_nexmark::queries;
use onesql_state::Codec;
use onesql_time::Watermark;
use onesql_tvr::{Change, TimedChange};
use onesql_types::{Row, Ts, Value};

const EVENTS: u64 = 3_000;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("onesql_durable_ckpt")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The pure-SQL NEXMark Q7 pipeline into a transactional file sink.
fn q7_script(sink_path: &Path) -> String {
    format!(
        "SET workers = 2;
         SET batch_size = 64;
         SET max_batch = 128;
         CREATE PARTITIONED SOURCE nex
           WITH (connector = 'nexmark', seed = 7, events = {EVENTS}, partitions = 4);
         CREATE SINK out WITH (connector = 'file', path = '{}', transactional = TRUE);
         INSERT INTO out {} EMIT STREAM;",
        sink_path.display(),
        queries::Q7
    )
}

/// Assemble the Q7 pipeline in a fresh session.
fn assemble(sink_path: &Path) -> (onesql::Session, SqlPipeline) {
    let mut s = session();
    let pipeline = s
        .execute_script(&q7_script(sink_path))
        .unwrap()
        .into_pipeline()
        .unwrap();
    assert!(
        pipeline.is_sharded(),
        "SET workers + PARTITIONED => sharded"
    );
    (s, pipeline)
}

/// Step the pipeline until it has ingested at least `events`.
fn step_until(pipeline: &mut SqlPipeline, events: u64) {
    while pipeline.as_sharded_mut().expect("sharded").events_in() < events {
        pipeline.step().unwrap();
    }
}

// ---------------------------------------------------------------------------
// The acceptance bar: kill → RESTORE in a fresh session → byte-identical
// sink files. The interleavings (where the checkpoint lands, how much
// uncommitted staging the kill discards, how many kills) come from the
// checker's seeded nemesis; the oracles — replay-identical effective
// history, byte-equal artifacts, stable AS OF probes, balanced
// retractions, monotone watermarks — all must hold.
// ---------------------------------------------------------------------------

#[test]
fn q7_kill_restore_is_replay_identical_under_the_nemesis() {
    for seed in [1, 2] {
        let mut scenario = onesql_checker::NexmarkScenario::by_name("q7", EVENTS);
        let report = onesql_checker::check_seeded(&mut scenario, seed);
        assert!(
            report.nemesis.incarnations >= 2,
            "seed {seed}: the nemesis should have killed at least once"
        );
        assert!(
            !report.reference.artifacts[0].1.is_empty(),
            "Q7 produced no output"
        );
    }
}

/// The SQL statement surface the checker drives through the API:
/// `CHECKPOINT PIPELINE` on an adopted pipeline, the on-disk store
/// layout, and scripted `RESTORE PIPELINE` recovery in a fresh session.
#[test]
fn checkpoint_and_restore_ddl_round_trip() {
    let dir = scratch_dir("ddl");
    let store = dir.join("store");
    let reference = dir.join("reference.csv");
    let recovered = dir.join("recovered.csv");

    let (_s, mut pipeline) = assemble(&reference);
    pipeline.run().unwrap();
    let expected = std::fs::read(&reference).unwrap();
    assert!(
        !dir.join("reference.csv.txn").exists(),
        "a finished transactional sink removes its sidecar"
    );

    let (mut s1, mut victim) = assemble(&recovered);
    step_until(&mut victim, EVENTS / 3);
    s1.adopt_pipeline(victim).unwrap();
    let result = s1
        .execute(&format!("CHECKPOINT PIPELINE out TO '{}'", store.display()))
        .unwrap();
    let StatementResult::Checkpointed { pipeline, epoch } = result else {
        panic!("expected Checkpointed");
    };
    assert_eq!((pipeline.as_str(), epoch), ("out", 1));
    assert!(store.join("MANIFEST").exists());
    assert!(store.join("epoch-1.ckpt").exists());
    let mut victim = s1.take_pipeline("out").unwrap();
    // Uncommitted staging past the checkpoint; the restore discards it.
    step_until(&mut victim, EVENTS / 2);
    drop(victim); // kill
    drop(s1); // the whole process is gone

    let mut s2 = session();
    let script = format!(
        "{} RESTORE PIPELINE out FROM '{}';",
        q7_script(&recovered),
        store.display()
    );
    let outcome = s2.execute_script(&script).unwrap();
    assert!(matches!(
        outcome.results.last(),
        Some(StatementResult::Restored { epoch: 1, .. })
    ));
    let mut restored = outcome.into_pipeline().unwrap();
    restored.run().unwrap();

    assert_eq!(
        std::fs::read(&recovered).unwrap(),
        expected,
        "the killed-and-restored sink file differs from the \
         uninterrupted run's"
    );
    assert!(
        !dir.join("recovered.csv.txn").exists(),
        "finish removes the staging sidecar"
    );
}

// ---------------------------------------------------------------------------
// Identity checks: wrong pipeline, changed schemas.
// ---------------------------------------------------------------------------

#[test]
fn restore_refuses_the_wrong_pipeline() {
    let dir = scratch_dir("wrong-pipeline");
    let store = dir.join("store");
    let (s, mut pipeline) = assemble(&dir.join("a.csv"));
    pipeline.step().unwrap();
    pipeline.checkpoint_to(&store).unwrap();
    drop(pipeline);
    drop(s);

    // Same definitions, but the INSERT targets a different sink, so the
    // pipeline id differs: the store must refuse it.
    let mut s = session();
    s.execute_script(
        "SET workers = 2;
         CREATE PARTITIONED SOURCE nex
           WITH (connector = 'nexmark', seed = 7, events = 100, partitions = 4);
         CREATE SINK elsewhere WITH (connector = 'changelog');",
    )
    .unwrap();
    let err = s
        .execute_script(&format!(
            "INSERT INTO elsewhere {} EMIT STREAM;
             RESTORE PIPELINE elsewhere FROM '{}';",
            queries::Q7,
            store.display()
        ))
        .unwrap_err()
        .to_string();
    assert!(
        err.contains("belongs to pipeline 'out'") && err.contains("'elsewhere'"),
        "{err}"
    );
}

#[test]
fn restore_refuses_changed_schema_naming_the_relation() {
    let dir = scratch_dir("schema-drift");
    let store = dir.join("store");

    let mut s = session();
    let mut pipeline = s
        .execute_script(
            "SET workers = 2;
             CREATE PARTITIONED SOURCE S (t TIMESTAMP, v INT, WATERMARK FOR t)
               WITH (connector = 'channel', partitions = 2);
             CREATE SINK out WITH (connector = 'changelog');
             INSERT INTO out SELECT v FROM S EMIT STREAM;",
        )
        .unwrap()
        .into_pipeline()
        .unwrap();
    pipeline.checkpoint_to(&store).unwrap();
    drop(pipeline);
    drop(s);

    // The "same" script in a fresh process, but S's column is now FLOAT:
    // the manifest's schema fingerprint catches the drift and names S.
    let mut s = session();
    let err = s
        .execute_script(&format!(
            "SET workers = 2;
             CREATE PARTITIONED SOURCE S (t TIMESTAMP, v FLOAT, WATERMARK FOR t)
               WITH (connector = 'channel', partitions = 2);
             CREATE SINK out WITH (connector = 'changelog');
             INSERT INTO out SELECT v FROM S EMIT STREAM;
             RESTORE PIPELINE out FROM '{}';",
            store.display()
        ))
        .unwrap_err()
        .to_string();
    assert!(err.contains("relation 's'"), "{err}");
    assert!(err.contains("different"), "{err}");
}

// ---------------------------------------------------------------------------
// Damaged artifacts surface as typed errors through the SQL path.
// ---------------------------------------------------------------------------

#[test]
fn damaged_checkpoint_files_error_descriptively_via_restore() {
    let dir = scratch_dir("damage");
    let store = dir.join("store");
    let sink = dir.join("x.csv");
    let (_s, mut pipeline) = assemble(&sink);
    step_until(&mut pipeline, EVENTS / 4);
    pipeline.checkpoint_to(&store).unwrap();
    drop(pipeline);
    let epoch_file = store.join("epoch-1.ckpt");
    let pristine = std::fs::read(&epoch_file).unwrap();

    let restore = |msg: &str| {
        let mut s = session();
        let script = format!(
            "{} RESTORE PIPELINE out FROM '{}';",
            q7_script(&sink),
            store.display()
        );
        let err = s.execute_script(&script).unwrap_err().to_string();
        assert!(err.contains(msg), "wanted '{msg}' in: {err}");
    };

    // Bit-flipped body: CRC catches it.
    let mut flipped = pristine.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x01;
    std::fs::write(&epoch_file, &flipped).unwrap();
    restore("CRC");

    // Truncated file.
    std::fs::write(&epoch_file, &pristine[..pristine.len() / 2]).unwrap();
    restore("truncated");

    // Wrong magic (not a checkpoint file at all).
    let mut foreign = pristine.clone();
    foreign[..4].copy_from_slice(b"ELFX");
    std::fs::write(&epoch_file, &foreign).unwrap();
    restore("magic");

    // A version from the future.
    let mut future = pristine.clone();
    future[4] = 0x7F;
    std::fs::write(&epoch_file, &future).unwrap();
    restore("version");

    // Intact again: the restore path itself still works...
    std::fs::write(&epoch_file, &pristine).unwrap();
    {
        let mut s = session();
        let script = format!(
            "{} RESTORE PIPELINE out FROM '{}';",
            q7_script(&sink),
            store.display()
        );
        s.execute_script(&script).unwrap();
    }

    // ...until the manifest disappears.
    std::fs::remove_file(store.join("MANIFEST")).unwrap();
    restore("no checkpoint manifest");
}

#[test]
fn checkpoint_statement_requires_a_known_pipeline() {
    let mut s = session();
    let err = s
        .execute("CHECKPOINT PIPELINE nope TO '/tmp/anywhere'")
        .unwrap_err()
        .to_string();
    assert!(err.contains("no such pipeline"), "{err}");

    // Plain (unsharded) pipelines cannot checkpoint; the error says why.
    let mut pipeline = s
        .execute_script(
            "CREATE SOURCE nex WITH (connector = 'nexmark', seed = 1, events = 10);
             CREATE SINK out WITH (connector = 'changelog');
             INSERT INTO out SELECT auction FROM Bid EMIT STREAM;",
        )
        .unwrap()
        .into_pipeline()
        .unwrap();
    let err = pipeline
        .checkpoint_to("/tmp/anywhere")
        .unwrap_err()
        .to_string();
    assert!(err.contains("plain driver"), "{err}");
}

// ---------------------------------------------------------------------------
// SET: scripts are fully self-contained.
// ---------------------------------------------------------------------------

#[test]
fn set_knobs_configure_later_inserts() {
    let mut s = session();
    let mut pipeline = s
        .execute_script(
            "SET workers = 3;
             SET batch_size = 16;
             SET max_idle_rounds = 50;
             CREATE PARTITIONED SOURCE nex
               WITH (connector = 'nexmark', seed = 1, events = 200, partitions = 2);
             CREATE SINK out WITH (connector = 'changelog');
             INSERT INTO out SELECT auction, price FROM Bid EMIT STREAM;",
        )
        .unwrap()
        .into_pipeline()
        .unwrap();
    let sharded = pipeline.as_sharded_mut().expect("sharded");
    assert_eq!(sharded.workers(), 3, "SET workers applied");
    assert_eq!(sharded.current_batch_size(), 16, "SET batch_size applied");
    pipeline.run().unwrap();

    let err = s.execute("SET wrokers = 4").unwrap_err().to_string();
    assert!(err.contains("unknown session knob"), "{err}");
    let err = s.execute("SET workers = 0").unwrap_err().to_string();
    assert!(err.contains("at least 1"), "{err}");
}

// ---------------------------------------------------------------------------
// Serialize → deserialize round-trips arbitrary checkpoints.
// ---------------------------------------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    (0i64..5, -1000i64..1000).prop_map(|(kind, v)| match kind {
        0 => Value::Null,
        1 => Value::Bool(v % 2 == 0),
        2 => Value::Int(v),
        3 => Value::str(format!("s{v}")),
        _ => Value::Ts(Ts(v)),
    })
}

fn arb_row() -> impl Strategy<Value = Row> {
    prop::collection::vec(arb_value(), 0..4).prop_map(Row::new)
}

fn arb_timed_change() -> impl Strategy<Value = TimedChange> {
    (0i64..10_000, arb_row(), prop::bool::ANY).prop_map(|(ptime, row, insert)| TimedChange {
        ptime: Ts(ptime),
        change: if insert {
            Change::insert(row)
        } else {
            Change::retract(row)
        },
    })
}

fn arb_blob() -> impl Strategy<Value = onesql_state::Checkpoint> {
    prop::collection::vec(0i64..256, 0..48).prop_map(|bytes| {
        let raw: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        onesql_state::Checkpoint(bytes::Bytes::copy_from_slice(&raw))
    })
}

fn arb_checkpoint() -> impl Strategy<Value = PipelineCheckpoint> {
    let cursors = (
        prop::collection::vec(arb_blob(), 1..4),
        prop::collection::vec(prop::collection::vec(0u64..10_000, 1..4), 1..3),
        0i64..100_000,
        1u64..5_000,
        prop::collection::vec(
            prop::collection::vec((0u64..1_000, arb_timed_change()), 0..4),
            1..4,
        ),
        prop::collection::vec((arb_row(), 0u64..50), 0..4),
        1u64..64,
    );
    cursors.prop_map(
        |(workers, offsets, clock, batch, pending, versions, epoch)| {
            let finished = offsets
                .iter()
                .map(|parts| parts.iter().map(|&o| o % 2 == 0).collect())
                .collect();
            let feeders: Vec<Watermark> = offsets
                .iter()
                .flatten()
                .map(|&o| {
                    if o % 7 == 0 {
                        Watermark::MAX
                    } else {
                        Watermark(Ts(o as i64))
                    }
                })
                .collect();
            let next_seq = (0..workers.len() as u64).map(|w| w * 13).collect();
            let source_bytes = offsets
                .iter()
                .map(|parts| parts.iter().map(|&o| o.saturating_mul(16)).collect())
                .collect();
            PipelineCheckpoint {
                workers,
                offsets,
                finished,
                feeders,
                clock: Ts(clock),
                batch_size: batch as usize,
                pending,
                next_seq,
                renderer_versions: versions,
                sink_watermark: Watermark(Ts(clock - 2)),
                output_watermark: Watermark(Ts(clock - 1)),
                events_out: clock as u64,
                watermarks_in: batch,
                source_bytes,
                epoch,
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any checkpoint the driver could produce survives the codec
    /// byte-exactly (field by field — `PipelineCheckpoint` is not `Eq`).
    #[test]
    fn checkpoint_serialize_deserialize_round_trips(cp in arb_checkpoint()) {
        let bytes = cp.to_bytes();
        let back = PipelineCheckpoint::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&back.workers, &cp.workers);
        prop_assert_eq!(&back.offsets, &cp.offsets);
        prop_assert_eq!(&back.finished, &cp.finished);
        prop_assert_eq!(&back.feeders, &cp.feeders);
        prop_assert_eq!(back.clock, cp.clock);
        prop_assert_eq!(back.batch_size, cp.batch_size);
        prop_assert_eq!(&back.pending, &cp.pending);
        prop_assert_eq!(&back.next_seq, &cp.next_seq);
        prop_assert_eq!(&back.renderer_versions, &cp.renderer_versions);
        prop_assert_eq!(back.sink_watermark, cp.sink_watermark);
        prop_assert_eq!(back.output_watermark, cp.output_watermark);
        prop_assert_eq!(back.events_out, cp.events_out);
        prop_assert_eq!(back.watermarks_in, cp.watermarks_in);
        prop_assert_eq!(&back.source_bytes, &cp.source_bytes);
        prop_assert_eq!(back.epoch, cp.epoch);
        // And the encoding itself is deterministic.
        prop_assert_eq!(back.to_bytes(), bytes);
    }

    /// Decoding arbitrary prefixes of a valid encoding (truncation at
    /// every possible point) errors and never panics.
    #[test]
    fn truncated_checkpoints_never_panic(cp in arb_checkpoint(), cut in 0usize..512) {
        let bytes = cp.to_bytes();
        if cut < bytes.len() {
            prop_assert!(PipelineCheckpoint::from_bytes(&bytes[..cut]).is_err());
        }
    }
}
