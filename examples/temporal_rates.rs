//! Temporal tables: `AS OF SYSTEM TIME` and point-in-time enrichment.
//!
//! §6.1 of the paper points to temporal tables as SQL machinery that
//! already embodies the time-varying relation, and §8 motivates correlated
//! temporal joins with currency conversion: "enriching an order with the
//! currency exchange rate at the time when the order was placed".
//!
//! This example maintains a versioned exchange-rate table, queries
//! historical snapshots with `AS OF SYSTEM TIME`, and performs the §8
//! order-enrichment lookup through the temporal-table API.
//!
//! Run with: `cargo run --example temporal_rates`

use onesql_core::{Engine, StreamBuilder};
use onesql_state::TemporalTable;
use onesql_types::{row, DataType, Ts};

fn main() {
    // Build the rate table: EUR and GBP rates changing over the morning.
    let mut rates = TemporalTable::with_key(vec![0]);
    rates.insert(Ts::hm(9, 0), row!("EUR", 109i64)).unwrap();
    rates.insert(Ts::hm(9, 0), row!("GBP", 127i64)).unwrap();
    rates.insert(Ts::hm(10, 30), row!("EUR", 114i64)).unwrap();
    rates.insert(Ts::hm(11, 15), row!("GBP", 125i64)).unwrap();

    let mut engine = Engine::new();
    engine.register_temporal_table(
        "Rates",
        StreamBuilder::new()
            .column("currency", DataType::String)
            .column("rate", DataType::Int),
        rates,
    );

    // 1. Historical snapshots via AS OF SYSTEM TIME.
    for at in ["9:30", "10:45", "12:00"] {
        let q = engine
            .execute(&format!(
                "SELECT currency, rate FROM Rates AS OF SYSTEM TIME TIMESTAMP '{at}' \
                 ORDER BY currency"
            ))
            .unwrap();
        println!("== Rates AS OF {at} ==");
        print!("{}", q.table_string_at(Ts::MAX, None).unwrap());
        println!();
    }

    // 2. The §8 use case: enrich each order with the rate at order time.
    let orders = [
        // (order id, currency, amount in cents, placed at)
        (1i64, "EUR", 2_000i64, Ts::hm(9, 45)),
        (2, "EUR", 5_000, Ts::hm(10, 45)),
        (3, "GBP", 1_000, Ts::hm(11, 0)),
        (4, "GBP", 1_000, Ts::hm(11, 30)),
    ];
    println!("== Orders enriched with the rate at placement time ==");
    // Re-borrow the live temporal table for correlated lookups.
    let rates = engine.temporal_table_mut("Rates").unwrap();
    for (id, currency, amount, placed) in orders {
        let rate_row = rates
            .lookup_as_of(&row!(currency), placed)
            .unwrap()
            .expect("rate exists");
        let rate = rate_row.value(1).unwrap().as_int().unwrap();
        println!(
            "  order {id}: {amount} cents {currency} @ {placed} -> {} cents USD (rate {rate})",
            amount * rate / 100,
        );
    }

    // 3. The table's own changelog is a TVR: show its history.
    println!("\n== Rate table changelog (system-time history) ==");
    let history = engine
        .temporal_table_mut("Rates")
        .unwrap()
        .history()
        .clone();
    for entry in history.entries() {
        println!(
            "  {}  {}  {}",
            entry.ptime,
            if entry.change.diff > 0 {
                "INSERT"
            } else {
                "DELETE"
            },
            entry.change.row
        );
    }
}
