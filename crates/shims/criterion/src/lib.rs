//! Offline stand-in for the `criterion` crate.
//!
//! A minimal wall-clock benchmarking harness exposing the API surface the
//! workspace's benches use: `Criterion`, `benchmark_group`, `Bencher`,
//! `BenchmarkId`, `Throughput`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. It times a handful of samples and reports
//! mean per-iteration latency (and derived throughput) to stderr — no
//! statistical analysis, HTML reports, or outlier rejection.
//!
//! Behavior matches criterion in the two ways cargo cares about:
//! benches registered with `harness = false` still terminate quickly under
//! `cargo test` (the `--test` flag runs each benchmark once as a smoke
//! test), and `--bench` runs the full measurement.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export point for `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How many measurement samples to take per benchmark.
const SAMPLES: usize = 10;

/// Measurement modes, derived from the CLI arguments cargo passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full measurement (`cargo bench`).
    Bench,
    /// One iteration per benchmark (`cargo test` on a bench target).
    Test,
}

fn mode_from_args() -> Mode {
    if std::env::args().any(|a| a == "--test") {
        Mode::Test
    } else {
        Mode::Bench
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{parameter}", name.into()),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Times closures; handed to every benchmark body.
pub struct Bencher {
    mode: Mode,
    /// Total time and iteration count of the last `iter` call.
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Run `f` repeatedly and record mean latency.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.mode == Mode::Test {
            black_box(f());
            self.elapsed = Duration::ZERO;
            self.iters = 1;
            return;
        }
        // Calibrate: one timed run decides how many iterations fit the
        // sample budget (targets ~100ms per sample, SAMPLES samples).
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_sample = (Duration::from_millis(100).as_nanos() / once.as_nanos()).max(1);
        let per_sample = per_sample.min(1_000_000) as u64;

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            total += start.elapsed();
            iters += per_sample;
        }
        self.elapsed = total;
        self.iters = iters;
    }
}

fn format_duration(nanos: f64) -> String {
    if nanos >= 1e9 {
        format!("{:.3} s", nanos / 1e9)
    } else if nanos >= 1e6 {
        format!("{:.3} ms", nanos / 1e6)
    } else if nanos >= 1e3 {
        format!("{:.3} µs", nanos / 1e3)
    } else {
        format!("{nanos:.0} ns")
    }
}

fn report(id: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    if bencher.mode == Mode::Test {
        eprintln!("test bench {id} ... ok (smoke)");
        return;
    }
    let per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iters.max(1) as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 / (per_iter / 1e9))
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.0} B/s", n as f64 / (per_iter / 1e9))
        }
        None => String::new(),
    };
    eprintln!("{id:<40} {:>12}/iter{rate}", format_duration(per_iter));
}

/// A named collection of benchmarks sharing throughput/sizing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim fixes its own sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim fixes its own budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Set the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into_id());
        let mut bencher = Bencher {
            mode: self.criterion.mode,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        report(&id, &bencher, self.throughput);
        self
    }

    /// Benchmark a closure taking a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// The harness entry point.
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            mode: mode_from_args(),
        }
    }
}

impl Criterion {
    /// Start a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            criterion: self,
        }
    }

    /// Benchmark a standalone closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_id();
        let mut bencher = Bencher {
            mode: self.mode,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        report(&id, &bencher, None);
        self
    }
}

/// Group benchmark functions under one registration function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
