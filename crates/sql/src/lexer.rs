//! The SQL lexer.

use onesql_types::{Error, Result};

use crate::token::{line_col_at, Keyword, Span, Token, TokenKind};

/// Tokenize `sql` into a vector ending with an [`TokenKind::Eof`] token.
///
/// Supports `--` line comments, `/* ... */` block comments, `'...'` string
/// literals with `''` escaping, `"..."` quoted identifiers, integer and
/// decimal number literals, and the operator set in [`TokenKind`].
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    Lexer::new(sql).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(sql: &'a str) -> Lexer<'a> {
        Lexer {
            src: sql.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn error_at(&self, offset: usize, msg: impl std::fmt::Display) -> Error {
        let src = std::str::from_utf8(self.src).unwrap_or_default();
        let (line, col) = line_col_at(src, offset);
        Error::parse(format!(
            "{msg} at line {line}, column {col} (byte offset {offset})"
        ))
    }

    fn run(mut self) -> Result<Vec<Token>> {
        let mut tokens = Vec::new();
        loop {
            self.skip_trivia()?;
            let offset = self.pos;
            let Some(c) = self.peek() else {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    span: Span::new(offset, offset),
                });
                return Ok(tokens);
            };
            let kind = match c {
                b'(' => self.single(TokenKind::LParen),
                b')' => self.single(TokenKind::RParen),
                b',' => self.single(TokenKind::Comma),
                b'.' => self.single(TokenKind::Dot),
                b';' => self.single(TokenKind::Semicolon),
                b'+' => self.single(TokenKind::Plus),
                b'-' => self.single(TokenKind::Minus),
                b'*' => self.single(TokenKind::Star),
                b'/' => self.single(TokenKind::Slash),
                b'%' => self.single(TokenKind::Percent),
                b'=' => {
                    self.bump();
                    if self.peek() == Some(b'>') {
                        self.bump();
                        TokenKind::Arrow
                    } else {
                        TokenKind::Eq
                    }
                }
                b'<' => {
                    self.bump();
                    match self.peek() {
                        Some(b'=') => {
                            self.bump();
                            TokenKind::LtEq
                        }
                        Some(b'>') => {
                            self.bump();
                            TokenKind::NotEq
                        }
                        _ => TokenKind::Lt,
                    }
                }
                b'>' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        TokenKind::GtEq
                    } else {
                        TokenKind::Gt
                    }
                }
                b'!' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        TokenKind::NotEq
                    } else {
                        return Err(self.error_at(offset, "unexpected '!'"));
                    }
                }
                b'|' => {
                    self.bump();
                    if self.peek() == Some(b'|') {
                        self.bump();
                        TokenKind::Concat
                    } else {
                        return Err(self.error_at(offset, "unexpected '|'"));
                    }
                }
                b'\'' => self.string_literal(offset)?,
                b'"' => self.quoted_ident(offset)?,
                b'0'..=b'9' => self.number(),
                c if c.is_ascii_alphabetic() || c == b'_' => self.word(),
                other => {
                    return Err(
                        self.error_at(offset, format!("unexpected character '{}'", other as char))
                    )
                }
            };
            tokens.push(Token {
                kind,
                span: Span::new(offset, self.pos),
            });
        }
    }

    fn single(&mut self, kind: TokenKind) -> TokenKind {
        self.bump();
        kind
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'-') if self.peek2() == Some(b'-') => {
                    while let Some(c) = self.bump() {
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos;
                    self.bump();
                    self.bump();
                    loop {
                        match self.bump() {
                            Some(b'*') if self.peek() == Some(b'/') => {
                                self.bump();
                                break;
                            }
                            Some(_) => {}
                            None => return Err(self.error_at(start, "unterminated block comment")),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn string_literal(&mut self, offset: usize) -> Result<TokenKind> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'\'') => {
                    // '' is an escaped quote.
                    if self.peek() == Some(b'\'') {
                        self.bump();
                        out.push('\'');
                    } else {
                        return Ok(TokenKind::String(out));
                    }
                }
                Some(c) => out.push(c as char),
                None => return Err(self.error_at(offset, "unterminated string literal")),
            }
        }
    }

    fn quoted_ident(&mut self, offset: usize) -> Result<TokenKind> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => {
                    if self.peek() == Some(b'"') {
                        self.bump();
                        out.push('"');
                    } else {
                        return Ok(TokenKind::Ident(out));
                    }
                }
                Some(c) => out.push(c as char),
                None => return Err(self.error_at(offset, "unterminated quoted identifier")),
            }
        }
    }

    fn number(&mut self) -> TokenKind {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        if self.peek() == Some(b'.') && self.peek2().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        TokenKind::Number(text)
    }

    fn word(&mut self) -> TokenKind {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        match Keyword::lookup(&text) {
            Some(kw) => TokenKind::Keyword(kw),
            None => TokenKind::Ident(text),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_select() {
        use TokenKind::*;
        assert_eq!(
            kinds("SELECT price FROM Bid;"),
            vec![
                Keyword(super::Keyword::Select),
                Ident("price".into()),
                Keyword(super::Keyword::From),
                Ident("Bid".into()),
                Semicolon,
                Eof
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        use TokenKind::*;
        assert_eq!(
            kinds("a >= b <= c <> d != e => f || g"),
            vec![
                Ident("a".into()),
                GtEq,
                Ident("b".into()),
                LtEq,
                Ident("c".into()),
                NotEq,
                Ident("d".into()),
                NotEq,
                Ident("e".into()),
                Arrow,
                Ident("f".into()),
                Concat,
                Ident("g".into()),
                Eof
            ]
        );
    }

    #[test]
    fn lexes_numbers_and_strings() {
        use TokenKind::*;
        assert_eq!(
            kinds("42 3.14 '10' 'it''s'"),
            vec![
                Number("42".into()),
                Number("3.14".into()),
                String("10".into()),
                String("it's".into()),
                Eof
            ]
        );
    }

    #[test]
    fn dot_after_integer_is_projection() {
        // `b.price` style access after an identifier, and `1.` stays split
        // when not followed by a digit.
        use TokenKind::*;
        assert_eq!(
            kinds("Bid.price"),
            vec![Ident("Bid".into()), Dot, Ident("price".into()), Eof]
        );
        assert_eq!(
            kinds("1.x"),
            vec![Number("1".into()), Dot, Ident("x".into()), Eof]
        );
    }

    #[test]
    fn comments_are_skipped() {
        use TokenKind::*;
        assert_eq!(
            kinds("SELECT -- line comment\n /* block\n comment */ 1"),
            vec![Keyword(super::Keyword::Select), Number("1".into()), Eof]
        );
    }

    #[test]
    fn quoted_identifiers() {
        use TokenKind::*;
        assert_eq!(
            kinds(r#""Order Data" "say ""hi""""#),
            vec![Ident("Order Data".into()), Ident("say \"hi\"".into()), Eof]
        );
    }

    #[test]
    fn keywords_case_insensitive_idents_preserved() {
        let toks = kinds("select Bid BIDTIME");
        assert_eq!(toks[0], TokenKind::Keyword(Keyword::Select));
        assert_eq!(toks[1], TokenKind::Ident("Bid".into()));
        assert_eq!(toks[2], TokenKind::Ident("BIDTIME".into()));
    }

    #[test]
    fn errors_reported_with_offset() {
        let err = tokenize("SELECT @").unwrap_err();
        assert!(err.to_string().contains("offset 7"), "{err}");
        assert!(err.to_string().contains("line 1, column 8"), "{err}");
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("/* open").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("a | b").is_err());
    }

    #[test]
    fn errors_reported_with_line_and_column() {
        let err = tokenize("SELECT x\nFROM Bid\nWHERE @").unwrap_err();
        assert!(err.to_string().contains("line 3, column 7"), "{err}");
    }

    #[test]
    fn spans_recorded() {
        let toks = tokenize("SELECT x").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 6));
        assert_eq!(toks[1].span, Span::new(7, 8));
        assert_eq!(toks[0].offset(), 0);
        assert_eq!(toks[1].offset(), 7);
        // Eof is an empty span at the end of input.
        assert_eq!(toks[2].span, Span::new(8, 8));
    }

    #[test]
    fn spans_cover_full_literals() {
        let toks = tokenize("  'it''s'  \"Quoted Id\" 3.14").unwrap();
        let src = "  'it''s'  \"Quoted Id\" 3.14";
        assert_eq!(toks[0].span.slice(src), "'it''s'");
        assert_eq!(toks[1].span.slice(src), "\"Quoted Id\"");
        assert_eq!(toks[2].span.slice(src), "3.14");
    }

    #[test]
    fn underscore_identifiers() {
        use TokenKind::*;
        assert_eq!(
            kinds("_private max_price"),
            vec![Ident("_private".into()), Ident("max_price".into()), Eof]
        );
    }
}
