//! The engine: catalog plus query lifecycle.

use std::collections::BTreeMap;
use std::sync::Arc;

use onesql_exec::{compile, ExecConfig};
use onesql_plan::{bind, optimize, BoundQuery, Catalog, MemoryCatalog, TableKind};
use onesql_state::TemporalTable;
use onesql_types::{DataType, Duration, Error, Field, Result, Row, Schema, SchemaRef};

use crate::connect::{PartitionedSource, PipelineDriver, Sink, Source};
use crate::query::RunningQuery;
use crate::shard::{ShardedConfig, ShardedPipelineDriver};

/// Fluent schema builder for registering relations.
#[derive(Debug, Default, Clone)]
pub struct StreamBuilder {
    fields: Vec<Field>,
}

impl StreamBuilder {
    /// Start an empty schema.
    pub fn new() -> StreamBuilder {
        StreamBuilder::default()
    }

    /// Add a plain column.
    pub fn column(mut self, name: impl Into<String>, data_type: DataType) -> StreamBuilder {
        self.fields.push(Field::new(name, data_type));
        self
    }

    /// Add a watermarked event-time column (paper Extension 1).
    pub fn event_time_column(mut self, name: impl Into<String>) -> StreamBuilder {
        self.fields.push(Field::event_time(name));
        self
    }

    /// Finish into a schema.
    pub fn build(self) -> Schema {
        Schema::new(self.fields)
    }
}

/// Static table contents held by the engine.
#[derive(Debug, Clone)]
enum TableData {
    /// A plain bounded table.
    Static(Vec<Row>),
    /// A system-time versioned table supporting `AS OF SYSTEM TIME`.
    Temporal(TemporalTable),
}

/// The engine: a catalog of streams and tables, shared execution
/// configuration, and a factory for running queries.
///
/// Streams and tables are both registered as TVRs; only their boundedness
/// differs (§3.1). Queries are planned once and run deterministically under
/// a virtual processing-time clock, which is what lets this engine replay
/// the paper's listings exactly.
#[derive(Default)]
pub struct Engine {
    catalog: MemoryCatalog,
    tables: BTreeMap<String, TableData>,
    config: ExecConfig,
    /// Connectors registered via [`Engine::attach_source`] /
    /// [`Engine::attach_sink`], consumed by the next
    /// [`Engine::run_pipeline`] (or [`Engine::run_sharded_pipeline`]).
    pending_sources: Vec<Box<dyn Source>>,
    /// Partitioned connectors registered via
    /// [`Engine::attach_partitioned_source`], consumed by the next
    /// [`Engine::run_sharded_pipeline`].
    pending_partitioned: Vec<Box<dyn PartitionedSource>>,
    pending_sinks: Vec<Box<dyn Sink>>,
}

impl Engine {
    /// An engine with default configuration.
    pub fn new() -> Engine {
        Engine::default()
    }

    /// Configure allowed lateness for event-time groupings (Extension 2).
    pub fn with_allowed_lateness(mut self, lateness: Duration) -> Engine {
        self.config.allowed_lateness = lateness;
        self
    }

    /// Execution configuration in use.
    pub fn config(&self) -> ExecConfig {
        self.config
    }

    /// Register an unbounded stream.
    pub fn register_stream(&mut self, name: impl Into<String>, schema: StreamBuilder) {
        let name = name.into();
        self.catalog
            .register(&name, Arc::new(schema.build()), TableKind::Stream);
    }

    /// Register an unbounded stream from an explicit schema.
    pub fn register_stream_schema(&mut self, name: impl Into<String>, schema: Schema) {
        self.catalog
            .register(name.into(), Arc::new(schema), TableKind::Stream);
    }

    /// Register a bounded, static table with its contents.
    pub fn register_table(
        &mut self,
        name: impl Into<String>,
        schema: StreamBuilder,
        rows: Vec<Row>,
    ) -> Result<()> {
        let name = name.into();
        let schema = schema.build();
        for row in &rows {
            validate_row(&schema, row)?;
        }
        self.catalog
            .register(&name, Arc::new(schema), TableKind::Table);
        self.tables
            .insert(name.to_ascii_lowercase(), TableData::Static(rows));
        Ok(())
    }

    /// Register a temporal (system-time versioned) table; query historical
    /// snapshots with `AS OF SYSTEM TIME` (§6.1).
    pub fn register_temporal_table(
        &mut self,
        name: impl Into<String>,
        schema: StreamBuilder,
        table: TemporalTable,
    ) {
        self.register_temporal_table_schema(name, schema.build(), table)
    }

    /// Register a temporal table from an explicit schema (the DDL path).
    pub fn register_temporal_table_schema(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        table: TemporalTable,
    ) {
        let name = name.into();
        self.catalog
            .register(&name, Arc::new(schema), TableKind::Table);
        self.tables
            .insert(name.to_ascii_lowercase(), TableData::Temporal(table));
    }

    /// The relation catalog (for statement binding).
    pub(crate) fn catalog(&self) -> &MemoryCatalog {
        &self.catalog
    }

    /// Unregister a relation (stream or table). Errors when the name is
    /// unknown.
    pub fn drop_relation(&mut self, name: &str) -> Result<()> {
        if !self.catalog.remove(name) {
            return Err(Error::catalog(format!(
                "cannot drop '{name}': no such relation"
            )));
        }
        self.tables.remove(&name.to_ascii_lowercase());
        Ok(())
    }

    /// Mutably borrow a registered temporal table (to apply new versions).
    pub fn temporal_table_mut(&mut self, name: &str) -> Result<&mut TemporalTable> {
        match self.tables.get_mut(&name.to_ascii_lowercase()) {
            Some(TableData::Temporal(t)) => Ok(t),
            _ => Err(Error::catalog(format!("'{name}' is not a temporal table"))),
        }
    }

    /// The schema of a registered relation.
    pub fn schema_of(&self, name: &str) -> Result<SchemaRef> {
        Ok(self.catalog.resolve(name)?.0)
    }

    /// Parse, bind, and optimize a query without executing it.
    pub fn plan(&self, sql: &str) -> Result<BoundQuery> {
        let ast = onesql_sql::parse(sql)?;
        let bound = bind(&ast, &self.catalog)?;
        Ok(optimize(bound))
    }

    /// Render the optimized logical plan (EXPLAIN).
    pub fn explain(&self, sql: &str) -> Result<String> {
        Ok(self.plan(sql)?.explain())
    }

    /// Plan and start executing a query. Static tables referenced by the
    /// query are loaded immediately (their TVRs are constant, so they carry
    /// a final watermark); stream input is then fed through
    /// [`RunningQuery`].
    pub fn execute(&self, sql: &str) -> Result<RunningQuery> {
        let bound = self.plan(sql)?;
        self.run(bound)
    }

    /// Execute an already-planned query.
    pub fn run(&self, bound: BoundQuery) -> Result<RunningQuery> {
        let mut executor = compile(&bound, self.config)?;
        executor.initialize()?;

        // Load static/temporal tables into their scan leaves.
        for source in executor.sources() {
            let Some(data) = self.tables.get(&source.table.to_ascii_lowercase()) else {
                continue;
            };
            let rows = match (data, source.as_of) {
                (TableData::Static(rows), None) => rows.clone(),
                (TableData::Static(_), Some(_)) => {
                    return Err(Error::plan(format!(
                        "table '{}' is not temporal; AS OF SYSTEM TIME unsupported",
                        source.table
                    )))
                }
                (TableData::Temporal(t), Some(at)) => t.as_of(at).to_rows(),
                (TableData::Temporal(t), None) => t.current().to_rows(),
            };
            let now = executor.now();
            for row in rows {
                executor.feed_source(source.id, now, onesql_tvr::Element::insert(row))?;
            }
            executor.feed_source(
                source.id,
                now,
                onesql_tvr::Element::Watermark(onesql_time::Watermark::MAX),
            )?;
        }

        let input_schemas = self.stream_schemas();
        Ok(RunningQuery::new(bound, executor, input_schemas))
    }

    /// Register a source connector for the next [`Engine::run_pipeline`]
    /// call. Every stream the source declares must already be registered
    /// on the engine.
    pub fn attach_source(&mut self, source: Box<dyn Source>) -> Result<()> {
        self.validate_source_streams(source.name(), source.streams())?;
        self.pending_sources.push(source);
        Ok(())
    }

    /// Register a partitioned source connector for the next
    /// [`Engine::run_sharded_pipeline`] call. Every stream the source
    /// declares must already be registered on the engine.
    pub fn attach_partitioned_source(&mut self, source: Box<dyn PartitionedSource>) -> Result<()> {
        self.validate_source_streams(source.name(), source.streams())?;
        self.pending_partitioned.push(source);
        Ok(())
    }

    fn validate_source_streams(&self, name: &str, streams: &[String]) -> Result<()> {
        for stream in streams {
            match self.catalog.resolve(stream) {
                Ok((_, TableKind::Stream)) => {}
                Ok((_, TableKind::Table)) => {
                    return Err(Error::plan(format!(
                        "source '{name}' targets '{stream}', which is a table, \
                         not a stream"
                    )))
                }
                Err(_) => {
                    return Err(Error::catalog(format!(
                        "source '{name}' targets unregistered stream '{stream}'"
                    )))
                }
            }
        }
        Ok(())
    }

    /// Register a sink connector for the next [`Engine::run_pipeline`]
    /// call.
    pub fn attach_sink(&mut self, sink: Box<dyn Sink>) {
        self.pending_sinks.push(sink);
    }

    /// Plan `sql` and wrap it in a [`PipelineDriver`] wired to every
    /// connector attached since the last call. The driver is returned
    /// ready to [`PipelineDriver::run`]; an end-to-end job is
    /// `attach_source` + `attach_sink` + `run_pipeline(sql)?.run()`.
    pub fn run_pipeline(&mut self, sql: &str) -> Result<PipelineDriver> {
        if !self.pending_partitioned.is_empty() {
            return Err(Error::plan(
                "partitioned sources are attached; use run_sharded_pipeline",
            ));
        }
        if self.pending_sources.is_empty() {
            return Err(Error::plan(
                "run_pipeline needs at least one attached source",
            ));
        }
        let query = self.execute(sql)?;
        let mut driver = PipelineDriver::new(query);
        for source in self.pending_sources.drain(..) {
            driver.attach_source(source)?;
        }
        for sink in self.pending_sinks.drain(..) {
            driver.attach_sink(sink)?;
        }
        Ok(driver)
    }

    /// Plan `sql` as `config.workers` hash-sharded query workers and wrap
    /// it in a [`ShardedPipelineDriver`] wired to every connector attached
    /// since the last call: partitioned sources directly, plain sources
    /// via the 1-partition adapter. The driver is returned ready to
    /// [`ShardedPipelineDriver::run`], or to
    /// [`ShardedPipelineDriver::restore`] a checkpoint first.
    pub fn run_sharded_pipeline(
        &mut self,
        sql: &str,
        config: ShardedConfig,
    ) -> Result<ShardedPipelineDriver> {
        if self.pending_sources.is_empty() && self.pending_partitioned.is_empty() {
            return Err(Error::plan(
                "run_sharded_pipeline needs at least one attached source",
            ));
        }
        let mut driver = ShardedPipelineDriver::new(self, sql, config)?;
        for source in self.pending_partitioned.drain(..) {
            driver.attach_partitioned_source(source)?;
        }
        for source in self.pending_sources.drain(..) {
            driver.attach_source(source)?;
        }
        for sink in self.pending_sinks.drain(..) {
            driver.attach_sink(sink)?;
        }
        Ok(driver)
    }

    /// Drop every connector attached since the last pipeline was built
    /// (cleanup after a failed assembly, so stale connectors cannot leak
    /// into the next pipeline).
    pub fn discard_pending_connectors(&mut self) {
        self.pending_sources.clear();
        self.pending_partitioned.clear();
        self.pending_sinks.clear();
    }

    fn stream_schemas(&self) -> BTreeMap<String, SchemaRef> {
        // Only streams need runtime row validation; collect their schemas.
        let mut out = BTreeMap::new();
        for name in self.catalog.names() {
            if let Ok((schema, TableKind::Stream)) = self.catalog.resolve(name) {
                out.insert(name.to_ascii_lowercase(), schema);
            }
        }
        out
    }
}

/// Validate a row against a schema (arity and value types; NULL always
/// admissible).
pub(crate) fn validate_row(schema: &Schema, row: &Row) -> Result<()> {
    if row.arity() != schema.arity() {
        return Err(Error::exec(format!(
            "row arity {} does not match schema arity {}",
            row.arity(),
            schema.arity()
        )));
    }
    for (i, field) in schema.fields().iter().enumerate() {
        let v = row.value(i)?;
        if v.is_null() {
            if field.event_time {
                return Err(Error::exec(format!(
                    "event-time column '{}' must not be NULL",
                    field.name
                )));
            }
            continue;
        }
        if v.data_type() != field.data_type {
            return Err(Error::exec(format!(
                "column '{}' expects {}, got {}",
                field.name,
                field.data_type,
                v.data_type()
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use onesql_types::{row, Ts};

    fn engine() -> Engine {
        let mut e = Engine::new();
        e.register_stream(
            "Bid",
            StreamBuilder::new()
                .event_time_column("bidtime")
                .column("price", DataType::Int)
                .column("item", DataType::String),
        );
        e.register_table(
            "Category",
            StreamBuilder::new()
                .column("id", DataType::Int)
                .column("name", DataType::String),
            vec![row!(1i64, "art"), row!(2i64, "cars")],
        )
        .unwrap();
        e
    }

    #[test]
    fn explain_renders_plan() {
        let e = engine();
        let s = e.explain("SELECT price FROM Bid WHERE price > 2").unwrap();
        assert!(s.contains("Filter"), "{s}");
        assert!(s.contains("Scan: Bid"), "{s}");
    }

    #[test]
    fn static_table_queryable_immediately() {
        let e = engine();
        // Note: ORDER BY binds against the output schema, so the sort key
        // must be projected.
        let q = e
            .execute("SELECT id, name FROM Category ORDER BY id DESC")
            .unwrap();
        assert_eq!(
            q.table().unwrap(),
            vec![row!(2i64, "cars"), row!(1i64, "art")]
        );
    }

    #[test]
    fn stream_joined_with_static_table() {
        let e = engine();
        let mut q = e
            .execute("SELECT B.item, C.name FROM Bid B JOIN Category C ON B.price = C.id")
            .unwrap();
        q.insert("Bid", Ts::hm(8, 0), row!(Ts::hm(8, 0), 2i64, "x"))
            .unwrap();
        assert_eq!(q.table().unwrap(), vec![row!("x", "cars")]);
    }

    #[test]
    fn temporal_table_as_of() {
        let mut e = engine();
        let mut t = TemporalTable::with_key(vec![0]);
        t.insert(Ts::hm(9, 0), row!("EUR", 114i64)).unwrap();
        t.insert(Ts::hm(10, 0), row!("EUR", 120i64)).unwrap();
        e.register_temporal_table(
            "Rates",
            StreamBuilder::new()
                .column("currency", DataType::String)
                .column("rate", DataType::Int),
            t,
        );
        let q = e
            .execute("SELECT rate FROM Rates AS OF SYSTEM TIME TIMESTAMP '9:30'")
            .unwrap();
        assert_eq!(q.table().unwrap(), vec![row!(114i64)]);
        let q = e.execute("SELECT rate FROM Rates").unwrap();
        assert_eq!(q.table().unwrap(), vec![row!(120i64)]);
        // Mutating through the engine is visible to later queries.
        e.temporal_table_mut("Rates")
            .unwrap()
            .insert(Ts::hm(11, 0), row!("EUR", 125i64))
            .unwrap();
        let q = e.execute("SELECT rate FROM Rates").unwrap();
        assert_eq!(q.table().unwrap(), vec![row!(125i64)]);
        assert!(e.temporal_table_mut("Category").is_err());
    }

    #[test]
    fn row_validation_on_table_registration() {
        let mut e = Engine::new();
        let res = e.register_table(
            "Bad",
            StreamBuilder::new().column("id", DataType::Int),
            vec![row!("not an int")],
        );
        assert!(res.is_err());
    }

    #[test]
    fn schema_of_lookup() {
        let e = engine();
        assert_eq!(e.schema_of("bid").unwrap().arity(), 3);
        assert!(e.schema_of("nope").is_err());
    }

    #[test]
    fn lateness_configuration() {
        let e = Engine::new().with_allowed_lateness(Duration::from_minutes(5));
        assert_eq!(e.config().allowed_lateness, Duration::from_minutes(5));
    }
}
