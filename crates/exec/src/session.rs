//! Merging session windows (the paper's §8 "expanded/custom event-time
//! windowing": "transitive closure sessions (periods of contiguous
//! activity)").
//!
//! The `Session` TVF assigns each row a provisional `[ts, ts + gap)`
//! interval; this operator performs the transitive-closure merge during
//! aggregation: two sessions of the same partition key merge whenever their
//! intervals touch, so a session extends as long as events keep arriving
//! within `gap` of it. The operator replaces the generic
//! `Window(Session) → Aggregate` pair at compile time when the grouping
//! keys include the provisional `wstart`/`wend` columns.
//!
//! Limitations (documented design choice): input must be insert-only —
//! retracting an event could *split* a merged session, which requires
//! keeping every raw event; engines in the paper's lineage (Flink, Beam)
//! impose the same restriction on merging windows.

use onesql_plan::{AggCall, ScalarExpr};
use onesql_state::{Checkpoint, Codec, Decoder, KeyedState, StateMetrics};
use onesql_time::Watermark;
use onesql_tvr::Element;
use onesql_types::{Duration, Error, Result, Row, Ts, Value};

use crate::aggregate::Accumulator;
use crate::operator::Operator;

/// One live session: an interval with partial aggregates.
#[derive(Debug, Clone)]
struct Session {
    start: Ts,
    end: Ts,
    accs: Vec<Accumulator>,
}

impl Codec for Session {
    fn encode(&self, buf: &mut bytes::BytesMut) {
        self.start.encode(buf);
        self.end.encode(buf);
        self.accs.encode(buf);
    }
    fn decode(input: &mut Decoder<'_>) -> onesql_types::Result<Self> {
        Ok(Session {
            start: Ts::decode(input)?,
            end: Ts::decode(input)?,
            accs: Vec::decode(input)?,
        })
    }
}

impl Session {
    fn overlaps(&self, start: Ts, end: Ts) -> bool {
        // Sessions merge when the intervals touch: [a,b) ∪ [b,c) is one
        // contiguous activity period.
        start <= self.end && end >= self.start
    }
}

/// The merging session-window aggregate.
///
/// Input rows are the `Session` TVF's output: original columns plus
/// provisional `wstart`/`wend` at the last two positions. Output rows
/// follow the generic aggregate layout `[group keys ..., aggregates ...]`,
/// with the `wstart`/`wend` key positions carrying the *merged* session
/// bounds.
pub struct SessionAggregate {
    /// Key expressions over the input, excluding the window columns.
    partition_exprs: Vec<ScalarExpr>,
    /// Positions of wstart/wend within the output group-key layout.
    wstart_pos: usize,
    wend_pos: usize,
    /// Total number of group keys in the output layout.
    key_arity: usize,
    /// For each partition expr, its position in the output layout.
    partition_positions: Vec<usize>,
    aggs: Vec<AggCall>,
    /// Provisional window columns in the input.
    wstart_col: usize,
    wend_col: usize,
    allowed_lateness: Duration,
    /// Live sessions per partition key, kept sorted by start.
    state: KeyedState<Vec<Session>>,
    watermark: Watermark,
    late_dropped: u64,
}

impl SessionAggregate {
    /// Build from the surrounding Aggregate plan node.
    ///
    /// `group_exprs` is the aggregate's full key list (must be verbatim
    /// column references, including the window TVF's `wstart`/`wend`
    /// columns at input positions `wstart_col`/`wend_col`).
    pub fn new(
        group_exprs: &[ScalarExpr],
        aggs: Vec<AggCall>,
        wstart_col: usize,
        wend_col: usize,
        allowed_lateness: Duration,
    ) -> Result<SessionAggregate> {
        let mut wstart_pos = None;
        let mut wend_pos = None;
        let mut partition_exprs = Vec::new();
        let mut partition_positions = Vec::new();
        for (i, e) in group_exprs.iter().enumerate() {
            match e {
                ScalarExpr::Column(c) if *c == wstart_col => wstart_pos = Some(i),
                ScalarExpr::Column(c) if *c == wend_col => wend_pos = Some(i),
                other => {
                    partition_exprs.push(other.clone());
                    partition_positions.push(i);
                }
            }
        }
        let (Some(wstart_pos), Some(wend_pos)) = (wstart_pos, wend_pos) else {
            return Err(Error::plan(
                "session-window aggregation requires grouping by both wstart and wend",
            ));
        };
        Ok(SessionAggregate {
            partition_exprs,
            wstart_pos,
            wend_pos,
            key_arity: group_exprs.len(),
            partition_positions,
            aggs,
            wstart_col,
            wend_col,
            allowed_lateness,
            state: KeyedState::new(),
            watermark: Watermark::MIN,
            late_dropped: 0,
        })
    }

    /// Inputs dropped as too late.
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    fn output_row(&self, partition: &Row, session: &Session) -> Result<Row> {
        let mut vals = vec![Value::Null; self.key_arity + self.aggs.len()];
        for (pv, pos) in partition.values().iter().zip(&self.partition_positions) {
            vals[*pos] = pv.clone();
        }
        vals[self.wstart_pos] = Value::Ts(session.start);
        vals[self.wend_pos] = Value::Ts(session.end);
        for (i, acc) in session.accs.iter().enumerate() {
            vals[self.key_arity + i] = acc.value()?;
        }
        Ok(Row::new(vals))
    }

    fn fresh_accs(&self) -> Vec<Accumulator> {
        self.aggs
            .iter()
            .map(|a| Accumulator::with_count_star(a.func, a.distinct, a.arg.is_none()))
            .collect()
    }
}

impl Operator for SessionAggregate {
    fn process(
        &mut self,
        _port: usize,
        elem: Element,
        _now: Ts,
        out: &mut Vec<Element>,
    ) -> Result<()> {
        match elem {
            Element::Data(change) => {
                if change.diff < 0 {
                    return Err(Error::unsupported(
                        "session windows require insert-only input (a retraction could \
                         split a merged session)",
                    ));
                }
                let start = change.row.value(self.wstart_col)?.as_ts()?;
                let end = change.row.value(self.wend_col)?.as_ts()?;
                // Late check: an event is late if even its provisional
                // session is closed.
                if self
                    .watermark
                    .closes(end.saturating_add(self.allowed_lateness))
                {
                    self.late_dropped += 1;
                    return Ok(());
                }
                let mut key_vals = Vec::with_capacity(self.partition_exprs.len());
                for e in &self.partition_exprs {
                    key_vals.push(e.eval(&change.row)?);
                }
                let key = Row::new(key_vals);

                // Partial aggregates for the new event.
                let mut accs = self.fresh_accs();
                for (acc, call) in accs.iter_mut().zip(&self.aggs) {
                    let arg = match &call.arg {
                        Some(e) => Some(e.eval(&change.row)?),
                        None => None,
                    };
                    for _ in 0..change.diff {
                        acc.add(arg.as_ref(), 1)?;
                    }
                }
                let mut merged = Session { start, end, accs };

                // Merge with every overlapping live session, retracting
                // their previously emitted rows.
                let sessions = self.state.entry_or_default(key.clone());
                let mut keep = Vec::with_capacity(sessions.len() + 1);
                let mut retracted = Vec::new();
                for s in sessions.drain(..) {
                    if s.overlaps(merged.start, merged.end) {
                        retracted.push(s);
                    } else {
                        keep.push(s);
                    }
                }
                for s in &retracted {
                    merged.start = merged.start.min(s.start);
                    merged.end = merged.end.max(s.end);
                    for (acc, other) in merged.accs.iter_mut().zip(&s.accs) {
                        acc.merge(other);
                    }
                }
                keep.push(merged.clone());
                keep.sort_by_key(|s| s.start);
                *sessions = keep;

                for s in &retracted {
                    out.push(Element::retract(self.output_row(&key, s)?));
                }
                out.push(Element::insert(self.output_row(&key, &merged)?));
            }
            Element::Watermark(wm) => {
                if !self.watermark.advance_to(wm) {
                    return Ok(());
                }
                // Free sessions that can no longer extend: a session ending
                // at `e` merges only with events whose provisional interval
                // starts before `e`, i.e. with timestamps < e; once the
                // watermark passes e (+ lateness) it is final.
                let watermark = self.watermark;
                let lateness = self.allowed_lateness;
                self.state.retire_where(|_, sessions| {
                    sessions
                        .iter()
                        .all(|s| watermark.closes(s.end.saturating_add(lateness)))
                });
                // Partially-final partitions keep all sessions (simpler and
                // conservative; memory bounded by live sessions).
                out.push(Element::Watermark(self.watermark));
            }
        }
        Ok(())
    }

    fn state_metrics(&self) -> StateMetrics {
        StateMetrics {
            keys: self.state.iter().map(|(_, v)| v.len()).sum(),
            encoded_bytes: 0,
        }
    }

    fn checkpoint(&self) -> onesql_types::Result<Option<Checkpoint>> {
        let snapshot = (
            self.watermark.ts(),
            self.late_dropped,
            self.state.checkpoint().0,
        );
        Ok(Some(Checkpoint(snapshot.to_bytes())))
    }

    fn restore(&mut self, checkpoint: &Checkpoint) -> onesql_types::Result<()> {
        let (wm, late, state): (Ts, u64, bytes::Bytes) = Codec::from_bytes(&checkpoint.0)?;
        self.watermark = Watermark(wm);
        self.late_dropped = late;
        self.state.restore(&Checkpoint(state))
    }

    fn name(&self) -> &'static str {
        "SessionAggregate"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onesql_plan::AggFunc;
    use onesql_types::row;

    /// Input rows: (user, amount, wstart, wend) — as produced by
    /// Session(gap) over (user, amount, ts) with ts at provisional wstart.
    /// Group by user, wstart, wend; aggregate COUNT(*), SUM(amount).
    fn session_agg(gap_min: i64) -> SessionAggregate {
        let _ = gap_min;
        SessionAggregate::new(
            &[ScalarExpr::col(0), ScalarExpr::col(3), ScalarExpr::col(4)],
            vec![
                AggCall {
                    func: AggFunc::Count,
                    arg: None,
                    distinct: false,
                },
                AggCall {
                    func: AggFunc::Sum,
                    arg: Some(ScalarExpr::col(1)),
                    distinct: false,
                },
            ],
            3,
            4,
            Duration::ZERO,
        )
        .unwrap()
    }

    /// Event at minute `m` with a 5-minute gap.
    fn event(user: &str, amount: i64, m: i64) -> Element {
        Element::insert(row!(
            user,
            amount,
            Ts::from_minutes(m), // raw ts column (unused by operator)
            Ts::from_minutes(m),
            Ts::from_minutes(m + 5)
        ))
    }

    fn push(op: &mut SessionAggregate, e: Element) -> Vec<Element> {
        let mut out = Vec::new();
        op.process(0, e, Ts(0), &mut out).unwrap();
        out
    }

    #[test]
    fn events_within_gap_merge_into_one_session() {
        let mut agg = session_agg(5);
        // First event: session [0, 5).
        let out = push(&mut agg, event("u", 10, 0));
        assert_eq!(
            out,
            vec![Element::insert(row!(
                "u",
                Ts::from_minutes(0),
                Ts::from_minutes(5),
                1i64,
                10i64
            ))]
        );
        // Second event at minute 3: merges into [0, 8).
        let out = push(&mut agg, event("u", 20, 3));
        assert_eq!(
            out,
            vec![
                Element::retract(row!(
                    "u",
                    Ts::from_minutes(0),
                    Ts::from_minutes(5),
                    1i64,
                    10i64
                )),
                Element::insert(row!(
                    "u",
                    Ts::from_minutes(0),
                    Ts::from_minutes(8),
                    2i64,
                    30i64
                )),
            ]
        );
        assert_eq!(agg.state_metrics().keys, 1);
    }

    #[test]
    fn events_beyond_gap_start_new_session() {
        let mut agg = session_agg(5);
        push(&mut agg, event("u", 10, 0));
        let out = push(&mut agg, event("u", 20, 10));
        assert_eq!(
            out,
            vec![Element::insert(row!(
                "u",
                Ts::from_minutes(10),
                Ts::from_minutes(15),
                1i64,
                20i64
            ))]
        );
        assert_eq!(agg.state_metrics().keys, 2);
    }

    #[test]
    fn bridging_event_merges_two_sessions() {
        let mut agg = session_agg(5);
        push(&mut agg, event("u", 1, 0)); // [0, 5)
        push(&mut agg, event("u", 2, 10)); // [10, 15)
                                           // Event at 5 bridges: [5,10) touches both.
        let out = push(&mut agg, event("u", 4, 5));
        assert_eq!(out.len(), 3); // two retractions + one merged insert
        assert_eq!(
            out[2],
            Element::insert(row!(
                "u",
                Ts::from_minutes(0),
                Ts::from_minutes(15),
                3i64,
                7i64
            ))
        );
        assert_eq!(agg.state_metrics().keys, 1);
    }

    #[test]
    fn partitions_are_independent() {
        let mut agg = session_agg(5);
        push(&mut agg, event("a", 1, 0));
        let out = push(&mut agg, event("b", 2, 1));
        // b's event does not merge with a's session.
        assert_eq!(out.len(), 1);
        assert_eq!(agg.state_metrics().keys, 2);
    }

    #[test]
    fn watermark_finalizes_and_drops_late_events() {
        let mut agg = session_agg(5);
        push(&mut agg, event("u", 1, 0)); // session [0,5)
        let out = push(&mut agg, Element::watermark(Ts::from_minutes(6)));
        assert_eq!(out, vec![Element::watermark(Ts::from_minutes(6))]);
        assert_eq!(agg.state_metrics().keys, 0, "closed session freed");
        // An event whose provisional session is already closed is dropped.
        let out = push(&mut agg, event("u", 9, 0));
        assert!(out.is_empty());
        assert_eq!(agg.late_dropped(), 1);
        // A fresh event after the watermark works.
        let out = push(&mut agg, event("u", 3, 7));
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn retraction_input_rejected() {
        let mut agg = session_agg(5);
        let mut out = Vec::new();
        let err = agg.process(
            0,
            Element::retract(row!(
                "u",
                1i64,
                Ts::from_minutes(0),
                Ts::from_minutes(0),
                Ts::from_minutes(5)
            )),
            Ts(0),
            &mut out,
        );
        assert!(err.is_err());
    }

    #[test]
    fn requires_window_columns_in_group_key() {
        let err = SessionAggregate::new(&[ScalarExpr::col(0)], vec![], 3, 4, Duration::ZERO);
        assert!(err.is_err());
    }
}
