//! Typed columnar storage for vectorized execution.
//!
//! A [`Column`] is an immutable, reference-counted vector of SQL values that
//! stores homogeneously-typed data unboxed (`Vec<i64>`, `Vec<f64>`, …) with an
//! optional validity mask, falling back to a boxed [`Value`] vector
//! ([`ColumnData::Mixed`]) when a column mixes types. Columns are the unit the
//! vectorized expression kernels operate on; rows materialize only at the
//! source and sink boundaries (see `docs/VECTORIZED.md`).

use std::fmt;
use std::sync::Arc;

use crate::datatype::DataType;
use crate::temporal::{Duration, Ts};
use crate::value::Value;

/// Physical storage for one column of a batch.
///
/// Typed variants hold unboxed values plus an optional null mask (`None`
/// means "no nulls"); null slots hold an arbitrary placeholder that must
/// never be read. [`ColumnData::Mixed`] is the escape hatch for columns whose
/// values do not share a single runtime type.
#[derive(Clone, Debug)]
pub enum ColumnData {
    /// 64-bit signed integers (SQL `BIGINT`).
    Int {
        /// Unboxed values; placeholder at null slots.
        vals: Vec<i64>,
        /// `true` marks a NULL slot; `None` means no nulls at all.
        nulls: Option<Vec<bool>>,
    },
    /// 64-bit floats (SQL `DOUBLE`).
    Float {
        /// Unboxed values; placeholder at null slots.
        vals: Vec<f64>,
        /// `true` marks a NULL slot; `None` means no nulls at all.
        nulls: Option<Vec<bool>>,
    },
    /// Booleans.
    Bool {
        /// Unboxed values; placeholder at null slots.
        vals: Vec<bool>,
        /// `true` marks a NULL slot; `None` means no nulls at all.
        nulls: Option<Vec<bool>>,
    },
    /// Event/processing timestamps (SQL `TIMESTAMP`).
    Ts {
        /// Unboxed values; placeholder at null slots.
        vals: Vec<Ts>,
        /// `true` marks a NULL slot; `None` means no nulls at all.
        nulls: Option<Vec<bool>>,
    },
    /// Durations (SQL `INTERVAL`).
    Interval {
        /// Unboxed values; placeholder at null slots.
        vals: Vec<Duration>,
        /// `true` marks a NULL slot; `None` means no nulls at all.
        nulls: Option<Vec<bool>>,
    },
    /// Reference-counted strings (SQL `VARCHAR`).
    Str {
        /// Shared string values; placeholder at null slots.
        vals: Vec<Arc<str>>,
        /// `true` marks a NULL slot; `None` means no nulls at all.
        nulls: Option<Vec<bool>>,
    },
    /// Heterogeneous fallback: one boxed [`Value`] per row.
    Mixed(Vec<Value>),
}

impl ColumnData {
    fn len(&self) -> usize {
        match self {
            ColumnData::Int { vals, .. } => vals.len(),
            ColumnData::Float { vals, .. } => vals.len(),
            ColumnData::Bool { vals, .. } => vals.len(),
            ColumnData::Ts { vals, .. } => vals.len(),
            ColumnData::Interval { vals, .. } => vals.len(),
            ColumnData::Str { vals, .. } => vals.len(),
            ColumnData::Mixed(vals) => vals.len(),
        }
    }
}

/// An immutable, cheaply-cloneable column of values.
///
/// Cloning a `Column` is a pointer copy, so kernels can pass input columns
/// through unchanged (e.g. a projection of a bare column reference) without
/// copying data.
#[derive(Clone, Debug)]
pub struct Column(Arc<ColumnData>);

impl Column {
    /// Wrap physical storage in a column.
    pub fn new(data: ColumnData) -> Column {
        Column(Arc::new(data))
    }

    /// Build a column from boxed values, detecting a homogeneous type.
    ///
    /// If every non-null value shares one runtime type the column is stored
    /// unboxed with a null mask; otherwise it falls back to
    /// [`ColumnData::Mixed`]. An all-null column is stored as `Mixed`.
    pub fn from_values(values: Vec<Value>) -> Column {
        let tag = values
            .iter()
            .find(|v| !matches!(v, Value::Null))
            .map(Value::data_type);
        let homogeneous = match tag {
            Some(t) => values
                .iter()
                .all(|v| matches!(v, Value::Null) || v.data_type() == t),
            None => false,
        };
        if !homogeneous {
            return Column::new(ColumnData::Mixed(values));
        }
        let mut b = ColumnBuilder::with_capacity(values.len());
        for v in values {
            b.push(v);
        }
        b.finish()
    }

    /// A column of `len` copies of `value` (scalar broadcast).
    pub fn repeat(value: &Value, len: usize) -> Column {
        Column::from_values(vec![value.clone(); len])
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrow the physical storage (used by kernels for typed fast paths).
    pub fn data(&self) -> &ColumnData {
        &self.0
    }

    /// Whether the value at `i` is SQL NULL.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn is_null(&self, i: usize) -> bool {
        match self.data() {
            ColumnData::Int { nulls, vals } => {
                assert!(i < vals.len());
                nulls.as_ref().is_some_and(|n| n[i])
            }
            ColumnData::Float { nulls, vals } => {
                assert!(i < vals.len());
                nulls.as_ref().is_some_and(|n| n[i])
            }
            ColumnData::Bool { nulls, vals } => {
                assert!(i < vals.len());
                nulls.as_ref().is_some_and(|n| n[i])
            }
            ColumnData::Ts { nulls, vals } => {
                assert!(i < vals.len());
                nulls.as_ref().is_some_and(|n| n[i])
            }
            ColumnData::Interval { nulls, vals } => {
                assert!(i < vals.len());
                nulls.as_ref().is_some_and(|n| n[i])
            }
            ColumnData::Str { nulls, vals } => {
                assert!(i < vals.len());
                nulls.as_ref().is_some_and(|n| n[i])
            }
            ColumnData::Mixed(vals) => matches!(vals[i], Value::Null),
        }
    }

    /// Materialize the value at `i` as a boxed [`Value`].
    ///
    /// Cheap for all variants (`Str` clones an `Arc`).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn value(&self, i: usize) -> Value {
        match self.data() {
            ColumnData::Int { vals, nulls } => {
                if nulls.as_ref().is_some_and(|n| n[i]) {
                    Value::Null
                } else {
                    Value::Int(vals[i])
                }
            }
            ColumnData::Float { vals, nulls } => {
                if nulls.as_ref().is_some_and(|n| n[i]) {
                    Value::Null
                } else {
                    Value::Float(vals[i])
                }
            }
            ColumnData::Bool { vals, nulls } => {
                if nulls.as_ref().is_some_and(|n| n[i]) {
                    Value::Null
                } else {
                    Value::Bool(vals[i])
                }
            }
            ColumnData::Ts { vals, nulls } => {
                if nulls.as_ref().is_some_and(|n| n[i]) {
                    Value::Null
                } else {
                    Value::Ts(vals[i])
                }
            }
            ColumnData::Interval { vals, nulls } => {
                if nulls.as_ref().is_some_and(|n| n[i]) {
                    Value::Null
                } else {
                    Value::Interval(vals[i])
                }
            }
            ColumnData::Str { vals, nulls } => {
                if nulls.as_ref().is_some_and(|n| n[i]) {
                    Value::Null
                } else {
                    Value::Str(vals[i].clone())
                }
            }
            ColumnData::Mixed(vals) => vals[i].clone(),
        }
    }

    /// The runtime [`DataType`] of a typed column, or `None` for `Mixed`.
    pub fn uniform_type(&self) -> Option<DataType> {
        match self.data() {
            ColumnData::Int { .. } => Some(DataType::Int),
            ColumnData::Float { .. } => Some(DataType::Float),
            ColumnData::Bool { .. } => Some(DataType::Bool),
            ColumnData::Ts { .. } => Some(DataType::Timestamp),
            ColumnData::Interval { .. } => Some(DataType::Interval),
            ColumnData::Str { .. } => Some(DataType::String),
            ColumnData::Mixed(_) => None,
        }
    }

    /// Whether the column contains any NULL.
    pub fn has_nulls(&self) -> bool {
        match self.data() {
            ColumnData::Int { nulls, .. }
            | ColumnData::Float { nulls, .. }
            | ColumnData::Bool { nulls, .. }
            | ColumnData::Ts { nulls, .. }
            | ColumnData::Interval { nulls, .. }
            | ColumnData::Str { nulls, .. } => nulls.is_some(),
            ColumnData::Mixed(vals) => vals.iter().any(|v| matches!(v, Value::Null)),
        }
    }

    /// Gather rows at the given physical indices into a new dense column.
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn gather(&self, indices: &[u32]) -> Column {
        fn pick<T: Clone>(
            vals: &[T],
            nulls: &Option<Vec<bool>>,
            indices: &[u32],
        ) -> (Vec<T>, Option<Vec<bool>>) {
            let out: Vec<T> = indices.iter().map(|&i| vals[i as usize].clone()).collect();
            let n = nulls.as_ref().map(|n| {
                indices
                    .iter()
                    .map(|&i| n[i as usize])
                    .collect::<Vec<bool>>()
            });
            let n = n.filter(|m| m.iter().any(|&b| b));
            (out, n)
        }
        let data = match self.data() {
            ColumnData::Int { vals, nulls } => {
                let (vals, nulls) = pick(vals, nulls, indices);
                ColumnData::Int { vals, nulls }
            }
            ColumnData::Float { vals, nulls } => {
                let (vals, nulls) = pick(vals, nulls, indices);
                ColumnData::Float { vals, nulls }
            }
            ColumnData::Bool { vals, nulls } => {
                let (vals, nulls) = pick(vals, nulls, indices);
                ColumnData::Bool { vals, nulls }
            }
            ColumnData::Ts { vals, nulls } => {
                let (vals, nulls) = pick(vals, nulls, indices);
                ColumnData::Ts { vals, nulls }
            }
            ColumnData::Interval { vals, nulls } => {
                let (vals, nulls) = pick(vals, nulls, indices);
                ColumnData::Interval { vals, nulls }
            }
            ColumnData::Str { vals, nulls } => {
                let (vals, nulls) = pick(vals, nulls, indices);
                ColumnData::Str { vals, nulls }
            }
            ColumnData::Mixed(vals) => {
                ColumnData::Mixed(indices.iter().map(|&i| vals[i as usize].clone()).collect())
            }
        };
        Column::new(data)
    }
}

impl fmt::Display for Column {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for i in 0..self.len() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.value(i))?;
        }
        write!(f, "]")
    }
}

enum BuilderData {
    Empty,
    Int(Vec<i64>),
    Float(Vec<f64>),
    Bool(Vec<bool>),
    Ts(Vec<Ts>),
    Interval(Vec<Duration>),
    Str(Vec<Arc<str>>),
    Mixed(Vec<Value>),
}

/// Incremental [`Column`] builder.
///
/// The first non-null value fixes the column's type; later values of a
/// different type demote the whole column to [`ColumnData::Mixed`]. Connector
/// code that knows the schema up front can use the typed `push_*` methods to
/// skip boxing entirely.
pub struct ColumnBuilder {
    data: BuilderData,
    nulls: Vec<bool>,
    any_null: bool,
    /// Number of leading nulls buffered before the type is known.
    pending_nulls: usize,
    capacity: usize,
}

impl ColumnBuilder {
    /// New builder with a row-count hint.
    pub fn with_capacity(capacity: usize) -> ColumnBuilder {
        ColumnBuilder {
            data: BuilderData::Empty,
            nulls: Vec::new(),
            any_null: false,
            pending_nulls: 0,
            capacity,
        }
    }

    fn note(&mut self, is_null: bool) {
        self.nulls.push(is_null);
        self.any_null |= is_null;
    }

    fn demote(&mut self) -> &mut Vec<Value> {
        let mut boxed: Vec<Value> = Vec::with_capacity(self.capacity.max(self.nulls.len() + 1));
        match std::mem::replace(&mut self.data, BuilderData::Empty) {
            BuilderData::Empty => {
                boxed.extend(std::iter::repeat_n(Value::Null, self.pending_nulls));
                self.pending_nulls = 0;
            }
            BuilderData::Int(vals) => {
                for (i, v) in vals.into_iter().enumerate() {
                    boxed.push(if self.nulls[i] {
                        Value::Null
                    } else {
                        Value::Int(v)
                    });
                }
            }
            BuilderData::Float(vals) => {
                for (i, v) in vals.into_iter().enumerate() {
                    boxed.push(if self.nulls[i] {
                        Value::Null
                    } else {
                        Value::Float(v)
                    });
                }
            }
            BuilderData::Bool(vals) => {
                for (i, v) in vals.into_iter().enumerate() {
                    boxed.push(if self.nulls[i] {
                        Value::Null
                    } else {
                        Value::Bool(v)
                    });
                }
            }
            BuilderData::Ts(vals) => {
                for (i, v) in vals.into_iter().enumerate() {
                    boxed.push(if self.nulls[i] {
                        Value::Null
                    } else {
                        Value::Ts(v)
                    });
                }
            }
            BuilderData::Interval(vals) => {
                for (i, v) in vals.into_iter().enumerate() {
                    boxed.push(if self.nulls[i] {
                        Value::Null
                    } else {
                        Value::Interval(v)
                    });
                }
            }
            BuilderData::Str(vals) => {
                for (i, v) in vals.into_iter().enumerate() {
                    boxed.push(if self.nulls[i] {
                        Value::Null
                    } else {
                        Value::Str(v)
                    });
                }
            }
            BuilderData::Mixed(vals) => boxed = vals,
        }
        self.data = BuilderData::Mixed(boxed);
        match &mut self.data {
            BuilderData::Mixed(vals) => vals,
            _ => unreachable!(),
        }
    }

    fn start<T>(&mut self, placeholder: T) -> Vec<T>
    where
        T: Clone,
    {
        let mut vals = Vec::with_capacity(self.capacity.max(self.pending_nulls + 1));
        vals.extend(std::iter::repeat_n(placeholder, self.pending_nulls));
        self.pending_nulls = 0;
        vals
    }

    /// Append a NULL.
    pub fn push_null(&mut self) {
        self.note(true);
        match &mut self.data {
            BuilderData::Empty => self.pending_nulls += 1,
            BuilderData::Int(vals) => vals.push(0),
            BuilderData::Float(vals) => vals.push(0.0),
            BuilderData::Bool(vals) => vals.push(false),
            BuilderData::Ts(vals) => vals.push(Ts::from_millis(0)),
            BuilderData::Interval(vals) => vals.push(Duration::from_millis(0)),
            BuilderData::Str(vals) => vals.push(Arc::from("")),
            BuilderData::Mixed(vals) => vals.push(Value::Null),
        }
    }

    /// Append an `i64` (BIGINT) value.
    pub fn push_int(&mut self, v: i64) {
        self.note(false);
        match &mut self.data {
            BuilderData::Empty => {
                let vals = self.start(0i64);
                self.data = BuilderData::Int(vals);
                match &mut self.data {
                    BuilderData::Int(vals) => vals.push(v),
                    _ => unreachable!(),
                }
            }
            BuilderData::Int(vals) => vals.push(v),
            _ => self.demote().push(Value::Int(v)),
        }
    }

    /// Append an `f64` (DOUBLE) value.
    pub fn push_float(&mut self, v: f64) {
        self.note(false);
        match &mut self.data {
            BuilderData::Empty => {
                let vals = self.start(0.0f64);
                self.data = BuilderData::Float(vals);
                match &mut self.data {
                    BuilderData::Float(vals) => vals.push(v),
                    _ => unreachable!(),
                }
            }
            BuilderData::Float(vals) => vals.push(v),
            _ => self.demote().push(Value::Float(v)),
        }
    }

    /// Append a boolean value.
    pub fn push_bool(&mut self, v: bool) {
        self.note(false);
        match &mut self.data {
            BuilderData::Empty => {
                let vals = self.start(false);
                self.data = BuilderData::Bool(vals);
                match &mut self.data {
                    BuilderData::Bool(vals) => vals.push(v),
                    _ => unreachable!(),
                }
            }
            BuilderData::Bool(vals) => vals.push(v),
            _ => self.demote().push(Value::Bool(v)),
        }
    }

    /// Append a timestamp value.
    pub fn push_ts(&mut self, v: Ts) {
        self.note(false);
        match &mut self.data {
            BuilderData::Empty => {
                let vals = self.start(Ts::from_millis(0));
                self.data = BuilderData::Ts(vals);
                match &mut self.data {
                    BuilderData::Ts(vals) => vals.push(v),
                    _ => unreachable!(),
                }
            }
            BuilderData::Ts(vals) => vals.push(v),
            _ => self.demote().push(Value::Ts(v)),
        }
    }

    /// Append an interval value.
    pub fn push_interval(&mut self, v: Duration) {
        self.note(false);
        match &mut self.data {
            BuilderData::Empty => {
                let vals = self.start(Duration::from_millis(0));
                self.data = BuilderData::Interval(vals);
                match &mut self.data {
                    BuilderData::Interval(vals) => vals.push(v),
                    _ => unreachable!(),
                }
            }
            BuilderData::Interval(vals) => vals.push(v),
            _ => self.demote().push(Value::Interval(v)),
        }
    }

    /// Append a string value.
    pub fn push_str(&mut self, v: Arc<str>) {
        self.note(false);
        match &mut self.data {
            BuilderData::Empty => {
                let vals = self.start(Arc::from(""));
                self.data = BuilderData::Str(vals);
                match &mut self.data {
                    BuilderData::Str(vals) => vals.push(v),
                    _ => unreachable!(),
                }
            }
            BuilderData::Str(vals) => vals.push(v),
            _ => self.demote().push(Value::Str(v)),
        }
    }

    /// Append a boxed [`Value`], dispatching to the typed paths.
    pub fn push(&mut self, v: Value) {
        match v {
            Value::Null => self.push_null(),
            Value::Int(i) => self.push_int(i),
            Value::Float(f) => self.push_float(f),
            Value::Bool(b) => self.push_bool(b),
            Value::Ts(t) => self.push_ts(t),
            Value::Interval(d) => self.push_interval(d),
            Value::Str(s) => self.push_str(s),
        }
    }

    /// Number of rows appended so far.
    pub fn len(&self) -> usize {
        self.nulls.len()
    }

    /// Whether no rows have been appended.
    pub fn is_empty(&self) -> bool {
        self.nulls.is_empty()
    }

    /// Finish the column.
    pub fn finish(self) -> Column {
        let nulls = if self.any_null {
            Some(self.nulls)
        } else {
            None
        };
        let data = match self.data {
            BuilderData::Empty => {
                // Either truly empty or all-null: box it.
                BuilderData::Mixed(vec![Value::Null; self.pending_nulls])
            }
            other => other,
        };
        let data = match data {
            BuilderData::Empty => unreachable!(),
            BuilderData::Int(vals) => ColumnData::Int { vals, nulls },
            BuilderData::Float(vals) => ColumnData::Float { vals, nulls },
            BuilderData::Bool(vals) => ColumnData::Bool { vals, nulls },
            BuilderData::Ts(vals) => ColumnData::Ts { vals, nulls },
            BuilderData::Interval(vals) => ColumnData::Interval { vals, nulls },
            BuilderData::Str(vals) => ColumnData::Str { vals, nulls },
            BuilderData::Mixed(vals) => ColumnData::Mixed(vals),
        };
        Column::new(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_roundtrip() {
        let c = Column::from_values(vec![Value::Int(1), Value::Null, Value::Int(3)]);
        assert!(matches!(c.data(), ColumnData::Int { .. }));
        assert_eq!(c.len(), 3);
        assert_eq!(c.value(0), Value::Int(1));
        assert_eq!(c.value(1), Value::Null);
        assert!(c.is_null(1));
        assert!(!c.is_null(2));
        assert_eq!(c.value(2), Value::Int(3));
        assert!(c.has_nulls());
        assert_eq!(c.uniform_type(), Some(DataType::Int));
    }

    #[test]
    fn mixed_fallback() {
        let c = Column::from_values(vec![Value::Int(1), Value::str("a")]);
        assert!(matches!(c.data(), ColumnData::Mixed(_)));
        assert_eq!(c.value(1), Value::str("a"));
        assert_eq!(c.uniform_type(), None);
    }

    #[test]
    fn all_null_is_mixed() {
        let c = Column::from_values(vec![Value::Null, Value::Null]);
        assert!(matches!(c.data(), ColumnData::Mixed(_)));
        assert!(c.is_null(0) && c.is_null(1));
    }

    #[test]
    fn builder_demotes_on_type_change() {
        let mut b = ColumnBuilder::with_capacity(4);
        b.push_null();
        b.push_int(7);
        b.push_str(Arc::from("x"));
        let c = b.finish();
        assert!(matches!(c.data(), ColumnData::Mixed(_)));
        assert_eq!(c.value(0), Value::Null);
        assert_eq!(c.value(1), Value::Int(7));
        assert_eq!(c.value(2), Value::str("x"));
    }

    #[test]
    fn gather_reorders() {
        let c = Column::from_values(vec![Value::Int(10), Value::Null, Value::Int(30)]);
        let g = c.gather(&[2, 0]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.value(0), Value::Int(30));
        assert_eq!(g.value(1), Value::Int(10));
        assert!(!g.has_nulls());
    }

    #[test]
    fn repeat_broadcasts() {
        let c = Column::repeat(&Value::Bool(true), 3);
        assert_eq!(c.len(), 3);
        assert_eq!(c.value(2), Value::Bool(true));
    }
}
