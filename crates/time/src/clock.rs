//! A virtual processing-time clock for deterministic execution.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use onesql_types::Ts;

/// A shared, manually-advanced processing-time clock.
///
/// The paper's listings pin results to exact processing times ("querying at
/// 8:13 vs 8:21"); reproducing them requires processing time to be an input,
/// not a side effect. The runtime advances this clock as it replays a
/// timeline, and operators that record processing time (the `ptime` column
/// of `EMIT STREAM`, Extension 4) or impose processing-time delays (`EMIT
/// AFTER DELAY`, Extension 6) read it.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now_millis: Arc<AtomicI64>,
}

impl VirtualClock {
    /// A clock starting at time zero.
    pub fn new() -> VirtualClock {
        Self::default()
    }

    /// A clock starting at `t`.
    pub fn starting_at(t: Ts) -> VirtualClock {
        let c = VirtualClock::new();
        c.set(t);
        c
    }

    /// Current processing time.
    pub fn now(&self) -> Ts {
        Ts(self.now_millis.load(Ordering::SeqCst))
    }

    /// Move the clock to `t`. Processing time never runs backwards; attempts
    /// to regress are ignored.
    pub fn set(&self, t: Ts) {
        self.now_millis.fetch_max(t.millis(), Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), Ts(0));
        c.set(Ts::hm(8, 7));
        assert_eq!(c.now(), Ts::hm(8, 7));
    }

    #[test]
    fn never_regresses() {
        let c = VirtualClock::starting_at(Ts::hm(9, 0));
        c.set(Ts::hm(8, 0));
        assert_eq!(c.now(), Ts::hm(9, 0));
    }

    #[test]
    fn clones_share_state() {
        let c = VirtualClock::new();
        let c2 = c.clone();
        c.set(Ts::hm(1, 0));
        assert_eq!(c2.now(), Ts::hm(1, 0));
    }
}
