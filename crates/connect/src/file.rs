//! File connectors: CSV and JSON-lines sources and sinks.
//!
//! Sources are **schema-driven**: the caller supplies the stream's schema
//! and each line parses into a typed [`Row`] (see [`crate::text`] /
//! [`crate::json`]). Event rows replay with their event-time column as the
//! processing time, and every batch carries a bounded-out-of-orderness
//! watermark (`max event time seen − lateness`), so downstream
//! `EMIT AFTER WATERMARK` queries make progress while the file streams in.
//!
//! Sinks render the query's output either as a faithful changelog (data
//! columns plus `undo` / `ptime` / `ver`) or, for final-only streams, as
//! plain appended records that a source with the same schema reads back.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Lines, Write};
use std::path::Path;

use onesql_core::connect::{
    PartitionedSource, PartitionedVec, Sink, Source, SourceBatch, SourceEvent, SourceStatus,
};
use onesql_exec::StreamRow;
use onesql_tvr::Change;
use onesql_types::{Duration, Error, Result, Row, Schema, SchemaRef, Ts, Value};

use crate::json;
use crate::text;

/// Tuning for file sources.
#[derive(Debug, Clone)]
pub struct FileSourceConfig {
    /// Watermark bound: the per-batch watermark is the max event time seen
    /// minus this. Zero asserts in-order files.
    pub lateness: Duration,
    /// CSV only: skip the first line (a header).
    pub has_header: bool,
}

impl Default for FileSourceConfig {
    fn default() -> FileSourceConfig {
        FileSourceConfig {
            lateness: Duration::ZERO,
            has_header: false,
        }
    }
}

/// Line format of a text file source.
#[derive(Clone, Copy)]
enum LineFormat {
    Csv,
    JsonLines,
}

/// Shared machinery of the two text-file sources.
struct TextFileSource {
    name: String,
    streams: Vec<String>,
    schema: SchemaRef,
    lines: Lines<BufReader<File>>,
    format: LineFormat,
    config: FileSourceConfig,
    /// First event-time column, if the schema has one.
    et_col: Option<usize>,
    /// Synthetic processing-time counter for schemas without event time.
    seq: i64,
    /// Max event time seen (drives the watermark).
    max_ts: Option<Ts>,
    /// Lines consumed so far (for error messages).
    line_no: u64,
    done: bool,
}

impl TextFileSource {
    fn open(
        path: impl AsRef<Path>,
        stream: impl Into<String>,
        schema: SchemaRef,
        format: LineFormat,
        config: FileSourceConfig,
    ) -> Result<TextFileSource> {
        let path = path.as_ref();
        let file = File::open(path)
            .map_err(|e| Error::exec(format!("cannot open '{}': {e}", path.display())))?;
        let et_col = schema.event_time_columns().first().copied();
        let mut source = TextFileSource {
            name: format!("file:{}", path.display()),
            streams: vec![stream.into()],
            schema,
            lines: BufReader::new(file).lines(),
            format,
            config,
            et_col,
            seq: 0,
            max_ts: None,
            line_no: 0,
            done: false,
        };
        // `has_header` is CSV-only (JSON-lines has no header concept; a
        // config struct reused from a CSV source must not eat a record).
        if source.config.has_header && matches!(source.format, LineFormat::Csv) {
            source.line_no += 1;
            let _ = source.lines.next();
        }
        Ok(source)
    }

    fn parse_line(&self, line: &str) -> Result<Row> {
        match self.format {
            LineFormat::Csv => text::parse_record(&text::split_csv_line(line), &self.schema),
            LineFormat::JsonLines => json::json_to_row(line, &self.schema),
        }
        .map_err(|e| Error::exec(format!("{}: line {}: {e}", self.name, self.line_no)))
    }

    fn poll(&mut self, max_events: usize) -> Result<SourceBatch> {
        if self.done {
            return Ok(SourceBatch::empty(SourceStatus::Finished));
        }
        let mut batch = SourceBatch::empty(SourceStatus::Ready);
        while batch.events.len() < max_events {
            let Some(line) = self.lines.next() else {
                self.done = true;
                batch.status = SourceStatus::Finished;
                break;
            };
            let mut line =
                line.map_err(|e| Error::exec(format!("{}: read error: {e}", self.name)))?;
            self.line_no += 1;
            if line.trim().is_empty() {
                continue;
            }
            // A quoted CSV field may legally contain newlines; keep
            // consuming physical lines until the quotes balance.
            if matches!(self.format, LineFormat::Csv) {
                while !text::csv_quotes_balanced(&line) {
                    let next = self.lines.next().ok_or_else(|| {
                        Error::exec(format!(
                            "{}: line {}: unterminated quoted field at end of file",
                            self.name, self.line_no
                        ))
                    })?;
                    let next =
                        next.map_err(|e| Error::exec(format!("{}: read error: {e}", self.name)))?;
                    self.line_no += 1;
                    line.push('\n');
                    line.push_str(&next);
                }
            }
            let row = self.parse_line(&line)?;
            // Replay semantics: event time doubles as arrival time (the
            // driver keeps the global clock monotone for late rows).
            let ptime = match self.et_col {
                Some(col) => match row.value(col)? {
                    Value::Ts(t) => *t,
                    other => {
                        return Err(Error::exec(format!(
                            "{}: line {}: event-time column holds {other:?}",
                            self.name, self.line_no
                        )))
                    }
                },
                None => {
                    self.seq += 1;
                    Ts(self.seq - 1)
                }
            };
            self.max_ts = Some(self.max_ts.map_or(ptime, |m| m.max(ptime)));
            batch.events.push(SourceEvent {
                stream: 0,
                ptime,
                change: Change::insert(row),
            });
        }
        if let Some(max) = self.max_ts {
            // Trail the max by 1ms beyond the lateness bound: a watermark
            // asserts future events are *strictly* later, and files may
            // hold several rows at one timestamp (cf. AscendingWatermarks).
            batch.watermark = Some(max - self.config.lateness - Duration(1));
        }
        Ok(batch)
    }
}

// A single file partition is itself a well-formed source, which is what
// lets `PartitionedVec` fold N of them into the partitioned connector.
impl Source for TextFileSource {
    fn name(&self) -> &str {
        &self.name
    }
    fn streams(&self) -> &[String] {
        &self.streams
    }
    fn poll_batch(&mut self, max_events: usize) -> Result<SourceBatch> {
        self.poll(max_events)
    }
}

/// Reads a CSV file as a stream of inserts.
pub struct CsvFileSource(TextFileSource);

impl CsvFileSource {
    /// Open `path`, parsing each line against `schema` and feeding engine
    /// stream `stream`.
    pub fn new(
        path: impl AsRef<Path>,
        stream: impl Into<String>,
        schema: SchemaRef,
        config: FileSourceConfig,
    ) -> Result<CsvFileSource> {
        Ok(CsvFileSource(TextFileSource::open(
            path,
            stream,
            schema,
            LineFormat::Csv,
            config,
        )?))
    }
}

impl Source for CsvFileSource {
    fn name(&self) -> &str {
        &self.0.name
    }
    fn streams(&self) -> &[String] {
        &self.0.streams
    }
    fn poll_batch(&mut self, max_events: usize) -> Result<SourceBatch> {
        self.0.poll(max_events)
    }
}

/// Reads a JSON-lines file as a stream of inserts.
pub struct JsonLinesSource(TextFileSource);

impl JsonLinesSource {
    /// Open `path`, parsing each line as a JSON object against `schema`.
    pub fn new(
        path: impl AsRef<Path>,
        stream: impl Into<String>,
        schema: SchemaRef,
        config: FileSourceConfig,
    ) -> Result<JsonLinesSource> {
        Ok(JsonLinesSource(TextFileSource::open(
            path,
            stream,
            schema,
            LineFormat::JsonLines,
            config,
        )?))
    }
}

impl Source for JsonLinesSource {
    fn name(&self) -> &str {
        &self.0.name
    }
    fn streams(&self) -> &[String] {
        &self.0.streams
    }
    fn poll_batch(&mut self, max_events: usize) -> Result<SourceBatch> {
        self.0.poll(max_events)
    }
}

/// A partitioned file source: N files feeding one stream, one partition
/// per file — the on-disk analog of a partitioned Kafka topic.
///
/// Each partition replays its file independently (its own watermark from
/// its own max event time, its own replayable offset counting parsed
/// records), so the sharded driver can poll them round-robin, combine
/// their watermarks as the min, and seek any partition back to a
/// checkpointed offset by re-reading its file. The `Vec<inner>` + offset
/// plumbing is [`PartitionedVec`]; this type only opens the files.
pub struct PartitionedFileSource(PartitionedVec<TextFileSource>);

impl PartitionedFileSource {
    fn open_all(
        paths: &[impl AsRef<Path>],
        stream: &str,
        schema: SchemaRef,
        format: LineFormat,
        config: FileSourceConfig,
    ) -> Result<PartitionedFileSource> {
        if paths.is_empty() {
            return Err(Error::plan(
                "partitioned file source needs at least one file",
            ));
        }
        let parts = paths
            .iter()
            .map(|p| TextFileSource::open(p, stream, schema.clone(), format, config.clone()))
            .collect::<Result<Vec<_>>>()?;
        Ok(PartitionedFileSource(PartitionedVec::new(
            format!("files:{}x{}", paths[0].as_ref().display(), paths.len()),
            parts,
        )?))
    }

    /// One partition per CSV file, all parsed against `schema` into
    /// engine stream `stream`.
    pub fn csv(
        paths: &[impl AsRef<Path>],
        stream: &str,
        schema: SchemaRef,
        config: FileSourceConfig,
    ) -> Result<PartitionedFileSource> {
        PartitionedFileSource::open_all(paths, stream, schema, LineFormat::Csv, config)
    }

    /// One partition per JSON-lines file.
    pub fn json_lines(
        paths: &[impl AsRef<Path>],
        stream: &str,
        schema: SchemaRef,
        config: FileSourceConfig,
    ) -> Result<PartitionedFileSource> {
        PartitionedFileSource::open_all(paths, stream, schema, LineFormat::JsonLines, config)
    }
}

impl PartitionedSource for PartitionedFileSource {
    fn name(&self) -> &str {
        self.0.name()
    }

    fn streams(&self) -> &[String] {
        self.0.streams()
    }

    fn partitions(&self) -> usize {
        self.0.partitions()
    }

    fn poll_partition(&mut self, partition: usize, max_events: usize) -> Result<SourceBatch> {
        self.0.poll_partition(partition, max_events)
    }

    fn offset(&self, partition: usize) -> u64 {
        self.0.offset(partition)
    }

    fn seek(&mut self, partition: usize, offset: u64) -> Result<()> {
        self.0.seek(partition, offset)
    }
}

/// What a file sink writes per output row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsvSinkMode {
    /// Data columns plus `undo` / `ptime` / `ver` metadata: a faithful
    /// changelog any consumer can replay.
    Changelog,
    /// Data columns only. Valid for append-only outputs (e.g.
    /// `EMIT AFTER WATERMARK` aggregates); a retraction is an error.
    Appends,
}

/// Names of the metadata columns a changelog-mode sink appends.
const META_NAMES: [&str; 3] = onesql_exec::STREAM_META_COLUMNS;

struct TextFileSink {
    name: String,
    writer: BufWriter<File>,
    mode: CsvSinkMode,
    format: LineFormat,
    /// JSON field-name schema, extended with the metadata columns in
    /// changelog mode; built once at bind time.
    json_schema: Option<Schema>,
    header: bool,
}

impl TextFileSink {
    fn create(
        path: impl AsRef<Path>,
        mode: CsvSinkMode,
        format: LineFormat,
        header: bool,
    ) -> Result<TextFileSink> {
        let path = path.as_ref();
        let file = File::create(path)
            .map_err(|e| Error::exec(format!("cannot create '{}': {e}", path.display())))?;
        Ok(TextFileSink {
            name: format!("file:{}", path.display()),
            writer: BufWriter::new(file),
            mode,
            format,
            json_schema: None,
            header,
        })
    }

    fn bind(&mut self, schema: SchemaRef) -> Result<()> {
        if self.header {
            if let LineFormat::Csv = self.format {
                let mut names: Vec<String> = schema
                    .names()
                    .into_iter()
                    .map(text::escape_csv_field)
                    .collect();
                if self.mode == CsvSinkMode::Changelog {
                    names.extend(META_NAMES.iter().map(|n| n.to_string()));
                }
                writeln!(self.writer, "{}", names.join(","))
                    .map_err(|e| Error::exec(format!("{}: write error: {e}", self.name)))?;
            }
        }
        let mut fields = schema.fields().to_vec();
        if self.mode == CsvSinkMode::Changelog {
            fields.push(onesql_types::Field::new(
                META_NAMES[0],
                onesql_types::DataType::Bool,
            ));
            fields.push(onesql_types::Field::new(
                META_NAMES[1],
                onesql_types::DataType::Timestamp,
            ));
            fields.push(onesql_types::Field::new(
                META_NAMES[2],
                onesql_types::DataType::Int,
            ));
        }
        self.json_schema = Some(Schema::new(fields));
        Ok(())
    }

    fn write(&mut self, rows: &[StreamRow]) -> Result<()> {
        for sr in rows {
            if self.mode == CsvSinkMode::Appends && sr.undo {
                return Err(Error::exec(format!(
                    "{}: retraction reached an appends-mode sink; use \
                     CsvSinkMode::Changelog or a watermark-gated query",
                    self.name
                )));
            }
            let line = match (&self.format, &self.mode) {
                (LineFormat::Csv, CsvSinkMode::Appends) => text::row_to_csv(&sr.row),
                (LineFormat::Csv, CsvSinkMode::Changelog) => {
                    let mut fields: Vec<String> = sr
                        .row
                        .values()
                        .iter()
                        .map(|v| text::escape_csv_field(&text::format_value(v)))
                        .collect();
                    // `true`/`false` (not the paper's "undo" rendering, which
                    // ChangelogSink provides) so the column parses back as the
                    // Bool the meta schema declares.
                    fields.push(sr.undo.to_string());
                    fields.push(sr.ptime.to_clock_string());
                    fields.push(sr.ver.to_string());
                    fields.join(",")
                }
                (LineFormat::JsonLines, mode) => {
                    let schema = self.json_schema.as_ref().ok_or_else(|| {
                        Error::exec(format!("{}: sink was never bound", self.name))
                    })?;
                    let row = if *mode == CsvSinkMode::Changelog {
                        sr.row.with_appended(&[
                            Value::Bool(sr.undo),
                            Value::Ts(sr.ptime),
                            Value::Int(sr.ver as i64),
                        ])
                    } else {
                        sr.row.clone()
                    };
                    json::row_to_json(&row, schema)
                }
            };
            writeln!(self.writer, "{line}")
                .map_err(|e| Error::exec(format!("{}: write error: {e}", self.name)))?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.writer
            .flush()
            .map_err(|e| Error::exec(format!("{}: flush error: {e}", self.name)))
    }
}

/// Writes output rows to a CSV file.
pub struct CsvFileSink(TextFileSink);

impl CsvFileSink {
    /// Create (truncate) `path`; a header line is written at bind time.
    pub fn new(path: impl AsRef<Path>, mode: CsvSinkMode) -> Result<CsvFileSink> {
        Ok(CsvFileSink(TextFileSink::create(
            path,
            mode,
            LineFormat::Csv,
            true,
        )?))
    }

    /// Create without a header line (so a `CsvFileSource` with
    /// `has_header: false` reads the output back directly).
    pub fn headerless(path: impl AsRef<Path>, mode: CsvSinkMode) -> Result<CsvFileSink> {
        Ok(CsvFileSink(TextFileSink::create(
            path,
            mode,
            LineFormat::Csv,
            false,
        )?))
    }
}

impl Sink for CsvFileSink {
    fn name(&self) -> &str {
        &self.0.name
    }
    fn bind(&mut self, schema: SchemaRef) -> Result<()> {
        self.0.bind(schema)
    }
    fn write(&mut self, rows: &[StreamRow]) -> Result<()> {
        self.0.write(rows)
    }
    fn flush(&mut self) -> Result<()> {
        self.0.flush()
    }
}

/// Writes output rows as JSON-lines.
pub struct JsonLinesSink(TextFileSink);

impl JsonLinesSink {
    /// Create (truncate) `path`.
    pub fn new(path: impl AsRef<Path>, mode: CsvSinkMode) -> Result<JsonLinesSink> {
        Ok(JsonLinesSink(TextFileSink::create(
            path,
            mode,
            LineFormat::JsonLines,
            false,
        )?))
    }
}

impl Sink for JsonLinesSink {
    fn name(&self) -> &str {
        &self.0.name
    }
    fn bind(&mut self, schema: SchemaRef) -> Result<()> {
        self.0.bind(schema)
    }
    fn write(&mut self, rows: &[StreamRow]) -> Result<()> {
        self.0.write(rows)
    }
    fn flush(&mut self) -> Result<()> {
        self.0.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onesql_core::StreamBuilder;
    use onesql_types::{row, DataType};
    use std::sync::Arc;

    fn schema() -> SchemaRef {
        Arc::new(
            StreamBuilder::new()
                .event_time_column("bidtime")
                .column("price", DataType::Int)
                .column("item", DataType::String)
                .build(),
        )
    }

    fn scratch_file(name: &str, content: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("onesql_file_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        path
    }

    #[test]
    fn quoted_field_spanning_lines_parses_as_one_record() {
        let path = scratch_file("multiline.csv", "8:07,2,\"a\nb\"\n8:08,3,c\n");
        let mut source =
            CsvFileSource::new(&path, "Bid", schema(), FileSourceConfig::default()).unwrap();
        let batch = source.poll_batch(16).unwrap();
        assert_eq!(batch.events.len(), 2);
        assert_eq!(batch.events[0].change.row, row!(Ts::hm(8, 7), 2i64, "a\nb"));
        assert_eq!(batch.events[1].change.row, row!(Ts::hm(8, 8), 3i64, "c"));
    }

    #[test]
    fn unterminated_quote_at_eof_errors_with_line() {
        let path = scratch_file("unterminated.csv", "8:07,2,\"open\n");
        let mut source =
            CsvFileSource::new(&path, "Bid", schema(), FileSourceConfig::default()).unwrap();
        let err = source.poll_batch(16).unwrap_err().to_string();
        assert!(err.contains("unterminated"), "{err}");
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn watermark_admits_duplicate_timestamps() {
        // Two rows share the max event time; the watermark must stay
        // strictly below it so the second row is not late.
        let path = scratch_file("dups.csv", "8:07,1,a\n8:07,2,b\n");
        let mut source =
            CsvFileSource::new(&path, "Bid", schema(), FileSourceConfig::default()).unwrap();
        let batch = source.poll_batch(16).unwrap();
        let wm = batch.watermark.unwrap();
        assert!(wm < Ts::hm(8, 7), "watermark {wm} would close ts 8:07");
        assert_eq!(wm, Ts::hm(8, 7) - Duration(1));
    }

    #[test]
    fn malformed_field_errors_name_file_and_line() {
        let path = scratch_file("bad.csv", "8:07,2,a\n8:08,notanumber,b\n");
        let mut source =
            CsvFileSource::new(&path, "Bid", schema(), FileSourceConfig::default()).unwrap();
        let err = source.poll_batch(16).unwrap_err().to_string();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("notanumber"), "{err}");
    }
}
