//! Changelogs: the stream encoding of a TVR over processing time.

use std::fmt;

use serde::{Deserialize, Serialize};

use onesql_types::{Row, Ts};

use crate::bag::Bag;
use crate::change::Change;

/// A change stamped with the processing time at which it was applied — the
/// `ptime` metadata the paper exposes on materialized changelogs (§3.3.1,
/// Extension 4).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedChange {
    /// Processing time at which the change took effect.
    pub ptime: Ts,
    /// The change itself.
    pub change: Change,
}

/// A full changelog history of a TVR: changes ordered by processing time.
///
/// `Changelog` is itself a TVR (the paper's key observation): it can be
/// viewed as a table of `(row, diff, ptime)` rows, and `snapshot_at` renders
/// the *table* encoding at any processing time.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Changelog {
    entries: Vec<TimedChange>,
}

impl Changelog {
    /// An empty changelog.
    pub fn new() -> Changelog {
        Changelog::default()
    }

    /// Append a change at `ptime`. `ptime` must be non-decreasing across
    /// appends (processing time is monotonic); out-of-order appends panic in
    /// debug builds and are accepted (as-if reordered) in release builds.
    pub fn push(&mut self, ptime: Ts, change: Change) {
        debug_assert!(
            self.entries.last().is_none_or(|last| last.ptime <= ptime),
            "changelog appends must be in processing-time order"
        );
        self.entries.push(TimedChange { ptime, change });
    }

    /// Reserve room for at least `additional` more entries (the batch emit
    /// path knows how many rows it is about to append).
    pub fn reserve(&mut self, additional: usize) {
        self.entries.reserve(additional);
    }

    /// Append all changes from a batch at the same processing time.
    pub fn push_batch(&mut self, ptime: Ts, changes: impl IntoIterator<Item = Change>) {
        for c in changes {
            self.push(ptime, c);
        }
    }

    /// All entries in processing-time order.
    pub fn entries(&self) -> &[TimedChange] {
        &self.entries
    }

    /// Number of changes recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no changes were recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The table encoding of the TVR at processing time `at` (inclusive):
    /// replay every change with `ptime <= at`. This is the "point-in-time
    /// view" used by the paper's `8:13 > SELECT ...;` listings.
    pub fn snapshot_at(&self, at: Ts) -> Bag {
        let mut bag = Bag::new();
        for e in &self.entries {
            if e.ptime > at {
                break;
            }
            bag.update(e.change.clone());
        }
        bag
    }

    /// The final table encoding (replay everything).
    pub fn snapshot(&self) -> Bag {
        self.snapshot_at(Ts::MAX)
    }

    /// Build a changelog from a sequence of `(ptime, snapshot)` observations
    /// by differencing consecutive snapshots — the table→stream direction of
    /// the duality. The sequence must be in processing-time order.
    pub fn from_snapshots(snapshots: impl IntoIterator<Item = (Ts, Bag)>) -> Changelog {
        let mut log = Changelog::new();
        let mut current = Bag::new();
        for (ptime, snap) in snapshots {
            let changes = current.diff(&snap);
            log.push_batch(ptime, changes);
            current = snap;
        }
        log
    }

    /// The distinct processing times at which the TVR changed.
    pub fn change_times(&self) -> Vec<Ts> {
        let mut times: Vec<Ts> = self.entries.iter().map(|e| e.ptime).collect();
        times.dedup();
        times
    }

    /// Rows of the changelog rendered as a relation of
    /// `(original columns..., diff, ptime)` — the changelog *as a TVR*.
    pub fn as_rows(&self) -> Vec<(Row, i64, Ts)> {
        self.entries
            .iter()
            .map(|e| (e.change.row.clone(), e.change.diff, e.ptime))
            .collect()
    }
}

impl fmt::Display for Changelog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            writeln!(f, "{} {}", e.ptime, e.change)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onesql_types::row;

    fn sample_log() -> Changelog {
        let mut log = Changelog::new();
        log.push(Ts::hm(8, 8), Change::insert(row!("A", 2i64)));
        log.push(Ts::hm(8, 12), Change::insert(row!("B", 3i64)));
        log.push(Ts::hm(8, 13), Change::retract(row!("A", 2i64)));
        log.push(Ts::hm(8, 13), Change::insert(row!("C", 4i64)));
        log
    }

    #[test]
    fn snapshot_at_replays_prefix() {
        let log = sample_log();
        assert!(log.snapshot_at(Ts::hm(8, 0)).is_empty());
        let at_8_12 = log.snapshot_at(Ts::hm(8, 12));
        assert_eq!(at_8_12.len(), 2);
        assert!(at_8_12.contains(&row!("A", 2i64)));
        let at_8_13 = log.snapshot_at(Ts::hm(8, 13));
        assert!(!at_8_13.contains(&row!("A", 2i64)));
        assert!(at_8_13.contains(&row!("C", 4i64)));
        assert_eq!(log.snapshot(), at_8_13);
    }

    #[test]
    fn duality_snapshots_to_changelog_and_back() {
        // Build snapshots, derive changelog, replay, compare.
        let s1 = Bag::from_rows(vec![row!(1i64)]);
        let s2 = Bag::from_rows(vec![row!(1i64), row!(2i64)]);
        let s3 = Bag::from_rows(vec![row!(2i64)]);
        let log = Changelog::from_snapshots(vec![
            (Ts::hm(8, 0), s1.clone()),
            (Ts::hm(8, 1), s2.clone()),
            (Ts::hm(8, 2), s3.clone()),
        ]);
        assert_eq!(log.snapshot_at(Ts::hm(8, 0)), s1);
        assert_eq!(log.snapshot_at(Ts::hm(8, 1)), s2);
        assert_eq!(log.snapshot_at(Ts::hm(8, 2)), s3);
        // Between observation times the snapshot holds steady.
        assert_eq!(log.snapshot_at(Ts(Ts::hm(8, 1).millis() + 1)), s2);
    }

    #[test]
    fn change_times_dedup() {
        let log = sample_log();
        assert_eq!(
            log.change_times(),
            vec![Ts::hm(8, 8), Ts::hm(8, 12), Ts::hm(8, 13)]
        );
    }

    #[test]
    fn as_rows_exposes_metadata() {
        let log = sample_log();
        let rows = log.as_rows();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[2].1, -1);
        assert_eq!(rows[2].2, Ts::hm(8, 13));
    }

    #[test]
    #[should_panic(expected = "processing-time order")]
    fn out_of_order_push_panics_in_debug() {
        let mut log = Changelog::new();
        log.push(Ts::hm(8, 10), Change::insert(row!(1i64)));
        log.push(Ts::hm(8, 9), Change::insert(row!(2i64)));
    }
}
