//! End-to-end SQL battery: every language feature exercised through the
//! full parse → bind → optimize → execute pipeline on small streams.

use onesql_core::{Engine, RunningQuery, StreamBuilder};
use onesql_types::{row, DataType, Row, Ts, Value};

fn engine() -> Engine {
    let mut e = Engine::new();
    e.register_stream(
        "Bid",
        StreamBuilder::new()
            .event_time_column("bidtime")
            .column("price", DataType::Int)
            .column("item", DataType::String),
    );
    e.register_stream(
        "Auction",
        StreamBuilder::new()
            .column("id", DataType::Int)
            .column("seller", DataType::String)
            .event_time_column("opened"),
    );
    e.register_table(
        "Category",
        StreamBuilder::new()
            .column("id", DataType::Int)
            .column("name", DataType::String),
        vec![row!(1i64, "art"), row!(2i64, "cars"), row!(3i64, "books")],
    )
    .unwrap();
    e
}

/// Feed five bids: A..E at minutes 1..5 with prices 2,4,4,1,5.
fn feed_bids(q: &mut RunningQuery) {
    let bids = [
        (1i64, 2i64, "A"),
        (2, 4, "B"),
        (3, 4, "C"),
        (4, 1, "D"),
        (5, 5, "E"),
    ];
    for (m, price, item) in bids {
        q.insert("Bid", Ts::hm(8, m), row!(Ts::hm(8, m), price, item))
            .unwrap();
    }
}

fn run_bids(sql: &str) -> Vec<Row> {
    let e = engine();
    let mut q = e.execute(sql).unwrap();
    feed_bids(&mut q);
    q.finish(Ts::hm(9, 0)).unwrap();
    q.table().unwrap()
}

#[test]
fn projection_arithmetic_aliases() {
    let rows = run_bids("SELECT item, price * 10 + 1 AS scaled FROM Bid WHERE price >= 4");
    assert_eq!(
        rows,
        vec![row!("B", 41i64), row!("C", 41i64), row!("E", 51i64)]
    );
}

#[test]
fn distinct_eliminates_duplicates() {
    let rows = run_bids("SELECT DISTINCT price FROM Bid WHERE price = 4");
    assert_eq!(rows, vec![row!(4i64)]);
}

#[test]
fn global_aggregates() {
    let rows = run_bids("SELECT COUNT(*), SUM(price), MIN(price), MAX(price), AVG(price) FROM Bid");
    assert_eq!(rows, vec![row!(5i64, 16i64, 1i64, 5i64, 3.2f64)]);
}

#[test]
fn global_aggregate_over_empty_stream_is_one_row() {
    let e = engine();
    let mut q = e.execute("SELECT COUNT(*), MAX(price) FROM Bid").unwrap();
    q.finish(Ts::hm(9, 0)).unwrap();
    assert_eq!(
        q.table().unwrap(),
        vec![Row::new(vec![Value::Int(0), Value::Null])]
    );
}

#[test]
fn group_by_with_having() {
    let rows = run_bids("SELECT price, COUNT(*) AS n FROM Bid GROUP BY price HAVING COUNT(*) > 1");
    assert_eq!(rows, vec![row!(4i64, 2i64)]);
}

#[test]
fn count_distinct() {
    let rows = run_bids("SELECT COUNT(DISTINCT price) FROM Bid");
    assert_eq!(rows, vec![row!(4i64)]);
}

#[test]
fn case_and_cast() {
    let rows = run_bids(
        "SELECT item, CASE WHEN price >= 4 THEN 'high' ELSE 'low' END AS tier,
                CAST(price AS DOUBLE) AS fprice
         FROM Bid WHERE item IN ('A', 'E')",
    );
    assert_eq!(
        rows,
        vec![row!("A", "low", 2.0f64), row!("E", "high", 5.0f64)]
    );
}

#[test]
fn between_like_is_null() {
    let rows = run_bids(
        "SELECT item FROM Bid WHERE price BETWEEN 2 AND 4 AND item LIKE '_' AND item IS NOT NULL",
    );
    assert_eq!(rows, vec![row!("A"), row!("B"), row!("C")]);
}

#[test]
fn scalar_functions() {
    let rows = run_bids(
        "SELECT UPPER(item), ABS(price - 10), COALESCE(NULL, item) FROM Bid WHERE item = 'A'",
    );
    assert_eq!(rows, vec![row!("A", 8i64, "A")]);
}

#[test]
fn union_all_keeps_duplicates() {
    let rows = run_bids(
        "SELECT price FROM Bid WHERE item = 'B' UNION ALL SELECT price FROM Bid WHERE price = 4",
    );
    assert_eq!(rows.len(), 3);
}

#[test]
fn scalar_subquery_in_where() {
    let rows = run_bids("SELECT item, price FROM Bid WHERE price = (SELECT MAX(price) FROM Bid)");
    assert_eq!(rows, vec![row!("E", 5i64)]);
}

#[test]
fn stream_to_table_join() {
    let e = engine();
    let mut q = e
        .execute(
            "SELECT B.item, C.name FROM Bid B JOIN Category C ON B.price = C.id \
             ORDER BY item",
        )
        .unwrap();
    feed_bids(&mut q);
    // price 2 -> cars, price 1 -> art; 4 and 5 have no category.
    assert_eq!(
        q.table().unwrap(),
        vec![row!("A", "cars"), row!("D", "art")]
    );
}

#[test]
fn left_join_null_extends() {
    let e = engine();
    let mut q = e
        .execute("SELECT B.item, C.name FROM Bid B LEFT JOIN Category C ON B.price = C.id")
        .unwrap();
    feed_bids(&mut q);
    let rows = q.table().unwrap();
    assert_eq!(rows.len(), 5);
    assert!(rows.contains(&Row::new(vec![Value::str("E"), Value::Null])));
    assert!(rows.contains(&row!("A", "cars")));
}

#[test]
fn stream_stream_join() {
    let e = engine();
    let mut q = e
        .execute("SELECT B.item, A.seller FROM Bid B JOIN Auction A ON B.price = A.id")
        .unwrap();
    // Auction arrives *after* the matching bid: the join must remember.
    q.insert("Bid", Ts::hm(8, 1), row!(Ts::hm(8, 1), 7i64, "X"))
        .unwrap();
    assert!(q.table().unwrap().is_empty());
    q.insert("Auction", Ts::hm(8, 2), row!(7i64, "alice", Ts::hm(8, 2)))
        .unwrap();
    assert_eq!(q.table().unwrap(), vec![row!("X", "alice")]);
    // Retraction of the bid removes the join result.
    q.retract("Bid", Ts::hm(8, 3), row!(Ts::hm(8, 1), 7i64, "X"))
        .unwrap();
    assert!(q.table().unwrap().is_empty());
}

#[test]
fn retractions_update_aggregates() {
    let e = engine();
    let mut q = e
        .execute("SELECT item, SUM(price) AS total FROM Bid GROUP BY item")
        .unwrap();
    q.insert("Bid", Ts(1), row!(Ts(1), 10i64, "A")).unwrap();
    q.insert("Bid", Ts(2), row!(Ts(2), 5i64, "A")).unwrap();
    assert_eq!(q.table().unwrap(), vec![row!("A", 15i64)]);
    q.retract("Bid", Ts(3), row!(Ts(1), 10i64, "A")).unwrap();
    assert_eq!(q.table().unwrap(), vec![row!("A", 5i64)]);
    q.retract("Bid", Ts(4), row!(Ts(2), 5i64, "A")).unwrap();
    assert!(q.table().unwrap().is_empty(), "group vanishes at zero rows");
}

#[test]
fn hop_windows_count_overlaps() {
    let rows = run_bids(
        "SELECT wend, COUNT(*) FROM Hop(data => TABLE(Bid), \
         timecol => DESCRIPTOR(bidtime), dur => INTERVAL '4' MINUTES, \
         hopsize => INTERVAL '2' MINUTES) GROUP BY wend",
    );
    // Bids at 8:01..8:05. Window ends every 2 min covering 4 min:
    // wend 8:02 covers (7:58,8:02): bid 8:01 -> 1
    // wend 8:04 covers [8:00,8:04): bids 1,2,3 -> 3
    // wend 8:06: bids 2,3,4,5 -> 4; wend 8:08: bids 4,5 -> 2.
    assert_eq!(
        rows,
        vec![
            row!(Ts::hm(8, 2), 1i64),
            row!(Ts::hm(8, 4), 3i64),
            row!(Ts::hm(8, 6), 4i64),
            row!(Ts::hm(8, 8), 2i64),
        ]
    );
}

#[test]
fn order_by_limit() {
    let rows = run_bids("SELECT item, price FROM Bid ORDER BY price DESC, item LIMIT 3");
    assert_eq!(
        rows,
        vec![row!("E", 5i64), row!("B", 4i64), row!("C", 4i64)]
    );
}

#[test]
fn late_data_dropped_from_closed_windows() {
    let e = engine();
    let mut q = e
        .execute(
            "SELECT wend, COUNT(*) FROM Tumble(data => TABLE(Bid), \
             timecol => DESCRIPTOR(bidtime), dur => INTERVAL '10' MINUTE) GROUP BY wend",
        )
        .unwrap();
    q.insert("Bid", Ts::hm(8, 1), row!(Ts::hm(8, 1), 1i64, "A"))
        .unwrap();
    q.watermark("Bid", Ts::hm(8, 20), Ts::hm(8, 15)).unwrap();
    // This bid's window [8:00, 8:10) is closed: dropped (Extension 2).
    q.insert("Bid", Ts::hm(8, 21), row!(Ts::hm(8, 2), 1i64, "late"))
        .unwrap();
    assert_eq!(q.table().unwrap(), vec![row!(Ts::hm(8, 10), 1i64)]);
}

#[test]
fn allowed_lateness_admits_stragglers() {
    let mut e = Engine::new().with_allowed_lateness(onesql_types::Duration::from_minutes(10));
    e.register_stream(
        "Bid",
        StreamBuilder::new()
            .event_time_column("bidtime")
            .column("price", DataType::Int)
            .column("item", DataType::String),
    );
    let mut q = e
        .execute(
            "SELECT wend, COUNT(*) FROM Tumble(data => TABLE(Bid), \
             timecol => DESCRIPTOR(bidtime), dur => INTERVAL '10' MINUTE) GROUP BY wend",
        )
        .unwrap();
    q.insert("Bid", Ts::hm(8, 1), row!(Ts::hm(8, 1), 1i64, "A"))
        .unwrap();
    q.watermark("Bid", Ts::hm(8, 20), Ts::hm(8, 15)).unwrap();
    // Within the 10-minute lateness: still counted.
    q.insert("Bid", Ts::hm(8, 21), row!(Ts::hm(8, 2), 1i64, "late"))
        .unwrap();
    assert_eq!(q.table().unwrap(), vec![row!(Ts::hm(8, 10), 2i64)]);
}

#[test]
fn errors_are_informative() {
    let e = engine();
    let err = e.execute("SELECT nope FROM Bid").unwrap_err();
    assert!(err.to_string().contains("nope"), "{err}");
    let err = e.execute("SELECT * FROM Missing").unwrap_err();
    assert!(err.to_string().contains("Missing"), "{err}");
    let err = e
        .execute("SELECT item FROM Bid GROUP BY price")
        .unwrap_err();
    assert!(err.to_string().contains("GROUP BY"), "{err}");
    let err = e.execute("SELECT price + item FROM Bid").unwrap_err();
    assert!(err.to_string().to_lowercase().contains("type"), "{err}");
}

#[test]
fn explain_shows_streaming_decisions() {
    let e = engine();
    let plan = e
        .explain(
            "SELECT wend, MAX(price) FROM Tumble(data => TABLE(Bid), \
             timecol => DESCRIPTOR(bidtime), dur => INTERVAL '10' MINUTE) GROUP BY wend",
        )
        .unwrap();
    assert!(plan.contains("mode=windowed"), "{plan}");
    let plan = e
        .explain("SELECT item, COUNT(*) FROM Bid GROUP BY item")
        .unwrap();
    assert!(plan.contains("mode=retraction"), "{plan}");
}

#[test]
fn changelog_is_consistent_with_table_at_every_instant() {
    let e = engine();
    let mut q = e
        .execute("SELECT price, COUNT(*) FROM Bid GROUP BY price")
        .unwrap();
    feed_bids(&mut q);
    let log = q.changelog().clone();
    for m in 0..10 {
        let at = Ts::hm(8, m);
        assert_eq!(log.snapshot_at(at).to_rows(), q.table_at(at).unwrap());
    }
}
