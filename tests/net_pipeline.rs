//! Pipelines that span processes, black-box: a producer and a consumer
//! connected only by a socket must behave exactly like one process — and
//! killing the consumer mid-stream must be invisible in the changelog.
//!
//! The exactly-once test is the cross-process version of
//! `tests/sharded_pipeline.rs`: run NEXMark Q7 sharded over a socket and
//! let `onesql_checker`'s seeded nemesis pick where checkpoints land and
//! where the consumer dies (driver, source, and listener all dropped); a
//! fresh consumer process-equivalent restores from the checkpoint each
//! time, and the checker's oracles — replay-identical effective history,
//! monotone watermarks, balanced retractions — replace hand-rolled
//! changelog comparison (see `docs/CHECKING.md`). The producer survives
//! the crash: its bounded replay spool plus the resume handshake re-send
//! exactly the unacknowledged suffix.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration as StdDuration;

use onesql::connect::{register_nexmark_streams, PartitionedNexmarkSource, PartitionedSource};
use onesql::core::StreamRow;
use onesql::{
    DriverConfig, Engine, NetAddr, NetConfig, NetPublisher, NetSink, NetSource,
    PartitionedNetSource, ShardedConfig, ShardedPipelineDriver, Sink, Source, StreamBuilder,
};
use onesql_nexmark::queries;
use onesql_types::{row, DataType, Result, Ts};

const NEXMARK_EVENTS: u64 = 6_000;
const PARTS: usize = 4;
const BATCH: usize = 256;
const STREAMS: [&str; 3] = ["Person", "Auction", "Bid"];

/// Unique socket path per test, replaced on rebind (consumer restart).
fn socket_path(tag: &str) -> std::path::PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join("onesql_net_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!(
        "{tag}-{}-{}.sock",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Producer-side config: frames aligned with the consumer's poll batches
/// (see the determinism notes in `onesql_connect::net`), generous windows
/// so a consumer restart is survived, not raced.
fn net_config() -> NetConfig {
    NetConfig {
        batch_events: BATCH,
        connect_timeout: StdDuration::from_secs(30),
        poll_wait: StdDuration::from_secs(10),
        ack_wait: StdDuration::from_secs(30),
        ..NetConfig::default()
    }
}

struct CollectingSink {
    rows: Arc<Mutex<Vec<StreamRow>>>,
}

fn collecting_sink() -> (Arc<Mutex<Vec<StreamRow>>>, CollectingSink) {
    let rows = Arc::new(Mutex::new(Vec::new()));
    (rows.clone(), CollectingSink { rows })
}

impl Sink for CollectingSink {
    fn name(&self) -> &str {
        "collect"
    }
    fn write(&mut self, rows: &[StreamRow]) -> Result<()> {
        self.rows.lock().unwrap().extend_from_slice(rows);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The producer "process": NEXMark over sockets, surviving consumer death.
// ---------------------------------------------------------------------------

/// Pump the seeded NEXMark workload through one publisher per partition,
/// then wait until the consumer side has acknowledged every event (which
/// outlives consumer crashes: the publishers reconnect and replay).
fn run_producer(addr: NetAddr) -> Result<()> {
    let mut source = PartitionedNexmarkSource::seeded(7, NEXMARK_EVENTS, PARTS);
    let streams: Vec<String> = STREAMS.iter().map(|s| s.to_string()).collect();
    let mut publishers: Vec<NetPublisher> = (0..PARTS)
        .map(|p| NetPublisher::new(addr.clone(), p, streams.clone(), net_config()))
        .collect();
    let mut live: Vec<bool> = vec![true; PARTS];
    while live.iter().any(|&l| l) {
        for p in 0..PARTS {
            if !live[p] {
                continue;
            }
            let batch = source.poll_partition(p, BATCH)?;
            for event in batch.events {
                publishers[p].send(event.stream, event.ptime, event.change)?;
            }
            if let Some(wm) = batch.watermark {
                publishers[p].watermark(wm)?;
            }
            if batch.status == onesql::SourceStatus::Finished {
                publishers[p].finish()?;
                live[p] = false;
            }
        }
    }
    // Drain acks across ALL partitions in one loop: a consumer restored
    // mid-stream needs every partition replayed before it can finish and
    // send the final acks, so blocking on one publisher at a time would
    // deadlock (see NetPublisher::poll_drained).
    let deadline = std::time::Instant::now() + StdDuration::from_secs(60);
    loop {
        let mut all = true;
        for publisher in &mut publishers {
            all &= publisher.poll_drained()?;
        }
        if all {
            return Ok(());
        }
        if std::time::Instant::now() >= deadline {
            return Err(onesql_types::Error::exec("producer drain timed out"));
        }
        std::thread::sleep(StdDuration::from_millis(2));
    }
}

/// Like [`run_producer`], but the producer "process" is killed once each
/// partition has published `limit` events: the publishers are dropped
/// without `finish`, spool and all — exactly what a SIGKILL leaves
/// behind. Frames already on the wire stay; the trailing partial frame
/// dies with the process.
fn run_producer_killed_at(addr: NetAddr, limit: u64) -> Result<()> {
    let mut source = PartitionedNexmarkSource::seeded(7, NEXMARK_EVENTS, PARTS);
    let streams: Vec<String> = STREAMS.iter().map(|s| s.to_string()).collect();
    let mut publishers: Vec<NetPublisher> = (0..PARTS)
        .map(|p| NetPublisher::new(addr.clone(), p, streams.clone(), net_config()))
        .collect();
    for (p, publisher) in publishers.iter_mut().enumerate() {
        while publisher.offset() < limit {
            let want = (limit - publisher.offset()).min(BATCH as u64) as usize;
            let batch = source.poll_partition(p, want)?;
            for event in batch.events {
                publisher.send(event.stream, event.ptime, event.change)?;
            }
            if let Some(wm) = batch.watermark {
                publisher.watermark(wm)?;
            }
            if batch.status == onesql::SourceStatus::Finished {
                break;
            }
        }
    }
    Ok(()) // publishers dropped here, mid-stream: the kill
}

/// The consumer "process": a sharded Q7 pipeline whose only input is the
/// socket. Fixed poll batches aligned with the producer's frames keep the
/// changelog a pure function of the byte stream.
fn bind_consumer(path: &std::path::Path) -> (Arc<Mutex<Vec<StreamRow>>>, ShardedPipelineDriver) {
    bind_consumer_with(path, net_config())
}

fn bind_consumer_with(
    path: &std::path::Path,
    config: NetConfig,
) -> (Arc<Mutex<Vec<StreamRow>>>, ShardedPipelineDriver) {
    let source = PartitionedNetSource::bind(
        NetAddr::unix(path),
        STREAMS.iter().map(|s| s.to_string()).collect(),
        PARTS,
        config,
    )
    .unwrap();
    let mut engine = Engine::new();
    register_nexmark_streams(&mut engine);
    engine.attach_partitioned_source(Box::new(source)).unwrap();
    let (rows, sink) = collecting_sink();
    engine.attach_sink(Box::new(sink));
    let config = ShardedConfig::new(2).with_driver(DriverConfig {
        batch_size: BATCH,
        adaptive: None,
        ..DriverConfig::default()
    });
    let driver = engine.run_sharded_pipeline(queries::Q7, config).unwrap();
    (rows, driver)
}

/// One uninterrupted producer/consumer run; returns its observable
/// history (the checker's reference).
fn reference_history(tag: &str, config: NetConfig) -> Vec<onesql::HistoryEvent> {
    let path = socket_path(tag);
    let (_rows, mut driver) = bind_consumer_with(&path, config);
    let tap = onesql::HistoryTap::new();
    driver.set_history_tap(tap.clone());
    let addr = NetAddr::unix(&path);
    let producer = std::thread::spawn(move || run_producer(addr));
    driver.run().unwrap();
    producer.join().unwrap().unwrap();
    let history = tap.events();
    assert!(
        history
            .iter()
            .any(|e| matches!(e, onesql::HistoryEvent::Emitted(_))),
        "Q7 produced no output"
    );
    history
}

#[test]
fn nexmark_q7_survives_consumer_kills_under_the_nemesis() {
    use onesql_checker::{
        effective_history, replay_identical, retraction_balanced, watermark_monotone, Nemesis,
    };

    let reference = reference_history("q7-reference", net_config());

    // Victim: same workload, but the seeded nemesis decides where the
    // checkpoints land, how much uncommitted staging each wire kill
    // discards, and how many kills there are.
    let mut nemesis = Nemesis::seeded(31);
    let plan = nemesis.plan(NEXMARK_EVENTS);
    assert!(plan.cycles.len() >= 2, "want at least a double kill");

    let path = socket_path("q7-victim");
    let addr = NetAddr::unix(&path);
    let producer = {
        let addr = addr.clone();
        std::thread::spawn(move || run_producer(addr))
    };
    let tap = onesql::HistoryTap::new();
    let (_rows, mut victim) = bind_consumer(&path);
    victim.set_history_tap(tap.clone());

    for cycle in &plan.cycles {
        while !victim.is_finished() && victim.events_in() < cycle.checkpoint_at {
            victim.step().unwrap();
        }
        if victim.is_finished() {
            break;
        }
        let checkpoint = victim.checkpoint().unwrap();
        // The checkpoint is "persisted" (it lives in this test);
        // acknowledge it so the producer trims its spool — resume must
        // still work from exactly the acked offsets.
        victim.ack_checkpoint(&checkpoint).unwrap();
        while !victim.is_finished() && victim.events_in() < cycle.kill_at {
            victim.step().unwrap();
        }
        // The crash: driver, workers, net source, and listener all die.
        // The producer is connected to nothing and must hold its spool.
        drop(victim);

        // The restored consumer "process": a fresh listener on the same
        // address, a fresh driver, state from the checkpoint. Its
        // handshake tells the reconnecting producer where to resume.
        let (rows, resumed) = bind_consumer(&path);
        let _ = rows;
        victim = resumed;
        victim.set_history_tap(tap.clone());
        victim.restore(&checkpoint).unwrap();
        let restored_events: u64 = checkpoint.offsets.iter().flatten().sum();
        assert_eq!(victim.metrics().events_in, restored_events);
    }
    victim.run().unwrap();
    producer.join().unwrap().unwrap();

    // The oracles replace hand-rolled changelog comparison: splice out
    // each kill's discarded staging, then the effective history must be
    // the uninterrupted run's.
    let effective = effective_history(&tap.events());
    let mut violations = replay_identical(&reference, &effective);
    violations.extend(watermark_monotone(&effective));
    violations.extend(retraction_balanced(&effective));
    assert!(violations.is_empty(), "oracle violations: {violations:#?}");
}

// ---------------------------------------------------------------------------
// The mirror image: the *producer* process is killed and restarted.
// ---------------------------------------------------------------------------

#[test]
fn nexmark_q7_survives_producer_kill_and_restart() {
    use onesql_checker::{replay_identical, retraction_balanced, watermark_monotone};

    // Consumer-side restart tolerance: a dead connection releases its
    // partition for the producer's next incarnation instead of
    // poisoning the pipeline.
    let restart_config = NetConfig {
        producer_restarts: true,
        ..net_config()
    };

    // Reference: same tolerant consumer, producer never killed.
    let reference = reference_history("q7-pref", restart_config);

    // Victim: the producer dies once each partition published ~half its
    // share, then a fresh producer process regenerates the same
    // deterministic workload from the start. The handshake floor drops
    // everything the consumer already ingested, so the observable
    // history must come out identical — the consumer never even
    // notices, and there is nothing for `effective_history` to splice.
    let path = socket_path("q7-pkill");
    let addr = NetAddr::unix(&path);
    let (_rows, mut driver) = bind_consumer_with(&path, restart_config);
    let tap = onesql::HistoryTap::new();
    driver.set_history_tap(tap.clone());
    let kill_at = NEXMARK_EVENTS / PARTS as u64 / 2;
    let first = {
        let addr = addr.clone();
        std::thread::spawn(move || run_producer_killed_at(addr, kill_at))
    };
    // Drive the consumer while the first incarnation runs and dies.
    // (Its handshakes block until the driver polls, so stepping here is
    // what lets the producer make progress at all.)
    while !first.is_finished() {
        driver.step().unwrap();
    }
    first.join().unwrap().unwrap();

    // The restarted producer re-publishes from scratch and finishes.
    let second = std::thread::spawn(move || run_producer(addr));
    driver.run().unwrap();
    second.join().unwrap().unwrap();

    let history = tap.events();
    let mut violations = replay_identical(&reference, &history);
    violations.extend(watermark_monotone(&history));
    violations.extend(retraction_balanced(&history));
    assert!(
        violations.is_empty(),
        "oracle violations after producer restart: {violations:#?}"
    );
}

// ---------------------------------------------------------------------------
// Plain driver over TCP.
// ---------------------------------------------------------------------------

#[test]
fn filter_pipeline_over_tcp() {
    let source = NetSource::bind(
        NetAddr::tcp("127.0.0.1:0"),
        vec!["Bid".to_string()],
        NetConfig::default(),
    )
    .unwrap();
    let addr = source.local_addr();
    // Exercise the Source trait surface directly before attaching.
    assert_eq!(source.streams(), &["Bid".to_string()]);

    let producer = std::thread::spawn(move || -> Result<u64> {
        let mut publisher =
            NetPublisher::new(addr, 0, vec!["Bid".to_string()], NetConfig::default());
        for i in 0..100i64 {
            publisher.insert(0, Ts(i), row!(i % 7, i, Ts(i)))?;
        }
        publisher.watermark(Ts(99))?;
        publisher.finish()?;
        Ok(publisher.offset())
    });

    let mut engine = Engine::new();
    engine.register_stream(
        "Bid",
        StreamBuilder::new()
            .column("auction", DataType::Int)
            .column("price", DataType::Int)
            .event_time_column("bidtime"),
    );
    engine.attach_source(Box::new(source)).unwrap();
    let (rows, sink) = collecting_sink();
    engine.attach_sink(Box::new(sink));
    let mut driver = engine
        .run_pipeline("SELECT auction, price FROM Bid WHERE price >= 50 EMIT STREAM")
        .unwrap();
    let metrics = driver.run().unwrap();
    assert_eq!(metrics.events_in, 100);
    assert_eq!(metrics.events_out, 50);
    assert_eq!(producer.join().unwrap().unwrap(), 100);
    assert_eq!(rows.lock().unwrap().len(), 50);
}

// ---------------------------------------------------------------------------
// Two pipelines chained across "processes": changelog out, stream in.
// ---------------------------------------------------------------------------

#[test]
fn pipelines_chain_through_net_sink() {
    // Downstream pipeline: consumes the upstream changelog as a stream.
    let source = NetSource::bind(
        NetAddr::tcp("127.0.0.1:0"),
        vec!["Mid".to_string()],
        NetConfig::default(),
    )
    .unwrap();
    let addr = source.local_addr();

    // Upstream pipeline in its own thread: filter bids, ship the output
    // changelog through a NetSink.
    let upstream = std::thread::spawn(move || -> Result<()> {
        let (publisher, channel_source) = onesql::connect::channel("Bid", 64);
        let mut engine = Engine::new();
        engine.register_stream(
            "Bid",
            StreamBuilder::new()
                .column("auction", DataType::Int)
                .column("price", DataType::Int)
                .event_time_column("bidtime"),
        );
        engine.attach_source(Box::new(channel_source))?;
        engine.attach_sink(Box::new(NetSink::connect(
            addr,
            "Mid",
            0,
            NetConfig::default(),
        )));
        let mut driver =
            engine.run_pipeline("SELECT auction, price FROM Bid WHERE price > 10 EMIT STREAM")?;
        for i in 0..60i64 {
            publisher.insert(Ts(i), row!(i % 5, i, Ts(i)))?;
        }
        publisher.finish()?;
        driver.run()?;
        Ok(())
    });

    let mut engine = Engine::new();
    engine.register_stream(
        "Mid",
        StreamBuilder::new()
            .column("auction", DataType::Int)
            .column("price", DataType::Int),
    );
    engine.attach_source(Box::new(source)).unwrap();
    let mut driver = engine
        .run_pipeline("SELECT auction, COUNT(*), SUM(price) FROM Mid GROUP BY auction")
        .unwrap();
    driver.run().unwrap();
    upstream.join().unwrap().unwrap();

    // 60 bids, prices 0..60, filter keeps 11..59 → 49 rows across 5 keys.
    assert_eq!(driver.metrics().events_in, 49);
    let mut table = driver.query().table().unwrap();
    table.sort();
    let total: i64 = (11..60).sum();
    let counted: i64 = table
        .iter()
        .map(|r| r.value(1).unwrap().as_int().unwrap())
        .sum();
    let summed: i64 = table
        .iter()
        .map(|r| r.value(2).unwrap().as_int().unwrap())
        .sum();
    assert_eq!(table.len(), 5);
    assert_eq!(counted, 49);
    assert_eq!(summed, total);
}

// ---------------------------------------------------------------------------
// Malformed frames poison the driver — never panic, never half-continue.
// ---------------------------------------------------------------------------

#[test]
fn malformed_frames_poison_the_sharded_driver() {
    let source = PartitionedNetSource::bind(
        NetAddr::tcp("127.0.0.1:0"),
        vec!["Bid".to_string()],
        1,
        NetConfig {
            poll_wait: StdDuration::from_millis(100),
            ..NetConfig::default()
        },
    )
    .unwrap();
    let addr = source.local_addr();

    let mut engine = Engine::new();
    engine.register_stream(
        "Bid",
        StreamBuilder::new()
            .column("auction", DataType::Int)
            .column("price", DataType::Int)
            .event_time_column("bidtime"),
    );
    engine.attach_partitioned_source(Box::new(source)).unwrap();
    let mut driver = engine
        .run_sharded_pipeline("SELECT auction, price FROM Bid", ShardedConfig::new(2))
        .unwrap();

    // A "producer" speaking a future protocol version: the handshake is
    // rejected and the failure must reach the driver as a source error.
    let client = std::thread::spawn(move || {
        use std::io::Write;
        let NetAddr::Tcp(addr) = addr else {
            unreachable!()
        };
        let mut conn = std::net::TcpStream::connect(addr).unwrap();
        conn.write_all(b"OSQW").unwrap();
        conn.write_all(&99u16.to_le_bytes()).unwrap();
    });
    let mut poisoned_err = None;
    for _ in 0..100 {
        if let Err(e) = driver.step() {
            poisoned_err = Some(e.to_string());
            break;
        }
    }
    client.join().unwrap();
    let err = poisoned_err.expect("driver never surfaced the protocol error");
    assert!(err.contains("wire version 99"), "{err}");
    // The driver is now poisoned: stepping and checkpointing both refuse.
    let err = driver.step().unwrap_err().to_string();
    assert!(err.contains("poisoned"), "{err}");
    let err = driver.checkpoint().unwrap_err().to_string();
    assert!(err.contains("poisoned"), "{err}");
}

/// Checkpoints of a net-fed pipeline record per-partition offsets, and a
/// fresh (never-streamed) net source accepts the seek restore performs.
#[test]
fn net_checkpoint_offsets_roundtrip_into_fresh_source() {
    let mut fresh = PartitionedNetSource::bind(
        NetAddr::tcp("127.0.0.1:0"),
        vec!["Bid".to_string()],
        3,
        NetConfig::default(),
    )
    .unwrap();
    // Restore calls seek on every partition, including offset 0.
    fresh.seek(0, 0).unwrap();
    fresh.seek(1, 512).unwrap();
    fresh.seek(2, 1024).unwrap();
    assert_eq!(fresh.offset(0), 0);
    assert_eq!(fresh.offset(1), 512);
    assert_eq!(fresh.offset(2), 1024);
}
