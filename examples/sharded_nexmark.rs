//! The sharded pipeline runtime, end to end: a 4-partition NEXMark source
//! feeding 4 hash-sharded query workers — then a simulated crash halfway
//! through, and an exactly-once resume from the `PipelineCheckpoint`.
//!
//! Run with: `cargo run --example sharded_nexmark`

use std::sync::{Arc, Mutex};

use onesql::connect::{register_nexmark_streams, PartitionedNexmarkSource};
use onesql::core::StreamRow;
use onesql::{Engine, ShardedConfig, ShardedPipelineDriver, Sink};

const EVENTS: u64 = 20_000;
const PARTITIONS: usize = 4;
const WORKERS: usize = 4;

const SQL: &str = "SELECT wend, auction, COUNT(*), SUM(price), MAX(price) \
     FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(dateTime), \
     dur => INTERVAL '1' MINUTE) GROUP BY wend, auction EMIT AFTER WATERMARK";

struct CollectingSink(Arc<Mutex<Vec<StreamRow>>>);

impl Sink for CollectingSink {
    fn name(&self) -> &str {
        "collect"
    }
    fn write(&mut self, rows: &[StreamRow]) -> onesql_types::Result<()> {
        self.0.lock().unwrap().extend_from_slice(rows);
        Ok(())
    }
}

fn pipeline() -> (Arc<Mutex<Vec<StreamRow>>>, ShardedPipelineDriver) {
    let mut engine = Engine::new();
    register_nexmark_streams(&mut engine);
    engine
        .attach_partitioned_source(Box::new(PartitionedNexmarkSource::seeded(
            42, EVENTS, PARTITIONS,
        )))
        .expect("streams registered");
    let rows = Arc::new(Mutex::new(Vec::new()));
    engine.attach_sink(Box::new(CollectingSink(rows.clone())));
    let driver = engine
        .run_sharded_pipeline(SQL, ShardedConfig::new(WORKERS))
        .expect("pipeline plans");
    (rows, driver)
}

fn main() {
    // Reference: the uninterrupted run.
    let (reference_rows, mut reference) = pipeline();
    reference.run().expect("pipeline runs");
    let reference_out = reference_rows.lock().unwrap().clone();
    println!(
        "uninterrupted: {EVENTS} events through {WORKERS} workers -> {} output rows",
        reference_out.len()
    );

    // Take two: kill the pipeline halfway.
    let (rows, mut victim) = pipeline();
    while !victim.is_finished() && victim.events_in() < EVENTS / 2 {
        victim.step().expect("step");
    }
    let checkpoint = victim.checkpoint().expect("checkpoint");
    let consumed: u64 = checkpoint.offsets.iter().flatten().sum();
    let mut observed = rows.lock().unwrap().clone();
    println!(
        "crash after {consumed} events (offsets per partition: {:?}), \
         {} rows already at the sink",
        checkpoint.offsets[0],
        observed.len()
    );
    drop(victim); // worker threads reaped, all live state gone

    // Take three: fresh driver, fresh (replayable) sources, restore, run.
    let (resumed_rows, mut resumed) = pipeline();
    resumed.restore(&checkpoint).expect("restore");
    resumed.run().expect("resumed run");
    observed.extend(resumed_rows.lock().unwrap().iter().cloned());

    assert_eq!(
        observed, reference_out,
        "resumed changelog must be identical to the uninterrupted run"
    );
    println!(
        "resumed:       {} more rows -> {} total, byte-identical to the \
         uninterrupted changelog (exactly-once)",
        observed.len() - rows.lock().unwrap().len(),
        observed.len()
    );

    let metrics = resumed.metrics().clone();
    println!();
    println!("resumed pipeline metrics:");
    println!("  events in:      {}", metrics.events_in);
    println!("  events out:     {}", metrics.events_out);
    println!("  watermarks in:  {}", metrics.watermarks_in);
    println!("  rounds:         {}", metrics.rounds);
    for s in &metrics.sources {
        println!(
            "  source {:<22} {:>6} events, finished={}",
            s.name, s.events, s.finished
        );
    }
    println!(
        "  output watermark: {} (final: {})",
        metrics.output_watermark,
        metrics.output_watermark.is_final()
    );
}
