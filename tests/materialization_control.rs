//! Materialization-control semantics beyond the paper's listings:
//! Extension 7 (combined delay + watermark, the early/on-time/late
//! pattern), table-mode periodic delay, and interactions with lateness.

use onesql_core::{Engine, StreamBuilder};
use onesql_types::{row, DataType, Duration, Ts};

fn engine() -> Engine {
    let mut e = Engine::new();
    e.register_stream(
        "Bid",
        StreamBuilder::new()
            .event_time_column("bidtime")
            .column("price", DataType::Int)
            .column("item", DataType::String),
    );
    e
}

const WINDOWED_SUM: &str = "SELECT wend, SUM(price) FROM Tumble(data => TABLE(Bid), \
     timecol => DESCRIPTOR(bidtime), dur => INTERVAL '10' MINUTE) GROUP BY wend";

/// Extension 7: `EMIT STREAM AFTER DELAY d AND AFTER WATERMARK` produces
/// periodic early results and an on-time result at the watermark.
#[test]
fn combined_delay_and_watermark_is_early_on_time() {
    let e = engine();
    let mut q = e
        .execute(&format!(
            "{WINDOWED_SUM} EMIT STREAM AFTER DELAY INTERVAL '5' MINUTES AND AFTER WATERMARK"
        ))
        .unwrap();
    // Three bids for window [8:00, 8:10) at ptime 8:01, 8:03, 8:08.
    q.insert("Bid", Ts::hm(8, 1), row!(Ts::hm(8, 1), 1i64, "a"))
        .unwrap();
    q.insert("Bid", Ts::hm(8, 3), row!(Ts::hm(8, 3), 2i64, "b"))
        .unwrap();
    // Delay timer armed at 8:01 fires at 8:06 (early partial: sum 3).
    q.insert("Bid", Ts::hm(8, 8), row!(Ts::hm(8, 8), 4i64, "c"))
        .unwrap();
    // Watermark closes the window at 8:12 (on-time flush: 3 -> 7).
    q.watermark("Bid", Ts::hm(8, 12), Ts::hm(8, 10)).unwrap();

    let rows = q.stream_rows().unwrap();
    let got: Vec<(bool, Ts, i64)> = rows
        .iter()
        .map(|r| (r.undo, r.ptime, r.row.value(1).unwrap().as_int().unwrap()))
        .collect();
    assert_eq!(
        got,
        vec![
            // Early firing at 8:06 with the partial sum of the first two.
            (false, Ts::hm(8, 6), 3),
            // On-time firing at the watermark: replace 3 with the final 7.
            (true, Ts::hm(8, 12), 3),
            (false, Ts::hm(8, 12), 7),
        ]
    );
}

/// With allowed lateness, a late row triggers a *late* periodic firing
/// after the on-time one — the full early/on-time/late pattern of [6].
#[test]
fn late_firings_after_watermark_with_lateness() {
    let mut e = Engine::new().with_allowed_lateness(Duration::from_minutes(30));
    e.register_stream(
        "Bid",
        StreamBuilder::new()
            .event_time_column("bidtime")
            .column("price", DataType::Int)
            .column("item", DataType::String),
    );
    let mut q = e
        .execute(&format!(
            "{WINDOWED_SUM} EMIT STREAM AFTER DELAY INTERVAL '5' MINUTES AND AFTER WATERMARK"
        ))
        .unwrap();
    q.insert("Bid", Ts::hm(8, 1), row!(Ts::hm(8, 1), 1i64, "a"))
        .unwrap();
    // On-time: watermark passes the window before the delay fires.
    q.watermark("Bid", Ts::hm(8, 2), Ts::hm(8, 10)).unwrap();
    // Late but allowed row arrives at 8:15; its delayed firing is 8:20.
    q.insert("Bid", Ts::hm(8, 15), row!(Ts::hm(8, 5), 9i64, "late"))
        .unwrap();
    q.advance_to(Ts::hm(8, 21)).unwrap();

    let rows = q.stream_rows().unwrap();
    let got: Vec<(bool, Ts, i64)> = rows
        .iter()
        .map(|r| (r.undo, r.ptime, r.row.value(1).unwrap().as_int().unwrap()))
        .collect();
    assert_eq!(
        got,
        vec![
            (false, Ts::hm(8, 2), 1), // on-time
            (true, Ts::hm(8, 20), 1), // late refinement, 5 min after change
            (false, Ts::hm(8, 20), 10),
        ]
    );
}

/// `EMIT AFTER DELAY` without STREAM: the *table* refreshes periodically.
#[test]
fn table_mode_periodic_delay() {
    let e = engine();
    let mut q = e
        .execute(&format!(
            "{WINDOWED_SUM} EMIT AFTER DELAY INTERVAL '5' MINUTES"
        ))
        .unwrap();
    q.insert("Bid", Ts::hm(8, 1), row!(Ts::hm(8, 1), 1i64, "a"))
        .unwrap();
    q.insert("Bid", Ts::hm(8, 2), row!(Ts::hm(8, 2), 2i64, "b"))
        .unwrap();
    // Before the delay deadline the table view is still empty.
    assert!(q.table_at(Ts::hm(8, 5)).unwrap().is_empty());
    // After it, the coalesced state appears in one step.
    q.advance_to(Ts::hm(8, 7)).unwrap();
    assert_eq!(
        q.table_at(Ts::hm(8, 6)).unwrap(),
        vec![row!(Ts::hm(8, 10), 3i64)]
    );
}

/// A cancelled aggregate (insert + retract within the delay) materializes
/// nothing at all.
#[test]
fn cancelled_updates_never_materialize() {
    let e = engine();
    let mut q = e
        .execute("SELECT bidtime, price FROM Bid EMIT STREAM AFTER DELAY INTERVAL '5' MINUTES")
        .unwrap();
    q.insert("Bid", Ts::hm(8, 1), row!(Ts::hm(8, 1), 1i64, "a"))
        .unwrap();
    q.retract("Bid", Ts::hm(8, 2), row!(Ts::hm(8, 1), 1i64, "a"))
        .unwrap();
    q.advance_to(Ts::hm(9, 0)).unwrap();
    assert!(q.stream_rows().unwrap().is_empty());
}

/// Watermark gating composes with DISTINCT and HAVING above the aggregate.
#[test]
fn gate_composes_with_having() {
    let e = engine();
    let mut q = e
        .execute(
            "SELECT wend, COUNT(*) AS n FROM Tumble(data => TABLE(Bid), \
             timecol => DESCRIPTOR(bidtime), dur => INTERVAL '10' MINUTE) \
             GROUP BY wend HAVING COUNT(*) >= 2 EMIT AFTER WATERMARK",
        )
        .unwrap();
    q.insert("Bid", Ts::hm(8, 1), row!(Ts::hm(8, 1), 1i64, "a"))
        .unwrap();
    q.insert("Bid", Ts::hm(8, 2), row!(Ts::hm(8, 2), 2i64, "b"))
        .unwrap();
    q.insert("Bid", Ts::hm(8, 11), row!(Ts::hm(8, 11), 3i64, "c"))
        .unwrap();
    q.finish(Ts::hm(9, 0)).unwrap();
    // Only the first window reaches two bids.
    assert_eq!(q.table().unwrap(), vec![row!(Ts::hm(8, 10), 2i64)]);
}
