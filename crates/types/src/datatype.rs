//! Logical data types for columns and expressions.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The logical type of a [`crate::Value`] or column.
///
/// `Timestamp` is the carrier type for event-time columns (paper Extension
/// 1); whether a given `Timestamp` column actually *is* an event-time column
/// (i.e. has an associated watermark) is recorded on [`crate::Field`], not
/// here, because alignment is a property of a column in a relation, not of
/// the scalar type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    String,
    /// Millisecond-precision timestamp ([`crate::Ts`]).
    Timestamp,
    /// Millisecond-precision duration ([`crate::Duration`]), the type of
    /// `INTERVAL` literals.
    Interval,
    /// The type of the `NULL` literal before coercion.
    Null,
}

impl DataType {
    /// True if values of this type support `+`, `-`, `*`, `/`.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }

    /// True if this type has a meaningful total order for `ORDER BY` and
    /// comparison predicates.
    pub fn is_orderable(self) -> bool {
        !matches!(self, DataType::Null)
    }

    /// True if the type is temporal (timestamp or interval).
    pub fn is_temporal(self) -> bool {
        matches!(self, DataType::Timestamp | DataType::Interval)
    }

    /// The common supertype two types coerce to for comparisons and set
    /// operations, if any. `Null` coerces to anything; `Int` widens to
    /// `Float`.
    pub fn common_super_type(a: DataType, b: DataType) -> Option<DataType> {
        use DataType::*;
        if a == b {
            return Some(a);
        }
        match (a, b) {
            (Null, other) | (other, Null) => Some(other),
            (Int, Float) | (Float, Int) => Some(Float),
            _ => None,
        }
    }

    /// SQL-facing name of the type, as used in error messages and `CAST`.
    pub fn sql_name(self) -> &'static str {
        match self {
            DataType::Bool => "BOOLEAN",
            DataType::Int => "BIGINT",
            DataType::Float => "DOUBLE",
            DataType::String => "VARCHAR",
            DataType::Timestamp => "TIMESTAMP",
            DataType::Interval => "INTERVAL",
            DataType::Null => "NULL",
        }
    }

    /// Parse a SQL type name (as accepted by `CAST(x AS <name>)`).
    pub fn from_sql_name(name: &str) -> Option<DataType> {
        match name.to_ascii_uppercase().as_str() {
            "BOOLEAN" | "BOOL" => Some(DataType::Bool),
            "BIGINT" | "INT" | "INTEGER" | "SMALLINT" => Some(DataType::Int),
            "DOUBLE" | "FLOAT" | "REAL" | "DOUBLE PRECISION" => Some(DataType::Float),
            "VARCHAR" | "TEXT" | "STRING" | "CHAR" => Some(DataType::String),
            "TIMESTAMP" => Some(DataType::Timestamp),
            "INTERVAL" => Some(DataType::Interval),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coercion_lattice() {
        use DataType::*;
        assert_eq!(DataType::common_super_type(Int, Int), Some(Int));
        assert_eq!(DataType::common_super_type(Int, Float), Some(Float));
        assert_eq!(
            DataType::common_super_type(Null, Timestamp),
            Some(Timestamp)
        );
        assert_eq!(DataType::common_super_type(String, Timestamp), None);
        assert_eq!(DataType::common_super_type(Bool, Int), None);
    }

    #[test]
    fn predicates() {
        assert!(DataType::Int.is_numeric());
        assert!(DataType::Float.is_numeric());
        assert!(!DataType::Timestamp.is_numeric());
        assert!(DataType::Timestamp.is_temporal());
        assert!(DataType::Interval.is_temporal());
        assert!(!DataType::Null.is_orderable());
        assert!(DataType::String.is_orderable());
    }

    #[test]
    fn sql_name_round_trip() {
        for dt in [
            DataType::Bool,
            DataType::Int,
            DataType::Float,
            DataType::String,
            DataType::Timestamp,
            DataType::Interval,
        ] {
            assert_eq!(DataType::from_sql_name(dt.sql_name()), Some(dt));
        }
        assert_eq!(DataType::from_sql_name("varchar"), Some(DataType::String));
        assert_eq!(DataType::from_sql_name("bogus"), None);
    }
}
