//! The paper's core argument, side by side: CQL (Listing 1) vs. the
//! proposed SQL (Listing 2) on the same out-of-order bid stream.
//!
//! CQL's logical clock requires in-order input, so the STREAM system
//! buffers out-of-order tuples behind heartbeats — and *drops* anything
//! that arrives behind a heartbeat. The paper's approach makes event time
//! explicit data and uses watermarks, processing out-of-order input
//! directly and correctly.
//!
//! Run with: `cargo run --example cql_vs_onesql`

use onesql_core::{Engine, StreamBuilder};
use onesql_cql::CqlQuery7;
use onesql_nexmark::paper::{paper_timeline, PaperEvent, PAPER_Q7_CQL, PAPER_Q7_SQL};
use onesql_types::{DataType, Ts};

fn main() {
    // --- CQL baseline: heartbeats buffer and re-order the stream. -------
    println!("== CQL (Listing 1) ==\n{PAPER_Q7_CQL}\n");
    let mut cql = CqlQuery7::new();
    let mut dropped = Vec::new();
    for event in paper_timeline() {
        match event {
            PaperEvent::Insert { row, .. } => {
                let bidtime = row.value(0).unwrap().as_ts().unwrap();
                let price = row.value(1).unwrap().as_int().unwrap();
                let item = row.value(2).unwrap().as_str().unwrap().to_string();
                if !cql.bid(bidtime, price, &item) {
                    dropped.push((bidtime, price, item));
                }
            }
            PaperEvent::Watermark { wm, .. } => cql.heartbeat(wm),
        }
    }
    cql.finish(Ts::hm(8, 20));
    println!("Rstream output:");
    for (t, row) in cql.results().unwrap() {
        println!("  {t}  {row}");
    }
    for (bidtime, price, item) in &dropped {
        println!("  !! bid ({bidtime}, ${price}, {item}) arrived behind the heartbeat: DROPPED");
    }
    println!(
        "  (peak in-order buffer: {} tuples — buffering is latency)\n",
        cql.peak_buffered()
    );

    // --- The paper's SQL: event time is data; watermarks are metadata. ---
    println!("== Proposed SQL (Listing 2) ==\n{PAPER_Q7_SQL}\n");
    let mut engine = Engine::new();
    engine.register_stream(
        "Bid",
        StreamBuilder::new()
            .event_time_column("bidtime")
            .column("price", DataType::Int)
            .column("item", DataType::String),
    );
    let q = {
        let mut q = engine
            .execute(&format!("{PAPER_Q7_SQL} EMIT STREAM AFTER WATERMARK"))
            .unwrap();
        for event in paper_timeline() {
            match event {
                PaperEvent::Insert { ptime, row } => q.insert("Bid", ptime, row).unwrap(),
                PaperEvent::Watermark { ptime, wm } => q.watermark("Bid", ptime, wm).unwrap(),
            }
        }
        q
    };
    println!("EMIT STREAM AFTER WATERMARK output (same shape as Rstream, but");
    println!("computed directly on the out-of-order input — nothing dropped):");
    for r in q.stream_rows().unwrap() {
        println!("  ptime {}  {}", r.ptime, r.row);
    }
    println!(
        "\nNote bid C (bidtime 8:05, $4) arrived at 8:13 — *behind* the 8:05\n\
         heartbeat. CQL never saw it; the watermark-based engine counted it\n\
         while window [8:00, 8:10) was still open, and its table view at 8:13\n\
         (Listing 4) correctly showed C as the interim leader."
    );
}
