//! Watermark generators: strategies for deriving watermarks from a stream
//! of observed event timestamps.
//!
//! The paper (§3.2.2) treats the watermark as an input to the system —
//! "deterministically or heuristically defined". These generators cover the
//! common heuristics used by the open-source engines the paper draws on:
//! perfectly ordered input ([`AscendingWatermarks`]), bounded skew
//! ([`BoundedOutOfOrderness`], the "slack time" the paper mentions), and
//! sources that carry no progress information ([`NoWatermarks`]).
//! Punctuated (source-provided) watermarks — used by the paper's own example
//! timeline, where `WM -> 8:05` events appear inline — need no generator:
//! the source injects them directly.

use onesql_types::{Duration, Ts};

use crate::watermark::Watermark;

/// A strategy that turns observed event timestamps into watermarks.
pub trait WatermarkGenerator: Send {
    /// Observe an event timestamp as it arrives.
    fn on_event(&mut self, ts: Ts);

    /// The current watermark implied by everything observed so far.
    fn current(&self) -> Watermark;
}

/// For sources known to be in event-time order: the watermark trails the
/// maximum timestamp by one millisecond (the strongest claim that still
/// admits duplicate timestamps).
#[derive(Debug, Default, Clone)]
pub struct AscendingWatermarks {
    max_seen: Option<Ts>,
}

impl AscendingWatermarks {
    /// New generator with nothing observed.
    pub fn new() -> Self {
        Self::default()
    }
}

impl WatermarkGenerator for AscendingWatermarks {
    fn on_event(&mut self, ts: Ts) {
        if self.max_seen.is_none_or(|m| ts > m) {
            self.max_seen = Some(ts);
        }
    }

    fn current(&self) -> Watermark {
        match self.max_seen {
            Some(t) => Watermark(Ts(t.millis() - 1)),
            None => Watermark::MIN,
        }
    }
}

/// The standard heuristic for out-of-order streams: assume no event arrives
/// more than `bound` behind the maximum timestamp seen so far. This is the
/// "sufficient slack time" configuration mentioned in §3.2.2.
#[derive(Debug, Clone)]
pub struct BoundedOutOfOrderness {
    bound: Duration,
    max_seen: Option<Ts>,
}

impl BoundedOutOfOrderness {
    /// Allow events to arrive up to `bound` late relative to the max seen.
    pub fn new(bound: Duration) -> Self {
        BoundedOutOfOrderness {
            bound,
            max_seen: None,
        }
    }

    /// The configured bound.
    pub fn bound(&self) -> Duration {
        self.bound
    }
}

impl WatermarkGenerator for BoundedOutOfOrderness {
    fn on_event(&mut self, ts: Ts) {
        if self.max_seen.is_none_or(|m| ts > m) {
            self.max_seen = Some(ts);
        }
    }

    fn current(&self) -> Watermark {
        match self.max_seen {
            Some(t) => Watermark(t.saturating_sub(self.bound)),
            None => Watermark::MIN,
        }
    }
}

/// A source with no completeness information: the watermark never advances.
/// Queries over such a source still run, but event-time groupings never
/// finalize (they behave as eventually-consistent materialized views).
#[derive(Debug, Default, Clone)]
pub struct NoWatermarks;

impl WatermarkGenerator for NoWatermarks {
    fn on_event(&mut self, _ts: Ts) {}

    fn current(&self) -> Watermark {
        Watermark::MIN
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascending_trails_by_one_milli() {
        let mut g = AscendingWatermarks::new();
        assert_eq!(g.current(), Watermark::MIN);
        g.on_event(Ts::hm(8, 7));
        assert_eq!(g.current(), Watermark(Ts(Ts::hm(8, 7).millis() - 1)));
        g.on_event(Ts::hm(8, 9));
        g.on_event(Ts::hm(8, 8)); // regression ignored
        assert_eq!(g.current(), Watermark(Ts(Ts::hm(8, 9).millis() - 1)));
    }

    #[test]
    fn bounded_subtracts_bound() {
        let mut g = BoundedOutOfOrderness::new(Duration::from_minutes(2));
        assert_eq!(g.current(), Watermark::MIN);
        g.on_event(Ts::hm(8, 7));
        assert_eq!(g.current(), Watermark(Ts::hm(8, 5)));
        g.on_event(Ts::hm(8, 11));
        assert_eq!(g.current(), Watermark(Ts::hm(8, 9)));
        // Late event does not pull the watermark back.
        g.on_event(Ts::hm(8, 5));
        assert_eq!(g.current(), Watermark(Ts::hm(8, 9)));
        assert_eq!(g.bound(), Duration::from_minutes(2));
    }

    #[test]
    fn bounded_watermark_is_monotone() {
        let mut g = BoundedOutOfOrderness::new(Duration::from_minutes(3));
        let events = [8i64, 12, 5, 9, 13, 11, 20];
        let mut last = Watermark::MIN;
        for &m in &events {
            g.on_event(Ts::from_minutes(m));
            let w = g.current();
            assert!(w >= last, "watermark regressed: {w} < {last}");
            last = w;
        }
    }

    #[test]
    fn no_watermarks_never_advances() {
        let mut g = NoWatermarks;
        g.on_event(Ts::hm(23, 59));
        assert_eq!(g.current(), Watermark::MIN);
    }
}
