//! In-order delivery via buffering and heartbeats.
//!
//! "The STREAM system accommodates out-of-order data by buffering it on
//! intake and presenting it to the query processor in timestamp order"
//! (§2.1.1). A heartbeat at time `t` asserts no future tuple will carry a
//! timestamp `<= t`, allowing everything up to `t` to be released in order.
//! The cost of this design — buffering latency proportional to the skew
//! bound — is what the paper's direct out-of-order processing avoids, and
//! what benchmark B6 measures.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use onesql_types::{Row, Ts};

/// Buffers out-of-order `(timestamp, row)` tuples and releases them in
/// timestamp order when heartbeats arrive.
#[derive(Debug, Default)]
pub struct InOrderBuffer {
    heap: BinaryHeap<Reverse<(Ts, Row)>>,
    last_heartbeat: Option<Ts>,
    released_up_to: Option<Ts>,
    /// Peak number of buffered tuples (observability for B6).
    peak_buffered: usize,
}

impl InOrderBuffer {
    /// An empty buffer.
    pub fn new() -> InOrderBuffer {
        InOrderBuffer::default()
    }

    /// Accept a tuple. Tuples at or before the last heartbeat violate the
    /// heartbeat contract and are dropped (STREAM would have no slot for
    /// them), mirroring late-data dropping.
    pub fn push(&mut self, ts: Ts, row: Row) -> bool {
        if self.last_heartbeat.is_some_and(|h| ts <= h) {
            return false;
        }
        self.heap.push(Reverse((ts, row)));
        self.peak_buffered = self.peak_buffered.max(self.heap.len());
        true
    }

    /// Process a heartbeat: all buffered tuples with `ts <= heartbeat` are
    /// released, in timestamp order.
    pub fn heartbeat(&mut self, heartbeat: Ts) -> Vec<(Ts, Row)> {
        if self.last_heartbeat.is_some_and(|h| heartbeat <= h) {
            return Vec::new();
        }
        self.last_heartbeat = Some(heartbeat);
        let mut out = Vec::new();
        while self
            .heap
            .peek()
            .is_some_and(|Reverse((ts, _))| *ts <= heartbeat)
        {
            if let Some(Reverse((ts, row))) = self.heap.pop() {
                out.push((ts, row));
            }
        }
        if let Some((ts, _)) = out.last() {
            self.released_up_to = Some(*ts);
        }
        out
    }

    /// Number of tuples currently waiting.
    pub fn buffered(&self) -> usize {
        self.heap.len()
    }

    /// Peak number of tuples ever waiting (the buffering cost).
    pub fn peak_buffered(&self) -> usize {
        self.peak_buffered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onesql_types::row;

    #[test]
    fn releases_in_timestamp_order() {
        let mut b = InOrderBuffer::new();
        b.push(Ts::hm(8, 7), row!("A"));
        b.push(Ts::hm(8, 11), row!("B"));
        b.push(Ts::hm(8, 5), row!("C"));
        assert_eq!(b.buffered(), 3);
        let out = b.heartbeat(Ts::hm(8, 8));
        assert_eq!(
            out,
            vec![(Ts::hm(8, 5), row!("C")), (Ts::hm(8, 7), row!("A"))]
        );
        assert_eq!(b.buffered(), 1);
        let out = b.heartbeat(Ts::hm(8, 20));
        assert_eq!(out, vec![(Ts::hm(8, 11), row!("B"))]);
    }

    #[test]
    fn ties_release_deterministically() {
        let mut b = InOrderBuffer::new();
        b.push(Ts::hm(8, 5), row!("y"));
        b.push(Ts::hm(8, 5), row!("x"));
        let out = b.heartbeat(Ts::hm(8, 5));
        assert_eq!(out[0].1, row!("x"));
        assert_eq!(out[1].1, row!("y"));
    }

    #[test]
    fn tuples_behind_heartbeat_rejected() {
        let mut b = InOrderBuffer::new();
        b.heartbeat(Ts::hm(8, 10));
        assert!(!b.push(Ts::hm(8, 10), row!("late")));
        assert!(!b.push(Ts::hm(8, 9), row!("later")));
        assert!(b.push(Ts::hm(8, 11), row!("ok")));
    }

    #[test]
    fn heartbeats_monotonic() {
        let mut b = InOrderBuffer::new();
        b.push(Ts::hm(8, 9), row!("A"));
        b.heartbeat(Ts::hm(8, 10));
        assert!(b.heartbeat(Ts::hm(8, 8)).is_empty());
    }

    #[test]
    fn peak_buffered_tracks_high_water_mark() {
        let mut b = InOrderBuffer::new();
        for i in 0..10 {
            b.push(Ts::from_minutes(100 - i), row!(i));
        }
        b.heartbeat(Ts::from_minutes(200));
        assert_eq!(b.peak_buffered(), 10);
        assert_eq!(b.buffered(), 0);
    }
}
