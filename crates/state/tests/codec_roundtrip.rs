//! Property tests: the checkpoint codec round-trips every value exactly.

use proptest::prelude::*;

use onesql_state::{Checkpoint, Codec, KeyedState};
use onesql_types::{Duration, Row, Ts, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "\\PC{0,24}".prop_map(Value::str),
        any::<i64>().prop_map(|ms| Value::Ts(Ts(ms))),
        any::<i64>().prop_map(|ms| Value::Interval(Duration(ms))),
    ]
}

fn arb_row() -> impl Strategy<Value = Row> {
    prop::collection::vec(arb_value(), 0..6).prop_map(Row::new)
}

proptest! {
    #[test]
    fn value_round_trips(v in arb_value()) {
        let back = Value::from_bytes(&v.to_bytes()).unwrap();
        // NaN compares equal under the total order used by Value's Eq.
        prop_assert_eq!(back, v);
    }

    #[test]
    fn row_round_trips(r in arb_row()) {
        prop_assert_eq!(Row::from_bytes(&r.to_bytes()).unwrap(), r);
    }

    #[test]
    fn nested_containers_round_trip(
        rows in prop::collection::vec((arb_row(), any::<i64>()), 0..8),
        ts in any::<i64>(),
    ) {
        let snapshot = (Ts(ts), rows);
        let bytes = snapshot.to_bytes();
        let back: (Ts, Vec<(Row, i64)>) = Codec::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, snapshot);
    }

    #[test]
    fn keyed_state_checkpoint_round_trips(
        entries in prop::collection::vec((arb_row(), prop::collection::vec(arb_row(), 0..3)), 0..10),
    ) {
        let mut state: KeyedState<Vec<Row>> = KeyedState::new();
        for (k, v) in &entries {
            state.put(k.clone(), v.clone());
        }
        let cp = state.checkpoint();
        let mut restored: KeyedState<Vec<Row>> = KeyedState::new();
        restored.restore(&cp).unwrap();
        prop_assert_eq!(restored.len(), state.len());
        for (k, _) in &entries {
            prop_assert_eq!(restored.get(k), state.get(k));
        }
        // Checkpoints are canonical: re-checkpointing gives identical bytes.
        prop_assert_eq!(restored.checkpoint(), cp);
    }

    /// Corrupting any single truncation point never panics — it errors.
    #[test]
    fn truncation_always_errors_never_panics(r in arb_row(), cut in 0usize..64) {
        let bytes = r.to_bytes();
        if cut < bytes.len() {
            let _ = Row::from_bytes(&bytes[..cut]);
        }
        // Also random garbage:
        let _ = Row::from_bytes(&bytes.iter().rev().copied().collect::<Vec<_>>());
    }

    /// Checkpoint sizes are linear-ish in content (no quadratic blowup).
    #[test]
    fn checkpoint_size_is_bounded(n in 1usize..50) {
        let mut state: KeyedState<i64> = KeyedState::new();
        for i in 0..n {
            state.put(Row::new(vec![Value::Int(i as i64)]), i as i64);
        }
        let size = state.checkpoint().size_bytes();
        // Each entry: 8 (map len amortized) + row(8 len + 1 tag + 8 int) + 8 value.
        prop_assert!(size <= 16 + n * 64, "size {size} too large for {n} entries");
    }
}

#[test]
fn empty_checkpoint_round_trips() {
    let state: KeyedState<i64> = KeyedState::new();
    let cp = state.checkpoint();
    let mut restored: KeyedState<i64> = KeyedState::new();
    restored.put(Row::empty(), 1);
    restored.restore(&cp).unwrap();
    assert!(restored.is_empty());
    // An empty map is just its zero length prefix.
    assert_eq!(
        cp,
        Checkpoint(bytes::Bytes::copy_from_slice(&0u64.to_le_bytes()))
    );
}
