//! The paper's §4 example: dataset, schema, and Query 7.
//!
//! The dataset is reproduced verbatim from the paper:
//!
//! ```text
//! 8:07 WM -> 8:05
//! 8:08 INSERT (8:07, $2, A)
//! 8:12 INSERT (8:11, $3, B)
//! 8:13 INSERT (8:05, $4, C)
//! 8:14 WM -> 8:08
//! 8:15 INSERT (8:09, $5, D)
//! 8:16 WM -> 8:12
//! 8:17 INSERT (8:13, $1, E)
//! 8:18 INSERT (8:17, $6, F)
//! 8:21 WM -> 8:20
//! ```

use onesql_types::{row, DataType, Field, Row, Schema, Ts};

/// One event of the paper's timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PaperEvent {
    /// A bid insertion at the given processing time.
    Insert {
        /// Processing time of arrival.
        ptime: Ts,
        /// The `(bidtime, price, item)` row.
        row: Row,
    },
    /// A watermark observation at the given processing time.
    Watermark {
        /// Processing time of the observation.
        ptime: Ts,
        /// Asserted event-time completeness bound.
        wm: Ts,
    },
}

impl PaperEvent {
    /// The processing time of this event.
    pub fn ptime(&self) -> Ts {
        match self {
            PaperEvent::Insert { ptime, .. } | PaperEvent::Watermark { ptime, .. } => *ptime,
        }
    }
}

/// The `Bid` schema of the paper's example: `(bidtime, price, item)` with
/// `bidtime` a watermarked event-time column.
pub fn paper_bid_schema() -> Schema {
    Schema::new(vec![
        Field::event_time("bidtime"),
        Field::new("price", DataType::Int),
        Field::new("item", DataType::String),
    ])
}

/// The §4 timeline, in processing-time order.
pub fn paper_timeline() -> Vec<PaperEvent> {
    fn bid(pt_min: i64, bt_min: i64, price: i64, item: &str) -> PaperEvent {
        PaperEvent::Insert {
            ptime: Ts::hm(8, pt_min),
            row: row!(Ts::hm(8, bt_min), price, item),
        }
    }
    fn wm(pt_min: i64, wm_min: i64) -> PaperEvent {
        PaperEvent::Watermark {
            ptime: Ts::hm(8, pt_min),
            wm: Ts::hm(8, wm_min),
        }
    }
    vec![
        wm(7, 5),
        bid(8, 7, 2, "A"),
        bid(12, 11, 3, "B"),
        bid(13, 5, 4, "C"),
        wm(14, 8),
        bid(15, 9, 5, "D"),
        wm(16, 12),
        bid(17, 13, 1, "E"),
        bid(18, 17, 6, "F"),
        wm(21, 20),
    ]
}

/// The paper's Listing 2: NEXMark Query 7 in the proposed SQL dialect
/// (column names adjusted to the example's `(bidtime, price, item)` schema,
/// and `wstart` carried through the aggregation with `MAX` exactly as
/// `SELECT MAX(wstart), wend, ...` does in Listing 6).
pub const PAPER_Q7_SQL: &str = "\
SELECT
  MaxBid.wstart, MaxBid.wend,
  Bid.bidtime, Bid.price, Bid.item
FROM
  Bid,
  (SELECT
     MAX(TumbleBid.price) maxPrice,
     MAX(TumbleBid.wstart) wstart,
     TumbleBid.wend wend
   FROM
     Tumble(
       data => TABLE(Bid),
       timecol => DESCRIPTOR(bidtime),
       dur => INTERVAL '10' MINUTE) TumbleBid
   GROUP BY
     TumbleBid.wend) MaxBid
WHERE
  Bid.price = MaxBid.maxPrice AND
  Bid.bidtime >= MaxBid.wend - INTERVAL '10' MINUTE AND
  Bid.bidtime < MaxBid.wend";

/// The CQL rendering of Query 7 (the paper's Listing 1), for reference and
/// for the `onesql-cql` baseline.
pub const PAPER_Q7_CQL: &str = "\
SELECT
  Rstream(B.price, B.itemid)
FROM
  Bid [RANGE 10 MINUTE SLIDE 10 MINUTE] B
WHERE
  B.price = (SELECT MAX(B1.price) FROM BID [RANGE 10 MINUTE SLIDE 10 MINUTE] B1)";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_matches_paper() {
        let t = paper_timeline();
        assert_eq!(t.len(), 10);
        // Processing times are non-decreasing.
        for pair in t.windows(2) {
            assert!(pair[0].ptime() <= pair[1].ptime());
        }
        // Six bids, four watermarks.
        let bids = t
            .iter()
            .filter(|e| matches!(e, PaperEvent::Insert { .. }))
            .count();
        assert_eq!(bids, 6);
        // Spot-check the out-of-order bid C: arrives at 8:13, occurred 8:05.
        let PaperEvent::Insert { ptime, row } = &t[3] else {
            panic!()
        };
        assert_eq!(*ptime, Ts::hm(8, 13));
        assert_eq!(
            row.value(0).unwrap(),
            &onesql_types::Value::Ts(Ts::hm(8, 5))
        );
        assert_eq!(row.value(2).unwrap(), &onesql_types::Value::str("C"));
    }

    #[test]
    fn schema_shape() {
        let s = paper_bid_schema();
        assert_eq!(s.arity(), 3);
        assert!(s.fields()[0].event_time);
        assert_eq!(s.names(), vec!["bidtime", "price", "item"]);
    }
}
