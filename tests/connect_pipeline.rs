//! Integration tests for the connector subsystem: file / channel / NEXMark
//! sources through real SQL into sinks, driven by `PipelineDriver`.

use std::io::Write;
use std::sync::Arc;

use proptest::prelude::*;

use onesql::connect::{
    channel, channel_sink, ChangelogSink, CsvFileSink, CsvFileSource, CsvSinkMode, DriverConfig,
    FileSourceConfig, JsonLinesSink, JsonLinesSource, NexmarkSource, SinkEvent, Source,
    SourceBatch, SourceEvent, SourceStatus,
};
use onesql::core::{Engine, StreamBuilder};
use onesql_nexmark::queries;
use onesql_time::Watermark;
use onesql_tvr::Change;
use onesql_types::{row, DataType, Duration, Schema, Ts};

fn bid_engine() -> Engine {
    let mut e = Engine::new();
    e.register_stream(
        "Bid",
        StreamBuilder::new()
            .event_time_column("bidtime")
            .column("price", DataType::Int)
            .column("item", DataType::String),
    );
    e
}

fn bid_schema() -> Schema {
    StreamBuilder::new()
        .event_time_column("bidtime")
        .column("price", DataType::Int)
        .column("item", DataType::String)
        .build()
}

/// A scratch directory unique to the calling test.
fn scratch(test: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("onesql_connect_tests").join(test);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const WINDOWED_SQL: &str = "SELECT wend, SUM(price) FROM Tumble(data => \
     TABLE(Bid), timecol => DESCRIPTOR(bidtime), dur => INTERVAL '10' MINUTE) \
     GROUP BY wend EMIT AFTER WATERMARK";

/// The paper's §4 bid timeline, with event times deliberately out of
/// processing-time order.
fn paper_bids() -> Vec<(Ts, i64, &'static str)> {
    vec![
        (Ts::hm(8, 7), 2, "A"),
        (Ts::hm(8, 11), 3, "B"),
        (Ts::hm(8, 5), 4, "C"), // late within the first window
        (Ts::hm(8, 9), 5, "D"),
        (Ts::hm(8, 13), 1, "E"),
        (Ts::hm(8, 24), 2, "F"),
    ]
}

/// file source → watermark-gated SQL → file sink → file source roundtrip.
#[test]
fn csv_roundtrip_with_watermark_gated_emit() {
    let dir = scratch("csv_roundtrip");
    let input = dir.join("bids.csv");
    let output = dir.join("windows.csv");

    let mut f = std::fs::File::create(&input).unwrap();
    for (ts, price, item) in paper_bids() {
        writeln!(f, "{},{price},{item}", ts.to_clock_string()).unwrap();
    }
    drop(f);

    // Events are up to 6 minutes out of order; lateness must cover it for
    // the watermark gate to hold windows until truly complete.
    let mut engine = bid_engine();
    engine
        .attach_source(Box::new(
            CsvFileSource::new(
                &input,
                "Bid",
                Arc::new(bid_schema()),
                FileSourceConfig {
                    lateness: Duration::from_minutes(6),
                    has_header: false,
                },
            )
            .unwrap(),
        ))
        .unwrap();
    engine.attach_sink(Box::new(
        CsvFileSink::headerless(&output, CsvSinkMode::Appends).unwrap(),
    ));
    let mut pipeline = engine.run_pipeline(WINDOWED_SQL).unwrap();
    let metrics = pipeline.run().unwrap().clone();
    assert_eq!(metrics.events_in, 6);
    assert!(metrics.watermarks_in >= 1, "{metrics:?}");
    assert!(pipeline.is_finished());

    // The sink file holds exactly the final windows; read it back through
    // a source into a fresh pass-through query (the full roundtrip).
    let out_schema = Arc::new(
        StreamBuilder::new()
            .event_time_column("wend")
            .column("total", DataType::Int)
            .build(),
    );
    let mut reader = Engine::new();
    reader.register_stream_schema("Windows", (*out_schema).clone());
    reader
        .attach_source(Box::new(
            CsvFileSource::new(&output, "Windows", out_schema, FileSourceConfig::default())
                .unwrap(),
        ))
        .unwrap();
    let mut readback = reader
        .run_pipeline("SELECT wend, total FROM Windows")
        .unwrap();
    readback.run().unwrap();
    assert_eq!(
        readback.query().table().unwrap(),
        vec![
            row!(Ts::hm(8, 10), 11i64), // 2 + 4 + 5
            row!(Ts::hm(8, 20), 4i64),  // 3 + 1
            row!(Ts::hm(8, 30), 2i64),
        ]
    );

    // The same answer the in-process API produces.
    let engine = bid_engine();
    let mut direct = engine.execute(WINDOWED_SQL).unwrap();
    for (i, (ts, price, item)) in paper_bids().into_iter().enumerate() {
        direct
            .insert("Bid", Ts(i as i64), row!(ts, price, item))
            .unwrap();
    }
    direct.finish(Ts(100)).unwrap();
    assert_eq!(direct.table().unwrap(), readback.query().table().unwrap());
}

/// The JSON-lines connectors round-trip typed rows the same way.
#[test]
fn jsonl_roundtrip() {
    let dir = scratch("jsonl_roundtrip");
    let input = dir.join("bids.jsonl");
    let output = dir.join("out.jsonl");

    let mut f = std::fs::File::create(&input).unwrap();
    for (ts, price, item) in paper_bids() {
        writeln!(
            f,
            r#"{{"bidtime": {}, "price": {price}, "item": "{item}"}}"#,
            ts.millis()
        )
        .unwrap();
    }
    drop(f);

    let mut engine = bid_engine();
    engine
        .attach_source(Box::new(
            JsonLinesSource::new(
                &input,
                "Bid",
                Arc::new(bid_schema()),
                FileSourceConfig {
                    lateness: Duration::from_minutes(6),
                    has_header: false,
                },
            )
            .unwrap(),
        ))
        .unwrap();
    engine.attach_sink(Box::new(
        JsonLinesSink::new(&output, CsvSinkMode::Changelog).unwrap(),
    ));
    let mut pipeline = engine
        .run_pipeline("SELECT item, price FROM Bid WHERE price >= 3")
        .unwrap();
    let metrics = pipeline.run().unwrap();
    assert_eq!(metrics.events_in, 6);
    assert_eq!(metrics.events_out, 3); // prices 3, 4, 5 pass the filter

    let text = std::fs::read_to_string(&output).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3);
    assert!(lines[0].contains("\"item\":"), "{}", lines[0]);
    assert!(lines.iter().all(|l| l.contains("\"undo\":false")), "{text}");
}

/// NEXMark source → query → changelog sink, all through the engine API.
#[test]
fn nexmark_to_changelog_sink_end_to_end() {
    let mut engine = Engine::new();
    onesql::connect::register_nexmark_streams(&mut engine);
    engine
        .attach_source(Box::new(NexmarkSource::seeded(42, 2_000)))
        .unwrap();
    let (rendered, sink) = ChangelogSink::in_memory();
    engine.attach_sink(Box::new(sink.with_watermarks()));

    let mut pipeline = engine.run_pipeline(queries::Q7).unwrap();
    let metrics = pipeline.run().unwrap();

    assert_eq!(metrics.events_in, 2_000);
    assert!(metrics.events_out > 0, "{metrics:?}");
    assert!(metrics.output_watermark.is_final());
    assert_eq!(metrics.sources.len(), 1);
    assert_eq!(metrics.sources[0].events, 2_000);

    let text = rendered.lock().unwrap();
    assert!(
        text.starts_with("-- changelog of (wstart, wend"),
        "{}",
        &text[..80]
    );
    assert!(text.contains("ver="), "changelog lines carry versions");
    // Q7's self-join revises maxima as higher bids land: both inserts and
    // retractions must appear.
    assert!(text.contains("\n"), "{text}");
    assert!(text.lines().any(|l| l.contains("  +  ")), "{text}");
}

/// Two publisher threads fan into one channel source; results match the
/// single-writer in-process run.
#[test]
fn channel_fan_in_across_threads() {
    let mut engine = bid_engine();
    let (publisher, source) = channel("Bid", 128);
    engine.attach_source(Box::new(source)).unwrap();
    let (sink, events) = channel_sink(1024);
    engine.attach_sink(Box::new(sink));
    let mut pipeline = engine
        .run_pipeline("SELECT item, price FROM Bid WHERE price > 0")
        .unwrap();

    let writers: Vec<_> = [0i64, 1]
        .into_iter()
        .map(|half| {
            let publisher = publisher.clone();
            std::thread::spawn(move || {
                for i in 0..50i64 {
                    let n = half * 50 + i;
                    publisher
                        .insert(Ts(n), row!(Ts(n), n + 1, format!("item{n}")))
                        .unwrap();
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    drop(publisher); // all producers gone -> source finishes
    let metrics = pipeline.run().unwrap();
    assert_eq!(metrics.events_in, 100);
    assert_eq!(metrics.events_out, 100);

    let mut rows = 0usize;
    let mut flushed = false;
    while let Ok(event) = events.try_recv() {
        match event {
            SinkEvent::Rows(r) => rows += r.len(),
            SinkEvent::Watermark(_) => {}
            SinkEvent::Flushed => flushed = true,
        }
    }
    assert_eq!(rows, 100);
    assert!(flushed);
}

/// Attach-time validation: unknown streams and tables are rejected.
#[test]
fn attach_source_validates_streams() {
    let mut engine = bid_engine();
    engine
        .register_table(
            "Category",
            StreamBuilder::new().column("id", DataType::Int),
            vec![row!(1i64)],
        )
        .unwrap();
    let (_pub1, source) = channel("Nope", 4);
    assert!(engine.attach_source(Box::new(source)).is_err());
    let (_pub2, source) = channel("Category", 4);
    assert!(engine.attach_source(Box::new(source)).is_err());
    assert!(
        engine.run_pipeline("SELECT item FROM Bid").is_err(),
        "no sources"
    );
}

// ---------------------------------------------------------------------------
// Watermark monotonicity under arbitrary source interleavings.
// ---------------------------------------------------------------------------

/// A source that replays a script of batches, one per poll.
struct ScriptedSource {
    name: String,
    streams: Vec<String>,
    script: std::collections::VecDeque<SourceBatch>,
}

impl ScriptedSource {
    fn new(name: &str, stream: &str, script: Vec<SourceBatch>) -> ScriptedSource {
        ScriptedSource {
            name: name.to_string(),
            streams: vec![stream.to_string()],
            script: script.into(),
        }
    }
}

impl Source for ScriptedSource {
    fn name(&self) -> &str {
        &self.name
    }
    fn streams(&self) -> &[String] {
        &self.streams
    }
    fn poll_batch(&mut self, _max: usize) -> onesql_types::Result<SourceBatch> {
        Ok(self
            .script
            .pop_front()
            .unwrap_or_else(|| SourceBatch::empty(SourceStatus::Finished)))
    }
}

/// One scripted step of one source: optionally an event, optionally a
/// watermark assertion (which may even regress — the driver must absorb
/// it).
fn arb_script() -> impl Strategy<Value = Vec<Vec<(Option<i64>, Option<i64>)>>> {
    prop::collection::vec(
        prop::collection::vec(
            (prop::option::of(0i64..1_000), prop::option::of(0i64..1_000)),
            0..12,
        ),
        1..4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    /// However many sources there are and however their event/watermark
    /// batches interleave, the watermark the sinks observe only ever
    /// advances, and ends final.
    #[test]
    fn driver_watermarks_are_monotone(scripts in arb_script()) {
        let mut engine = Engine::new();
        engine.register_stream(
            "S",
            StreamBuilder::new().event_time_column("ts").column("v", DataType::Int),
        );
        for (i, script) in scripts.iter().enumerate() {
            let batches: Vec<SourceBatch> = script
                .iter()
                .map(|(event, wm)| {
                    let mut batch = SourceBatch::empty(SourceStatus::Ready);
                    if let Some(ts) = event {
                        batch.events.push(SourceEvent {
                            stream: 0,
                            ptime: Ts(*ts),
                            change: Change::insert(row!(Ts(*ts), *ts)),
                        });
                    }
                    batch.watermark = wm.map(Ts);
                    batch
                })
                .collect();
            engine
                .attach_source(Box::new(ScriptedSource::new(
                    &format!("scripted-{i}"),
                    "S",
                    batches,
                )))
                .unwrap();
        }
        let (sink, events) = channel_sink(1_000_000);
        engine.attach_sink(Box::new(sink));
        let mut pipeline = engine
            .run_pipeline("SELECT ts, v FROM S EMIT STREAM")
            .unwrap()
            .with_config(DriverConfig {
                batch_size: 4,
                ..DriverConfig::default()
            });
        let metrics = pipeline.run().unwrap().clone();

        let mut last = Watermark::MIN;
        let mut watermarks = 0usize;
        while let Ok(event) = events.try_recv() {
            if let SinkEvent::Watermark(wm) = event {
                prop_assert!(wm > last, "sink watermark regressed: {wm} after {last}");
                last = wm;
                watermarks += 1;
            }
        }
        prop_assert!(watermarks >= 1, "finish must deliver the final watermark");
        prop_assert!(last.is_final());
        prop_assert!(metrics.output_watermark.is_final());
        // Every scripted event made it in.
        let expected: u64 = scripts
            .iter()
            .flatten()
            .filter(|(e, _)| e.is_some())
            .count() as u64;
        prop_assert_eq!(metrics.events_in, expected);
    }
}

/// The driver's input watermark is the min over live sources.
#[test]
fn input_watermark_is_min_over_sources() {
    let mut engine = Engine::new();
    engine.register_stream(
        "S",
        StreamBuilder::new()
            .event_time_column("ts")
            .column("v", DataType::Int),
    );
    let fast = vec![SourceBatch {
        events: vec![],
        watermark: Some(Ts(500)),
        status: SourceStatus::Ready,
        ..SourceBatch::default()
    }];
    let slow = vec![SourceBatch {
        events: vec![],
        watermark: Some(Ts(100)),
        status: SourceStatus::Ready,
        ..SourceBatch::default()
    }];
    engine
        .attach_source(Box::new(ScriptedSource::new("fast", "S", fast)))
        .unwrap();
    engine
        .attach_source(Box::new(ScriptedSource::new("slow", "S", slow)))
        .unwrap();
    let mut pipeline = engine.run_pipeline("SELECT ts, v FROM S").unwrap();
    pipeline.step().unwrap();
    assert_eq!(pipeline.metrics().input_watermark, Watermark(Ts(100)));
    // Both scripts exhausted -> next steps finish the pipeline.
    pipeline.run().unwrap();
    assert!(pipeline.is_finished());
    assert!(pipeline.metrics().input_watermark.is_final());
}
