//! The connector runtime: pluggable [`Source`]s / [`Sink`]s and the
//! [`PipelineDriver`] that pumps them through a running query.
//!
//! The paper's engines (§7–§8, Appendix B) consume time-varying relations
//! from external connectors — Kafka topics, file sets — and materialize
//! results back out through sinks. This module is the single-process
//! version of that boundary layer:
//!
//! - A [`Source`] produces **batches** of `(ptime, change)` events for one
//!   or more named streams, each batch optionally carrying a watermark
//!   assertion, and reports a [`SourceStatus`] (ready / idle / finished)
//!   the driver uses for backpressure-aware scheduling.
//! - A [`Sink`] consumes the query's output changelog, rendered as
//!   [`StreamRow`]s (Extension 4's `undo` / `ptime` / `ver` encoding), plus
//!   output-watermark notifications.
//! - The [`PipelineDriver`] round-robins over sources, feeds a
//!   [`RunningQuery`], propagates **monotone** per-stream watermarks (the
//!   min over all sources feeding a stream, delivered only when it
//!   advances), keeps output buffering bounded, and accounts everything in
//!   [`PipelineMetrics`].
//!
//! Concrete connectors (CSV / JSON-lines files, in-memory channels, the
//! NEXMark generator, network endpoints, changelog renderers) live in the
//! `onesql-connect` crate; this module holds only the traits and the
//! driver so the engine can expose [`Engine::attach_source`] /
//! [`Engine::run_pipeline`] without a dependency cycle.
//!
//! # Example
//!
//! A source is just a type that hands the driver batches; here a scripted
//! three-event stream runs through a filter query end to end:
//!
//! ```
//! use onesql_core::connect::{Source, SourceBatch, SourceEvent, SourceStatus};
//! use onesql_core::{Engine, StreamBuilder};
//! use onesql_tvr::Change;
//! use onesql_types::{row, DataType, Result, Ts};
//!
//! struct Bids(Vec<(i64, i64)>, Vec<String>);
//!
//! impl Source for Bids {
//!     fn name(&self) -> &str {
//!         "bids"
//!     }
//!     fn streams(&self) -> &[String] {
//!         &self.1
//!     }
//!     fn poll_batch(&mut self, max_events: usize) -> Result<SourceBatch> {
//!         let take = max_events.min(self.0.len());
//!         let mut batch = SourceBatch::empty(SourceStatus::Ready);
//!         for (i, (auction, price)) in self.0.drain(..take).enumerate() {
//!             let ptime = Ts(i as i64);
//!             batch.events.push(SourceEvent {
//!                 stream: 0,
//!                 ptime,
//!                 change: Change::insert(row!(auction, price, ptime)),
//!             });
//!         }
//!         if self.0.is_empty() {
//!             batch.status = SourceStatus::Finished;
//!         }
//!         Ok(batch)
//!     }
//! }
//!
//! let mut engine = Engine::new();
//! engine.register_stream(
//!     "Bid",
//!     StreamBuilder::new()
//!         .column("auction", DataType::Int)
//!         .column("price", DataType::Int)
//!         .event_time_column("bidtime"),
//! );
//! let script = Bids(vec![(1, 3), (2, 11), (1, 7)], vec!["Bid".to_string()]);
//! engine.attach_source(Box::new(script)).unwrap();
//! let mut driver = engine
//!     .run_pipeline("SELECT auction, price FROM Bid WHERE price > 5")
//!     .unwrap();
//! let metrics = driver.run().unwrap();
//! assert_eq!(metrics.events_in, 3);
//! assert_eq!(metrics.events_out, 2);
//! ```
//!
//! [`Engine::attach_source`]: crate::Engine::attach_source
//! [`Engine::run_pipeline`]: crate::Engine::run_pipeline

use std::collections::BTreeMap;

use onesql_exec::StreamRow;
use onesql_time::{Watermark, WatermarkTracker};
use onesql_tvr::{Change, ChangeBatch};
use onesql_types::{Duration, Error, Result, Ts, Value};

use crate::observe::{self, Histogram, MetricRow, Stopwatch};
use crate::query::RunningQuery;

pub mod registry;

pub use registry::{
    AnySource, ConnectorRegistry, Exports, OptionBag, SinkConnector, SinkSpec, SourceConnector,
    SourceSpec,
};

/// What a source reports after a poll; drives the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SourceStatus {
    /// More data may be immediately available: poll again soon.
    Ready,
    /// No data right now, but the source is not done (e.g. an in-memory
    /// channel whose producers are still alive). The driver backs off.
    #[default]
    Idle,
    /// The source will never produce again; its streams get final
    /// watermarks once every source feeding them has finished.
    Finished,
}

/// One event from a source: a change to one of its declared streams at a
/// processing time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceEvent {
    /// Index into the source's [`Source::streams`] list.
    pub stream: usize,
    /// Processing time of arrival. The driver clamps these to be monotone
    /// across all sources (the executor's clock may not regress).
    pub ptime: Ts,
    /// The row change (insert, retract, or weighted).
    pub change: Change,
}

/// A batch of events plus optional progress information.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SourceBatch {
    /// The events, in the source's processing-time order.
    pub events: Vec<SourceEvent>,
    /// If set, asserts that all future events from this source have event
    /// timestamps strictly greater than this value (for every stream the
    /// source feeds).
    pub watermark: Option<Ts>,
    /// Scheduling hint for the driver.
    pub status: SourceStatus,
    /// Causal trace context: the producer-side span ID these events were
    /// emitted under (carried across the OSQW wire by the `net` source),
    /// or `None` for local sources. The driver parents its ingest span
    /// here, stitching producer and consumer pipelines into one trace.
    pub trace_parent: Option<u64>,
}

impl SourceBatch {
    /// An empty batch with the given status.
    pub fn empty(status: SourceStatus) -> SourceBatch {
        SourceBatch {
            events: Vec::new(),
            watermark: None,
            status,
            trace_parent: None,
        }
    }
}

/// A columnar batch of changes for one stream, plus the same progress
/// information a [`SourceBatch`] carries. The columnar analog of
/// [`SourceBatch`] for sources that parse input directly into columns
/// (e.g. chunked CSV), skipping per-row materialization entirely.
///
/// Ptimes must be monotone non-decreasing within the batch (clamp to a
/// running max while building); the driver applies its global clock
/// clamp on top via [`ChangeBatch::clamp_ptimes`].
#[derive(Debug, Clone)]
pub struct ColumnarBatch {
    /// Index into the source's [`Source::streams`] list.
    pub stream: usize,
    /// The changes, already columnar.
    pub columns: ChangeBatch,
    /// Same meaning as [`SourceBatch::watermark`].
    pub watermark: Option<Ts>,
    /// Same meaning as [`SourceBatch::status`].
    pub status: SourceStatus,
}

/// A pluggable input connector.
pub trait Source {
    /// Connector instance name (for metrics and errors).
    fn name(&self) -> &str;

    /// The engine stream names this source feeds. [`SourceEvent::stream`]
    /// indexes into this list. Most sources feed exactly one stream; the
    /// NEXMark source feeds three.
    fn streams(&self) -> &[String];

    /// Produce up to `max_events` events. Must not block; a source with
    /// nothing buffered returns an empty batch with status
    /// [`SourceStatus::Idle`] (or `Finished`).
    fn poll_batch(&mut self, max_events: usize) -> Result<SourceBatch>;

    /// Columnar poll: sources that can produce changes already in
    /// columnar form override this to return `Some`, and the driver feeds
    /// the batch straight into the vectorized executor path without
    /// materializing rows. `None` (the default) means "use
    /// [`Source::poll_batch`]". A vectorizing driver calls this *instead
    /// of* `poll_batch` each round, so an override must carry the same
    /// watermark/status progress a row batch would; a driver with
    /// vectorization disabled never calls it.
    fn poll_columns(&mut self, _max_events: usize) -> Result<Option<ColumnarBatch>> {
        Ok(None)
    }
}

/// A Kafka-style input connector: N ordered partitions, each with a
/// replayable offset and its own watermark progress.
///
/// Partitions are the unit of parallel ingestion *and* of recovery: the
/// sharded driver polls them independently, combines their watermarks as
/// the min (the way [`WatermarkTracker`] combines ports), and records one
/// offset per partition in a [`crate::shard::PipelineCheckpoint`] so a
/// killed pipeline can seek back and resume exactly-once.
///
/// Offsets count events: the offset of a partition is the number of events
/// it has emitted so far, and [`PartitionedSource::seek`] repositions so
/// the next event emitted is the `offset`-th. A source is **replayable**
/// when a freshly constructed instance re-emits the same events in the
/// same order (files, seeded generators); only replayable sources can
/// honor a seek, which is why the in-memory channel shards override
/// [`PartitionedSource::seek`] to reject time travel.
pub trait PartitionedSource {
    /// Connector instance name (for metrics and errors).
    fn name(&self) -> &str;

    /// The engine stream names this source feeds; [`SourceEvent::stream`]
    /// indexes into this list (shared by all partitions).
    fn streams(&self) -> &[String];

    /// Number of partitions; fixed for the life of the source.
    fn partitions(&self) -> usize;

    /// Produce up to `max_events` events from one partition. Must not
    /// block; semantics otherwise match [`Source::poll_batch`], applied
    /// per partition (a partition's events are in its own processing-time
    /// order, its watermark asserts only its own future events).
    fn poll_partition(&mut self, partition: usize, max_events: usize) -> Result<SourceBatch>;

    /// The partition's replayable position: events emitted so far.
    fn offset(&self, partition: usize) -> u64;

    /// Reposition `partition` so the next event emitted is the `offset`-th.
    ///
    /// The default implementation replays via [`replay_seek`]: it polls
    /// the partition and discards events until the offset is reached,
    /// which is correct for any freshly constructed replayable source.
    /// Seeking backwards from the current position errors.
    fn seek(&mut self, partition: usize, offset: u64) -> Result<()> {
        replay_seek(self, partition, offset)
    }

    /// The offset-acknowledge half of the checkpoint handshake: the driver
    /// durably recorded `offset` as `partition`'s resume position, so the
    /// source may release any replay resources held for earlier events.
    ///
    /// Local sources replay from their own backing data (files, seeded
    /// generators) and ignore acks — the default is a no-op. A source
    /// whose upstream lives in **another process** forwards the ack over
    /// the wire so the remote producer can trim its bounded replay spool;
    /// everything the producer still holds is exactly what a
    /// [`crate::shard::PipelineCheckpoint`] restore could ask it to
    /// re-send. The sharded driver calls this from
    /// [`crate::shard::ShardedPipelineDriver::ack_checkpoint`] (invoked
    /// by the caller once a checkpoint is durably stored — never before,
    /// or a crash could strand every restorable state) and once more
    /// when the pipeline finishes.
    fn ack(&mut self, _partition: usize, _offset: u64) -> Result<()> {
        Ok(())
    }
}

/// Seek a partition forward by replaying: poll and discard events until
/// `offset` is reached. This is [`PartitionedSource::seek`]'s default
/// body, exposed so adapters that override `seek` (e.g. to refuse
/// non-replayable time travel, or to replay only conditionally) can still
/// fall back to it.
///
/// Correct for any freshly constructed replayable source. Seeking
/// backwards from the current position errors, as does exhausting the
/// partition before the target offset.
pub fn replay_seek<S: PartitionedSource + ?Sized>(
    source: &mut S,
    partition: usize,
    offset: u64,
) -> Result<()> {
    let at = source.offset(partition);
    if offset < at {
        return Err(Error::exec(format!(
            "source '{}' partition {partition}: cannot seek backwards \
             (at offset {at}, asked for {offset})",
            source.name()
        )));
    }
    let mut remaining = offset - at;
    while remaining > 0 {
        let batch = source.poll_partition(partition, remaining.min(4096) as usize)?;
        let n = batch.events.len() as u64;
        if n == 0 {
            return Err(Error::exec(format!(
                "source '{}' partition {partition}: exhausted at offset {} \
                 while seeking to {offset}",
                source.name(),
                offset - remaining
            )));
        }
        if n > remaining {
            // A poll must not over-deliver; past this point the source
            // has been dragged beyond the target offset.
            return Err(Error::exec(format!(
                "source '{}' partition {partition}: poll returned {n} events \
                 when at most {remaining} were requested; seek overshot {offset}",
                source.name()
            )));
        }
        remaining -= n;
    }
    Ok(())
}

/// Adapts any [`Source`] into a 1-partition [`PartitionedSource`], so
/// existing connectors work unchanged with the sharded driver. The single
/// partition's offset counts the events polled; seeking uses the default
/// replay-and-discard, so resume works for replayable sources (files,
/// generators) without those connectors knowing about partitions.
pub struct SinglePartition {
    inner: Box<dyn Source>,
    polled: u64,
}

impl SinglePartition {
    /// Wrap `source` as a partitioned source with one partition.
    pub fn new(source: Box<dyn Source>) -> SinglePartition {
        SinglePartition {
            inner: source,
            polled: 0,
        }
    }
}

impl PartitionedSource for SinglePartition {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn streams(&self) -> &[String] {
        self.inner.streams()
    }

    fn partitions(&self) -> usize {
        1
    }

    fn poll_partition(&mut self, partition: usize, max_events: usize) -> Result<SourceBatch> {
        debug_assert_eq!(partition, 0);
        let batch = self.inner.poll_batch(max_events)?;
        self.polled += batch.events.len() as u64;
        Ok(batch)
    }

    fn offset(&self, partition: usize) -> u64 {
        debug_assert_eq!(partition, 0);
        self.polled
    }
}

/// Folds N independent per-partition [`Source`]s into one
/// [`PartitionedSource`], owning the `Vec<inner>` + per-partition offset
/// bookkeeping every partitioned connector otherwise hand-rolls.
///
/// The file, channel, NEXMark, and network connector families all have the
/// same shape — partition `p` is a self-contained single-stream source
/// (one file, one channel shard, one seeded generator, one accepted
/// connection) — and differ only in how (whether) a partition can be
/// repositioned:
///
/// - **Replayable** inners (files, generators): the default, seeks via
///   [`replay_seek`].
/// - **Non-replayable** inners (in-memory channels): construct with
///   [`PartitionedVec::non_replayable`]; any seek away from the current
///   offset errors instead of silently dropping events.
/// - **Custom** repositioning (the network source's resume handshake):
///   wrap `PartitionedVec` and override [`PartitionedSource::seek`] /
///   [`PartitionedSource::ack`], keeping the offset books straight with
///   [`PartitionedVec::set_offset`].
///
/// Every inner must declare the same stream list; the adapter exposes it
/// once for all partitions.
pub struct PartitionedVec<S: Source> {
    name: String,
    streams: Vec<String>,
    parts: Vec<S>,
    offsets: Vec<u64>,
    replayable: bool,
}

impl<S: Source> PartitionedVec<S> {
    /// Adapt `parts` (one inner source per partition, all feeding the same
    /// streams) under the connector instance name `name`. Errors when
    /// `parts` is empty or the inners disagree on their stream lists.
    pub fn new(name: impl Into<String>, parts: Vec<S>) -> Result<PartitionedVec<S>> {
        let name = name.into();
        let Some(first) = parts.first() else {
            return Err(Error::plan(format!(
                "partitioned source '{name}' needs at least one partition"
            )));
        };
        let streams = first.streams().to_vec();
        for (p, part) in parts.iter().enumerate() {
            if part.streams() != streams.as_slice() {
                return Err(Error::plan(format!(
                    "partitioned source '{name}': partition {p} declares streams \
                     {:?}, partition 0 declares {streams:?}",
                    part.streams()
                )));
            }
        }
        Ok(PartitionedVec {
            name,
            streams,
            offsets: vec![0; parts.len()],
            parts,
            replayable: true,
        })
    }

    /// Mark the partitions as non-replayable: seeks anywhere but the
    /// current offset error (resume requires a replayable source), instead
    /// of replay-and-discard silently eating events that exist nowhere
    /// else. Use for in-memory inners whose history is gone once polled.
    pub fn non_replayable(mut self) -> PartitionedVec<S> {
        self.replayable = false;
        self
    }

    /// Borrow partition `p`'s inner source.
    pub fn part(&self, p: usize) -> &S {
        &self.parts[p]
    }

    /// Mutably borrow partition `p`'s inner source, for wrappers layering
    /// custom seek/ack behavior over the adapter.
    pub fn part_mut(&mut self, p: usize) -> &mut S {
        &mut self.parts[p]
    }

    /// Overwrite partition `p`'s recorded offset. Only for wrappers whose
    /// custom [`PartitionedSource::seek`] repositions the inner source by
    /// means the adapter cannot observe (e.g. a network resume handshake);
    /// the books must always equal the number of events the partition will
    /// have emitted before its next one.
    pub fn set_offset(&mut self, p: usize, offset: u64) {
        self.offsets[p] = offset;
    }
}

impl<S: Source> PartitionedSource for PartitionedVec<S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn streams(&self) -> &[String] {
        &self.streams
    }

    fn partitions(&self) -> usize {
        self.parts.len()
    }

    fn poll_partition(&mut self, partition: usize, max_events: usize) -> Result<SourceBatch> {
        let batch = self.parts[partition].poll_batch(max_events)?;
        self.offsets[partition] += batch.events.len() as u64;
        Ok(batch)
    }

    fn offset(&self, partition: usize) -> u64 {
        self.offsets[partition]
    }

    fn seek(&mut self, partition: usize, offset: u64) -> Result<()> {
        if self.replayable {
            return replay_seek(self, partition, offset);
        }
        if offset == self.offsets[partition] {
            return Ok(());
        }
        Err(Error::exec(format!(
            "{}: partition {partition} is not replayable (at offset {}, \
             asked for {offset}); resume requires a replayable source",
            self.name, self.offsets[partition]
        )))
    }
}

/// A pluggable output connector. Receives the query's output changelog as
/// [`StreamRow`]s: data columns plus `undo` / `ptime` / `ver` metadata.
pub trait Sink {
    /// Connector instance name (for metrics and errors).
    fn name(&self) -> &str;

    /// Called once at attach time with the query's output schema (e.g. to
    /// write a CSV header or learn JSON field names). Default: ignore.
    fn bind(&mut self, _schema: onesql_types::SchemaRef) -> Result<()> {
        Ok(())
    }

    /// Consume a slice of newly materialized output rows.
    fn write(&mut self, rows: &[StreamRow]) -> Result<()>;

    /// The query's output watermark advanced. Default: ignore.
    fn on_watermark(&mut self, _wm: Watermark) -> Result<()> {
        Ok(())
    }

    /// A checkpoint barrier passed: everything written so far belongs to
    /// `epoch`. Transactional sinks durably stage the association *now*
    /// (before the checkpoint itself is persisted), so a restore of
    /// `epoch` can later discard exactly the bytes written after it.
    /// Default: ignore — non-transactional sinks need no two-phase story.
    fn on_checkpoint(&mut self, _epoch: u64) -> Result<()> {
        Ok(())
    }

    /// Checkpoint `epoch` is durable (the second phase, driven by
    /// `ack_checkpoint`): the sink may mark the staged rows committed and
    /// release resources held for older epochs. Default: ignore.
    fn commit_checkpoint(&mut self, _epoch: u64) -> Result<()> {
        Ok(())
    }

    /// The pipeline is being restored from checkpoint `epoch` in a fresh
    /// process: discard any staged output written after that epoch (the
    /// replay will regenerate it), positioning the sink exactly where the
    /// uninterrupted run had it. Default: ignore.
    fn on_restore(&mut self, _epoch: u64) -> Result<()> {
        Ok(())
    }

    /// The pipeline finished; flush buffers. Default: nothing.
    fn flush(&mut self) -> Result<()> {
        Ok(())
    }
}

/// Bounds and thresholds for adaptive batch sizing (backpressure beyond
/// polling): the driver shrinks its per-poll batches while materialization
/// trails ingestion and grows them while the query keeps up, instead of
/// buffering unboundedly behind a fixed poll size.
///
/// Caveat: in this runtime every round is a barrier (all delivered input
/// is fully processed before lag is measured), so watermark lag mostly
/// reflects the query's *shape* — gates and `EMIT AFTER DELAY` hold the
/// output watermark behind the input by a structural event-time offset —
/// rather than instantaneous load. The thresholds are therefore
/// deliberately coarse: `high_lag` defaults well above common window /
/// delay offsets so structurally-lagging queries are not pinned to
/// `min_batch`, and either way the controller only modulates poll size
/// within hard bounds; it never affects results. Drivers that *can*
/// measure real queued work — the sharded driver's pending merge-buffer
/// depth — feed it through [`BatchController::observe_load`], which
/// prefers that load-proportional signal and falls back to watermark lag
/// only when no depth reading is available.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveBatch {
    /// Batches never shrink below this (progress is always possible).
    pub min_batch: usize,
    /// Batches never grow beyond this (bounds per-round latency).
    pub max_batch: usize,
    /// Watermark lag at or above which the batch size halves.
    pub high_lag: Duration,
    /// Watermark lag at or below which the batch size doubles.
    pub low_lag: Duration,
    /// Pending merge-buffer depth (entries) at or above which the batch
    /// size halves. An absolute bound, not a per-size ratio: the buffer's
    /// steady-state content scales with the batch size itself, so only an
    /// absolute threshold turns depth into backpressure (see
    /// [`BatchController::observe_load`]).
    pub high_pending: usize,
    /// Pending merge-buffer depth at or below which the batch size
    /// doubles.
    pub low_pending: usize,
}

impl Default for AdaptiveBatch {
    fn default() -> AdaptiveBatch {
        AdaptiveBatch {
            min_batch: 32,
            max_batch: 4096,
            high_lag: Duration::from_minutes(30),
            low_lag: Duration::from_seconds(1),
            high_pending: 32_768,
            low_pending: 4_096,
        }
    }
}

/// Driver tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct DriverConfig {
    /// Events requested from a source per poll; the *initial* size when
    /// [`DriverConfig::adaptive`] is set.
    pub batch_size: usize,
    /// Drain output to sinks whenever at least this many changes are
    /// pending (output is always drained at the end of a scheduling round,
    /// so this bounds in-flight buffering *within* a round).
    pub max_inflight: usize,
    /// Give up after this many consecutive all-idle rounds in
    /// [`PipelineDriver::run`] (`None`: yield and keep spinning, for
    /// channel sources fed by other threads).
    pub max_idle_rounds: Option<u64>,
    /// Adaptive batch sizing from watermark lag; `None` pins
    /// [`DriverConfig::batch_size`] for the whole run.
    pub adaptive: Option<AdaptiveBatch>,
    /// Feed consecutive same-stream events as columnar
    /// [`ChangeBatch`]es when the query's operator
    /// tree supports it (the vectorized hot path). Results are byte-identical
    /// either way; disable to force the per-row oracle (e.g. for A/B
    /// benchmarking).
    pub vectorize: bool,
}

impl Default for DriverConfig {
    fn default() -> DriverConfig {
        DriverConfig {
            batch_size: 256,
            max_inflight: 1024,
            max_idle_rounds: None,
            adaptive: Some(AdaptiveBatch::default()),
            vectorize: true,
        }
    }
}

/// The adaptive batch-size controller, isolated from the driver so its
/// policy is unit-testable: one [`BatchController::observe`] per scheduling
/// round with the current [`PipelineMetrics::watermark_lag`].
///
/// Policy: multiplicative decrease when materialization trails ingestion
/// past `high_lag` (halve, floored at `min_batch`), multiplicative increase
/// when the query keeps up within `low_lag` (double, capped at
/// `max_batch`), hold otherwise or when no lag is measurable yet. The
/// configured initial size is honored as-is; bounds apply to adjustments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchController {
    size: usize,
    policy: Option<AdaptiveBatch>,
}

impl BatchController {
    /// A controller starting from the config's batch size.
    pub fn new(config: &DriverConfig) -> BatchController {
        BatchController {
            size: config.batch_size.max(1),
            policy: config.adaptive,
        }
    }

    /// The batch size to use for the next poll.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Force the current size (used when restoring a checkpoint, so a
    /// resumed pipeline polls exactly as the uninterrupted run would).
    pub fn set_size(&mut self, size: usize) {
        self.size = size.max(1);
    }

    /// Feed one round's watermark lag; returns the (possibly adjusted)
    /// size for the next round. Equivalent to
    /// [`BatchController::observe_load`] with no depth reading.
    pub fn observe(&mut self, lag: Option<Duration>) -> usize {
        self.observe_load(None, lag)
    }

    /// Feed one round's load signals; returns the (possibly adjusted)
    /// size for the next round.
    ///
    /// Signal choice: `pending` is the depth of the driver's merge buffer
    /// — output the workers already produced that the deterministic merge
    /// has not yet been able to release to sinks. Unlike watermark lag
    /// (which, under barrier-per-round scheduling, mostly encodes the
    /// query's structural event-time offset — see [`AdaptiveBatch`]),
    /// depth measures real queued work in entries of real memory. So when
    /// a depth reading is present it drives the policy and lag is
    /// ignored; lag is the fallback for drivers with no merge buffer to
    /// measure.
    ///
    /// The depth thresholds are **absolute** (`high_pending` /
    /// `low_pending` entries), deliberately not ratios of the current
    /// batch size: the buffer's steady-state content — the clock-tie
    /// cohort the deterministic merge must hold back every round — itself
    /// grows with the batch size, so a relative threshold would cancel
    /// out and never move. Absolute bounds make the controller an AIMD
    /// loop on in-flight merge memory: grow while the buffer stays small,
    /// back off when it crosses the bound (deep hold-back, stalled
    /// clock), whatever the reason.
    pub fn observe_load(&mut self, pending: Option<usize>, lag: Option<Duration>) -> usize {
        let Some(policy) = self.policy else {
            return self.size;
        };
        if let Some(depth) = pending {
            if depth >= policy.high_pending {
                self.size = (self.size / 2).max(policy.min_batch).max(1);
            } else if depth <= policy.low_pending {
                self.size = (self.size * 2).min(policy.max_batch.max(1));
            }
        } else if let Some(lag) = lag {
            if lag >= policy.high_lag {
                self.size = (self.size / 2).max(policy.min_batch).max(1);
            } else if lag <= policy.low_lag {
                self.size = (self.size * 2).min(policy.max_batch.max(1));
            }
        }
        self.size
    }
}

/// Per-source accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceMetrics {
    /// Connector instance name.
    pub name: String,
    /// Events fed into the query from this source.
    pub events: u64,
    /// Estimated payload bytes fed from this source (see
    /// [`change_bytes`]).
    pub bytes: u64,
    /// Polls that returned at least one event.
    pub non_empty_polls: u64,
    /// The source's current watermark assertion.
    pub watermark: Watermark,
    /// Whether the source has finished.
    pub finished: bool,
}

/// Estimated payload size of one change, in bytes: 8 per fixed-width value
/// (int, float, timestamp, interval), 1 per null/bool, string length for
/// strings. A stable, cheap estimator — not a wire format — so byte
/// counters mean the same thing on every connector and survive checkpoints
/// deterministically.
pub fn change_bytes(change: &Change) -> u64 {
    change
        .row
        .values()
        .iter()
        .map(|v| match v {
            Value::Null | Value::Bool(_) => 1u64,
            Value::Int(_) | Value::Float(_) | Value::Ts(_) | Value::Interval(_) => 8,
            Value::Str(s) => s.len() as u64,
        })
        .sum()
}

/// Pipeline-wide accounting, readable at any time via
/// [`PipelineDriver::metrics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineMetrics {
    /// Total events fed into the query.
    pub events_in: u64,
    /// Total output rows delivered to sinks.
    pub events_out: u64,
    /// Estimated payload bytes fed into the query (sum over sources).
    pub bytes_in: u64,
    /// Watermark deliveries into the query.
    pub watermarks_in: u64,
    /// Completed scheduling rounds.
    pub rounds: u64,
    /// Rounds in which no source produced anything.
    pub idle_rounds: u64,
    /// Rounds that fed at least one columnar batch (the vectorized path).
    pub vectorized_rounds: u64,
    /// Rounds that fed at least one event per-row (stream doesn't
    /// vectorize, single-event runs, or mixed-arity runs).
    pub fallback_rounds: u64,
    /// Rows per columnar batch fed to the query (vectorized path only).
    pub batch_rows: Histogram,
    /// The batch size the adaptive controller chose for the next poll.
    pub batch_size: usize,
    /// Depth of the sharded driver's deterministic-merge hold-back buffer
    /// (0 for the plain driver, which has no merge buffer).
    pub pending_depth: u64,
    /// Wall-clock per scheduling round, in microseconds.
    pub round_micros: Histogram,
    /// Wall-clock spent polling sources per round, in microseconds.
    pub poll_micros: Histogram,
    /// Wall-clock spent in the deterministic merge/drain of worker output
    /// per round, in microseconds (sharded driver only).
    pub merge_micros: Histogram,
    /// Wall-clock per output render+deliver drain, in microseconds.
    pub emit_micros: Histogram,
    /// Durable checkpoints persisted by this incarnation.
    pub checkpoints: u64,
    /// Epoch of the most recent durable checkpoint (0 before any).
    pub checkpoint_epoch: u64,
    /// Wall-clock per durable checkpoint persist, in microseconds.
    pub checkpoint_persist_micros: Histogram,
    /// Times this incarnation was restored from a checkpoint (0 or 1).
    pub restores: u64,
    /// Per-source breakdown, in attach order.
    pub sources: Vec<SourceMetrics>,
    /// The min over all live sources' watermarks (what the slowest input
    /// asserts about event-time progress).
    pub input_watermark: Watermark,
    /// The query's output watermark.
    pub output_watermark: Watermark,
    /// Per-stream watermark provenance: which feeder holds each stream's
    /// minimum watermark and when it last produced (why the watermark is
    /// where it is). Refreshed with the watermark fields.
    pub watermark_provenance: Vec<WatermarkProvenance>,
}

impl Default for PipelineMetrics {
    fn default() -> PipelineMetrics {
        PipelineMetrics {
            events_in: 0,
            events_out: 0,
            bytes_in: 0,
            watermarks_in: 0,
            rounds: 0,
            idle_rounds: 0,
            vectorized_rounds: 0,
            fallback_rounds: 0,
            batch_rows: Histogram::new(),
            batch_size: 0,
            pending_depth: 0,
            round_micros: Histogram::new(),
            poll_micros: Histogram::new(),
            merge_micros: Histogram::new(),
            emit_micros: Histogram::new(),
            checkpoints: 0,
            checkpoint_epoch: 0,
            checkpoint_persist_micros: Histogram::new(),
            restores: 0,
            sources: Vec::new(),
            input_watermark: Watermark::MIN,
            output_watermark: Watermark::MIN,
            watermark_provenance: Vec::new(),
        }
    }
}

impl PipelineMetrics {
    /// Event-time distance between the slowest input's watermark and the
    /// output watermark: how far materialization trails ingestion. `None`
    /// until both watermarks carry real timestamps.
    pub fn watermark_lag(&self) -> Option<onesql_types::Duration> {
        PipelineMetrics::lag_between(self.input_watermark, self.output_watermark)
    }

    /// [`PipelineMetrics::watermark_lag`] on raw watermarks, so drivers
    /// can feed their batch controller each round without rebuilding the
    /// whole metrics struct.
    pub fn lag_between(input: Watermark, output: Watermark) -> Option<onesql_types::Duration> {
        if input == Watermark::MIN || output == Watermark::MIN {
            return None;
        }
        Some(input.ts() - output.ts())
    }

    /// Render these metrics as stable `(name, kind, value)` rows — the one
    /// vocabulary shared by `SHOW PIPELINES`, `EXPLAIN ANALYZE`, and the
    /// `metrics` source connector, so the surfaces can never drift.
    ///
    /// Conventions: durations are microseconds; watermarks are epoch millis
    /// (`i64::MIN` while still [`Watermark::MIN`]); `watermark_lag_ms` is
    /// -1 until both watermarks carry real timestamps. Histograms render as
    /// four rows each: `<name>_count`, `<name>_p50`, `<name>_p99`,
    /// `<name>_max`. Per-source rows are `source.<name>.rows` / `.bytes`
    /// counters and `.watermark_ms` / `.finished` gauges, in attach order.
    pub fn render_rows(&self) -> Vec<MetricRow> {
        fn wm_millis(wm: Watermark) -> i64 {
            if wm == Watermark::MIN {
                i64::MIN
            } else {
                wm.ts().millis()
            }
        }
        fn histogram(rows: &mut Vec<MetricRow>, name: &str, h: &Histogram) {
            rows.push(MetricRow::counter(format!("{name}_count"), h.count()));
            rows.push(MetricRow::gauge(
                format!("{name}_p50"),
                h.p50().min(i64::MAX as u64) as i64,
            ));
            rows.push(MetricRow::gauge(
                format!("{name}_p99"),
                h.p99().min(i64::MAX as u64) as i64,
            ));
            rows.push(MetricRow::gauge(
                format!("{name}_max"),
                h.max().min(i64::MAX as u64) as i64,
            ));
        }

        let mut rows = vec![
            MetricRow::counter("events_in", self.events_in),
            MetricRow::counter("events_out", self.events_out),
            MetricRow::counter("bytes_in", self.bytes_in),
            MetricRow::counter("watermarks_in", self.watermarks_in),
            MetricRow::counter("rounds", self.rounds),
            MetricRow::counter("idle_rounds", self.idle_rounds),
            MetricRow::counter("vectorized_rounds", self.vectorized_rounds),
            MetricRow::counter("fallback_rounds", self.fallback_rounds),
            MetricRow::gauge("batch_size", self.batch_size.min(i64::MAX as usize) as i64),
            MetricRow::gauge(
                "pending_depth",
                self.pending_depth.min(i64::MAX as u64) as i64,
            ),
            MetricRow::gauge("input_watermark_ms", wm_millis(self.input_watermark)),
            MetricRow::gauge("output_watermark_ms", wm_millis(self.output_watermark)),
            MetricRow::gauge(
                "watermark_lag_ms",
                self.watermark_lag().map_or(-1, |d| d.millis()),
            ),
        ];
        histogram(&mut rows, "batch_rows", &self.batch_rows);
        histogram(&mut rows, "round_micros", &self.round_micros);
        histogram(&mut rows, "poll_micros", &self.poll_micros);
        histogram(&mut rows, "merge_micros", &self.merge_micros);
        histogram(&mut rows, "emit_micros", &self.emit_micros);
        rows.push(MetricRow::counter("checkpoints", self.checkpoints));
        rows.push(MetricRow::gauge(
            "checkpoint_epoch",
            self.checkpoint_epoch.min(i64::MAX as u64) as i64,
        ));
        histogram(
            &mut rows,
            "checkpoint_persist_micros",
            &self.checkpoint_persist_micros,
        );
        rows.push(MetricRow::counter("restores", self.restores));
        for src in &self.sources {
            rows.push(MetricRow::counter(
                format!("source.{}.rows", src.name),
                src.events,
            ));
            rows.push(MetricRow::counter(
                format!("source.{}.bytes", src.name),
                src.bytes,
            ));
            rows.push(MetricRow::gauge(
                format!("source.{}.watermark_ms", src.name),
                wm_millis(src.watermark),
            ));
            rows.push(MetricRow::gauge(
                format!("source.{}.finished", src.name),
                i64::from(src.finished),
            ));
        }
        for p in &self.watermark_provenance {
            rows.push(MetricRow::gauge(
                format!("wm.{}.holder.{}.watermark_ms", p.stream, p.holder),
                wm_millis(p.holder_watermark),
            ));
            rows.push(MetricRow::gauge(
                format!("wm.{}.holder.{}.last_event_ms", p.stream, p.holder),
                p.holder_last_event.map_or(i64::MIN, |t| t.millis()),
            ));
        }
        rows
    }
}

/// Why a stream's watermark is where it is: the feeder (a source, or one
/// source partition) currently holding the minimum, and when it last
/// produced an event — the answer to "why is my watermark stuck".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatermarkProvenance {
    /// Lowercased stream name.
    pub stream: String,
    /// The stream's combined (min over feeders) watermark.
    pub watermark: Watermark,
    /// Label of the feeder holding the minimum, e.g. `bids` or `bids[2]`
    /// (source name, with the partition index for partitioned sources).
    pub holder: String,
    /// The holding feeder's current watermark.
    pub holder_watermark: Watermark,
    /// Processing time of the last event the holder produced, or `None`
    /// if it has produced nothing yet.
    pub holder_last_event: Option<Ts>,
}

/// Combines per-feeder watermarks into per-stream deliveries, the way
/// [`WatermarkTracker`] combines operator ports: a stream's watermark is
/// the min over all feeders (sources, or source partitions) feeding it,
/// delivered only when it advances. Shared by [`PipelineDriver`] (one
/// feeder per source) and the sharded driver (one feeder per partition).
///
/// Beyond combining, the ledger keeps *provenance*: which feeder holds
/// each stream's minimum and when that feeder last produced an event
/// ([`WatermarkLedger::provenance`]).
pub(crate) struct WatermarkLedger {
    /// Current watermark per feeder; a finished feeder sits at MAX.
    feeders: Vec<Watermark>,
    /// Human-readable feeder labels, parallel to `feeders`.
    labels: Vec<String>,
    /// Processing time of each feeder's most recent event, if any.
    last_events: Vec<Option<Ts>>,
    /// Per (lowercased) stream: the min-combining tracker and the feeder
    /// index behind each of its ports.
    streams: BTreeMap<String, (WatermarkTracker, Vec<usize>)>,
}

impl WatermarkLedger {
    pub(crate) fn new() -> WatermarkLedger {
        WatermarkLedger {
            feeders: Vec::new(),
            labels: Vec::new(),
            last_events: Vec::new(),
            streams: BTreeMap::new(),
        }
    }

    /// Register a feeder labelled `label` for the given (lowercased)
    /// streams; returns its index. Must be called before any `observe`.
    pub(crate) fn add_feeder(&mut self, label: impl Into<String>, streams: &[String]) -> usize {
        let idx = self.feeders.len();
        self.feeders.push(Watermark::MIN);
        self.labels.push(label.into());
        self.last_events.push(None);
        for stream in streams {
            let (tracker, ports) = self
                .streams
                .entry(stream.clone())
                .or_insert_with(|| (WatermarkTracker::new(0), Vec::new()));
            ports.push(idx);
            *tracker = WatermarkTracker::new(ports.len());
        }
        idx
    }

    /// Record a watermark observation on `feeder`, appending any per-stream
    /// advancement to `advances` as `(stream, combined)` pairs the caller
    /// must deliver.
    pub(crate) fn observe(
        &mut self,
        feeder: usize,
        wm: Watermark,
        advances: &mut Vec<(String, Watermark)>,
    ) {
        if !self.feeders[feeder].advance_to(wm) {
            return;
        }
        let wm = self.feeders[feeder];
        for (stream, (tracker, ports)) in &mut self.streams {
            // A feeder may legally back several ports of one stream (e.g.
            // a source declaring case-variants of a name): update them all,
            // or the untouched port pins the combined watermark at MIN.
            for (port, _) in ports.iter().enumerate().filter(|(_, &f)| f == feeder) {
                if let Some(combined) = tracker.observe(port, wm) {
                    advances.push((stream.clone(), combined));
                }
            }
        }
    }

    /// The feeder's current watermark.
    pub(crate) fn feeder(&self, idx: usize) -> Watermark {
        self.feeders[idx]
    }

    /// All feeder watermarks, for checkpointing.
    pub(crate) fn feeder_watermarks(&self) -> &[Watermark] {
        &self.feeders
    }

    /// The min over all feeders: what the slowest input asserts. Finished
    /// feeders sit at MAX and stop constraining.
    pub(crate) fn input_watermark(&self) -> Watermark {
        self.feeders.iter().copied().min().unwrap_or(Watermark::MIN)
    }

    /// Record that `feeder` produced an event at processing time `ts`
    /// (kept as a running max).
    pub(crate) fn note_event(&mut self, feeder: usize, ts: Ts) {
        let last = &mut self.last_events[feeder];
        *last = Some(last.map_or(ts, |prev| prev.max(ts)));
    }

    /// Per-stream watermark provenance: for each stream, which feeder
    /// currently holds the minimum (first on ties, so the answer is
    /// deterministic) and when it last produced an event.
    pub(crate) fn provenance(&self) -> Vec<WatermarkProvenance> {
        self.streams
            .iter()
            .filter_map(|(stream, (_, ports))| {
                let holder = *ports.iter().min_by_key(|&&feeder| self.feeders[feeder])?;
                let watermark = ports
                    .iter()
                    .map(|&feeder| self.feeders[feeder])
                    .min()
                    .unwrap_or(Watermark::MIN);
                Some(WatermarkProvenance {
                    stream: stream.clone(),
                    watermark,
                    holder: self.labels[holder].clone(),
                    holder_watermark: self.feeders[holder],
                    holder_last_event: self.last_events[holder],
                })
            })
            .collect()
    }
}

struct SourceSlot {
    source: Box<dyn Source>,
    /// Lowercased stream names, resolved once at attach time.
    streams: Vec<String>,
    finished: bool,
    events: u64,
    bytes: u64,
    non_empty_polls: u64,
}

/// Pumps N sources through one running query into M sinks.
///
/// Scheduling is round-robin over ready sources with per-poll batches of
/// [`DriverConfig::batch_size`] events; watermark propagation is monotone
/// per stream (see [`PipelineDriver::step`]); output is drained to sinks
/// at least once per round.
pub struct PipelineDriver {
    query: RunningQuery,
    sources: Vec<SourceSlot>,
    sinks: Vec<Box<dyn Sink>>,
    config: DriverConfig,
    controller: BatchController,
    metrics: PipelineMetrics,
    /// Per-source watermark combining and monotone per-stream delivery.
    ledger: WatermarkLedger,
    /// Scratch buffer for ledger advances (avoids per-event allocation).
    advances: Vec<(String, Watermark)>,
    /// Monotone processing-time clock (the executor may not regress).
    clock: Ts,
    /// Changelog entries already rendered to sinks.
    emitted: usize,
    /// Output watermark already reported to sinks.
    sink_watermark: Watermark,
    /// Incremental `EMIT STREAM` rendering (shared with
    /// `onesql_exec::render_stream`, so sink-side `ver` numbering cannot
    /// diverge from `RunningQuery::stream_rows`).
    renderer: onesql_exec::StreamRenderer,
    /// When set, the driver publishes a metrics snapshot to the global
    /// [`observe::hub`] under this name after every round.
    label: Option<String>,
    /// When set, every sink-observable event (rows, watermarks, finish)
    /// is also appended here, in sink order.
    tap: Option<crate::history::HistoryTap>,
    /// Per-stream vectorization verdicts, cached after the first run (the
    /// query's tree shape and generators cannot change under the driver).
    vector_ok: BTreeMap<String, bool>,
    finished: bool,
}

impl PipelineDriver {
    /// Wrap an already-running query. Use [`crate::Engine::run_pipeline`]
    /// to build one straight from SQL with attached connectors.
    pub fn new(query: RunningQuery) -> PipelineDriver {
        let ver_cols = onesql_exec::compile::version_columns(query.bound());
        let clock = query.now();
        let config = DriverConfig::default();
        PipelineDriver {
            query,
            sources: Vec::new(),
            sinks: Vec::new(),
            config,
            controller: BatchController::new(&config),
            metrics: PipelineMetrics::default(),
            ledger: WatermarkLedger::new(),
            advances: Vec::new(),
            clock,
            emitted: 0,
            sink_watermark: Watermark::MIN,
            renderer: onesql_exec::StreamRenderer::new(ver_cols),
            label: None,
            tap: None,
            vector_ok: BTreeMap::new(),
            finished: false,
        }
    }

    /// Install a [`crate::history::HistoryTap`]: every sink-observable
    /// event — rendered rows, watermark deliveries, the finish marker —
    /// is also appended to `tap`, in sink order. (The plain driver has no
    /// checkpoint surface, so epoch events never appear here.)
    pub fn set_history_tap(&mut self, tap: crate::history::HistoryTap) {
        self.tap = Some(tap);
    }

    /// Whether `stream` takes the vectorized path, cached per stream.
    fn stream_vectorizes(&mut self, stream: &str) -> bool {
        if let Some(&ok) = self.vector_ok.get(stream) {
            return ok;
        }
        let ok = self.query.vectorizes(stream);
        self.vector_ok.insert(stream.to_string(), ok);
        ok
    }

    /// Name this pipeline on the global [`observe::hub`]: every subsequent
    /// round publishes a [`crate::PipelineSnapshot`] under `label`, which
    /// is what the `metrics` source connector and `SHOW PIPELINES` read.
    /// Unlabelled drivers never touch the hub.
    pub fn set_label(&mut self, label: impl Into<String>) {
        self.label = Some(label.into());
    }

    /// The hub label, if one was set.
    pub fn label(&self) -> Option<&str> {
        self.label.as_deref()
    }

    fn publish_snapshot(&mut self) {
        if self.label.is_none() {
            return;
        }
        self.refresh_metrics();
        let label = self.label.as_deref().unwrap_or_default();
        observe::hub().publish(
            label,
            self.clock,
            false,
            self.finished,
            self.metrics.clone(),
        );
    }

    /// Replace the driver configuration.
    pub fn with_config(mut self, config: DriverConfig) -> PipelineDriver {
        self.config = config;
        self.controller = BatchController::new(&config);
        self
    }

    /// The batch size the adaptive controller will use for the next poll.
    pub fn current_batch_size(&self) -> usize {
        self.controller.size()
    }

    /// Attach a source. Fails if the source declares no streams, or once
    /// the pipeline has started (the per-stream watermark trackers are
    /// sized at attach time; growing them mid-run would reset delivered
    /// watermark floors).
    pub fn attach_source(&mut self, source: Box<dyn Source>) -> Result<()> {
        if self.metrics.rounds > 0 {
            return Err(Error::plan("attach sources before stepping the pipeline"));
        }
        let streams: Vec<String> = source
            .streams()
            .iter()
            .map(|s| s.to_ascii_lowercase())
            .collect();
        if streams.is_empty() {
            return Err(Error::plan(format!(
                "source '{}' declares no streams",
                source.name()
            )));
        }
        self.ledger.add_feeder(source.name(), &streams);
        self.sources.push(SourceSlot {
            source,
            streams,
            finished: false,
            events: 0,
            bytes: 0,
            non_empty_polls: 0,
        });
        Ok(())
    }

    /// Attach a sink; it is immediately bound to the query's output
    /// schema.
    pub fn attach_sink(&mut self, mut sink: Box<dyn Sink>) -> Result<()> {
        sink.bind(self.query.schema())?;
        self.sinks.push(sink);
        Ok(())
    }

    /// The wrapped query (table views, state metrics, …).
    pub fn query(&self) -> &RunningQuery {
        &self.query
    }

    /// The driver's monotone processing-time clock: the max ptime of any
    /// event fed so far. `AS OF` probes strictly below it are stable.
    pub fn clock(&self) -> Ts {
        self.clock
    }

    /// Current accounting. Watermark fields are refreshed on access.
    pub fn metrics(&mut self) -> &PipelineMetrics {
        self.refresh_metrics();
        &self.metrics
    }

    /// True once [`PipelineDriver::finish`] ran (all sources exhausted).
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    fn refresh_metrics(&mut self) {
        self.metrics.sources = self
            .sources
            .iter()
            .enumerate()
            .map(|(i, s)| SourceMetrics {
                name: s.source.name().to_string(),
                events: s.events,
                bytes: s.bytes,
                non_empty_polls: s.non_empty_polls,
                watermark: self.ledger.feeder(i),
                finished: s.finished,
            })
            .collect();
        self.metrics.input_watermark = self.ledger.input_watermark();
        self.metrics.output_watermark = self.query.output_watermark();
        self.metrics.watermark_provenance = self.ledger.provenance();
    }

    /// Per-stream watermark provenance: which source holds each stream's
    /// minimum watermark and when it last produced an event.
    pub fn watermark_provenance(&self) -> Vec<WatermarkProvenance> {
        self.ledger.provenance()
    }

    /// One scheduling round: poll every unfinished source once (up to
    /// `batch_size` events each), feed the query, propagate watermarks,
    /// and drain output. Returns how many events were ingested; `Ok(0)`
    /// with unfinished sources means everything was idle.
    pub fn step(&mut self) -> Result<usize> {
        if self.finished {
            return Ok(0);
        }
        if observe::enabled() {
            observe::set_thread_pipeline(self.label.as_deref().unwrap_or(""));
        }
        let _round = observe::TraceSpan::root("driver.round");
        let round = Stopwatch::start();
        let batch_size = self.controller.size();
        let mut ingested = 0usize;
        let mut poll_micros = 0u64;
        let mut vectorized_round = false;
        let mut fallback_round = false;
        for slot in 0..self.sources.len() {
            if self.sources[slot].finished {
                continue;
            }
            let poll = Stopwatch::start();
            // Columnar fast path: a source that parses straight into
            // columns (chunked CSV) hands the driver a ready ChangeBatch.
            if self.config.vectorize {
                if let Some(cb) = self.sources[slot].source.poll_columns(batch_size)? {
                    poll_micros = poll_micros.saturating_add(poll.micros());
                    ingested +=
                        self.ingest_columns(slot, cb, &mut vectorized_round, &mut fallback_round)?;
                    self.deliver_advances()?;
                    continue;
                }
            }
            let batch = self.sources[slot].source.poll_batch(batch_size)?;
            poll_micros = poll_micros.saturating_add(poll.micros());
            let had_events = !batch.events.is_empty();
            if had_events {
                self.sources[slot].non_empty_polls += 1;
            }
            // The ingest span parents under the wire-carried producer span
            // when the source supplied one, else under this round.
            let _ingest = (had_events || batch.watermark.is_some()).then(|| {
                observe::TraceSpan::with_parent("driver.ingest", batch.trace_parent.unwrap_or(0))
                    .partition(slot.min(i32::MAX as usize) as i32)
            });
            let mut events = batch.events.into_iter().peekable();
            while let Some(event) = events.next() {
                let stream_idx = event.stream;
                let stream = self.sources[slot]
                    .streams
                    .get(stream_idx)
                    .cloned()
                    .ok_or_else(|| {
                        Error::exec(format!(
                            "source '{}' produced an event for stream index {} \
                                 but declares only {} streams",
                            self.sources[slot].source.name(),
                            stream_idx,
                            self.sources[slot].streams.len()
                        ))
                    })?;
                // Processing time is monotone across the whole pipeline;
                // a source whose clock lags is dragged forward.
                self.clock = self.clock.max(event.ptime);
                // Gather the run of consecutive events for the same stream;
                // clock clamping keeps the run's ptime lane monotone.
                let mut run: Vec<(Ts, Change)> = vec![(self.clock, event.change)];
                if self.config.vectorize && self.stream_vectorizes(&stream) {
                    while let Some(next) = events.next_if(|next| next.stream == stream_idx) {
                        self.clock = self.clock.max(next.ptime);
                        run.push((self.clock, next.change));
                    }
                }
                let run_events = run.len() as u64;
                let run_bytes: u64 = run.iter().map(|(_, c)| change_bytes(c)).sum();
                if run.len() > 1 {
                    if let Some(columns) = ChangeBatch::from_changes(&run) {
                        self.metrics.batch_rows.record(columns.len() as u64);
                        self.metrics.vectorized_rounds += u64::from(!vectorized_round);
                        vectorized_round = true;
                        self.query.change_batch(&stream, &columns)?;
                    } else {
                        // Mixed-arity run: per-row feeding reproduces the
                        // oracle's arity error exactly.
                        self.metrics.fallback_rounds += u64::from(!fallback_round);
                        fallback_round = true;
                        for (ts, change) in run {
                            self.query.change(&stream, ts, change)?;
                        }
                    }
                } else {
                    self.metrics.fallback_rounds += u64::from(!fallback_round);
                    fallback_round = true;
                    if let Some((ts, change)) = run.pop() {
                        self.query.change(&stream, ts, change)?;
                    }
                }
                self.sources[slot].events += run_events;
                self.sources[slot].bytes += run_bytes;
                self.metrics.events_in += run_events;
                self.metrics.bytes_in += run_bytes;
                ingested += run_events as usize;
                // Bounded in-flight buffering: drain mid-round when the
                // pending output grows past the configured bound.
                if self.query.changelog().len() - self.emitted >= self.config.max_inflight {
                    self.drain_output()?;
                }
            }
            if had_events {
                self.ledger.note_event(slot, self.clock);
            }
            if let Some(wm) = batch.watermark {
                self.ledger.observe(slot, Watermark(wm), &mut self.advances);
            }
            if batch.status == SourceStatus::Finished {
                self.sources[slot].finished = true;
                // A finished source asserts completeness: it no longer
                // constrains its streams' watermarks.
                self.ledger
                    .observe(slot, Watermark::MAX, &mut self.advances);
            }
            self.deliver_advances()?;
        }
        self.drain_output()?;
        self.metrics.rounds += 1;
        if ingested == 0 {
            self.metrics.idle_rounds += 1;
        }
        if self.all_sources_finished() {
            self.finish()?;
        } else {
            self.metrics.batch_size = self.controller.observe(PipelineMetrics::lag_between(
                self.ledger.input_watermark(),
                self.query.output_watermark(),
            ));
        }
        self.metrics.poll_micros.record(poll_micros);
        self.metrics.round_micros.record(round.micros());
        self.publish_snapshot();
        Ok(ingested)
    }

    /// Ingest one columnar source batch: clamp its ptime lane to the
    /// driver's monotone clock, feed the vectorized path (or fall back
    /// per-row when the plan cannot batch this stream), and apply the
    /// batch's watermark/status exactly as the row path would. Returns
    /// the number of rows ingested.
    fn ingest_columns(
        &mut self,
        slot: usize,
        cb: ColumnarBatch,
        vectorized_round: &mut bool,
        fallback_round: &mut bool,
    ) -> Result<usize> {
        let n = cb.columns.len();
        if n > 0 {
            self.sources[slot].non_empty_polls += 1;
            let stream = self.sources[slot]
                .streams
                .get(cb.stream)
                .cloned()
                .ok_or_else(|| {
                    Error::exec(format!(
                        "source '{}' produced an event for stream index {} \
                         but declares only {} streams",
                        self.sources[slot].source.name(),
                        cb.stream,
                        self.sources[slot].streams.len()
                    ))
                })?;
            // The same monotone-clock clamp the row path applies per event.
            let columns = cb.columns.clamp_ptimes(self.clock);
            self.clock = self.clock.max(columns.ptime(n - 1));
            let bytes: u64 = (0..n).map(|i| columns.row_bytes(i)).sum();
            if self.stream_vectorizes(&stream) {
                self.metrics.batch_rows.record(n as u64);
                self.metrics.vectorized_rounds += u64::from(!*vectorized_round);
                *vectorized_round = true;
                self.query.change_batch(&stream, &columns)?;
            } else {
                self.metrics.fallback_rounds += u64::from(!*fallback_round);
                *fallback_round = true;
                for i in 0..n {
                    let (ts, change) = columns.timed_change(i);
                    self.query.change(&stream, ts, change)?;
                }
            }
            self.sources[slot].events += n as u64;
            self.sources[slot].bytes += bytes;
            self.metrics.events_in += n as u64;
            self.metrics.bytes_in += bytes;
            self.ledger.note_event(slot, self.clock);
            if self.query.changelog().len() - self.emitted >= self.config.max_inflight {
                self.drain_output()?;
            }
        }
        if let Some(wm) = cb.watermark {
            self.ledger.observe(slot, Watermark(wm), &mut self.advances);
        }
        if cb.status == SourceStatus::Finished {
            self.sources[slot].finished = true;
            self.ledger
                .observe(slot, Watermark::MAX, &mut self.advances);
        }
        Ok(n)
    }

    /// Deliver per-stream watermark advancements queued by the ledger.
    ///
    /// A stream's watermark is the **min** over all sources feeding it
    /// (any one source may still deliver old events); delivery is strictly
    /// monotone — the query only hears a stream watermark when it exceeds
    /// what was already delivered (both enforced by [`WatermarkLedger`]).
    fn deliver_advances(&mut self) -> Result<()> {
        let mut advances = std::mem::take(&mut self.advances);
        for (stream, combined) in advances.drain(..) {
            self.query.watermark(&stream, self.clock, combined.ts())?;
            self.metrics.watermarks_in += 1;
        }
        self.advances = advances;
        Ok(())
    }

    fn all_sources_finished(&self) -> bool {
        !self.sources.is_empty() && self.sources.iter().all(|s| s.finished)
    }

    /// Render changelog entries not yet delivered and hand them to every
    /// sink, with `ver` numbering identical to `EMIT STREAM` rendering.
    fn drain_output(&mut self) -> Result<()> {
        let entries = self.query.changelog().entries();
        if self.emitted >= entries.len() {
            self.notify_sink_watermark()?;
            return Ok(());
        }
        // The emit span is the thread's current span while sinks write,
        // so a `NetSink` can attach it to outgoing BATCH frames as the
        // consumer side's trace parent.
        let _emit_span = observe::TraceSpan::child("driver.emit");
        let emit = Stopwatch::start();
        let mut rows = Vec::with_capacity(entries.len() - self.emitted);
        for entry in &entries[self.emitted..] {
            self.renderer.render_into(entry, &mut rows)?;
        }
        self.emitted = entries.len();
        self.metrics.events_out += rows.len() as u64;
        for sink in &mut self.sinks {
            sink.write(&rows)?;
        }
        if let Some(tap) = &self.tap {
            tap.record_rows(&rows);
        }
        self.notify_sink_watermark()?;
        self.metrics.emit_micros.record(emit.micros());
        Ok(())
    }

    fn notify_sink_watermark(&mut self) -> Result<()> {
        let wm = self.query.output_watermark();
        if wm > self.sink_watermark {
            self.sink_watermark = wm;
            for sink in &mut self.sinks {
                sink.on_watermark(wm)?;
            }
            if let Some(tap) = &self.tap {
                tap.record(crate::history::HistoryEvent::Watermark(wm));
            }
        }
        Ok(())
    }

    /// Declare the pipeline complete: final watermarks flush all gated /
    /// delayed materialization, remaining output drains, and sinks flush.
    /// Idempotent; called automatically when every source reports
    /// [`SourceStatus::Finished`].
    pub fn finish(&mut self) -> Result<()> {
        if self.finished {
            return Ok(());
        }
        self.finished = true;
        if observe::enabled() {
            observe::set_thread_pipeline(self.label.as_deref().unwrap_or(""));
        }
        let _finish_span = observe::TraceSpan::root("driver.finish");
        let span = Stopwatch::start();
        self.query.finish(self.clock)?;
        self.drain_output()?;
        for sink in &mut self.sinks {
            sink.flush()?;
        }
        if let Some(tap) = &self.tap {
            tap.record(crate::history::HistoryEvent::Finished);
        }
        observe::sample("driver.finish_micros", span.micros());
        self.refresh_metrics();
        self.publish_snapshot();
        Ok(())
    }

    /// Run until every source finishes. All-idle rounds yield the thread
    /// (sources may be fed by other threads); `max_idle_rounds` bounds the
    /// wait, erroring on exhaustion so a stuck pipeline is loud.
    pub fn run(&mut self) -> Result<&PipelineMetrics> {
        if self.sources.is_empty() {
            return Err(Error::plan("pipeline has no sources"));
        }
        let mut idle_streak = 0u64;
        while !self.finished {
            let ingested = self.step()?;
            if self.finished {
                break;
            }
            if ingested == 0 {
                idle_streak += 1;
                if let Some(limit) = self.config.max_idle_rounds {
                    if idle_streak > limit {
                        return Err(Error::exec(format!(
                            "pipeline made no progress for {idle_streak} rounds \
                             (sources idle, none finished)"
                        )));
                    }
                }
                std::thread::yield_now();
            } else {
                idle_streak = 0;
            }
        }
        self.refresh_metrics();
        Ok(&self.metrics)
    }
}

impl std::fmt::Debug for PipelineDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineDriver")
            .field("sources", &self.sources.len())
            .field("sinks", &self.sinks.len())
            .field("events_in", &self.metrics.events_in)
            .field("events_out", &self.metrics.events_out)
            .field("finished", &self.finished)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(initial: usize, min: usize, max: usize) -> BatchController {
        BatchController::new(&DriverConfig {
            batch_size: initial,
            adaptive: Some(AdaptiveBatch {
                min_batch: min,
                max_batch: max,
                high_lag: Duration::from_seconds(60),
                low_lag: Duration::from_seconds(1),
                high_pending: 1_000,
                low_pending: 100,
            }),
            ..DriverConfig::default()
        })
    }

    #[test]
    fn controller_shrinks_under_lag_and_grows_when_caught_up() {
        let mut c = controller(256, 32, 4096);
        assert_eq!(c.observe(Some(Duration::from_seconds(120))), 128);
        assert_eq!(c.observe(Some(Duration::from_seconds(60))), 64, "at high");
        assert_eq!(c.observe(Some(Duration::from_seconds(30))), 64, "between");
        assert_eq!(c.observe(Some(Duration::from_seconds(1))), 128, "at low");
        assert_eq!(c.observe(Some(Duration::ZERO)), 256);
    }

    #[test]
    fn controller_respects_bounds() {
        let mut c = controller(64, 32, 128);
        for _ in 0..10 {
            c.observe(Some(Duration::from_minutes(10)));
        }
        assert_eq!(c.size(), 32, "floored at min_batch");
        for _ in 0..10 {
            c.observe(Some(Duration::ZERO));
        }
        assert_eq!(c.size(), 128, "capped at max_batch");
    }

    #[test]
    fn depth_signal_preferred_over_lag() {
        // A huge (structural) watermark lag must not shrink batches while
        // the merge buffer shows the pipeline is keeping up — and a deep
        // merge backlog must shrink them even with zero lag.
        let mut c = controller(256, 32, 4096);
        let lag = Some(Duration::from_minutes(60));
        assert_eq!(c.observe_load(Some(0), lag), 512, "empty buffer: grow");
        assert_eq!(c.observe_load(Some(1_000), None), 256, "backlog: halve");
        let hold = c.observe_load(Some(500), Some(Duration::ZERO));
        assert_eq!(hold, 256, "between the bounds: hold, even with zero lag");
    }

    #[test]
    fn depth_bounds_walk_to_the_limits() {
        let mut c = controller(256, 32, 512);
        for _ in 0..10 {
            c.observe_load(Some(100_000), None);
        }
        assert_eq!(c.size(), 32, "deep backlog floors at min_batch");
        for _ in 0..10 {
            c.observe_load(Some(0), None);
        }
        assert_eq!(c.size(), 512, "empty buffer caps at max_batch");
    }

    #[test]
    fn no_depth_reading_falls_back_to_lag() {
        let mut c = controller(256, 32, 4096);
        assert_eq!(c.observe_load(None, Some(Duration::from_minutes(5))), 128);
        assert_eq!(c.observe_load(None, Some(Duration::ZERO)), 256);
        assert_eq!(c.observe_load(None, None), 256, "no signal at all: hold");
    }

    #[test]
    fn controller_holds_without_lag_signal() {
        let mut c = controller(256, 32, 4096);
        assert_eq!(c.observe(None), 256);
        assert_eq!(c.size(), 256);
    }

    #[test]
    fn controller_fixed_when_adaptive_disabled() {
        let mut c = BatchController::new(&DriverConfig {
            batch_size: 17,
            adaptive: None,
            ..DriverConfig::default()
        });
        assert_eq!(c.observe(Some(Duration::from_minutes(60))), 17);
        assert_eq!(c.observe(Some(Duration::ZERO)), 17);
    }

    #[test]
    fn controller_initial_size_not_clamped_but_adjustments_are() {
        // An explicit size below min_batch is honored until the first
        // adjustment, which snaps into bounds.
        let mut c = controller(4, 32, 4096);
        assert_eq!(c.size(), 4);
        assert_eq!(c.observe(Some(Duration::from_minutes(5))), 32);
    }

    /// A tiny scripted source for adapter tests: emits `remaining` rows.
    struct Scripted {
        name: String,
        streams: Vec<String>,
        emitted: i64,
        total: i64,
    }

    impl Scripted {
        fn new(total: i64) -> Scripted {
            Scripted {
                name: "scripted".to_string(),
                streams: vec!["s".to_string()],
                emitted: 0,
                total,
            }
        }
    }

    impl Source for Scripted {
        fn name(&self) -> &str {
            &self.name
        }
        fn streams(&self) -> &[String] {
            &self.streams
        }
        fn poll_batch(&mut self, max_events: usize) -> Result<SourceBatch> {
            let take = (max_events as i64).min(self.total - self.emitted);
            let mut batch = SourceBatch::empty(SourceStatus::Ready);
            for i in self.emitted..self.emitted + take {
                batch.events.push(SourceEvent {
                    stream: 0,
                    ptime: Ts(i),
                    change: onesql_tvr::Change::insert(onesql_types::row!(i)),
                });
            }
            self.emitted += take;
            if self.emitted == self.total {
                batch.status = SourceStatus::Finished;
            }
            Ok(batch)
        }
    }

    #[test]
    fn partitioned_vec_tracks_offsets_and_replays() {
        let mut pv = PartitionedVec::new("pv", vec![Scripted::new(10), Scripted::new(4)]).unwrap();
        assert_eq!(pv.partitions(), 2);
        assert_eq!(pv.streams(), &["s".to_string()]);
        pv.poll_partition(0, 3).unwrap();
        assert_eq!(pv.offset(0), 3);
        assert_eq!(pv.offset(1), 0);
        // Replayable by default: forward seek polls-and-discards.
        pv.seek(0, 7).unwrap();
        assert_eq!(pv.offset(0), 7);
        assert!(pv.seek(0, 2).is_err(), "backwards");
        assert!(pv.seek(1, 100).is_err(), "exhausts at 4");
    }

    #[test]
    fn partitioned_vec_non_replayable_refuses_seeks() {
        let mut pv = PartitionedVec::new("pv", vec![Scripted::new(8)])
            .unwrap()
            .non_replayable();
        pv.poll_partition(0, 2).unwrap();
        assert!(pv.seek(0, 2).is_ok(), "current offset is a no-op");
        let err = pv.seek(0, 5).unwrap_err().to_string();
        assert!(err.contains("not replayable"), "{err}");
    }

    #[test]
    fn partitioned_vec_validates_shape() {
        assert!(PartitionedVec::<Scripted>::new("pv", vec![]).is_err());
        let mut odd = Scripted::new(1);
        odd.streams = vec!["other".to_string()];
        assert!(PartitionedVec::new("pv", vec![Scripted::new(1), odd]).is_err());
    }

    #[test]
    fn ack_defaults_to_noop() {
        let mut pv = PartitionedVec::new("pv", vec![Scripted::new(2)]).unwrap();
        pv.ack(0, 1).unwrap();
    }

    #[test]
    fn ledger_combines_per_stream_minimum() {
        let mut ledger = WatermarkLedger::new();
        let a = ledger.add_feeder("a", &["s".to_string()]);
        let b = ledger.add_feeder("b", &["s".to_string(), "t".to_string()]);
        let mut advances = Vec::new();

        // Only one feeder of "s" advanced: nothing delivered on "s", but
        // "t" (fed by b alone) advances.
        ledger.observe(b, Watermark(Ts(100)), &mut advances);
        assert_eq!(advances, vec![("t".to_string(), Watermark(Ts(100)))]);
        advances.clear();

        ledger.observe(a, Watermark(Ts(50)), &mut advances);
        assert_eq!(advances, vec![("s".to_string(), Watermark(Ts(50)))]);
        advances.clear();

        // Regression is absorbed; re-observation delivers nothing.
        ledger.observe(a, Watermark(Ts(40)), &mut advances);
        assert!(advances.is_empty());
        assert_eq!(ledger.input_watermark(), Watermark(Ts(50)));
        assert_eq!(ledger.feeder(a), Watermark(Ts(50)));
    }

    #[test]
    fn ledger_finished_feeder_stops_constraining() {
        let mut ledger = WatermarkLedger::new();
        let a = ledger.add_feeder("a", &["s".to_string()]);
        let b = ledger.add_feeder("b", &["s".to_string()]);
        let mut advances = Vec::new();
        ledger.observe(a, Watermark(Ts(10)), &mut advances);
        advances.clear();
        ledger.observe(b, Watermark::MAX, &mut advances);
        assert_eq!(advances, vec![("s".to_string(), Watermark(Ts(10)))]);
        assert_eq!(ledger.input_watermark(), Watermark(Ts(10)));
    }
}
