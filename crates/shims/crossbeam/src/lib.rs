//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel` with `bounded` / `unbounded` MPMC
//! channels. Built on a `Mutex<VecDeque>` + `Condvar` rather than
//! crossbeam's lock-free queues — the semantics (cloneable senders *and*
//! receivers, disconnect on last-handle drop, blocking and non-blocking
//! receive) match what the workspace relies on; raw throughput is lower,
//! which only matters to the bench numbers, not correctness.

#![forbid(unsafe_code)]
// A poisoned lock means a sender/receiver panicked mid-operation; the
// real crate propagates such panics across the channel too, so these
// unwraps are the intended semantics.
#![allow(clippy::unwrap_used)]

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        /// Signalled when items arrive or senders disconnect.
        readable: Condvar,
        /// Signalled when capacity frees up or receivers disconnect.
        writable: Condvar,
        cap: Option<usize>,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty but senders remain.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the timeout; senders remain.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// A channel holding at most `cap` in-flight items; `send` blocks when
    /// full.
    ///
    /// Real crossbeam treats `cap == 0` as a rendezvous channel (each send
    /// blocks for a matching `recv`). This shim has no rendezvous
    /// machinery — and a receiver that only ever `try_recv`s could never
    /// complete the handshake — so zero is clamped to one rather than
    /// deadlocking the first `send`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap.max(1)))
    }

    /// A channel with unbounded buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
            cap,
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Send, blocking while the channel is at capacity. Errors when
        /// every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.shared.cap {
                    Some(cap) if state.items.len() >= cap => {
                        state = self.shared.writable.wait(state).unwrap();
                    }
                    _ => break,
                }
            }
            state.items.push_back(value);
            drop(state);
            self.shared.readable.notify_one();
            Ok(())
        }

        /// Number of items currently buffered.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap().items.len()
        }

        /// True when no items are buffered.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.readable.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receive, blocking until an item arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    drop(state);
                    self.shared.writable.notify_one();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.readable.wait(state).unwrap();
            }
        }

        /// Receive, blocking until an item arrives, all senders drop, or
        /// `timeout` elapses — whichever comes first.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    drop(state);
                    self.shared.writable.notify_one();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(remaining) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, result) = self.shared.readable.wait_timeout(state, remaining).unwrap();
                state = guard;
                if result.timed_out() && state.items.is_empty() && state.senders > 0 {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.shared.writable.notify_one();
                return Ok(item);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of items currently buffered.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap().items.len()
        }

        /// True when no items are buffered.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator draining the channel until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.shared.writable.notify_all();
            }
        }
    }

    /// Blocking iterator over received items.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bounded_round_trip_across_threads() {
            let (tx, rx) = bounded::<i64>(4);
            let handle = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<i64> = rx.iter().collect();
            handle.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn try_recv_reports_empty_then_disconnected() {
            let (tx, rx) = unbounded::<i64>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(1).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_errors_when_receiver_gone() {
            let (tx, rx) = bounded::<i64>(1);
            drop(rx);
            assert!(tx.send(1).is_err());
        }
    }
}
