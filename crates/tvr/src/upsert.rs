//! Upsert encoding of changelogs.
//!
//! Appendix B.2.3 of the paper describes Flink's two changelog encodings:
//! *retraction streams* (every update = DELETE + INSERT) and *upsert
//! streams* (updates keyed by a unique key, one message per update).
//! Retraction streams are more general; upsert streams are more compact.
//! This module provides the lossless conversions between them, which the
//! changelog-encoding benchmark (B2 in `DESIGN.md`) measures.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use onesql_types::{Error, Result, Row};

use crate::change::Change;

/// An upsert-stream operation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpsertOp {
    /// Insert-or-replace the row for the key.
    Upsert(Row),
    /// Delete the row for the key.
    Delete,
}

/// One message of an upsert stream: a unique key plus an operation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpsertChange {
    /// The unique-key columns' values.
    pub key: Row,
    /// The operation on that key.
    pub op: UpsertOp,
}

impl fmt::Display for UpsertChange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.op {
            UpsertOp::Upsert(row) => write!(f, "UPSERT {} -> {}", self.key, row),
            UpsertOp::Delete => write!(f, "DELETE {}", self.key),
        }
    }
}

/// Convert a retraction stream into an upsert stream, given the indices of
/// the unique-key columns.
///
/// Consecutive `DELETE(old) + INSERT(new)` pairs on the same key collapse
/// into a single `UPSERT(new)` — the compaction that makes upsert streams
/// "more efficient" (App. B.2.3). An `INSERT` on a key is always an upsert;
/// a `DELETE` not followed by a re-insert of the same key stays a delete.
///
/// Errors if the input violates the unique-key assumption (two live rows
/// with the same key).
pub fn retractions_to_upserts(changes: &[Change], key_cols: &[usize]) -> Result<Vec<UpsertChange>> {
    // Track the live row per key so we can validate uniqueness.
    let mut live: BTreeMap<Row, Row> = BTreeMap::new();
    let mut out: Vec<UpsertChange> = Vec::with_capacity(changes.len());

    for change in changes {
        if change.diff.abs() != 1 {
            return Err(Error::exec(
                "upsert encoding requires unit diffs; consolidate with keys first",
            ));
        }
        let key = change.row.project(key_cols)?;
        if change.is_insert() {
            if live.contains_key(&key) {
                return Err(Error::exec(format!(
                    "unique key violation in upsert encoding: key {key} inserted twice"
                )));
            }
            live.insert(key.clone(), change.row.clone());
            // If the previous message for this key was a DELETE, collapse
            // DELETE+INSERT into one UPSERT.
            if let Some(last) = out.last() {
                if last.key == key && last.op == UpsertOp::Delete {
                    out.pop();
                }
            }
            out.push(UpsertChange {
                key,
                op: UpsertOp::Upsert(change.row.clone()),
            });
        } else {
            match live.remove(&key) {
                Some(prev) if prev == change.row => {}
                Some(prev) => {
                    return Err(Error::exec(format!(
                        "retraction of {} does not match live row {prev} for key {key}",
                        change.row
                    )))
                }
                None => {
                    return Err(Error::exec(format!(
                        "retraction for absent key {key} in upsert encoding"
                    )))
                }
            }
            out.push(UpsertChange {
                key,
                op: UpsertOp::Delete,
            });
        }
    }
    Ok(out)
}

/// Convert an upsert stream back into a retraction stream. Requires no key
/// metadata beyond the messages themselves: the converter tracks the live
/// row per key and synthesizes the DELETE halves of updates.
pub fn upserts_to_retractions(upserts: &[UpsertChange]) -> Result<Vec<Change>> {
    let mut live: BTreeMap<Row, Row> = BTreeMap::new();
    let mut out = Vec::with_capacity(upserts.len());
    for u in upserts {
        match &u.op {
            UpsertOp::Upsert(row) => {
                if let Some(prev) = live.insert(u.key.clone(), row.clone()) {
                    out.push(Change::retract(prev));
                }
                out.push(Change::insert(row.clone()));
            }
            UpsertOp::Delete => match live.remove(&u.key) {
                Some(prev) => out.push(Change::retract(prev)),
                None => {
                    return Err(Error::exec(format!(
                        "DELETE for absent key {} in upsert stream",
                        u.key
                    )))
                }
            },
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bag::Bag;
    use onesql_types::row;

    /// key = column 0, value = column 1.
    fn kv(k: i64, v: i64) -> Row {
        row!(k, v)
    }

    #[test]
    fn update_collapses_to_single_upsert() {
        let changes = vec![
            Change::insert(kv(1, 10)),
            // An update encoded as DELETE + INSERT:
            Change::retract(kv(1, 10)),
            Change::insert(kv(1, 20)),
        ];
        let ups = retractions_to_upserts(&changes, &[0]).unwrap();
        assert_eq!(ups.len(), 2);
        assert_eq!(
            ups[1],
            UpsertChange {
                key: row!(1i64),
                op: UpsertOp::Upsert(kv(1, 20))
            }
        );
    }

    #[test]
    fn plain_delete_survives() {
        let changes = vec![Change::insert(kv(1, 10)), Change::retract(kv(1, 10))];
        let ups = retractions_to_upserts(&changes, &[0]).unwrap();
        assert_eq!(ups.len(), 2);
        assert_eq!(ups[1].op, UpsertOp::Delete);
    }

    #[test]
    fn round_trip_preserves_final_state() {
        let changes = vec![
            Change::insert(kv(1, 10)),
            Change::insert(kv(2, 20)),
            Change::retract(kv(1, 10)),
            Change::insert(kv(1, 11)),
            Change::retract(kv(2, 20)),
        ];
        let ups = retractions_to_upserts(&changes, &[0]).unwrap();
        let back = upserts_to_retractions(&ups).unwrap();
        let mut direct = Bag::new();
        direct.apply(changes);
        let mut via = Bag::new();
        via.apply(back);
        assert_eq!(direct, via);
    }

    #[test]
    fn upsert_stream_is_never_longer() {
        let changes = vec![
            Change::insert(kv(1, 1)),
            Change::retract(kv(1, 1)),
            Change::insert(kv(1, 2)),
            Change::retract(kv(1, 2)),
            Change::insert(kv(1, 3)),
        ];
        let ups = retractions_to_upserts(&changes, &[0]).unwrap();
        assert!(ups.len() <= changes.len());
        assert_eq!(ups.len(), 3); // insert, upsert, upsert
    }

    #[test]
    fn unique_key_violation_detected() {
        let changes = vec![Change::insert(kv(1, 1)), Change::insert(kv(1, 2))];
        assert!(retractions_to_upserts(&changes, &[0]).is_err());
    }

    #[test]
    fn bad_retraction_detected() {
        let changes = vec![Change::retract(kv(1, 1))];
        assert!(retractions_to_upserts(&changes, &[0]).is_err());
        let changes = vec![Change::insert(kv(1, 1)), Change::retract(kv(1, 99))];
        assert!(retractions_to_upserts(&changes, &[0]).is_err());
    }

    #[test]
    fn delete_absent_key_detected() {
        let ups = vec![UpsertChange {
            key: row!(1i64),
            op: UpsertOp::Delete,
        }];
        assert!(upserts_to_retractions(&ups).is_err());
    }

    #[test]
    fn upsert_replacing_synthesizes_retraction() {
        let ups = vec![
            UpsertChange {
                key: row!(1i64),
                op: UpsertOp::Upsert(kv(1, 10)),
            },
            UpsertChange {
                key: row!(1i64),
                op: UpsertOp::Upsert(kv(1, 20)),
            },
        ];
        let back = upserts_to_retractions(&ups).unwrap();
        assert_eq!(
            back,
            vec![
                Change::insert(kv(1, 10)),
                Change::retract(kv(1, 10)),
                Change::insert(kv(1, 20)),
            ]
        );
    }
}
