#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Benchmark/experiment harness: the queries and workloads are
// author-controlled fixtures, so panicking on a malformed one is the right
// failure mode — there is no caller to bubble an error to.
#![cfg_attr(not(test), allow(clippy::unwrap_used, clippy::expect_used))]

//! Shared harness code for the onesql benchmarks and the paper-experiment
//! reproduction binary.
//!
//! The per-experiment index in `DESIGN.md` maps every listing (L1–L14) and
//! benchmark (B1–B6) to the helpers here.

use onesql_core::{Engine, RunningQuery, StreamBuilder};
use onesql_nexmark::paper::{paper_timeline, PaperEvent};
use onesql_nexmark::{GeneratorConfig, NexmarkEvent, NexmarkGenerator};
use onesql_time::BoundedOutOfOrderness;
use onesql_types::{DataType, Duration, Ts, Value};

/// An engine with the paper's 3-column `Bid` stream registered.
pub fn paper_engine() -> Engine {
    let mut engine = Engine::new();
    engine.register_stream(
        "Bid",
        StreamBuilder::new()
            .event_time_column("bidtime")
            .column("price", DataType::Int)
            .column("item", DataType::String),
    );
    engine
}

/// Run `sql` over the paper's §4 timeline.
pub fn run_over_paper_timeline(sql: &str) -> RunningQuery {
    let engine = paper_engine();
    let mut q = engine.execute(sql).expect("paper query must compile");
    feed_paper_timeline(&mut q);
    q
}

/// Feed the §4 timeline into a running query.
pub fn feed_paper_timeline(q: &mut RunningQuery) {
    for event in paper_timeline() {
        match event {
            PaperEvent::Insert { ptime, row } => q.insert("Bid", ptime, row).unwrap(),
            PaperEvent::Watermark { ptime, wm } => q.watermark("Bid", ptime, wm).unwrap(),
        }
    }
}

/// An engine with the full NEXMark streams plus the `Category` table.
pub fn nexmark_engine() -> Engine {
    let mut engine = Engine::new();
    engine.register_stream(
        "Bid",
        StreamBuilder::new()
            .column("auction", DataType::Int)
            .column("bidder", DataType::Int)
            .column("price", DataType::Int)
            .event_time_column("dateTime"),
    );
    engine.register_stream(
        "Auction",
        StreamBuilder::new()
            .column("id", DataType::Int)
            .column("itemName", DataType::String)
            .column("initialBid", DataType::Int)
            .column("reserve", DataType::Int)
            .event_time_column("dateTime")
            .column("expires", DataType::Timestamp)
            .column("seller", DataType::Int)
            .column("category", DataType::Int),
    );
    engine.register_stream(
        "Person",
        StreamBuilder::new()
            .column("id", DataType::Int)
            .column("name", DataType::String)
            .column("email", DataType::String)
            .column("city", DataType::String)
            .column("state", DataType::String)
            .event_time_column("dateTime"),
    );
    engine
        .register_table(
            "Category",
            StreamBuilder::new()
                .column("id", DataType::Int)
                .column("name", DataType::String),
            onesql_nexmark::model::category_rows(),
        )
        .unwrap();
    engine
}

/// Generate a deterministic NEXMark workload of `n` events with the given
/// event-time skew bound.
pub fn nexmark_events(n: usize, seed: u64, skew: Duration) -> Vec<(Ts, NexmarkEvent)> {
    NexmarkGenerator::new(GeneratorConfig {
        seed,
        max_skew: skew,
        ..GeneratorConfig::default()
    })
    .take(n)
}

/// Feed a NEXMark workload into a running query, with
/// bounded-out-of-orderness watermarks on every stream, and finish.
pub fn run_nexmark(q: &mut RunningQuery, events: &[(Ts, NexmarkEvent)], skew: Duration) {
    for stream in ["Bid", "Auction", "Person"] {
        // Streams the query doesn't read are ignored by the executor.
        let _ = q.set_watermark_generator(stream, Box::new(BoundedOutOfOrderness::new(skew)));
    }
    for (ptime, event) in events {
        let (stream, row) = match event {
            NexmarkEvent::Bid(b) => ("Bid", b.to_row()),
            NexmarkEvent::Auction(a) => ("Auction", a.to_row()),
            NexmarkEvent::Person(p) => ("Person", p.to_row()),
        };
        q.insert(stream, *ptime, row).unwrap();
    }
    let end = events.last().map(|(t, _)| *t).unwrap_or(Ts(0));
    q.finish(end + Duration::from_minutes(1)).unwrap();
}

/// Format a price cell the way the paper prints it (`$5`).
pub fn money(v: &Value) -> String {
    format!("${v}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_reproduces_listing_3() {
        let q = run_over_paper_timeline(onesql_nexmark::PAPER_Q7_SQL);
        let rows = q.table_at(Ts::hm(8, 21)).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn nexmark_harness_runs_q2() {
        let events = nexmark_events(2_000, 1, Duration::from_seconds(2));
        let engine = nexmark_engine();
        let mut q = engine.execute(onesql_nexmark::queries::Q2).unwrap();
        run_nexmark(&mut q, &events, Duration::from_seconds(2));
        // Q2 filters to auctions divisible by 123; result is a valid table.
        for row in q.table().unwrap() {
            assert_eq!(row.value(0).unwrap().as_int().unwrap() % 123, 0);
        }
    }
}
