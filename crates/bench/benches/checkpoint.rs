//! Durable-checkpoint latency: what a periodic `CHECKPOINT PIPELINE`
//! costs a running pipeline.
//!
//! `checkpoint_roundtrip` measures the full cycle on a mid-stream sharded
//! NEXMark pipeline — barrier + snapshot (`checkpoint()`), serialize +
//! persist (`CheckpointStore::save`, atomic tmp-rename with CRC), and
//! restore in a "fresh process" (`open` + `load_latest`) — plus the
//! serialize-only and persist-only components, so regressions point at a
//! layer.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use onesql_connect::{register_nexmark_streams, PartitionedNexmarkSource};
use onesql_core::durable::CheckpointStore;
use onesql_core::{Engine, ShardedConfig, ShardedPipelineDriver};
use onesql_state::Codec;

const EVENTS: u64 = 20_000;
const PARTS: usize = 4;
const WORKERS: usize = 2;

const SQL: &str = "SELECT auction, COUNT(*), SUM(price), MAX(price) \
     FROM Bid GROUP BY auction EMIT STREAM";

/// A sharded NEXMark pipeline stepped to roughly half-stream, where
/// operator state is warm and a checkpoint is representative.
fn mid_stream_driver() -> ShardedPipelineDriver {
    let mut engine = Engine::new();
    register_nexmark_streams(&mut engine);
    engine
        .attach_partitioned_source(Box::new(PartitionedNexmarkSource::seeded(
            42, EVENTS, PARTS,
        )))
        .expect("streams registered");
    let mut driver = engine
        .run_sharded_pipeline(SQL, ShardedConfig::new(WORKERS))
        .expect("pipeline plans");
    while driver.events_in() < EVENTS / 2 {
        driver.step().expect("step");
    }
    driver
}

fn bench_checkpoint(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("onesql_ckpt_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");

    let mut driver = mid_stream_driver();
    let sample = driver.checkpoint().expect("checkpoint");
    let encoded = sample.to_bytes();

    let mut group = c.benchmark_group("checkpoint");

    // Codec only: checkpoint struct -> bytes -> checkpoint struct.
    group.bench_function(format!("serialize_{}B", encoded.len()), |b| {
        b.iter(|| black_box(sample.to_bytes()).len())
    });
    group.bench_function("deserialize", |b| {
        b.iter(|| {
            onesql_core::PipelineCheckpoint::from_bytes(black_box(&encoded))
                .expect("round trip")
                .epoch
        })
    });

    // Persist only: save into a store (epochs advance per iteration,
    // retention pruning included — the steady-state disk cost).
    let persist_dir = dir.join("persist");
    let mut store = CheckpointStore::create(&persist_dir, "bench", Vec::new(), 3).expect("store");
    let mut epoch = 0u64;
    group.bench_function("persist", |b| {
        b.iter(|| {
            epoch += 1;
            let mut cp = sample.clone();
            cp.epoch = epoch;
            store.save(&cp).expect("save")
        })
    });

    // The full operational cycle: live barrier snapshot, durable save,
    // then a cold open + load as a restoring process would do it.
    let cycle_dir = dir.join("cycle");
    let mut cycle_store =
        CheckpointStore::create(&cycle_dir, "bench", Vec::new(), 3).expect("store");
    group.bench_function("checkpoint_roundtrip", |b| {
        b.iter(|| {
            let cp = driver.checkpoint().expect("barrier + snapshot");
            let saved = cycle_store.save(&cp).expect("persist");
            let reopened = CheckpointStore::open(&cycle_dir).expect("open");
            let (epoch, restored) = reopened.load_latest().expect("load");
            assert_eq!((epoch, restored.epoch), (saved, saved));
            epoch
        })
    });

    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_checkpoint);
criterion_main!(benches);
