//! Columnar change batches: the unit of vectorized execution.
//!
//! A [`ChangeBatch`] is a run of consecutive [`Change`]s from one stream,
//! stored column-wise ([`Column`] per attribute) with two per-row lanes — the
//! `diff` sign and the processing timestamp each row was fed at — plus an
//! optional *selection vector*. Filters narrow the selection instead of
//! copying rows, so no row materializes between a filter and the projection
//! above it. Rows come back out (via [`ChangeBatch::change`]) only at the
//! changelog/sink boundary or when an operator falls back to per-row
//! processing.
//!
//! Logical vs physical indices: all public row accessors take *logical*
//! indices `0..len()`; the selection vector (if any) maps them to physical
//! storage rows. See `docs/VECTORIZED.md`.

use std::sync::Arc;

use onesql_types::{Column, Row, Ts, Value};

use crate::change::Change;
use crate::element::Element;

/// A columnar batch of timed changes flowing through the vectorized executor.
#[derive(Clone, Debug)]
pub struct ChangeBatch {
    cols: Vec<Column>,
    diffs: Arc<[i64]>,
    ptimes: Arc<[Ts]>,
    sel: Option<Vec<u32>>,
}

impl ChangeBatch {
    /// Build a dense batch (no selection) from columns and lanes.
    ///
    /// # Panics
    /// Panics (in debug builds) if lane lengths disagree with column lengths
    /// or if `ptimes` is not monotonically non-decreasing.
    pub fn new_dense(cols: Vec<Column>, diffs: Vec<i64>, ptimes: Vec<Ts>) -> ChangeBatch {
        debug_assert_eq!(diffs.len(), ptimes.len());
        debug_assert!(cols.iter().all(|c| c.len() == diffs.len()));
        debug_assert!(ptimes.windows(2).all(|w| w[0] <= w[1]));
        ChangeBatch {
            cols,
            diffs: diffs.into(),
            ptimes: ptimes.into(),
            sel: None,
        }
    }

    /// Columnarize a run of timed changes.
    ///
    /// Returns `None` if the run is empty or the rows do not all share one
    /// arity (callers fall back to per-row feeding, which reproduces the
    /// oracle's arity error exactly).
    pub fn from_changes(changes: &[(Ts, Change)]) -> Option<ChangeBatch> {
        let first = changes.first()?;
        let arity = first.1.row.arity();
        if changes.iter().any(|(_, c)| c.row.arity() != arity) {
            return None;
        }
        let mut builders: Vec<onesql_types::column::ColumnBuilder> = (0..arity)
            .map(|_| onesql_types::column::ColumnBuilder::with_capacity(changes.len()))
            .collect();
        let mut diffs = Vec::with_capacity(changes.len());
        let mut ptimes = Vec::with_capacity(changes.len());
        for (ptime, change) in changes {
            for (b, v) in builders.iter_mut().zip(change.row.values()) {
                b.push(v.clone());
            }
            diffs.push(change.diff);
            ptimes.push(*ptime);
        }
        let cols = builders.into_iter().map(|b| b.finish()).collect();
        Some(ChangeBatch::new_dense(cols, diffs, ptimes))
    }

    /// Number of (logical) rows.
    pub fn len(&self) -> usize {
        match &self.sel {
            Some(sel) => sel.len(),
            None => self.diffs.len(),
        }
    }

    /// Whether the batch has no visible rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// The physical columns (indexed by physical row ids).
    pub fn columns(&self) -> &[Column] {
        &self.cols
    }

    /// The selection vector, if the batch is filtered.
    pub fn selection(&self) -> Option<&[u32]> {
        self.sel.as_deref()
    }

    /// Map a logical row index to its physical storage row.
    #[inline]
    pub fn phys(&self, i: usize) -> usize {
        match &self.sel {
            Some(sel) => sel[i] as usize,
            None => i,
        }
    }

    /// The diff (change sign/weight) of logical row `i`.
    #[inline]
    pub fn diff(&self, i: usize) -> i64 {
        self.diffs[self.phys(i)]
    }

    /// The processing timestamp logical row `i` was fed at.
    #[inline]
    pub fn ptime(&self, i: usize) -> Ts {
        self.ptimes[self.phys(i)]
    }

    /// The value at (logical row `i`, column `col`).
    pub fn value(&self, i: usize, col: usize) -> Value {
        self.cols[col].value(self.phys(i))
    }

    /// Materialize logical row `i` as a [`Row`].
    pub fn row(&self, i: usize) -> Row {
        let p = self.phys(i);
        Row::from_values(self.cols.iter().map(|c| c.value(p)))
    }

    /// Materialize logical row `i` as a [`Change`].
    pub fn change(&self, i: usize) -> Change {
        Change {
            row: self.row(i),
            diff: self.diff(i),
        }
    }

    /// Materialize logical row `i` as `(ptime, change)`.
    pub fn timed_change(&self, i: usize) -> (Ts, Change) {
        (self.ptime(i), self.change(i))
    }

    /// Narrow the batch to the given logical rows (a filter result).
    ///
    /// Columns and lanes are shared with `self`; only the selection vector is
    /// rebuilt, composed through any existing selection.
    pub fn select_logical(&self, keep: &[u32]) -> ChangeBatch {
        let sel = keep.iter().map(|&i| self.phys(i as usize) as u32).collect();
        ChangeBatch {
            cols: self.cols.clone(),
            diffs: self.diffs.clone(),
            ptimes: self.ptimes.clone(),
            sel: Some(sel),
        }
    }

    /// Replace the columns with `cols` (a projection result), gathering the
    /// lanes to logical (dense) order.
    ///
    /// # Panics
    /// Panics (in debug builds) if any new column's length differs from
    /// `self.len()`.
    pub fn with_columns(&self, cols: Vec<Column>) -> ChangeBatch {
        let len = self.len();
        debug_assert!(cols.iter().all(|c| c.len() == len));
        if self.sel.is_none() {
            // Already dense: the lanes are logical order, share them.
            return ChangeBatch {
                cols,
                diffs: self.diffs.clone(),
                ptimes: self.ptimes.clone(),
                sel: None,
            };
        }
        let diffs: Vec<i64> = (0..len).map(|i| self.diff(i)).collect();
        let ptimes: Vec<Ts> = (0..len).map(|i| self.ptime(i)).collect();
        ChangeBatch {
            cols,
            diffs: diffs.into(),
            ptimes: ptimes.into(),
            sel: None,
        }
    }

    /// Split at logical row `k`: rows `[0, k)` and rows `[k, len)`.
    ///
    /// Used by the error-repair path when a kernel reports a row error:
    /// the prefix re-runs vectorized, the failing row re-runs through the
    /// row-at-a-time oracle. Columns and lanes are shared.
    pub fn split_at(&self, k: usize) -> (ChangeBatch, ChangeBatch) {
        (self.slice(0, k), self.slice(k, self.len()))
    }

    /// The logical sub-range `[from, to)` of the batch.
    pub fn slice(&self, from: usize, to: usize) -> ChangeBatch {
        let sel: Vec<u32> = (from..to).map(|i| self.phys(i) as u32).collect();
        ChangeBatch {
            cols: self.cols.clone(),
            diffs: self.diffs.clone(),
            ptimes: self.ptimes.clone(),
            sel: Some(sel),
        }
    }

    /// Raise every processing time below `min` up to `min` — the driver's
    /// monotone-clock clamp, applied to a whole batch at the source
    /// boundary. Ptimes are monotone within a batch, so only a prefix can
    /// change; when none do, storage is shared with `self`.
    pub fn clamp_ptimes(&self, min: Ts) -> ChangeBatch {
        match self.ptimes.first() {
            Some(&first) if first < min => ChangeBatch {
                cols: self.cols.clone(),
                diffs: self.diffs.clone(),
                ptimes: self.ptimes.iter().map(|&t| t.max(min)).collect(),
                sel: self.sel.clone(),
            },
            _ => self.clone(),
        }
    }

    /// Wire-payload size of logical row `i`, matching the per-change
    /// accounting used by the pipeline drivers (1 byte for NULL/booleans,
    /// 8 for fixed-width scalars, string byte length for VARCHAR).
    pub fn row_bytes(&self, i: usize) -> u64 {
        let p = self.phys(i);
        self.cols
            .iter()
            .map(|c| match c.value(p) {
                Value::Null | Value::Bool(_) => 1u64,
                Value::Int(_) | Value::Float(_) | Value::Ts(_) | Value::Interval(_) => 8,
                Value::Str(s) => s.len() as u64,
            })
            .sum()
    }
}

/// One unit of operator output on the batch path.
///
/// Operators that stay columnar emit [`BatchOut::Batch`]; operators that
/// materialize per-row output (aggregates, fallback operators) emit
/// [`BatchOut::Rows`]: *all* elements produced by one source row, stamped
/// with that row's processing timestamp. Grouping per source row matters for
/// error exactness — if a downstream operator fails on any element of the
/// group, the per-row engine would discard the whole event's outputs, so the
/// batch path must be able to do the same.
#[derive(Clone, Debug)]
pub enum BatchOut {
    /// A still-columnar batch of changes.
    Batch(ChangeBatch),
    /// The elements one source row produced, at that row's processing time.
    Rows(Ts, Vec<Element>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use onesql_types::row;

    fn batch() -> ChangeBatch {
        let changes = vec![
            (Ts::from_millis(1), Change::insert(row!(1i64, "a"))),
            (Ts::from_millis(2), Change::retract(row!(2i64, "b"))),
            (Ts::from_millis(2), Change::insert(row!(3i64, "c"))),
        ];
        ChangeBatch::from_changes(&changes).unwrap()
    }

    #[test]
    fn roundtrip_rows() {
        let b = batch();
        assert_eq!(b.len(), 3);
        assert_eq!(b.arity(), 2);
        assert_eq!(b.row(0), row!(1i64, "a"));
        assert_eq!(b.diff(1), -1);
        assert_eq!(b.ptime(2), Ts::from_millis(2));
        assert_eq!(b.change(2), Change::insert(row!(3i64, "c")));
    }

    #[test]
    fn selection_composes() {
        let b = batch();
        let narrowed = b.select_logical(&[0, 2]);
        assert_eq!(narrowed.len(), 2);
        assert_eq!(narrowed.row(1), row!(3i64, "c"));
        let again = narrowed.select_logical(&[1]);
        assert_eq!(again.len(), 1);
        assert_eq!(again.row(0), row!(3i64, "c"));
        assert_eq!(again.diff(0), 1);
    }

    #[test]
    fn split_shares_storage() {
        let b = batch();
        let (pre, rest) = b.split_at(1);
        assert_eq!(pre.len(), 1);
        assert_eq!(rest.len(), 2);
        assert_eq!(rest.row(0), row!(2i64, "b"));
        assert_eq!(rest.ptime(0), Ts::from_millis(2));
    }

    #[test]
    fn with_columns_gathers_lanes() {
        let b = batch().select_logical(&[2, 2]);
        // Projection to a single constant column.
        let col = Column::from_values(vec![Value::Int(9), Value::Int(9)]);
        let out = b.with_columns(vec![col]);
        assert_eq!(out.len(), 2);
        assert_eq!(out.row(0), row!(9i64));
        assert_eq!(out.diff(0), 1);
        assert_eq!(out.ptime(1), Ts::from_millis(2));
    }

    #[test]
    fn mixed_arity_declines() {
        let changes = vec![
            (Ts::from_millis(1), Change::insert(row!(1i64))),
            (Ts::from_millis(2), Change::insert(row!(1i64, 2i64))),
        ];
        assert!(ChangeBatch::from_changes(&changes).is_none());
        assert!(ChangeBatch::from_changes(&[]).is_none());
    }

    #[test]
    fn row_bytes_accounting() {
        let changes = vec![(
            Ts::from_millis(1),
            Change::insert(row!(1i64, "abc", Value::Null)),
        )];
        let b = ChangeBatch::from_changes(&changes).unwrap();
        assert_eq!(b.row_bytes(0), 8 + 3 + 1);
    }
}
