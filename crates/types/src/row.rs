//! Row representation.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::value::Value;

/// An immutable row of values.
///
/// Rows are reference-counted slices so that cloning a row — which happens
/// on every fan-out in the dataflow (joins, multi-consumer changelogs) — is
/// a pointer copy rather than a deep copy.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Row {
    values: Arc<[Value]>,
}

impl Row {
    /// Build a row from values.
    pub fn new(values: Vec<Value>) -> Row {
        Row {
            values: values.into(),
        }
    }

    /// Build a row by collecting values straight into the shared slice —
    /// one allocation, no intermediate `Vec`. This is the emit-boundary
    /// hot path: every output row of a columnar batch materializes here.
    pub fn from_values(values: impl IntoIterator<Item = Value>) -> Row {
        Row {
            values: values.into_iter().collect(),
        }
    }

    /// The empty row (used by constant relations such as `SELECT 1`).
    pub fn empty() -> Row {
        Row {
            values: Arc::from([]),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Borrow the value at `idx`, or an execution error if out of range.
    pub fn value(&self, idx: usize) -> Result<&Value> {
        self.values.get(idx).ok_or_else(|| {
            Error::exec(format!(
                "column index {idx} out of range for row of arity {}",
                self.values.len()
            ))
        })
    }

    /// All values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Build a new row by selecting columns at the given indices.
    pub fn project(&self, indices: &[usize]) -> Result<Row> {
        let mut out = Vec::with_capacity(indices.len());
        for &i in indices {
            out.push(self.value(i)?.clone());
        }
        Ok(Row::new(out))
    }

    /// Concatenate two rows (used by joins and the window TVFs, which append
    /// `wstart`/`wend` columns to their input rows).
    pub fn concat(&self, other: &Row) -> Row {
        let mut out = Vec::with_capacity(self.arity() + other.arity());
        out.extend_from_slice(&self.values);
        out.extend_from_slice(&other.values);
        Row::new(out)
    }

    /// Append values to this row, producing a new row.
    pub fn with_appended(&self, extra: &[Value]) -> Row {
        let mut out = Vec::with_capacity(self.arity() + extra.len());
        out.extend_from_slice(&self.values);
        out.extend_from_slice(extra);
        Row::new(out)
    }
}

impl fmt::Debug for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.values.iter()).finish()
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

/// Build a row from a list of things convertible to [`Value`].
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::Row::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temporal::Ts;

    #[test]
    fn construction_and_access() {
        let r = row!(1i64, "a", Ts::hm(8, 0));
        assert_eq!(r.arity(), 3);
        assert_eq!(r.value(0).unwrap(), &Value::Int(1));
        assert_eq!(r.value(1).unwrap(), &Value::str("a"));
        assert!(r.value(3).is_err());
    }

    #[test]
    fn cheap_clone_shares_storage() {
        let r = row!(1i64, 2i64);
        let s = r.clone();
        assert!(Arc::ptr_eq(&r.values, &s.values));
    }

    #[test]
    fn project_and_concat() {
        let r = row!(10i64, 20i64, 30i64);
        let p = r.project(&[2, 0]).unwrap();
        assert_eq!(p, row!(30i64, 10i64));
        assert!(r.project(&[5]).is_err());

        let joined = r.concat(&row!("x"));
        assert_eq!(joined.arity(), 4);
        assert_eq!(joined.value(3).unwrap(), &Value::str("x"));
    }

    #[test]
    fn with_appended() {
        let r = row!(1i64);
        let r2 = r.with_appended(&[Value::Int(2), Value::Int(3)]);
        assert_eq!(r2, row!(1i64, 2i64, 3i64));
        // Original unchanged.
        assert_eq!(r.arity(), 1);
    }

    #[test]
    fn display_and_empty() {
        assert_eq!(row!(1i64, "a").to_string(), "(1, a)");
        assert_eq!(Row::empty().arity(), 0);
        assert_eq!(Row::empty().to_string(), "()");
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(row!(1i64, 2i64) < row!(1i64, 3i64));
        assert!(row!(1i64) < row!(1i64, 0i64));
    }
}
