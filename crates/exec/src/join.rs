//! Incremental binary joins.
//!
//! The join fully materializes both inputs keyed by the equi-join key
//! (Appendix B.2.3: "a join operator fully materializes both input
//! relations"), emitting joined changes with multiplied diffs so
//! retractions compose. Two refinements from the paper:
//!
//! - **Time-bounded state expiry** (§5, lesson 1): when the planner
//!   recognized a `JoinTimeBound` — both sides' event-time columns
//!   constrained to a bounded interval — watermark advancement retires rows
//!   that can no longer find a match.
//! - **Watermark hold-back** (§5, lesson 3): the output watermark is the
//!   minimum of the inputs' watermarks, keeping every surviving event-time
//!   column aligned.

use onesql_plan::{JoinKind, JoinTimeBound, ScalarExpr};
use onesql_state::{Checkpoint, Codec, KeyedState, StateMetrics};
use onesql_time::{Watermark, WatermarkTracker};
use onesql_tvr::{Change, Element};
use onesql_types::{Result, Row, Ts, Value};

use crate::operator::Operator;

/// One side's stored rows for a key: `(row, multiplicity)` pairs.
type SideState = KeyedState<Vec<(Row, i64)>>;

/// The binary join operator. Port 0 is the left input, port 1 the right.
pub struct Join {
    kind: JoinKind,
    equi: Vec<(usize, usize)>,
    residual: Option<ScalarExpr>,
    time_bound: Option<JoinTimeBound>,
    right_arity: usize,
    left: SideState,
    right: SideState,
    /// For LEFT joins: per left row, the current number of matching right
    /// rows (weighted), to drive null-extension transitions.
    match_counts: KeyedState<i64>,
    tracker: WatermarkTracker,
}

impl Join {
    /// Build from plan parameters. `left_arity`/`right_arity` are the
    /// input schemas' widths.
    pub fn new(
        kind: JoinKind,
        equi: Vec<(usize, usize)>,
        residual: Option<ScalarExpr>,
        time_bound: Option<JoinTimeBound>,
        left_arity: usize,
        right_arity: usize,
    ) -> Join {
        let _ = left_arity; // arity is implicit in the rows; kept for API symmetry
        Join {
            kind,
            equi,
            residual,
            time_bound,
            right_arity,
            left: KeyedState::new(),
            right: KeyedState::new(),
            match_counts: KeyedState::new(),
            tracker: WatermarkTracker::new(2),
        }
    }

    fn key_of(&self, row: &Row, is_left: bool) -> Result<Row> {
        let mut vals = Vec::with_capacity(self.equi.len());
        for (l, r) in &self.equi {
            let idx = if is_left { *l } else { *r };
            vals.push(row.value(idx)?.clone());
        }
        Ok(Row::new(vals))
    }

    fn residual_passes(&self, joined: &Row) -> Result<bool> {
        match &self.residual {
            None => Ok(true),
            Some(p) => Ok(p.eval(joined)? == Value::Bool(true)),
        }
    }

    fn null_extended(&self, left_row: &Row) -> Row {
        left_row.with_appended(&vec![Value::Null; self.right_arity])
    }

    /// Apply a change to one side's state, returning the row's multiplicity
    /// before and after.
    fn update_side(state: &mut SideState, key: Row, row: &Row, diff: i64) {
        let entries = state.entry_or_default(key.clone());
        match entries.iter_mut().find(|(r, _)| r == row) {
            Some((_, m)) => {
                *m += diff;
                if *m == 0 {
                    entries.retain(|(_, m)| *m != 0);
                }
            }
            None => entries.push((row.clone(), diff)),
        }
        if state.get(&key).is_some_and(Vec::is_empty) {
            state.remove(&key);
        }
    }

    fn process_left(&mut self, change: Change, out: &mut Vec<Element>) -> Result<()> {
        let key = self.key_of(&change.row, true)?;
        Self::update_side(&mut self.left, key.clone(), &change.row, change.diff);

        // Count matches and emit joined deltas.
        let mut matches = 0i64;
        if let Some(right_rows) = self.right.get(&key) {
            for (rrow, rmult) in right_rows.clone() {
                let joined = change.row.concat(&rrow);
                if self.residual_passes(&joined)? {
                    matches += rmult;
                    out.push(Element::Data(Change::with_diff(
                        joined,
                        change.diff * rmult,
                    )));
                }
            }
        }

        if self.kind == JoinKind::Left {
            // Track this left row's match count; emit/retract the
            // null-extended row on 0-match presence transitions.
            let existing = self.match_counts.get(&change.row).copied();
            match existing {
                None if change.diff > 0 => {
                    self.match_counts.put(change.row.clone(), matches);
                    if matches == 0 {
                        out.push(Element::Data(Change::with_diff(
                            self.null_extended(&change.row),
                            change.diff,
                        )));
                    }
                }
                Some(count) => {
                    if change.diff < 0 {
                        // Removing (copies of) the left row: undo its
                        // null-extension if it had no matches.
                        if count == 0 {
                            out.push(Element::Data(Change::with_diff(
                                self.null_extended(&change.row),
                                change.diff,
                            )));
                        }
                        // Drop tracking once the row is fully gone.
                        let still_here = self
                            .left
                            .get(&key)
                            .is_some_and(|rows| rows.iter().any(|(r, _)| r == &change.row));
                        if !still_here {
                            self.match_counts.remove(&change.row);
                        }
                    } else if count == 0 && matches == 0 {
                        // Another copy of an unmatched left row.
                        out.push(Element::Data(Change::with_diff(
                            self.null_extended(&change.row),
                            change.diff,
                        )));
                    }
                }
                None => {}
            }
        }
        Ok(())
    }

    fn process_right(&mut self, change: Change, out: &mut Vec<Element>) -> Result<()> {
        let key = self.key_of(&change.row, false)?;
        Self::update_side(&mut self.right, key.clone(), &change.row, change.diff);

        if let Some(left_rows) = self.left.get(&key) {
            for (lrow, lmult) in left_rows.clone() {
                let joined = lrow.concat(&change.row);
                if !self.residual_passes(&joined)? {
                    continue;
                }
                out.push(Element::Data(Change::with_diff(
                    joined,
                    change.diff * lmult,
                )));
                if self.kind == JoinKind::Left {
                    // Maintain match counts; crossing zero toggles the
                    // null-extended row.
                    let count = self.match_counts.entry_or_default(lrow.clone());
                    let old = *count;
                    *count += change.diff;
                    let new = *count;
                    if old == 0 && new > 0 {
                        out.push(Element::Data(Change::with_diff(
                            self.null_extended(&lrow),
                            -lmult,
                        )));
                    } else if old > 0 && new == 0 {
                        out.push(Element::Data(Change::with_diff(
                            self.null_extended(&lrow),
                            lmult,
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Retire state that can no longer participate in any future match,
    /// per the recognized time bound. Returns rows freed (observability).
    fn cleanup(&mut self) -> usize {
        let Some(tb) = self.time_bound else {
            return 0;
        };
        let left_wm = self.tracker.input(0);
        let right_wm = self.tracker.input(1);
        let mut freed = 0;

        // A left row with time t matches right rows with time in
        // (t - upper, t - lower]; all such right times are complete once
        // right_wm >= t - lower, so the left row can go.
        if right_wm != Watermark::MIN {
            freed += self.left.retire_where(|_, rows| {
                rows.iter().all(|(row, _)| match row.value(tb.left_col) {
                    Ok(Value::Ts(t)) => right_wm.closes(t.saturating_sub(tb.lower)),
                    _ => false,
                })
            });
        }
        // A right row with time t matches left rows with time in
        // [t + lower, t + upper); complete once left_wm reaches t + upper
        // (inclusive needs one more instant).
        if left_wm != Watermark::MIN {
            freed += self.right.retire_where(|_, rows| {
                rows.iter().all(|(row, _)| match row.value(tb.right_col) {
                    Ok(Value::Ts(t)) => {
                        let limit = t.saturating_add(tb.upper);
                        let limit = if tb.upper_inclusive {
                            Ts(limit.millis().saturating_add(1))
                        } else {
                            limit
                        };
                        left_wm.closes(limit)
                    }
                    _ => false,
                })
            });
        }
        freed
    }
}

impl Operator for Join {
    fn process(
        &mut self,
        port: usize,
        elem: Element,
        _now: Ts,
        out: &mut Vec<Element>,
    ) -> Result<()> {
        match elem {
            Element::Data(change) => {
                if port == 0 {
                    self.process_left(change, out)?;
                } else {
                    self.process_right(change, out)?;
                }
            }
            Element::Watermark(wm) => {
                let advanced = self.tracker.observe(port, wm);
                self.cleanup();
                if let Some(w) = advanced {
                    out.push(Element::Watermark(w));
                }
            }
        }
        Ok(())
    }

    fn state_metrics(&self) -> StateMetrics {
        let rows = |s: &SideState| -> usize { s.iter().map(|(_, v)| v.len()).sum() };
        StateMetrics {
            keys: rows(&self.left) + rows(&self.right),
            encoded_bytes: 0,
        }
    }

    fn checkpoint(&self) -> Result<Option<Checkpoint>> {
        let snapshot = (
            self.left.checkpoint().0,
            self.right.checkpoint().0,
            self.match_counts.checkpoint().0,
            (self.tracker.input(0).ts(), self.tracker.input(1).ts()),
        );
        Ok(Some(Checkpoint(snapshot.to_bytes())))
    }

    fn restore(&mut self, checkpoint: &Checkpoint) -> Result<()> {
        type Snapshot = (bytes::Bytes, bytes::Bytes, bytes::Bytes, (Ts, Ts));
        let (left, right, counts, (w0, w1)): Snapshot = Codec::from_bytes(&checkpoint.0)?;
        self.left.restore(&Checkpoint(left))?;
        self.right.restore(&Checkpoint(right))?;
        self.match_counts.restore(&Checkpoint(counts))?;
        self.tracker = WatermarkTracker::new(2);
        self.tracker.observe(0, Watermark(w0));
        self.tracker.observe(1, Watermark(w1));
        Ok(())
    }

    fn name(&self) -> &'static str {
        match self.kind {
            JoinKind::Inner => "InnerJoin",
            JoinKind::Left => "LeftJoin",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onesql_plan::expr::BinOp;
    use onesql_types::{row, Duration};

    fn inner_join() -> Join {
        // left(k, v) JOIN right(k, w) ON left.k = right.k
        Join::new(JoinKind::Inner, vec![(0, 0)], None, None, 2, 2)
    }

    fn push(j: &mut Join, port: usize, e: Element) -> Vec<Element> {
        let mut out = Vec::new();
        j.process(port, e, Ts(0), &mut out).unwrap();
        out
    }

    #[test]
    fn inner_join_emits_matches_both_directions() {
        let mut j = inner_join();
        assert!(push(&mut j, 0, Element::insert(row!(1i64, "l1"))).is_empty());
        let out = push(&mut j, 1, Element::insert(row!(1i64, "r1")));
        assert_eq!(out, vec![Element::insert(row!(1i64, "l1", 1i64, "r1"))]);
        let out = push(&mut j, 0, Element::insert(row!(1i64, "l2")));
        assert_eq!(out, vec![Element::insert(row!(1i64, "l2", 1i64, "r1"))]);
        assert!(push(&mut j, 0, Element::insert(row!(2i64, "lx"))).is_empty());
    }

    #[test]
    fn retractions_cancel_joined_rows() {
        let mut j = inner_join();
        push(&mut j, 0, Element::insert(row!(1i64, "l1")));
        push(&mut j, 1, Element::insert(row!(1i64, "r1")));
        let out = push(&mut j, 0, Element::retract(row!(1i64, "l1")));
        assert_eq!(out, vec![Element::retract(row!(1i64, "l1", 1i64, "r1"))]);
        // Right retraction with no remaining left rows emits nothing.
        let out = push(&mut j, 1, Element::retract(row!(1i64, "r1")));
        assert!(out.is_empty());
        assert_eq!(j.state_metrics().keys, 0);
    }

    #[test]
    fn duplicate_rows_multiply() {
        let mut j = inner_join();
        push(&mut j, 0, Element::insert(row!(1i64, "l")));
        push(&mut j, 0, Element::insert(row!(1i64, "l")));
        let out = push(&mut j, 1, Element::insert(row!(1i64, "r")));
        assert_eq!(
            out,
            vec![Element::Data(Change::with_diff(
                row!(1i64, "l", 1i64, "r"),
                2
            ))]
        );
    }

    #[test]
    fn residual_filters_pairs() {
        // ON l.k = r.k AND l.v < r.w, with v at joined index 1, w at 3.
        let residual = ScalarExpr::binary(ScalarExpr::col(1), BinOp::Lt, ScalarExpr::col(3));
        let mut j = Join::new(JoinKind::Inner, vec![(0, 0)], Some(residual), None, 2, 2);
        push(&mut j, 0, Element::insert(row!(1i64, 10i64)));
        let out = push(&mut j, 1, Element::insert(row!(1i64, 5i64)));
        assert!(out.is_empty(), "10 < 5 fails");
        let out = push(&mut j, 1, Element::insert(row!(1i64, 20i64)));
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn watermarks_merge_with_min() {
        let mut j = inner_join();
        assert!(push(&mut j, 0, Element::watermark(Ts::hm(8, 10))).is_empty());
        let out = push(&mut j, 1, Element::watermark(Ts::hm(8, 4)));
        assert_eq!(out, vec![Element::watermark(Ts::hm(8, 4))]);
    }

    #[test]
    fn left_join_null_extension_transitions() {
        let mut j = Join::new(JoinKind::Left, vec![(0, 0)], None, None, 2, 1);
        // Unmatched left row: null-extended immediately.
        let out = push(&mut j, 0, Element::insert(row!(1i64, "l")));
        assert_eq!(out, vec![Element::insert(row!(1i64, "l", Value::Null))]);
        // Match arrives: retract the null-extension, emit the real join.
        let out = push(&mut j, 1, Element::insert(row!(1i64)));
        assert_eq!(
            out,
            vec![
                Element::insert(row!(1i64, "l", 1i64)),
                Element::retract(row!(1i64, "l", Value::Null)),
            ]
        );
        // Match leaves: joined row retracted, null-extension returns.
        let out = push(&mut j, 1, Element::retract(row!(1i64)));
        assert_eq!(
            out,
            vec![
                Element::retract(row!(1i64, "l", 1i64)),
                Element::insert(row!(1i64, "l", Value::Null)),
            ]
        );
        // Left row leaves entirely.
        let out = push(&mut j, 0, Element::retract(row!(1i64, "l")));
        assert_eq!(out, vec![Element::retract(row!(1i64, "l", Value::Null))]);
    }

    #[test]
    fn time_bound_cleanup_frees_state() {
        // Schema: left(ts, k), right(ts2, k); equi on k (idx 1 both sides);
        // bound: left.ts in [right.ts2 - 10m, right.ts2).
        let tb = JoinTimeBound {
            left_col: 0,
            right_col: 0,
            lower: Duration::from_minutes(-10),
            upper: Duration::ZERO,
            upper_inclusive: false,
        };
        let mut j = Join::new(JoinKind::Inner, vec![(1, 1)], None, Some(tb), 2, 2);
        push(&mut j, 0, Element::insert(row!(Ts::hm(8, 5), 1i64)));
        push(&mut j, 1, Element::insert(row!(Ts::hm(8, 10), 1i64)));
        assert_eq!(j.state_metrics().keys, 2);

        // Left row (t=8:05) is dead once right_wm >= 8:05 - (-10m) = 8:15.
        push(&mut j, 1, Element::watermark(Ts::hm(8, 15)));
        push(&mut j, 0, Element::watermark(Ts::hm(8, 0)));
        assert_eq!(j.state_metrics().keys, 1, "left row should be retired");

        // Right row (t=8:10) dead once left_wm >= 8:10 + 0 = 8:10.
        push(&mut j, 0, Element::watermark(Ts::hm(8, 10)));
        assert_eq!(j.state_metrics().keys, 0, "right row should be retired");
    }

    #[test]
    fn no_time_bound_means_no_cleanup() {
        let mut j = inner_join();
        push(&mut j, 0, Element::insert(row!(1i64, "l")));
        push(&mut j, 0, Element::watermark(Ts::MAX));
        push(&mut j, 1, Element::watermark(Ts::MAX));
        assert_eq!(j.state_metrics().keys, 1);
    }
}
