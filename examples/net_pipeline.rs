//! Pipelines that span processes: a NEXMark producer feeds a sharded Q7
//! consumer over a unix socket, the consumer is killed mid-stream, and a
//! restored consumer picks up from the checkpoint — with the producer
//! surviving the crash by replaying its spool over the resume handshake.
//!
//! Run with: `cargo run --release --example net_pipeline`

use std::sync::{Arc, Mutex};
use std::time::Duration as StdDuration;

use onesql::connect::{register_nexmark_streams, PartitionedNexmarkSource, PartitionedSource};
use onesql::core::StreamRow;
use onesql::{
    DriverConfig, Engine, NetAddr, NetConfig, NetPublisher, PartitionedNetSource, ShardedConfig,
    ShardedPipelineDriver, Sink, SourceStatus,
};
use onesql_types::Result;

const EVENTS: u64 = 6_000;
const PARTS: usize = 4;
const BATCH: usize = 256;
const STREAMS: [&str; 3] = ["Person", "Auction", "Bid"];

fn net_config() -> NetConfig {
    NetConfig {
        batch_events: BATCH,
        connect_timeout: StdDuration::from_secs(30),
        poll_wait: StdDuration::from_secs(10),
        ..NetConfig::default()
    }
}

struct CollectingSink {
    rows: Arc<Mutex<Vec<StreamRow>>>,
}

impl Sink for CollectingSink {
    fn name(&self) -> &str {
        "collect"
    }
    fn write(&mut self, rows: &[StreamRow]) -> Result<()> {
        self.rows.lock().unwrap().extend_from_slice(rows);
        Ok(())
    }
}

/// The producer "process": pumps the seeded workload through one
/// publisher per partition, then drains acks across all of them (see
/// `NetPublisher::poll_drained` for why draining must interleave).
fn run_producer(addr: NetAddr) -> Result<()> {
    let mut source = PartitionedNexmarkSource::seeded(7, EVENTS, PARTS);
    let streams: Vec<String> = STREAMS.iter().map(|s| s.to_string()).collect();
    let mut publishers: Vec<NetPublisher> = (0..PARTS)
        .map(|p| NetPublisher::new(addr.clone(), p, streams.clone(), net_config()))
        .collect();
    let mut live = [true; PARTS];
    while live.iter().any(|&l| l) {
        for p in 0..PARTS {
            if !live[p] {
                continue;
            }
            let batch = source.poll_partition(p, BATCH)?;
            for event in batch.events {
                publishers[p].send(event.stream, event.ptime, event.change)?;
            }
            if let Some(wm) = batch.watermark {
                publishers[p].watermark(wm)?;
            }
            if batch.status == SourceStatus::Finished {
                publishers[p].finish()?;
                live[p] = false;
            }
        }
    }
    let deadline = std::time::Instant::now() + StdDuration::from_secs(60);
    while !publishers
        .iter_mut()
        .map(|p| p.poll_drained())
        .collect::<Result<Vec<_>>>()?
        .into_iter()
        .all(|drained| drained)
    {
        if std::time::Instant::now() >= deadline {
            return Err(onesql_types::Error::exec("producer drain timed out"));
        }
        std::thread::sleep(StdDuration::from_millis(2));
    }
    Ok(())
}

/// The consumer "process": Q7 sharded over 2 workers, fed only by the
/// socket, polls aligned with the producer's frames.
fn bind_consumer(path: &std::path::Path) -> (Arc<Mutex<Vec<StreamRow>>>, ShardedPipelineDriver) {
    let source = PartitionedNetSource::bind(
        NetAddr::unix(path),
        STREAMS.iter().map(|s| s.to_string()).collect(),
        PARTS,
        net_config(),
    )
    .unwrap();
    let mut engine = Engine::new();
    register_nexmark_streams(&mut engine);
    engine.attach_partitioned_source(Box::new(source)).unwrap();
    let rows = Arc::new(Mutex::new(Vec::new()));
    engine.attach_sink(Box::new(CollectingSink { rows: rows.clone() }));
    let config = ShardedConfig::new(2).with_driver(DriverConfig {
        batch_size: BATCH,
        adaptive: None,
        ..DriverConfig::default()
    });
    let driver = engine
        .run_sharded_pipeline(onesql_nexmark::queries::Q7, config)
        .unwrap();
    (rows, driver)
}

fn main() {
    let path = std::env::temp_dir().join(format!("onesql_net_example_{}.sock", std::process::id()));
    let addr = NetAddr::unix(&path);
    let producer = {
        let addr = addr.clone();
        std::thread::spawn(move || run_producer(addr))
    };

    // First consumer: ingest half the stream, checkpoint, "crash".
    let (rows, mut victim) = bind_consumer(&path);
    while !victim.is_finished() && victim.events_in() < EVENTS / 2 {
        victim.step().unwrap();
    }
    let checkpoint = victim.checkpoint().unwrap();
    // In a real deployment the checkpoint is written to disk here; only
    // then is it acknowledged, letting the producer trim its spool.
    victim.ack_checkpoint(&checkpoint).unwrap();
    let observed_before = rows.lock().unwrap().len();
    println!(
        "killed consumer at {} events (checkpoint offsets {:?}), {} output rows so far",
        victim.events_in(),
        checkpoint.offsets,
        observed_before
    );
    drop(victim); // driver, workers, source, and listener all die

    // Restored consumer: fresh listener on the same path, state from the
    // checkpoint; the producer reconnects and replays the missing suffix.
    let (resumed_rows, mut resumed) = bind_consumer(&path);
    resumed.restore(&checkpoint).unwrap();
    resumed.run().unwrap();
    producer.join().unwrap().unwrap();

    let metrics = resumed.metrics();
    println!(
        "restored consumer finished: {} events total, {} more output rows",
        metrics.events_in,
        resumed_rows.lock().unwrap().len()
    );
    assert_eq!(metrics.events_in, EVENTS);
    let _ = std::fs::remove_file(&path);
    println!("exactly-once across the process boundary: OK");
}
