//! In-memory channel connectors (crossbeam-backed).
//!
//! [`channel`] gives a [`ChannelPublisher`] / [`ChannelSource`] pair: the
//! publisher side is clonable, so any number of producer threads can
//! fan-in to one engine stream; dropping (or [`ChannelPublisher::finish`]ing)
//! every publisher finishes the source. [`channel_sink`] is the mirror
//! image on the output side.

use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError};

use onesql_core::connect::{
    PartitionedSource, PartitionedVec, Sink, Source, SourceBatch, SourceEvent, SourceStatus,
};
use onesql_exec::StreamRow;
use onesql_time::Watermark;
use onesql_tvr::Change;
use onesql_types::{Error, Result, Row, Ts};

/// What flows from publishers to a [`ChannelSource`].
#[derive(Debug, Clone)]
enum Feed {
    Change(Ts, Change),
    Watermark(Ts),
    Finish,
}

/// The producer handle of a channel source. Clonable for fan-in.
#[derive(Clone)]
pub struct ChannelPublisher {
    tx: Sender<Feed>,
}

impl ChannelPublisher {
    /// Insert a row at processing time `ptime`. Blocks when the channel is
    /// at capacity (that is the backpressure).
    pub fn insert(&self, ptime: Ts, row: Row) -> Result<()> {
        self.send(Feed::Change(ptime, Change::insert(row)))
    }

    /// Retract a row.
    pub fn retract(&self, ptime: Ts, row: Row) -> Result<()> {
        self.send(Feed::Change(ptime, Change::retract(row)))
    }

    /// Send an arbitrary change.
    pub fn change(&self, ptime: Ts, change: Change) -> Result<()> {
        self.send(Feed::Change(ptime, change))
    }

    /// Assert all future events have event time greater than `wm`.
    pub fn watermark(&self, wm: Ts) -> Result<()> {
        self.send(Feed::Watermark(wm))
    }

    /// Mark the stream complete. (Dropping every publisher clone has the
    /// same effect.)
    pub fn finish(&self) -> Result<()> {
        self.send(Feed::Finish)
    }

    fn send(&self, feed: Feed) -> Result<()> {
        self.tx
            .send(feed)
            .map_err(|_| Error::exec("channel source was dropped"))
    }
}

/// A source fed through an in-memory channel.
pub struct ChannelSource {
    name: String,
    streams: Vec<String>,
    rx: Receiver<Feed>,
    /// A `Finish` marker was seen: report finished once the queue drains
    /// (events other publishers enqueued behind the marker still count).
    finishing: bool,
    finished: bool,
}

/// Create a channel-backed source for `stream` holding at most `capacity`
/// in-flight events.
pub fn channel(stream: impl Into<String>, capacity: usize) -> (ChannelPublisher, ChannelSource) {
    let stream = stream.into();
    let (tx, rx) = bounded(capacity);
    (
        ChannelPublisher { tx },
        ChannelSource {
            name: format!("channel:{stream}"),
            streams: vec![stream],
            rx,
            finishing: false,
            finished: false,
        },
    )
}

impl Source for ChannelSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn streams(&self) -> &[String] {
        &self.streams
    }

    fn poll_batch(&mut self, max_events: usize) -> Result<SourceBatch> {
        if self.finished {
            return Ok(SourceBatch::empty(SourceStatus::Finished));
        }
        let mut batch = SourceBatch::empty(SourceStatus::Ready);
        while batch.events.len() < max_events {
            match self.rx.try_recv() {
                Ok(Feed::Change(ptime, change)) => {
                    batch.events.push(SourceEvent {
                        stream: 0,
                        ptime,
                        change,
                    });
                }
                Ok(Feed::Watermark(wm)) => {
                    batch.watermark = Some(batch.watermark.map_or(wm, |prev: Ts| prev.max(wm)));
                }
                Ok(Feed::Finish) => {
                    // Keep draining: events enqueued behind the marker by
                    // other publisher clones must not be lost.
                    self.finishing = true;
                }
                Err(TryRecvError::Disconnected) => {
                    self.finished = true;
                    batch.status = SourceStatus::Finished;
                    break;
                }
                Err(TryRecvError::Empty) => {
                    if self.finishing {
                        self.finished = true;
                        batch.status = SourceStatus::Finished;
                    } else if batch.events.is_empty() && batch.watermark.is_none() {
                        batch.status = SourceStatus::Idle;
                    }
                    break;
                }
            }
        }
        Ok(batch)
    }
}

/// A sharded channel source: N independent channel shards feeding one
/// stream, one partition per shard. Producers route rows to shards
/// themselves (typically by the same key the query partitions on);
/// watermarks and finishes are per shard.
///
/// Channels are **not replayable** — events live only in memory — so this
/// source (a [`PartitionedVec::non_replayable`] over its shards) reports
/// offsets (for observability and for checkpoints taken on a live
/// instance) but refuses to seek anywhere except its current position:
/// resuming a checkpoint over a fresh sharded channel would silently drop
/// the pre-crash events. Use a file, generator, or network source when
/// recovery matters.
pub struct ShardedChannelSource(PartitionedVec<ChannelSource>);

/// Create a channel-backed source with `shards` partitions, each holding
/// at most `capacity` in-flight events. Returns one clonable publisher per
/// shard, in partition order. `shards` is clamped to at least one (a
/// source with no partitions could never be attached anyway).
// `shards.max(1)` identically-named parts satisfy `PartitionedVec`'s
// non-empty/uniform invariants, so the `expect` below cannot fire.
#[allow(clippy::expect_used)]
pub fn sharded_channel(
    stream: impl Into<String>,
    shards: usize,
    capacity: usize,
) -> (Vec<ChannelPublisher>, ShardedChannelSource) {
    let stream = stream.into();
    let shards = shards.max(1);
    let mut publishers = Vec::with_capacity(shards);
    let mut sources = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (publisher, source) = channel(stream.clone(), capacity);
        publishers.push(publisher);
        sources.push(source);
    }
    let adapter = PartitionedVec::new(format!("channel:{stream}x{shards}"), sources)
        .expect("shards >= 1 and uniform streams")
        .non_replayable();
    (publishers, ShardedChannelSource(adapter))
}

impl PartitionedSource for ShardedChannelSource {
    fn name(&self) -> &str {
        self.0.name()
    }

    fn streams(&self) -> &[String] {
        self.0.streams()
    }

    fn partitions(&self) -> usize {
        self.0.partitions()
    }

    fn poll_partition(&mut self, partition: usize, max_events: usize) -> Result<SourceBatch> {
        self.0.poll_partition(partition, max_events)
    }

    fn offset(&self, partition: usize) -> u64 {
        self.0.offset(partition)
    }

    fn seek(&mut self, partition: usize, offset: u64) -> Result<()> {
        self.0.seek(partition, offset)
    }
}

/// What a [`ChannelSink`] delivers to its consumer.
#[derive(Debug, Clone)]
pub enum SinkEvent {
    /// Newly materialized output rows.
    Rows(Vec<StreamRow>),
    /// The output watermark advanced.
    Watermark(Watermark),
    /// The pipeline finished.
    Flushed,
}

/// A sink handing output to an in-memory channel.
pub struct ChannelSink {
    name: String,
    tx: Sender<SinkEvent>,
}

/// Create a channel-backed sink; the receiver side gets [`SinkEvent`]s.
pub fn channel_sink(capacity: usize) -> (ChannelSink, Receiver<SinkEvent>) {
    let (tx, rx) = bounded(capacity);
    (
        ChannelSink {
            name: "channel-sink".to_string(),
            tx,
        },
        rx,
    )
}

impl Sink for ChannelSink {
    fn name(&self) -> &str {
        &self.name
    }

    fn write(&mut self, rows: &[StreamRow]) -> Result<()> {
        if rows.is_empty() {
            return Ok(());
        }
        self.tx
            .send(SinkEvent::Rows(rows.to_vec()))
            .map_err(|_| Error::exec("channel sink consumer was dropped"))
    }

    fn on_watermark(&mut self, wm: Watermark) -> Result<()> {
        self.tx
            .send(SinkEvent::Watermark(wm))
            .map_err(|_| Error::exec("channel sink consumer was dropped"))
    }

    fn flush(&mut self) -> Result<()> {
        self.tx
            .send(SinkEvent::Flushed)
            .map_err(|_| Error::exec("channel sink consumer was dropped"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onesql_types::row;

    #[test]
    fn events_behind_a_finish_marker_still_drain() {
        let (publisher, mut source) = channel("S", 16);
        let second = publisher.clone();
        publisher.insert(Ts(0), row!(1i64)).unwrap();
        publisher.finish().unwrap();
        // Another clone was still writing when the first finished.
        second.insert(Ts(1), row!(2i64)).unwrap();
        drop((publisher, second));

        let batch = source.poll_batch(16).unwrap();
        assert_eq!(batch.events.len(), 2, "event behind Finish was dropped");
        assert_eq!(batch.status, SourceStatus::Finished);
    }

    #[test]
    fn finish_with_empty_queue_finishes_immediately() {
        let (publisher, mut source) = channel("S", 4);
        publisher.finish().unwrap();
        let batch = source.poll_batch(4).unwrap();
        assert!(batch.events.is_empty());
        assert_eq!(batch.status, SourceStatus::Finished);
        // And stays finished.
        assert_eq!(source.poll_batch(4).unwrap().status, SourceStatus::Finished);
    }
}
