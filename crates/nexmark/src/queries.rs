//! The NEXMark query suite in the paper's SQL dialect.
//!
//! Queries are adapted to the dialect of this engine (windowing TVFs,
//! explicit event-time columns); Q7 — the paper's running example — is in
//! [`crate::paper::PAPER_Q7_SQL`] against the paper's 3-column schema, and
//! here in its full NEXMark form. Absolute prices/rates follow the original
//! benchmark description where practical.

/// Q0: passthrough. Measures raw engine overhead.
pub const Q0: &str = "SELECT auction, bidder, price, dateTime FROM Bid";

/// Q1: currency conversion (dollars to euros at the benchmark's 0.89 rate,
/// in integer arithmetic).
pub const Q1: &str = "\
SELECT auction, bidder, price * 89 / 100 AS price_eur, dateTime
FROM Bid";

/// Q2: selection — bids on a sample of auctions.
pub const Q2: &str = "\
SELECT auction, price FROM Bid WHERE auction % 123 = 0";

/// Q3: local item search — people from a set of states selling in category
/// 10. (A stream-stream join whose state the engine must bound.)
pub const Q3: &str = "\
SELECT P.name, P.city, P.state, A.id
FROM Auction A JOIN Person P ON A.seller = P.id
WHERE A.category = 10 AND P.state IN ('wa', 'az', 'tn')";

/// Q4-style: average bid price per auction category over tumbling windows
/// (simplified from the original closing-price formulation, which needs
/// auction-expiry semantics).
pub const Q4_AVG_PRICE_BY_CATEGORY: &str = "\
SELECT A.category, wend, AVG(B.price)
FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(dateTime),
            dur => INTERVAL '1' MINUTE) B
JOIN Auction A ON B.auction = A.id
GROUP BY A.category, wend";

/// Q5-style: hot items — bid counts per auction over hopping windows.
pub const Q5_HOT_ITEMS: &str = "\
SELECT auction, wend, COUNT(*) AS bids
FROM Hop(data => TABLE(Bid), timecol => DESCRIPTOR(dateTime),
         dur => INTERVAL '2' MINUTE, hopsize => INTERVAL '1' MINUTE)
GROUP BY auction, wend";

/// Q7: highest bid per ten-minute window (the paper's running example), on
/// the full NEXMark `Bid` schema.
pub const Q7: &str = "\
SELECT MaxBid.wstart, MaxBid.wend, Bid.dateTime, Bid.price, Bid.auction
FROM Bid,
  (SELECT MAX(T.price) maxPrice, MAX(T.wstart) wstart, T.wend wend
   FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(dateTime),
               dur => INTERVAL '10' MINUTE) T
   GROUP BY T.wend) MaxBid
WHERE Bid.price = MaxBid.maxPrice AND
      Bid.dateTime >= MaxBid.wend - INTERVAL '10' MINUTE AND
      Bid.dateTime < MaxBid.wend";

/// Q8: monitor new users — people who registered and opened an auction in
/// the same ten-second window.
pub const Q8: &str = "\
SELECT P.id, P.name, P.wstart
FROM
  Tumble(data => TABLE(Person), timecol => DESCRIPTOR(dateTime),
         dur => INTERVAL '10' SECOND) P
JOIN
  Tumble(data => TABLE(Auction), timecol => DESCRIPTOR(dateTime),
         dur => INTERVAL '10' SECOND) A
ON P.id = A.seller AND P.wstart = A.wstart AND P.wend = A.wend";

/// All `(name, sql)` pairs, for suite-level tests and benches.
pub fn all() -> Vec<(&'static str, &'static str)> {
    vec![
        ("q0", Q0),
        ("q1", Q1),
        ("q2", Q2),
        ("q3", Q3),
        ("q4_avg_by_category", Q4_AVG_PRICE_BY_CATEGORY),
        ("q5_hot_items", Q5_HOT_ITEMS),
        ("q7", Q7),
        ("q8", Q8),
    ]
}

/// How one suite query runs as a *full-stack* SQL script (DDL + INSERT
/// through `Session::execute_script`, partitioned NEXMark source,
/// transactional file sink).
#[derive(Debug, Clone, Copy)]
pub struct FullStackSpec {
    /// Suite name (`q0` … `q8`).
    pub name: &'static str,
    /// The query text (no `EMIT` clause).
    pub sql: &'static str,
    /// Whether running with more than one worker leaves the final table
    /// unchanged: the sharded driver hash-routes each stream on its
    /// first column (`Bid.auction`, `Auction.id`, `Person.id`), so only
    /// queries whose join/grouping keys align with that routing are
    /// worker-count transparent.
    pub shardable: bool,
    /// Output column holding the window-end (or window-start) timestamp
    /// for windowed queries; under `EMIT AFTER WATERMARK` no row may
    /// surface before a watermark reaches it.
    pub gate_col: Option<usize>,
}

/// The full suite with its sharding/gating classification.
pub fn full_stack() -> Vec<FullStackSpec> {
    let spec = |name, sql, shardable, gate_col| FullStackSpec {
        name,
        sql,
        shardable,
        gate_col,
    };
    vec![
        // q0–q2 are stateless row-at-a-time transforms: any routing works.
        spec("q0", Q0, true, None),
        spec("q1", Q1, true, None),
        spec("q2", Q2, true, None),
        // q3 joins Auction.seller to Person.id, but Auction routes by id.
        spec("q3", Q3, false, None),
        // q4's join aligns (Bid.auction = Auction.id) but the category
        // groups span workers.
        spec(
            "q4_avg_by_category",
            Q4_AVG_PRICE_BY_CATEGORY,
            false,
            Some(1),
        ),
        // q5 groups by (auction, wend) and Bid routes by auction.
        spec("q5_hot_items", Q5_HOT_ITEMS, true, Some(1)),
        // q7's MAX is global per window.
        spec("q7", Q7, false, Some(1)),
        // q8 joins Auction.seller, routed by Auction.id; wstart (col 2)
        // lower-bounds the window end, so it still gates soundly.
        spec("q8", Q8, false, Some(2)),
    ]
}

/// Knobs for [`full_stack_script`].
#[derive(Debug, Clone)]
pub struct ScriptConfig {
    /// Sharded-driver worker count.
    pub workers: usize,
    /// Fixed driver batch size.
    pub batch: usize,
    /// NEXMark source partitions.
    pub partitions: usize,
    /// NEXMark generator seed.
    pub seed: u64,
    /// Events the source generates before completing.
    pub events: u64,
    /// Append `AFTER WATERMARK` to the `EMIT STREAM` clause.
    pub gated: bool,
}

impl Default for ScriptConfig {
    fn default() -> ScriptConfig {
        ScriptConfig {
            workers: 2,
            batch: 64,
            partitions: 4,
            seed: 7,
            events: 3_000,
            gated: false,
        }
    }
}

/// Render one suite query as a complete SQL script: knobs, a partitioned
/// NEXMark source, a transactional CSV file sink at `sink_path`, and the
/// `INSERT` that assembles the pipeline.
pub fn full_stack_script(sql: &str, sink_path: &std::path::Path, config: &ScriptConfig) -> String {
    format!(
        "SET workers = {};
         SET batch_size = {};
         CREATE PARTITIONED SOURCE nex
           WITH (connector = 'nexmark', seed = {}, events = {}, partitions = {});
         CREATE SINK out WITH (connector = 'file', path = '{}', transactional = TRUE);
         INSERT INTO out {} EMIT STREAM{};",
        config.workers,
        config.batch,
        config.seed,
        config.events,
        config.partitions,
        sink_path.display(),
        sql,
        if config.gated { " AFTER WATERMARK" } else { "" },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_complete() {
        let names: Vec<&str> = all().iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"q7"));
        assert_eq!(names.len(), 8);
        for (_, sql) in all() {
            assert!(sql.to_uppercase().contains("SELECT"));
        }
    }
}
