//! Fault tolerance: checkpoint/restore across the whole pipeline.
//!
//! Appendix B.2.1: "Flink periodically writes a consistent checkpoint of
//! the application state... For recovery, the application is restarted and
//! all operators are initialized with the state of the last completed
//! checkpoint." These tests run a stream halfway, checkpoint, rebuild the
//! query from scratch, restore, feed the second half, and require the
//! recovered run to be indistinguishable from an uninterrupted one.

use onesql_core::{Engine, StreamBuilder};
use onesql_nexmark::paper::{paper_timeline, PaperEvent, PAPER_Q7_SQL};
use onesql_types::{row, DataType, Ts};

fn engine() -> Engine {
    let mut e = Engine::new();
    e.register_stream(
        "Bid",
        StreamBuilder::new()
            .event_time_column("bidtime")
            .column("price", DataType::Int)
            .column("item", DataType::String),
    );
    e
}

/// Run `sql` over the paper timeline with a crash/restore after `split`
/// events; return the final table.
fn run_with_crash(sql: &str, split: usize) -> Vec<onesql_types::Row> {
    let e = engine();
    let timeline = paper_timeline();

    let mut first = e.execute(sql).unwrap();
    for event in &timeline[..split] {
        match event {
            PaperEvent::Insert { ptime, row } => first.insert("Bid", *ptime, row.clone()).unwrap(),
            PaperEvent::Watermark { ptime, wm } => first.watermark("Bid", *ptime, *wm).unwrap(),
        }
    }
    let checkpoint = first.checkpoint().unwrap();
    let prefix = first.changelog().clone();
    drop(first); // the "crash"

    let mut second = e.execute(sql).unwrap();
    second.restore(&checkpoint).unwrap();
    for event in &timeline[split..] {
        match event {
            PaperEvent::Insert { ptime, row } => second.insert("Bid", *ptime, row.clone()).unwrap(),
            PaperEvent::Watermark { ptime, wm } => second.watermark("Bid", *ptime, *wm).unwrap(),
        }
    }
    // Combined result: replay the pre-crash changelog, then the recovered
    // one.
    let mut bag = prefix.snapshot();
    for entry in second.changelog().entries() {
        bag.update(entry.change.clone());
    }
    bag.to_rows()
}

fn run_uninterrupted(sql: &str) -> Vec<onesql_types::Row> {
    let e = engine();
    let mut q = e.execute(sql).unwrap();
    for event in paper_timeline() {
        match event {
            PaperEvent::Insert { ptime, row } => q.insert("Bid", ptime, row).unwrap(),
            PaperEvent::Watermark { ptime, wm } => q.watermark("Bid", ptime, wm).unwrap(),
        }
    }
    q.table().unwrap()
}

#[test]
fn q7_recovers_at_every_split_point() {
    let expected = run_uninterrupted(PAPER_Q7_SQL);
    for split in 0..=paper_timeline().len() {
        let recovered = run_with_crash(PAPER_Q7_SQL, split);
        assert_eq!(
            recovered, expected,
            "divergence with crash after event {split}"
        );
    }
}

#[test]
fn windowed_aggregate_recovers_mid_window() {
    let sql = "SELECT wend, SUM(price), COUNT(*) FROM Tumble(data => TABLE(Bid), \
               timecol => DESCRIPTOR(bidtime), dur => INTERVAL '10' MINUTE) GROUP BY wend";
    let expected = run_uninterrupted(sql);
    for split in [2, 4, 6, 8] {
        assert_eq!(run_with_crash(sql, split), expected, "split {split}");
    }
}

#[test]
fn emit_after_watermark_gate_state_survives() {
    let sql = format!("{PAPER_Q7_SQL} EMIT AFTER WATERMARK");
    let expected = run_uninterrupted(&sql);
    // Split while results are pending in the gate (after 8:13's events).
    for split in [3, 5, 7] {
        assert_eq!(run_with_crash(&sql, split), expected, "split {split}");
    }
}

#[test]
fn distinct_state_survives() {
    let sql = "SELECT DISTINCT price FROM Bid";
    let expected = run_uninterrupted(sql);
    assert_eq!(run_with_crash(sql, 4), expected);
}

#[test]
fn watermark_position_survives_restore() {
    // After restore, late data must still be dropped: the watermark is part
    // of the checkpoint.
    let sql = "SELECT wend, COUNT(*) FROM Tumble(data => TABLE(Bid), \
               timecol => DESCRIPTOR(bidtime), dur => INTERVAL '10' MINUTE) GROUP BY wend";
    let e = engine();
    let mut q = e.execute(sql).unwrap();
    q.insert("Bid", Ts::hm(8, 1), row!(Ts::hm(8, 1), 1i64, "A"))
        .unwrap();
    q.watermark("Bid", Ts::hm(8, 20), Ts::hm(8, 15)).unwrap();
    let cp = q.checkpoint().unwrap();

    let mut restored = e.execute(sql).unwrap();
    restored.restore(&cp).unwrap();
    // Late event for the closed [8:00, 8:10) window: dropped.
    restored
        .insert("Bid", Ts::hm(8, 21), row!(Ts::hm(8, 2), 1i64, "late"))
        .unwrap();
    assert!(restored.changelog().is_empty());
    // Fresh event for an open window: processed.
    restored
        .insert("Bid", Ts::hm(8, 22), row!(Ts::hm(8, 16), 1i64, "ok"))
        .unwrap();
    assert_eq!(
        restored.changelog().snapshot().to_rows(),
        vec![row!(Ts::hm(8, 20), 1i64)]
    );
}

#[test]
fn restore_rejects_mismatched_plan() {
    let e = engine();
    let q = e.execute("SELECT DISTINCT price FROM Bid").unwrap();
    let cp = q.checkpoint().unwrap();
    let mut other = e
        .execute("SELECT price, COUNT(*) FROM Bid GROUP BY price")
        .unwrap();
    // Different operator count/shape: must error, not corrupt.
    assert!(other.restore(&cp).is_err());
}

#[test]
fn checkpoint_is_deterministic() {
    let e = engine();
    let make = || {
        let mut q = e.execute(PAPER_Q7_SQL).unwrap();
        for event in paper_timeline().into_iter().take(5) {
            match event {
                PaperEvent::Insert { ptime, row } => q.insert("Bid", ptime, row).unwrap(),
                PaperEvent::Watermark { ptime, wm } => q.watermark("Bid", ptime, wm).unwrap(),
            }
        }
        q.checkpoint().unwrap()
    };
    assert_eq!(make(), make());
}
