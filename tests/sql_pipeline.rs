//! The SQL-first pipeline API, black-box: a pipeline defined *entirely*
//! by a SQL script (`CREATE SOURCE` / `CREATE SINK` / `INSERT INTO ...
//! SELECT ... EMIT`) must behave exactly like the same pipeline wired
//! imperatively through the `Engine` API — byte-identical sink
//! changelogs for both the plain and sharded drivers — plus the
//! validation story: misspelled connectors and options, ill-typed
//! values, and impossible recovery combinations all surface as
//! descriptive errors, never panics.

use std::sync::{Arc, Mutex};

use onesql::connect::{register_nexmark_streams, session};
use onesql::{
    ChangelogSink, ChannelPublisher, Engine, NexmarkSource, PartitionedNexmarkSource,
    ShardedConfig, StatementResult,
};
use onesql_nexmark::queries;
use onesql_types::{row, Ts};

const EVENTS: u64 = 3_000;
const PARTS: usize = 4;
const WORKERS: usize = 2;

/// Q7 with the paper's EMIT clause, shared verbatim by both wirings.
fn q7_emit() -> String {
    format!("{} EMIT STREAM", queries::Q7)
}

/// The changelog an imperatively wired plain-driver Q7 produces.
fn imperative_plain() -> String {
    let mut engine = Engine::new();
    register_nexmark_streams(&mut engine);
    engine
        .attach_source(Box::new(NexmarkSource::seeded(7, EVENTS)))
        .unwrap();
    let (rendered, sink) = ChangelogSink::in_memory();
    engine.attach_sink(Box::new(sink));
    let mut driver = engine.run_pipeline(&q7_emit()).unwrap();
    driver.run().unwrap();
    let out = rendered.lock().unwrap().clone();
    assert!(!out.is_empty(), "imperative Q7 produced no output");
    out
}

/// The changelog an imperatively wired sharded Q7 produces.
fn imperative_sharded() -> String {
    let mut engine = Engine::new();
    register_nexmark_streams(&mut engine);
    engine
        .attach_partitioned_source(Box::new(PartitionedNexmarkSource::seeded(7, EVENTS, PARTS)))
        .unwrap();
    let (rendered, sink) = ChangelogSink::in_memory();
    engine.attach_sink(Box::new(sink));
    let mut driver = engine
        .run_sharded_pipeline(&q7_emit(), ShardedConfig::new(WORKERS))
        .unwrap();
    driver.run().unwrap();
    let out = rendered.lock().unwrap().clone();
    out
}

#[test]
fn sql_script_q7_matches_imperative_plain_driver() {
    let mut session = session();
    let script = format!(
        "CREATE SOURCE nex WITH (connector = 'nexmark', seed = 7, events = {EVENTS});
         CREATE SINK out WITH (connector = 'changelog');
         INSERT INTO out {};",
        q7_emit()
    );
    let mut pipeline = session
        .execute_script(&script)
        .unwrap()
        .into_pipeline()
        .unwrap();
    assert!(
        !pipeline.is_sharded(),
        "an unpartitioned source must assemble the plain driver"
    );
    let rendered = session
        .take_handle::<Arc<Mutex<String>>>("out")
        .expect("the in-memory changelog sink exports its buffer");
    let metrics = pipeline.run().unwrap();
    assert_eq!(metrics.events_in, EVENTS);
    assert_eq!(*rendered.lock().unwrap(), imperative_plain());
}

#[test]
fn sql_script_q7_matches_imperative_sharded_driver() {
    // The script is fully self-contained: the worker count rides in a
    // `SET` statement instead of a Rust-side setter call.
    let mut session = session();
    let script = format!(
        "SET workers = {WORKERS};
         CREATE PARTITIONED SOURCE nex
           WITH (connector = 'nexmark', seed = 7, events = {EVENTS}, partitions = {PARTS});
         CREATE SINK out WITH (connector = 'changelog');
         INSERT INTO out {};",
        q7_emit()
    );
    let mut pipeline = session
        .execute_script(&script)
        .unwrap()
        .into_pipeline()
        .unwrap();
    assert!(
        pipeline.is_sharded(),
        "a partitioned source must assemble the sharded driver"
    );
    let rendered = session
        .take_handle::<Arc<Mutex<String>>>("out")
        .expect("the in-memory changelog sink exports its buffer");
    let metrics = pipeline.run().unwrap();
    assert_eq!(metrics.events_in, EVENTS);
    assert_eq!(*rendered.lock().unwrap(), imperative_sharded());
}

// ---------------------------------------------------------------------------
// Definitions persist; pipelines drive channels through exported handles.
// ---------------------------------------------------------------------------

#[test]
fn channel_pipeline_via_script_and_handles() {
    let mut session = session();
    session
        .execute_script(
            "CREATE SOURCE Bid (bidtime TIMESTAMP, price INT, WATERMARK FOR bidtime)
               WITH (connector = 'channel', capacity = 128);
             CREATE SINK out WITH (connector = 'changelog');",
        )
        .unwrap();
    // A later script binds against the persisted definitions.
    let mut pipeline = session
        .execute_script("INSERT INTO out SELECT price FROM Bid WHERE price > 2 EMIT STREAM;")
        .unwrap()
        .into_pipeline()
        .unwrap();
    let publishers = session
        .take_handle::<Vec<ChannelPublisher>>("Bid")
        .expect("the channel source exports its publishers");
    for i in 0..10i64 {
        publishers[0].insert(Ts(i), row!(Ts(i), i)).unwrap();
    }
    publishers[0].finish().unwrap();
    let metrics = pipeline.run().unwrap();
    assert_eq!(metrics.events_in, 10);
    assert_eq!(metrics.events_out, 7, "prices 3..=9 pass the filter");
}

#[test]
fn explain_drop_and_redefinition() {
    let mut session = session();
    let outcome = session
        .execute_script(
            "CREATE SOURCE S (t TIMESTAMP, v INT, WATERMARK FOR t)
               WITH (connector = 'channel');
             EXPLAIN SELECT v FROM S WHERE v > 1;",
        )
        .unwrap();
    let explains = outcome.explains();
    assert_eq!(explains.len(), 1);
    assert!(explains[0].contains("Filter"), "{}", explains[0]);
    assert!(explains[0].contains("Scan: S"), "{}", explains[0]);

    // Double CREATE is refused; DROP then recreate works.
    let err = session
        .execute("CREATE SOURCE S (v INT) WITH (connector = 'channel')")
        .err()
        .unwrap()
        .to_string();
    assert!(err.contains("already exists"), "{err}");
    session.execute("DROP SOURCE S").unwrap();
    session
        .execute(
            "CREATE SOURCE S (t TIMESTAMP, v INT, WATERMARK FOR t) WITH (connector = 'channel')",
        )
        .unwrap();

    // DROP of missing objects: IF EXISTS tolerates, bare DROP errors.
    session.execute("DROP SINK IF EXISTS nope").unwrap();
    let err = session.execute("DROP SINK nope").err().unwrap().to_string();
    assert!(err.contains("no such object"), "{err}");
}

#[test]
fn source_and_sink_sharing_a_name_keep_separate_handles() {
    let mut session = session();
    let mut pipeline = session
        .execute_script(
            "CREATE SOURCE data (t TIMESTAMP, v INT, WATERMARK FOR t)
               WITH (connector = 'channel');
             CREATE SINK data WITH (connector = 'changelog');
             INSERT INTO data SELECT v FROM data EMIT STREAM;",
        )
        .unwrap()
        .into_pipeline()
        .unwrap();
    let publishers = session
        .take_handle::<Vec<ChannelPublisher>>("data")
        .expect("the source's publishers must survive the sink build");
    let rendered = session
        .take_handle::<Arc<Mutex<String>>>("data")
        .expect("the sink's buffer is retrievable under the same name");
    publishers[0].insert(Ts(0), row!(Ts(0), 7i64)).unwrap();
    publishers[0].finish().unwrap();
    pipeline.run().unwrap();
    assert!(rendered.lock().unwrap().contains('7'));
}

#[test]
fn failed_create_source_registers_no_streams() {
    // The nexmark connector declares Person, Auction, Bid; if one of
    // them clashes, the CREATE must fail without leaving the others
    // registered behind.
    let mut session = session();
    session
        .execute("CREATE TEMPORAL TABLE Auction (id INT, reserve INT)")
        .unwrap();
    let err = session
        .execute("CREATE SOURCE nex WITH (connector = 'nexmark', events = 10)")
        .err()
        .unwrap()
        .to_string();
    assert!(err.contains("already registered as a table"), "{err}");
    // 'Person' must NOT have leaked into the catalog.
    session
        .execute("CREATE STREAM Person (id INT, dateTime TIMESTAMP, WATERMARK FOR dateTime)")
        .expect("a failed CREATE SOURCE must not half-register streams");
}

#[test]
fn temporal_table_ddl_queries_as_of() {
    let mut session = session();
    session
        .execute("CREATE TEMPORAL TABLE Rates (currency STRING, rate INT) WITH (key = 'currency')")
        .unwrap();
    let table = session.engine_mut().temporal_table_mut("Rates").unwrap();
    table.insert(Ts::hm(9, 0), row!("EUR", 114i64)).unwrap();
    table.insert(Ts::hm(10, 0), row!("EUR", 120i64)).unwrap();
    let StatementResult::Query(q) = session
        .execute("SELECT rate FROM Rates AS OF SYSTEM TIME TIMESTAMP '9:30'")
        .unwrap()
    else {
        panic!("expected a running query")
    };
    assert_eq!(q.table().unwrap(), vec![row!(114i64)]);
}

#[test]
fn trailing_semicolons_accepted_by_both_entry_points() {
    // A statement copied out of a script (with its `;`) must parse
    // identically through Engine::plan/execute and Session::execute.
    let mut engine = Engine::new();
    engine.register_stream(
        "Bid",
        onesql::StreamBuilder::new()
            .event_time_column("bidtime")
            .column("price", onesql_types::DataType::Int),
    );
    engine.plan("SELECT price FROM Bid;").unwrap();
    engine.plan("SELECT price FROM Bid;;").unwrap();
    engine
        .execute("SELECT price FROM Bid; -- copied\n")
        .unwrap();
    let mut session = session();
    session.execute("EXPLAIN SELECT 1;").unwrap();
}

// ---------------------------------------------------------------------------
// Connector-option validation: descriptive errors, never panics.
// ---------------------------------------------------------------------------

#[test]
fn unknown_connector_names_are_suggested() {
    let mut session = session();
    let err = session
        .execute("CREATE SOURCE s (v INT) WITH (connector = 'fil', path = 'x')")
        .err()
        .unwrap()
        .to_string();
    assert!(err.contains("unknown source connector 'fil'"), "{err}");
    assert!(err.contains("did you mean 'file'"), "{err}");

    let err = session
        .execute("CREATE SINK s WITH (connector = 'changelgo')")
        .err()
        .unwrap()
        .to_string();
    assert!(err.contains("did you mean 'changelog'"), "{err}");
}

#[test]
fn unknown_and_duplicate_with_keys_are_rejected() {
    let mut session = session();
    let err = session
        .execute("CREATE SOURCE s WITH (connector = 'nexmark', events = 10, sed = 5)")
        .err()
        .unwrap()
        .to_string();
    assert!(err.contains("unknown option 'sed'"), "{err}");
    assert!(err.contains("did you mean 'seed'"), "{err}");

    let err = session
        .execute("CREATE SOURCE s (v INT) WITH (connector = 'file', path = 'a', path = 'b')")
        .err()
        .unwrap()
        .to_string();
    assert!(err.contains("duplicate WITH option 'path'"), "{err}");
}

#[test]
fn option_type_and_missing_key_errors_name_the_option() {
    let mut session = session();
    let err = session
        .execute(
            "CREATE PARTITIONED SOURCE s
               WITH (connector = 'nexmark', events = 10, partitions = 'abc')",
        )
        .err()
        .unwrap()
        .to_string();
    assert!(err.contains("option 'partitions'"), "{err}");
    assert!(err.contains("'abc'"), "{err}");

    let err = session
        .execute("CREATE SOURCE s (v INT) WITH (connector = 'file')")
        .err()
        .unwrap()
        .to_string();
    assert!(err.contains("missing required option 'path'"), "{err}");

    let err = session
        .execute("CREATE SOURCE s (v INT) WITH (connector = 'net', addr = '127.0.0.1:0')")
        .err()
        .unwrap()
        .to_string();
    assert!(err.contains("'tcp:host:port'"), "{err}");
}

#[test]
fn insert_against_missing_objects_errors() {
    let mut session = session();
    session
        .execute("CREATE SINK out WITH (connector = 'changelog')")
        .unwrap();
    // Unknown sink.
    let err = session
        .execute("INSERT INTO nowhere SELECT 1")
        .err()
        .unwrap()
        .to_string();
    assert!(err.contains("no such sink"), "{err}");
    // A query over streams no CREATE SOURCE feeds.
    session.execute("CREATE STREAM Orphan (v INT)").unwrap();
    let err = session
        .execute("INSERT INTO out SELECT v FROM Orphan")
        .err()
        .unwrap()
        .to_string();
    assert!(err.contains("no CREATE SOURCE feeds"), "{err}");

    // A *partially* fed query must also error (a silently empty join is
    // worse than a missing-source error), naming only the unfed stream.
    session
        .execute(
            "CREATE SOURCE Bid (bidtime TIMESTAMP, price INT, WATERMARK FOR bidtime)
             WITH (connector = 'channel')",
        )
        .unwrap();
    let err = session
        .execute("INSERT INTO out SELECT price FROM Bid B JOIN Orphan O ON B.price = O.v")
        .err()
        .unwrap()
        .to_string();
    assert!(err.contains("orphan"), "{err}");
    assert!(
        !err.contains("[bid"),
        "only the unfed stream is named: {err}"
    );
}

#[test]
fn drop_source_unregisters_its_streams() {
    let mut session = session();
    session
        .execute(
            "CREATE SOURCE S (t TIMESTAMP, v INT, WATERMARK FOR t) WITH (connector = 'channel')",
        )
        .unwrap();
    session.execute("DROP SOURCE S").unwrap();
    // The auto-registered stream must be gone with it, so the source
    // can be recreated under a different schema...
    session
        .execute("CREATE SOURCE S (v INT, x STRING) WITH (connector = 'channel')")
        .expect("recreate with a different schema after DROP");
    session.execute("DROP SOURCE S").unwrap();
    // ...and a pre-existing CREATE STREAM is *not* swept up by DROP
    // SOURCE (the source did not register it).
    session.execute("CREATE STREAM T (v INT)").unwrap();
    session
        .execute(
            "CREATE SOURCE net_t WITH (connector = 'net', addr = 'tcp:127.0.0.1:0',
             streams = 'T')",
        )
        .unwrap();
    session.execute("DROP SOURCE net_t").unwrap();
    let err = session
        .execute("CREATE STREAM T (v INT)")
        .err()
        .unwrap()
        .to_string();
    assert!(err.contains("already exists"), "T must survive: {err}");
}

#[test]
fn drop_stream_refused_while_a_source_feeds_it() {
    let mut session = session();
    session
        .execute("CREATE SOURCE nex WITH (connector = 'nexmark', events = 10)")
        .unwrap();
    let err = session
        .execute("DROP STREAM Person")
        .err()
        .unwrap()
        .to_string();
    assert!(err.contains("source 'nex' feeds it"), "{err}");
    // After dropping the source, the stream goes with it (auto-
    // registered), so DROP STREAM then reports absence.
    session.execute("DROP SOURCE nex").unwrap();
    session.execute("DROP STREAM IF EXISTS Person").unwrap();
}

#[test]
fn side_irrelevant_net_options_are_rejected() {
    let mut session = session();
    // Consumer-side knob on the (producer-side) net sink.
    let err = session
        .execute(
            "CREATE SINK ship WITH (connector = 'net', addr = 'tcp:h:1',
             stream = 'S', silence_limit_ms = 100)",
        )
        .err()
        .unwrap()
        .to_string();
    assert!(err.contains("unknown option 'silence_limit_ms'"), "{err}");
    // Producer-side knob on the (consumer-side) net source.
    let err = session
        .execute(
            "CREATE SOURCE feed (v INT) WITH (connector = 'net',
             addr = 'tcp:127.0.0.1:0', keepalive_ms = 100)",
        )
        .err()
        .unwrap()
        .to_string();
    assert!(err.contains("unknown option 'keepalive_ms'"), "{err}");
    // Options that would sit inert are refused across families: a
    // header on JSON-lines, and multi-partition nets without
    // PARTITIONED — both at CREATE time, not first-INSERT time.
    let err = session
        .execute(
            "CREATE SINK j WITH (connector = 'file', path = '/tmp/x.jsonl',
             format = 'jsonl', header = FALSE)",
        )
        .err()
        .unwrap()
        .to_string();
    assert!(err.contains("only applies to format='csv'"), "{err}");
    let err = session
        .execute(
            "CREATE SOURCE feed (v INT) WITH (connector = 'net',
             addr = 'tcp:127.0.0.1:0', partitions = 4)",
        )
        .err()
        .unwrap()
        .to_string();
    assert!(err.contains("needs CREATE PARTITIONED SOURCE"), "{err}");
}

#[test]
fn failed_insert_does_not_clobber_live_handles() {
    let mut session = session();
    let mut pipeline = session
        .execute_script(
            "CREATE SOURCE S (t TIMESTAMP, v INT, WATERMARK FOR t)
               WITH (connector = 'channel');
             CREATE SINK good WITH (connector = 'changelog');
             CREATE SINK bad WITH (connector = 'file', path = '/nonexistent-dir/x.csv');
             INSERT INTO good SELECT v FROM S EMIT STREAM;",
        )
        .unwrap()
        .into_pipeline()
        .unwrap();
    // A later INSERT that fails at sink build (unwritable path) must
    // not replace the live pipeline's exported publishers.
    let err = session
        .execute("INSERT INTO bad SELECT v FROM S EMIT STREAM")
        .err()
        .unwrap()
        .to_string();
    assert!(err.contains("cannot create"), "{err}");
    let publishers = session
        .take_handle::<Vec<ChannelPublisher>>("S")
        .expect("live pipeline's publishers survive the failed INSERT");
    publishers[0].insert(Ts(0), row!(Ts(0), 3i64)).unwrap();
    publishers[0].finish().unwrap();
    let metrics = pipeline.run().unwrap();
    assert_eq!(metrics.events_in, 1, "the live pipeline still ingests");
}

#[test]
fn non_replayable_source_checkpoint_restore_is_a_descriptive_error() {
    // Channels are non-replayable: a sharded pipeline over them can run
    // and even checkpoint, but restoring that checkpoint into a fresh
    // pipeline must refuse descriptively (the pre-crash events exist
    // nowhere to replay from) — never panic, never silently drop data.
    let mut session = session();
    let mut pipeline = session
        .execute_script(
            "SET workers = 2;
             CREATE PARTITIONED SOURCE S (t TIMESTAMP, v INT, WATERMARK FOR t)
               WITH (connector = 'channel', partitions = 2);
             CREATE SINK out WITH (connector = 'changelog');
             INSERT INTO out SELECT v FROM S EMIT STREAM;",
        )
        .unwrap()
        .into_pipeline()
        .unwrap();
    let publishers = session
        .take_handle::<Vec<ChannelPublisher>>("S")
        .expect("publishers exported");
    for i in 0..32i64 {
        publishers[(i % 2) as usize]
            .insert(Ts(i), row!(Ts(i), i))
            .unwrap();
    }
    let sharded = pipeline.as_sharded_mut().expect("partitioned => sharded");
    while sharded.events_in() < 32 {
        sharded.step().unwrap();
    }
    let checkpoint = sharded.checkpoint().unwrap();
    assert!(checkpoint.offsets.iter().flatten().any(|&o| o > 0));

    // A fresh pipeline from the same persistent definitions gets fresh
    // (empty) channels; seeking them to the checkpoint offsets must err.
    let StatementResult::Pipeline(mut fresh) = session
        .execute("INSERT INTO out SELECT v FROM S EMIT STREAM")
        .unwrap()
    else {
        panic!("expected a pipeline")
    };
    let err = fresh
        .as_sharded_mut()
        .unwrap()
        .restore(&checkpoint)
        .err()
        .unwrap()
        .to_string();
    assert!(err.contains("not replayable"), "{err}");
}

// ---------------------------------------------------------------------------
// File connectors end to end: a pure-SQL CSV -> filter -> CSV pipeline.
// ---------------------------------------------------------------------------

#[test]
fn file_to_file_pipeline_from_sql_only() {
    let dir = std::env::temp_dir().join("onesql_sql_pipeline");
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join(format!("in-{}.csv", std::process::id()));
    let output = dir.join(format!("out-{}.csv", std::process::id()));
    std::fs::write(&input, "8:01,5\n8:02,1\n8:03,9\n").unwrap();

    let mut session = session();
    let script = format!(
        "CREATE SOURCE Bid (bidtime TIMESTAMP, price INT, WATERMARK FOR bidtime)
           WITH (connector = 'file', path = '{}', format = 'csv');
         CREATE SINK filtered
           WITH (connector = 'file', path = '{}', mode = 'appends', header = FALSE);
         INSERT INTO filtered SELECT price FROM Bid WHERE price > 2 EMIT AFTER WATERMARK;",
        input.display(),
        output.display()
    );
    let mut pipeline = session
        .execute_script(&script)
        .unwrap()
        .into_pipeline()
        .unwrap();
    pipeline.run().unwrap();
    let written = std::fs::read_to_string(&output).unwrap();
    assert_eq!(written, "5\n9\n");
}
