//! Recursive-descent parser for the onesql dialect.

use onesql_types::{DataType, Error, Result};

use crate::ast::*;
use crate::lexer::tokenize;
use crate::token::{line_col_at, Keyword, Span, Token, TokenKind};

/// A parsed statement together with the byte range of the source text it
/// was parsed from (first token through last token, comments excluded).
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedStatement {
    /// The statement.
    pub statement: Statement,
    /// Byte range of the statement in the original script.
    pub span: Span,
}

/// Parse a single query (optionally `;`-terminated) from SQL text.
pub fn parse_query(sql: &str) -> Result<Query> {
    let tokens = tokenize(sql)?;
    let mut parser = Parser::with_source(tokens, sql);
    let query = parser.parse_query()?;
    while parser.consume(&TokenKind::Semicolon) {}
    parser.expect(&TokenKind::Eof)?;
    Ok(query)
}

/// Parse a single statement (optionally `;`-terminated) from SQL text.
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut parser = Parser::with_source(tokens, sql);
    let statement = parser.parse_statement()?;
    while parser.consume(&TokenKind::Semicolon) {}
    parser.expect(&TokenKind::Eof)?;
    Ok(statement)
}

/// Parse a `;`-separated script into its statements. The final `;` is
/// optional; empty statements (stray `;;`, trailing whitespace, comments)
/// are skipped.
pub fn parse_script(sql: &str) -> Result<Vec<Statement>> {
    Ok(parse_script_spanned(sql)?
        .into_iter()
        .map(|s| s.statement)
        .collect())
}

/// Like [`parse_script`], but each statement keeps the byte span of the
/// script text it was parsed from — the input to lint diagnostics.
pub fn parse_script_spanned(sql: &str) -> Result<Vec<SpannedStatement>> {
    let tokens = tokenize(sql)?;
    let mut parser = Parser::with_source(tokens, sql);
    let mut statements = Vec::new();
    loop {
        while parser.consume(&TokenKind::Semicolon) {}
        if *parser.peek() == TokenKind::Eof {
            return Ok(statements);
        }
        let start = parser.current_span().start;
        let statement = parser.parse_statement()?;
        let span = Span::new(start, parser.prev_end());
        statements.push(SpannedStatement { statement, span });
        if *parser.peek() != TokenKind::Eof && !parser.consume(&TokenKind::Semicolon) {
            return Err(parser.unexpected("expected ';' between statements"));
        }
    }
}

/// The parser state: a token cursor plus the source text (for
/// line:column error positions).
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    src: String,
}

impl Parser {
    /// Create a parser over a token stream (must end with `Eof`).
    ///
    /// Errors report byte offsets only; prefer [`Parser::with_source`]
    /// so they carry line:column positions too.
    pub fn new(tokens: Vec<Token>) -> Parser {
        Parser {
            tokens,
            pos: 0,
            src: String::new(),
        }
    }

    /// Create a parser over a token stream with the text it was lexed
    /// from, so errors can report line:column positions.
    pub fn with_source(tokens: Vec<Token>, src: &str) -> Parser {
        Parser {
            tokens,
            pos: 0,
            src: src.to_string(),
        }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_ahead(&self, n: usize) -> &TokenKind {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    fn current_span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    /// Byte offset one past the last consumed token (statement extent).
    fn prev_end(&self) -> usize {
        match self.pos.checked_sub(1) {
            Some(prev) => self.tokens[prev.min(self.tokens.len() - 1)].span.end,
            None => 0,
        }
    }

    fn offset(&self) -> usize {
        self.current_span().start
    }

    fn advance(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos.min(self.tokens.len() - 1)]
            .kind
            .clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        kind
    }

    fn consume(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn consume_keyword(&mut self, kw: Keyword) -> bool {
        self.consume(&TokenKind::Keyword(kw))
    }

    fn peek_keyword(&self, kw: Keyword) -> bool {
        *self.peek() == TokenKind::Keyword(kw)
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.consume(kind) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("expected {kind}")))
        }
    }

    fn expect_keyword(&mut self, kw: Keyword) -> Result<()> {
        self.expect(&TokenKind::Keyword(kw))
    }

    fn unexpected(&self, expected: &str) -> Error {
        let offset = self.offset();
        if self.src.is_empty() {
            return Error::parse(format!(
                "{expected}, found {} at byte offset {offset}",
                self.peek()
            ));
        }
        let (line, col) = line_col_at(&self.src, offset);
        Error::parse(format!(
            "{expected}, found {} at line {line}, column {col} (byte offset {offset})",
            self.peek()
        ))
    }

    /// Statement-layer keywords that are **not** reserved words of the
    /// query dialect (unlike, say, `CREATE` or `WITH`, which standard
    /// SQL reserves too): outside their introducing position they keep
    /// working as ordinary identifiers, so pre-existing queries with
    /// columns named `source`, `sink`, ... still parse. The lexer
    /// normalizes keywords, so the identifier comes back lowercased
    /// regardless of how it was written (name resolution is
    /// case-insensitive anyway; quote the identifier to keep exact
    /// case).
    fn soft_keyword(kind: &TokenKind) -> Option<String> {
        match kind {
            TokenKind::Keyword(
                kw @ (Keyword::Source
                | Keyword::Sink
                | Keyword::Temporal
                | Keyword::Partitioned
                | Keyword::If
                | Keyword::Explain
                | Keyword::Set
                | Keyword::Checkpoint
                | Keyword::Restore
                | Keyword::Pipeline
                | Keyword::Pipelines
                | Keyword::Show
                | Keyword::Analyze
                | Keyword::Lint
                | Keyword::Trace
                | Keyword::To),
            ) => Some(kw.as_str().to_ascii_lowercase()),
            _ => None,
        }
    }

    fn parse_identifier(&mut self) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.advance();
                Ok(name)
            }
            ref other => match Parser::soft_keyword(other) {
                Some(name) => {
                    self.advance();
                    Ok(name)
                }
                None => Err(self.unexpected("expected identifier")),
            },
        }
    }

    // -- statements -------------------------------------------------------

    /// Parse one statement: a query, `CREATE ...`, `INSERT INTO ...`,
    /// `EXPLAIN ...`, or `DROP ...`.
    pub fn parse_statement(&mut self) -> Result<Statement> {
        match self.peek() {
            TokenKind::Keyword(Keyword::Create) => {
                self.advance();
                self.parse_create()
            }
            TokenKind::Keyword(Keyword::Insert) => {
                self.advance();
                self.expect_keyword(Keyword::Into)?;
                let sink = self.parse_identifier()?;
                let query = self.parse_query()?;
                Ok(Statement::Insert { sink, query })
            }
            TokenKind::Keyword(Keyword::Explain) => {
                self.advance();
                if self.consume_keyword(Keyword::Analyze) {
                    Ok(Statement::ExplainAnalyze(self.parse_query()?))
                } else if self.consume_keyword(Keyword::Lint) {
                    // EXPLAIN LINT '<script>' lints a quoted script;
                    // EXPLAIN LINT <statement> lints one statement in
                    // the current session context.
                    if let TokenKind::String(script) = self.peek().clone() {
                        self.advance();
                        Ok(Statement::ExplainLint(LintTarget::Script(script)))
                    } else {
                        let inner = self.parse_statement()?;
                        Ok(Statement::ExplainLint(LintTarget::Statement(Box::new(
                            inner,
                        ))))
                    }
                } else {
                    Ok(Statement::Explain(self.parse_query()?))
                }
            }
            TokenKind::Keyword(Keyword::Show) => {
                self.advance();
                if self.consume_keyword(Keyword::Trace) {
                    let pipeline = if self.consume_keyword(Keyword::For) {
                        Some(self.parse_string("a pipeline label after FOR")?)
                    } else {
                        None
                    };
                    let limit =
                        if self.consume_keyword(Keyword::Limit) {
                            match self.advance() {
                                TokenKind::Number(n) => Some(n.parse::<u64>().map_err(|_| {
                                    Error::parse(format!("invalid LIMIT value '{n}'"))
                                })?),
                                _ => return Err(self.unexpected("expected integer after LIMIT")),
                            }
                        } else {
                            None
                        };
                    return Ok(Statement::ShowTrace { pipeline, limit });
                }
                self.expect_keyword(Keyword::Pipelines)?;
                Ok(Statement::ShowPipelines)
            }
            TokenKind::Keyword(Keyword::Set) => {
                self.advance();
                let name = self.parse_identifier()?;
                self.expect(&TokenKind::Eq)?;
                let value = self.parse_option_value(&name)?;
                Ok(Statement::Set { name, value })
            }
            TokenKind::Keyword(Keyword::Checkpoint) => {
                self.advance();
                self.expect_keyword(Keyword::Pipeline)?;
                let pipeline = self.parse_identifier()?;
                self.expect_keyword(Keyword::To)?;
                let path = self.parse_string("a checkpoint directory path after TO")?;
                Ok(Statement::CheckpointPipeline { pipeline, path })
            }
            TokenKind::Keyword(Keyword::Trace) => {
                self.advance();
                self.expect_keyword(Keyword::Pipeline)?;
                let pipeline = self.parse_identifier()?;
                self.expect_keyword(Keyword::To)?;
                let path = self.parse_string("an export file path after TO")?;
                Ok(Statement::TracePipeline { pipeline, path })
            }
            TokenKind::Keyword(Keyword::Restore) => {
                self.advance();
                self.expect_keyword(Keyword::Pipeline)?;
                let pipeline = self.parse_identifier()?;
                self.expect_keyword(Keyword::From)?;
                let path = self.parse_string("a checkpoint directory path after FROM")?;
                Ok(Statement::RestorePipeline { pipeline, path })
            }
            TokenKind::Keyword(Keyword::Drop) => {
                self.advance();
                let kind = if self.consume_keyword(Keyword::Source) {
                    DropKind::Source
                } else if self.consume_keyword(Keyword::Sink) {
                    DropKind::Sink
                } else if self.consume_keyword(Keyword::Stream) {
                    DropKind::Stream
                } else if self.consume_keyword(Keyword::Table) {
                    DropKind::Table
                } else {
                    return Err(self.unexpected("expected SOURCE, SINK, STREAM, or TABLE"));
                };
                let if_exists = if self.consume_keyword(Keyword::If) {
                    self.expect_keyword(Keyword::Exists)?;
                    true
                } else {
                    false
                };
                let name = self.parse_identifier()?;
                Ok(Statement::Drop {
                    kind,
                    if_exists,
                    name,
                })
            }
            _ => Ok(Statement::Query(self.parse_query()?)),
        }
    }

    fn parse_create(&mut self) -> Result<Statement> {
        if self.consume_keyword(Keyword::Partitioned) {
            self.expect_keyword(Keyword::Source)?;
            return self.parse_create_source(true);
        }
        if self.consume_keyword(Keyword::Source) {
            return self.parse_create_source(false);
        }
        if self.consume_keyword(Keyword::Sink) {
            let name = self.parse_identifier()?;
            let options = self.parse_with_options()?;
            return Ok(Statement::CreateSink(CreateSink { name, options }));
        }
        if self.consume_keyword(Keyword::Stream) {
            let name = self.parse_identifier()?;
            let (columns, watermark) = self.parse_schema_clause()?;
            if columns.is_empty() {
                return Err(Error::parse(format!(
                    "CREATE STREAM {name} needs at least one column"
                )));
            }
            return Ok(Statement::CreateStream(CreateStream {
                name,
                columns,
                watermark,
            }));
        }
        if self.consume_keyword(Keyword::Temporal) {
            self.expect_keyword(Keyword::Table)?;
            let name = self.parse_identifier()?;
            let (columns, watermark) = self.parse_schema_clause()?;
            if let Some(wm) = watermark {
                return Err(Error::parse(format!(
                    "temporal table {name}: WATERMARK FOR {wm} is not \
                     meaningful on a table (watermarks describe streams)"
                )));
            }
            if columns.is_empty() {
                return Err(Error::parse(format!(
                    "CREATE TEMPORAL TABLE {name} needs at least one column"
                )));
            }
            let options = if self.peek_keyword(Keyword::With) {
                self.parse_with_options()?
            } else {
                Vec::new()
            };
            return Ok(Statement::CreateTemporalTable(CreateTemporalTable {
                name,
                columns,
                options,
            }));
        }
        Err(self.unexpected(
            "expected SOURCE, PARTITIONED SOURCE, SINK, STREAM, or TEMPORAL TABLE after CREATE",
        ))
    }

    fn parse_create_source(&mut self, partitioned: bool) -> Result<Statement> {
        let name = self.parse_identifier()?;
        let (columns, watermark) = if *self.peek() == TokenKind::LParen {
            self.parse_schema_clause()?
        } else {
            (Vec::new(), None)
        };
        let options = self.parse_with_options()?;
        Ok(Statement::CreateSource(CreateSource {
            name,
            partitioned,
            columns,
            watermark,
            options,
        }))
    }

    /// Parse `(<col type>, ..., [WATERMARK FOR col])`.
    fn parse_schema_clause(&mut self) -> Result<(Vec<ColumnDef>, Option<String>)> {
        self.expect(&TokenKind::LParen)?;
        let mut columns = Vec::new();
        let mut watermark = None;
        loop {
            if self.consume_keyword(Keyword::Watermark) {
                self.expect_keyword(Keyword::For)?;
                let col = self.parse_identifier()?;
                if let Some(prev) = watermark.replace(col) {
                    return Err(Error::parse(format!(
                        "duplicate WATERMARK clause (already declared for '{prev}')"
                    )));
                }
            } else {
                let name = self.parse_identifier()?;
                let data_type = self.parse_data_type()?;
                columns.push(ColumnDef { name, data_type });
            }
            if !self.consume(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok((columns, watermark))
    }

    /// Parse a `'string'`, `number`, `-number`, or `TRUE`/`FALSE` option
    /// value — the right-hand side of a `WITH` pair or a `SET` statement.
    fn parse_option_value(&mut self, key: &str) -> Result<OptionValue> {
        match self.advance() {
            TokenKind::String(s) => Ok(OptionValue::String(s)),
            TokenKind::Number(n) => Ok(OptionValue::Number(n)),
            TokenKind::Minus => match self.advance() {
                TokenKind::Number(n) => Ok(OptionValue::Number(format!("-{n}"))),
                _ => Err(self.unexpected("expected number after '-'")),
            },
            TokenKind::Keyword(Keyword::True) => Ok(OptionValue::Bool(true)),
            TokenKind::Keyword(Keyword::False) => Ok(OptionValue::Bool(false)),
            _ => Err(self.unexpected(&format!(
                "expected a string, number, or boolean value for option '{key}'"
            ))),
        }
    }

    /// Parse a required `'string'` literal token.
    fn parse_string(&mut self, expected: &str) -> Result<String> {
        match self.advance() {
            TokenKind::String(s) => Ok(s),
            _ => Err(self.unexpected(&format!("expected {expected}"))),
        }
    }

    /// Parse `WITH (key = value, ...)`. The pair list may be empty.
    /// Keys are positionally unambiguous (always after `(` or `,`), so
    /// any keyword works as a key too — the net sink's `stream = '...'`
    /// must not collide with the STREAM keyword.
    fn parse_with_options(&mut self) -> Result<Vec<WithOption>> {
        self.expect_keyword(Keyword::With)?;
        self.expect(&TokenKind::LParen)?;
        let mut options = Vec::new();
        if *self.peek() != TokenKind::RParen {
            loop {
                let key = match self.peek().clone() {
                    TokenKind::Keyword(kw) => {
                        self.advance();
                        kw.as_str().to_string()
                    }
                    _ => self.parse_identifier()?,
                };
                self.expect(&TokenKind::Eq)?;
                let value = self.parse_option_value(&key)?;
                options.push(WithOption { key, value });
                if !self.consume(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(options)
    }

    // -- queries ----------------------------------------------------------

    /// Parse a query: body, `ORDER BY`, `LIMIT`, `EMIT`.
    pub fn parse_query(&mut self) -> Result<Query> {
        let body = self.parse_set_expr()?;
        let mut order_by = Vec::new();
        if self.consume_keyword(Keyword::Order) {
            self.expect_keyword(Keyword::By)?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.consume_keyword(Keyword::Desc) {
                    true
                } else {
                    self.consume_keyword(Keyword::Asc);
                    false
                };
                order_by.push(OrderByItem { expr, desc });
                if !self.consume(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let limit = if self.consume_keyword(Keyword::Limit) {
            match self.advance() {
                TokenKind::Number(n) => Some(
                    n.parse::<u64>()
                        .map_err(|_| Error::parse(format!("invalid LIMIT value '{n}'")))?,
                ),
                _ => return Err(self.unexpected("expected integer after LIMIT")),
            }
        } else {
            None
        };
        let emit = if self.consume_keyword(Keyword::Emit) {
            Some(self.parse_emit()?)
        } else {
            None
        };
        Ok(Query {
            body,
            order_by,
            limit,
            emit,
        })
    }

    fn parse_emit(&mut self) -> Result<Emit> {
        let mut emit = Emit {
            stream: self.consume_keyword(Keyword::Stream),
            ..Emit::default()
        };
        loop {
            if !self.consume_keyword(Keyword::After) {
                break;
            }
            if self.consume_keyword(Keyword::Watermark) {
                emit.after_watermark = true;
            } else if self.consume_keyword(Keyword::Delay) {
                // Parse above AND precedence so `AFTER DELAY d AND AFTER
                // WATERMARK` leaves the AND for the EMIT grammar.
                emit.after_delay = Some(self.parse_expr_prec(4)?);
            } else {
                return Err(self.unexpected("expected WATERMARK or DELAY after AFTER"));
            }
            if !self.consume_keyword(Keyword::And) {
                break;
            }
            // After AND we require another AFTER clause.
            if !self.peek_keyword(Keyword::After) {
                return Err(self.unexpected("expected AFTER following AND in EMIT clause"));
            }
        }
        if !emit.stream && !emit.after_watermark && emit.after_delay.is_none() {
            return Err(Error::parse(
                "EMIT requires at least one of STREAM, AFTER WATERMARK, AFTER DELAY",
            ));
        }
        Ok(emit)
    }

    fn parse_set_expr(&mut self) -> Result<SetExpr> {
        let mut left = SetExpr::Select(Box::new(self.parse_select()?));
        while self.peek_keyword(Keyword::Union) {
            self.advance();
            self.expect_keyword(Keyword::All).map_err(|_| {
                Error::parse("only UNION ALL is supported (bag semantics)".to_string())
            })?;
            let right = SetExpr::Select(Box::new(self.parse_select()?));
            left = SetExpr::UnionAll(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_select(&mut self) -> Result<Select> {
        self.expect_keyword(Keyword::Select)?;
        let distinct = self.consume_keyword(Keyword::Distinct);
        let mut projection = Vec::new();
        loop {
            projection.push(self.parse_select_item()?);
            if !self.consume(&TokenKind::Comma) {
                break;
            }
        }
        let mut from = Vec::new();
        if self.consume_keyword(Keyword::From) {
            loop {
                from.push(self.parse_table_ref()?);
                if !self.consume(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let selection = if self.consume_keyword(Keyword::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.consume_keyword(Keyword::Group) {
            self.expect_keyword(Keyword::By)?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.consume(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let having = if self.consume_keyword(Keyword::Having) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Select {
            distinct,
            projection,
            from,
            selection,
            group_by,
            having,
        })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if self.consume(&TokenKind::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*` (the alias may be a soft keyword, like any other
        // identifier position)
        let qualifier = match self.peek().clone() {
            TokenKind::Ident(name) => Some(name),
            ref other => Parser::soft_keyword(other),
        };
        if let Some(name) = qualifier {
            if *self.peek_ahead(1) == TokenKind::Dot && *self.peek_ahead(2) == TokenKind::Star {
                self.advance();
                self.advance();
                self.advance();
                return Ok(SelectItem::QualifiedWildcard(name));
            }
        }
        let expr = self.parse_expr()?;
        let alias = self.parse_optional_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_optional_alias(&mut self) -> Result<Option<String>> {
        if self.consume_keyword(Keyword::As) {
            return Ok(Some(self.parse_identifier()?));
        }
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.advance();
                Ok(Some(name))
            }
            ref other => match Parser::soft_keyword(other) {
                Some(name) => {
                    self.advance();
                    Ok(Some(name))
                }
                None => Ok(None),
            },
        }
    }

    // -- table references -------------------------------------------------

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        let mut left = self.parse_table_primary()?;
        loop {
            let kind = if self.consume_keyword(Keyword::Cross) {
                self.expect_keyword(Keyword::Join)?;
                JoinKind::Cross
            } else if self.consume_keyword(Keyword::Left) {
                self.consume_keyword(Keyword::Outer);
                self.expect_keyword(Keyword::Join)?;
                JoinKind::Left
            } else if self.consume_keyword(Keyword::Inner) {
                self.expect_keyword(Keyword::Join)?;
                JoinKind::Inner
            } else if self.consume_keyword(Keyword::Join) {
                JoinKind::Inner
            } else {
                break;
            };
            let right = self.parse_table_primary()?;
            let on = if kind == JoinKind::Cross {
                None
            } else {
                self.expect_keyword(Keyword::On)?;
                Some(self.parse_expr()?)
            };
            left = TableRef::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                on,
            };
        }
        Ok(left)
    }

    fn parse_table_primary(&mut self) -> Result<TableRef> {
        // Derived table: (SELECT ...) alias
        if self.consume(&TokenKind::LParen) {
            let query = self.parse_query()?;
            self.expect(&TokenKind::RParen)?;
            let alias = self.parse_optional_alias()?.ok_or_else(|| {
                Error::parse("derived table (subquery in FROM) requires an alias")
            })?;
            return Ok(TableRef::Derived {
                query: Box::new(query),
                alias,
            });
        }
        let name = self.parse_identifier()?;
        // Table-valued function: ident immediately followed by `(`.
        if *self.peek() == TokenKind::LParen {
            self.advance();
            let mut args = Vec::new();
            if *self.peek() != TokenKind::RParen {
                loop {
                    args.push(self.parse_tvf_arg()?);
                    if !self.consume(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen)?;
            let alias = self.parse_optional_alias()?;
            return Ok(TableRef::TableFunction {
                call: TvfCall { name, args },
                alias,
            });
        }
        // Plain table, optional AS OF SYSTEM TIME, optional alias.
        let as_of = if self.peek_keyword(Keyword::As)
            && *self.peek_ahead(1) == TokenKind::Keyword(Keyword::Of)
        {
            self.advance(); // AS
            self.advance(); // OF
            self.expect_keyword(Keyword::System)?;
            self.expect_keyword(Keyword::Time)?;
            Some(self.parse_expr()?)
        } else {
            None
        };
        let alias = self.parse_optional_alias()?;
        Ok(TableRef::Table { name, alias, as_of })
    }

    fn parse_tvf_arg(&mut self) -> Result<TvfArg> {
        // Named argument: ident => value
        let name = if let TokenKind::Ident(n) = self.peek().clone() {
            if *self.peek_ahead(1) == TokenKind::Arrow {
                self.advance();
                self.advance();
                Some(n)
            } else {
                None
            }
        } else {
            None
        };
        let value = if self.consume_keyword(Keyword::Table) {
            // TABLE(Bid), TABLE (subquery), or TABLE Bid.
            if self.consume(&TokenKind::LParen) {
                let inner = self.parse_table_ref()?;
                self.expect(&TokenKind::RParen)?;
                TvfArgValue::Table(Box::new(inner))
            } else {
                let table = self.parse_identifier()?;
                TvfArgValue::Table(Box::new(TableRef::Table {
                    name: table,
                    alias: None,
                    as_of: None,
                }))
            }
        } else if self.consume_keyword(Keyword::Descriptor) {
            self.expect(&TokenKind::LParen)?;
            let col = self.parse_identifier()?;
            self.expect(&TokenKind::RParen)?;
            TvfArgValue::Descriptor(col)
        } else {
            TvfArgValue::Scalar(self.parse_expr()?)
        };
        Ok(TvfArg { name, value })
    }

    // -- expressions --------------------------------------------------------

    /// Parse an expression at the lowest precedence.
    pub fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_expr_prec(1)
    }

    /// Precedence level used for postfix predicates (`IS NULL`, `BETWEEN`,
    /// `IN`, `LIKE`): binds tighter than `AND` (2), looser than `=` (4).
    const POSTFIX_PREC: u8 = 3;

    fn parse_expr_prec(&mut self, min_prec: u8) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            // Postfix predicates.
            if Self::POSTFIX_PREC >= min_prec {
                if self.peek_keyword(Keyword::Is) {
                    self.advance();
                    let negated = self.consume_keyword(Keyword::Not);
                    self.expect_keyword(Keyword::Null)?;
                    left = Expr::IsNull {
                        expr: Box::new(left),
                        negated,
                    };
                    continue;
                }
                let negated = if self.peek_keyword(Keyword::Not)
                    && matches!(
                        self.peek_ahead(1),
                        TokenKind::Keyword(Keyword::Between | Keyword::In | Keyword::Like)
                    ) {
                    self.advance();
                    true
                } else {
                    false
                };
                if self.consume_keyword(Keyword::Between) {
                    let low = self.parse_expr_prec(5)?;
                    self.expect_keyword(Keyword::And)?;
                    let high = self.parse_expr_prec(5)?;
                    left = Expr::Between {
                        expr: Box::new(left),
                        low: Box::new(low),
                        high: Box::new(high),
                        negated,
                    };
                    continue;
                }
                if self.consume_keyword(Keyword::In) {
                    self.expect(&TokenKind::LParen)?;
                    let mut list = Vec::new();
                    loop {
                        list.push(self.parse_expr()?);
                        if !self.consume(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    left = Expr::InList {
                        expr: Box::new(left),
                        list,
                        negated,
                    };
                    continue;
                }
                if self.consume_keyword(Keyword::Like) {
                    let pattern = self.parse_expr_prec(5)?;
                    left = Expr::Like {
                        expr: Box::new(left),
                        pattern: Box::new(pattern),
                        negated,
                    };
                    continue;
                }
                if negated {
                    return Err(self.unexpected("expected BETWEEN, IN, or LIKE after NOT"));
                }
            }
            // Binary operators.
            let Some(op) = self.peek_binary_op() else {
                break;
            };
            let prec = op.precedence();
            if prec < min_prec {
                break;
            }
            self.advance();
            let right = self.parse_expr_prec(prec + 1)?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn peek_binary_op(&self) -> Option<BinaryOp> {
        Some(match self.peek() {
            TokenKind::Keyword(Keyword::Or) => BinaryOp::Or,
            TokenKind::Keyword(Keyword::And) => BinaryOp::And,
            TokenKind::Eq => BinaryOp::Eq,
            TokenKind::NotEq => BinaryOp::NotEq,
            TokenKind::Lt => BinaryOp::Lt,
            TokenKind::LtEq => BinaryOp::LtEq,
            TokenKind::Gt => BinaryOp::Gt,
            TokenKind::GtEq => BinaryOp::GtEq,
            TokenKind::Plus => BinaryOp::Plus,
            TokenKind::Minus => BinaryOp::Minus,
            TokenKind::Star => BinaryOp::Mul,
            TokenKind::Slash => BinaryOp::Div,
            TokenKind::Percent => BinaryOp::Mod,
            TokenKind::Concat => BinaryOp::Concat,
            _ => return None,
        })
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.peek_keyword(Keyword::Not)
            && !matches!(
                self.peek_ahead(1),
                TokenKind::Keyword(Keyword::Between | Keyword::In | Keyword::Like)
            )
        {
            self.advance();
            let expr = self.parse_expr_prec(Self::POSTFIX_PREC)?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(expr),
            });
        }
        if self.consume(&TokenKind::Minus) {
            let expr = self.parse_unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(expr),
            });
        }
        if self.consume(&TokenKind::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::Number(n) => {
                self.advance();
                Ok(Expr::Literal(Literal::Number(n)))
            }
            TokenKind::String(s) => {
                self.advance();
                Ok(Expr::Literal(Literal::String(s)))
            }
            TokenKind::Keyword(Keyword::True) => {
                self.advance();
                Ok(Expr::Literal(Literal::Bool(true)))
            }
            TokenKind::Keyword(Keyword::False) => {
                self.advance();
                Ok(Expr::Literal(Literal::Bool(false)))
            }
            TokenKind::Keyword(Keyword::Null) => {
                self.advance();
                Ok(Expr::Literal(Literal::Null))
            }
            TokenKind::Keyword(Keyword::Interval) => {
                self.advance();
                self.parse_interval_literal()
            }
            TokenKind::Keyword(Keyword::Timestamp) => {
                self.advance();
                match self.advance() {
                    TokenKind::String(s) => Ok(Expr::Literal(Literal::Timestamp(s))),
                    _ => Err(self.unexpected("expected string after TIMESTAMP")),
                }
            }
            TokenKind::Keyword(Keyword::Case) => {
                self.advance();
                self.parse_case()
            }
            TokenKind::Keyword(Keyword::Cast) => {
                self.advance();
                self.expect(&TokenKind::LParen)?;
                let expr = self.parse_expr()?;
                self.expect_keyword(Keyword::As)?;
                let to = self.parse_data_type()?;
                self.expect(&TokenKind::RParen)?;
                Ok(Expr::Cast {
                    expr: Box::new(expr),
                    to,
                })
            }
            TokenKind::Keyword(Keyword::Exists) => {
                self.advance();
                self.expect(&TokenKind::LParen)?;
                let q = self.parse_query()?;
                self.expect(&TokenKind::RParen)?;
                Ok(Expr::Exists(Box::new(q)))
            }
            TokenKind::LParen => {
                self.advance();
                if self.peek_keyword(Keyword::Select) {
                    let q = self.parse_query()?;
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::Subquery(Box::new(q)))
                } else {
                    let e = self.parse_expr()?;
                    self.expect(&TokenKind::RParen)?;
                    Ok(e)
                }
            }
            TokenKind::Ident(name) => {
                self.advance();
                self.parse_ident_expr(name)
            }
            ref other => match Parser::soft_keyword(other) {
                Some(name) => {
                    self.advance();
                    self.parse_ident_expr(name)
                }
                None => Err(self.unexpected("expected expression")),
            },
        }
    }

    /// Continuation of a primary expression that started with an
    /// identifier (or a soft keyword acting as one): a function call, a
    /// qualified column, or a bare column.
    fn parse_ident_expr(&mut self, name: String) -> Result<Expr> {
        if *self.peek() == TokenKind::LParen {
            self.advance();
            let distinct = self.consume_keyword(Keyword::Distinct);
            let mut args = Vec::new();
            if *self.peek() != TokenKind::RParen {
                loop {
                    if self.consume(&TokenKind::Star) {
                        args.push(Expr::Wildcard);
                    } else {
                        args.push(self.parse_expr()?);
                    }
                    if !self.consume(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::Function {
                name,
                args,
                distinct,
            });
        }
        // Qualified column?
        if self.consume(&TokenKind::Dot) {
            let col = self.parse_identifier()?;
            return Ok(Expr::qcol(name, col));
        }
        Ok(Expr::col(name))
    }

    fn parse_interval_literal(&mut self) -> Result<Expr> {
        let value = match self.advance() {
            TokenKind::String(s) => s,
            TokenKind::Number(n) => n,
            _ => return Err(self.unexpected("expected interval magnitude")),
        };
        let unit = match self.advance() {
            TokenKind::Keyword(Keyword::Millisecond | Keyword::Milliseconds) => {
                IntervalUnit::Millisecond
            }
            TokenKind::Keyword(Keyword::Second | Keyword::Seconds) => IntervalUnit::Second,
            TokenKind::Keyword(Keyword::Minute | Keyword::Minutes) => IntervalUnit::Minute,
            TokenKind::Keyword(Keyword::Hour | Keyword::Hours) => IntervalUnit::Hour,
            _ => {
                return Err(
                    self.unexpected("expected interval unit (MILLISECOND/SECOND/MINUTE/HOUR)")
                )
            }
        };
        Ok(Expr::Literal(Literal::Interval { value, unit }))
    }

    fn parse_case(&mut self) -> Result<Expr> {
        let operand = if !self.peek_keyword(Keyword::When) {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        let mut branches = Vec::new();
        while self.consume_keyword(Keyword::When) {
            let when = self.parse_expr()?;
            self.expect_keyword(Keyword::Then)?;
            let then = self.parse_expr()?;
            branches.push((when, then));
        }
        if branches.is_empty() {
            return Err(Error::parse("CASE requires at least one WHEN branch"));
        }
        let else_expr = if self.consume_keyword(Keyword::Else) {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_keyword(Keyword::End)?;
        Ok(Expr::Case {
            operand,
            branches,
            else_expr,
        })
    }

    fn parse_data_type(&mut self) -> Result<DataType> {
        let name = match self.advance() {
            TokenKind::Ident(n) => n,
            TokenKind::Keyword(Keyword::Timestamp) => "TIMESTAMP".to_string(),
            TokenKind::Keyword(Keyword::Interval) => "INTERVAL".to_string(),
            other => {
                return Err(Error::parse(format!(
                    "expected type name in CAST, found {other}"
                )))
            }
        };
        DataType::from_sql_name(&name)
            .ok_or_else(|| Error::parse(format!("unknown type name '{name}' in CAST")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(sql: &str) -> Query {
        let q1 = parse_query(sql).unwrap_or_else(|e| panic!("parse failed for {sql}: {e}"));
        let printed = q1.to_string();
        let q2 =
            parse_query(&printed).unwrap_or_else(|e| panic!("reparse failed for {printed}: {e}"));
        assert_eq!(q1, q2, "round trip mismatch for {sql} -> {printed}");
        q1
    }

    #[test]
    fn simple_select() {
        let q = round_trip("SELECT price, item FROM Bid WHERE price > 3");
        let SetExpr::Select(s) = &q.body else {
            panic!()
        };
        assert_eq!(s.projection.len(), 2);
        assert!(s.selection.is_some());
    }

    #[test]
    fn select_star_and_qualified_star() {
        round_trip("SELECT * FROM Bid");
        let q = round_trip("SELECT B.* FROM Bid AS B");
        let SetExpr::Select(s) = &q.body else {
            panic!()
        };
        assert_eq!(s.projection[0], SelectItem::QualifiedWildcard("B".into()));
    }

    #[test]
    fn group_by_having_order_limit() {
        let q = round_trip(
            "SELECT item, SUM(price) AS total FROM Bid GROUP BY item \
             HAVING SUM(price) > 10 ORDER BY total DESC, item LIMIT 5",
        );
        assert_eq!(q.limit, Some(5));
        assert_eq!(q.order_by.len(), 2);
        assert!(q.order_by[0].desc);
        assert!(!q.order_by[1].desc);
    }

    #[test]
    fn tumble_tvf_named_args() {
        let q = round_trip(
            "SELECT * FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(bidtime), \
             dur => INTERVAL '10' MINUTE) AS TumbleBid",
        );
        let SetExpr::Select(s) = &q.body else {
            panic!()
        };
        let TableRef::TableFunction { call, alias } = &s.from[0] else {
            panic!("expected TVF")
        };
        assert_eq!(call.name, "Tumble");
        assert_eq!(call.args.len(), 3);
        assert_eq!(call.args[0].name.as_deref(), Some("data"));
        assert!(matches!(call.args[0].value, TvfArgValue::Table(_)));
        assert!(matches!(
            call.args[1].value,
            TvfArgValue::Descriptor(ref c) if c == "bidtime"
        ));
        assert_eq!(alias.as_deref(), Some("TumbleBid"));
    }

    #[test]
    fn tvf_table_arg_without_parens() {
        // Listing 7 uses `data => TABLE Bids`.
        let q = round_trip(
            "SELECT * FROM Hop(data => TABLE Bids, timecol => DESCRIPTOR(bidtime), \
             dur => INTERVAL '10' MINUTES, hopsize => INTERVAL '5' MINUTES)",
        );
        let SetExpr::Select(s) = &q.body else {
            panic!()
        };
        assert!(matches!(s.from[0], TableRef::TableFunction { .. }));
    }

    #[test]
    fn full_nexmark_q7() {
        // The paper's Listing 2, lightly normalized.
        let sql = "
            SELECT MaxBid.wstart, MaxBid.wend, Bid.bidtime, Bid.price, Bid.itemid
            FROM Bid,
              (SELECT MAX(TumbleBid.price) maxPrice,
                      TumbleBid.wstart wstart, TumbleBid.wend wend
               FROM Tumble(data => TABLE(Bid),
                           timecol => DESCRIPTOR(bidtime),
                           dur => INTERVAL '10' MINUTE) TumbleBid
               GROUP BY TumbleBid.wstart, TumbleBid.wend) MaxBid
            WHERE Bid.price = MaxBid.maxPrice AND
                  Bid.bidtime >= MaxBid.wend - INTERVAL '10' MINUTE AND
                  Bid.bidtime < MaxBid.wend;";
        let q = round_trip(sql);
        let SetExpr::Select(s) = &q.body else {
            panic!()
        };
        assert_eq!(s.from.len(), 2);
        assert!(matches!(&s.from[1], TableRef::Derived { alias, .. } if alias == "MaxBid"));
    }

    #[test]
    fn emit_clauses() {
        let q = round_trip("SELECT * FROM Bid EMIT STREAM");
        assert_eq!(
            q.emit,
            Some(Emit {
                stream: true,
                after_watermark: false,
                after_delay: None
            })
        );

        let q = round_trip("SELECT * FROM Bid EMIT AFTER WATERMARK");
        assert!(q.emit.as_ref().unwrap().after_watermark);
        assert!(!q.emit.as_ref().unwrap().stream);

        let q = round_trip("SELECT * FROM Bid EMIT STREAM AFTER WATERMARK");
        assert!(q.emit.as_ref().unwrap().after_watermark);
        assert!(q.emit.as_ref().unwrap().stream);

        let q = round_trip("SELECT * FROM Bid EMIT STREAM AFTER DELAY INTERVAL '6' MINUTES");
        assert!(q.emit.as_ref().unwrap().after_delay.is_some());

        let q = round_trip(
            "SELECT * FROM Bid EMIT AFTER DELAY INTERVAL '6' MINUTES AND AFTER WATERMARK",
        );
        let emit = q.emit.unwrap();
        assert!(emit.after_watermark);
        assert!(emit.after_delay.is_some());

        assert!(parse_query("SELECT * FROM Bid EMIT").is_err());
        assert!(parse_query("SELECT * FROM Bid EMIT AFTER").is_err());
    }

    #[test]
    fn joins() {
        let q = round_trip(
            "SELECT * FROM Auction A JOIN Bid B ON A.id = B.auction \
             LEFT JOIN Person P ON A.seller = P.id",
        );
        let SetExpr::Select(s) = &q.body else {
            panic!()
        };
        let TableRef::Join { kind, .. } = &s.from[0] else {
            panic!()
        };
        assert_eq!(*kind, JoinKind::Left);
        round_trip("SELECT * FROM A CROSS JOIN B");
        round_trip("SELECT * FROM A INNER JOIN B ON A.x = B.x");
    }

    #[test]
    fn as_of_system_time() {
        let q = round_trip("SELECT * FROM Rates AS OF SYSTEM TIME TIMESTAMP '9:30' R");
        let SetExpr::Select(s) = &q.body else {
            panic!()
        };
        let TableRef::Table { as_of, alias, .. } = &s.from[0] else {
            panic!()
        };
        assert!(as_of.is_some());
        assert_eq!(alias.as_deref(), Some("R"));
    }

    #[test]
    fn expression_precedence() {
        let q = round_trip("SELECT 1 + 2 * 3 FROM T");
        let SetExpr::Select(s) = &q.body else {
            panic!()
        };
        let SelectItem::Expr { expr, .. } = &s.projection[0] else {
            panic!()
        };
        // 1 + (2 * 3)
        assert_eq!(expr.to_string(), "(1 + (2 * 3))");

        let q = round_trip("SELECT a OR b AND c = d + e FROM T");
        let SetExpr::Select(s) = &q.body else {
            panic!()
        };
        let SelectItem::Expr { expr, .. } = &s.projection[0] else {
            panic!()
        };
        assert_eq!(expr.to_string(), "(a OR (b AND (c = (d + e))))");
    }

    #[test]
    fn postfix_predicates() {
        round_trip("SELECT * FROM T WHERE x IS NULL");
        round_trip("SELECT * FROM T WHERE x IS NOT NULL");
        round_trip("SELECT * FROM T WHERE x BETWEEN 1 AND 10 AND y = 2");
        round_trip("SELECT * FROM T WHERE x NOT BETWEEN 1 AND 10");
        round_trip("SELECT * FROM T WHERE x IN (1, 2, 3)");
        round_trip("SELECT * FROM T WHERE x NOT IN (1, 2)");
        round_trip("SELECT * FROM T WHERE name LIKE 'item%'");
        round_trip("SELECT * FROM T WHERE name NOT LIKE '%x_'");
        // NOT as logical operator applies after postfix binding.
        let q = round_trip("SELECT * FROM T WHERE NOT x IS NULL AND y = 1");
        let SetExpr::Select(s) = &q.body else {
            panic!()
        };
        assert_eq!(
            s.selection.as_ref().unwrap().to_string(),
            "((NOT ((x) IS NULL)) AND (y = 1))"
        );
    }

    #[test]
    fn case_cast_functions() {
        round_trip("SELECT CASE WHEN x > 0 THEN 'pos' ELSE 'neg' END FROM T");
        round_trip("SELECT CASE x WHEN 1 THEN 'a' WHEN 2 THEN 'b' END FROM T");
        round_trip("SELECT CAST(price AS DOUBLE) FROM T");
        round_trip("SELECT CAST(t AS TIMESTAMP) FROM T");
        round_trip("SELECT COUNT(*), COUNT(DISTINCT item), MAX(price) FROM T");
        assert!(parse_query("SELECT CASE END FROM T").is_err());
    }

    #[test]
    fn scalar_subquery_and_exists() {
        let q = round_trip("SELECT * FROM Bid B WHERE B.price = (SELECT MAX(price) FROM Bid)");
        let SetExpr::Select(s) = &q.body else {
            panic!()
        };
        assert!(s.selection.as_ref().unwrap().to_string().contains("SELECT"));
        round_trip("SELECT * FROM T WHERE EXISTS (SELECT 1 FROM U)");
    }

    #[test]
    fn union_all() {
        let q = round_trip("SELECT a FROM T UNION ALL SELECT b FROM U UNION ALL SELECT c FROM V");
        assert!(matches!(q.body, SetExpr::UnionAll(_, _)));
        assert!(parse_query("SELECT a FROM T UNION SELECT b FROM U").is_err());
    }

    #[test]
    fn interval_literals() {
        round_trip("SELECT INTERVAL '10' MINUTE FROM T");
        round_trip("SELECT INTERVAL '6' MINUTES FROM T");
        round_trip("SELECT INTERVAL '1' HOUR FROM T");
        round_trip("SELECT INTERVAL '500' MILLISECONDS FROM T");
        assert!(parse_query("SELECT INTERVAL '10' FORTNIGHT FROM T").is_err());
    }

    #[test]
    fn timestamp_literals() {
        let q = round_trip("SELECT * FROM T WHERE bidtime >= TIMESTAMP '8:07'");
        assert!(q.to_string().contains("TIMESTAMP '8:07'"));
    }

    #[test]
    fn select_without_from() {
        round_trip("SELECT 1, 2 + 3");
    }

    #[test]
    fn derived_table_requires_alias() {
        assert!(parse_query("SELECT * FROM (SELECT 1)").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_query("SELECT 1 FROM T extra garbage here").is_err());
        assert!(parse_query("SELECT 1; SELECT 2").is_err());
    }

    #[test]
    fn error_mentions_offset() {
        let err = parse_query("SELECT FROM").unwrap_err();
        assert!(err.to_string().contains("offset"), "{err}");
    }

    #[test]
    fn parse_errors_pin_line_and_column() {
        // `FROM` with no select list: the offending token is FROM at
        // byte 7 on line 1.
        let err = parse_query("SELECT FROM").unwrap_err().to_string();
        assert!(err.contains("line 1, column 8"), "{err}");
        assert!(err.contains("byte offset 7"), "{err}");
        assert!(err.contains("FROM"), "{err}");

        // Multi-line script: the error names the line the bad token is on.
        let err = parse_script("SELECT 1;\nSELECT 2;\nSELECT FROM x;")
            .unwrap_err()
            .to_string();
        assert!(err.contains("line 3, column 8"), "{err}");

        // Statement-level errors carry positions too.
        let err = parse_statement("CREATE SOURCE s (x INT)\n  WITH (path = )")
            .unwrap_err()
            .to_string();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn script_statements_carry_spans() {
        let script = "SELECT 1;  -- comment\n  SELECT 22 FROM Bid ;";
        let spanned = parse_script_spanned(script).unwrap();
        assert_eq!(spanned.len(), 2);
        assert_eq!(spanned[0].span.slice(script), "SELECT 1");
        assert_eq!(spanned[1].span.slice(script), "SELECT 22 FROM Bid");
        // Spans exclude the statement separator and surrounding trivia.
        assert_eq!(spanned[0].span, Span::new(0, 8));
    }

    #[test]
    fn unary_ops() {
        round_trip("SELECT -x, NOT y, -(x + 1) FROM T");
        let q = round_trip("SELECT 3 - -2 FROM T");
        assert!(q.to_string().contains("(3 - (-2))"), "{q}");
    }

    #[test]
    fn multiple_trailing_semicolons_accepted() {
        assert!(parse_query("SELECT 1;").is_ok());
        assert!(parse_query("SELECT 1;;").is_ok());
        assert!(parse_query("SELECT 1 ; -- done\n").is_ok());
        assert!(parse_query("SELECT 1; SELECT 2").is_err());
    }

    fn round_trip_stmt(sql: &str) -> Statement {
        let s1 = parse_statement(sql).unwrap_or_else(|e| panic!("parse failed for {sql}: {e}"));
        let printed = s1.to_string();
        let s2 = parse_statement(&printed)
            .unwrap_or_else(|e| panic!("reparse failed for {printed}: {e}"));
        assert_eq!(s1, s2, "round trip mismatch for {sql} -> {printed}");
        s1
    }

    #[test]
    fn create_source_with_schema_and_watermark() {
        let s = round_trip_stmt(
            "CREATE SOURCE Bid (bidtime TIMESTAMP, price INT, item STRING, \
             WATERMARK FOR bidtime) WITH (connector = 'file', path = '/tmp/b.csv', \
             format = 'csv', header = TRUE, lateness_ms = 500)",
        );
        let Statement::CreateSource(c) = s else {
            panic!("expected CreateSource")
        };
        assert!(!c.partitioned);
        assert_eq!(c.name, "Bid");
        assert_eq!(c.columns.len(), 3);
        assert_eq!(c.columns[1].data_type, DataType::Int);
        assert_eq!(c.watermark.as_deref(), Some("bidtime"));
        assert_eq!(c.options.len(), 5);
        assert_eq!(c.options[3].value, OptionValue::Bool(true));
        assert_eq!(c.options[4].value, OptionValue::Number("500".into()));
    }

    #[test]
    fn create_partitioned_source_without_schema() {
        let s = round_trip_stmt(
            "CREATE PARTITIONED SOURCE nex WITH (connector = 'nexmark', \
             seed = 7, events = 6000, partitions = 4)",
        );
        let Statement::CreateSource(c) = s else {
            panic!()
        };
        assert!(c.partitioned);
        assert!(c.columns.is_empty());
        assert!(c.watermark.is_none());
    }

    #[test]
    fn create_sink_stream_and_temporal_table() {
        let s = round_trip_stmt("CREATE SINK out WITH (connector = 'changelog')");
        assert!(matches!(s, Statement::CreateSink(_)));

        let s = round_trip_stmt(
            "CREATE STREAM Person (id INT, name STRING, dateTime TIMESTAMP, \
             WATERMARK FOR dateTime)",
        );
        let Statement::CreateStream(c) = s else {
            panic!()
        };
        assert_eq!(c.columns.len(), 3);
        assert_eq!(c.watermark.as_deref(), Some("dateTime"));

        let s = round_trip_stmt(
            "CREATE TEMPORAL TABLE Rates (currency STRING, rate INT) WITH (key = 'currency')",
        );
        assert!(matches!(s, Statement::CreateTemporalTable(_)));
        round_trip_stmt("CREATE TEMPORAL TABLE Flat (x INT)");
    }

    #[test]
    fn insert_into_select_emit() {
        let s = round_trip_stmt(
            "INSERT INTO out SELECT price FROM Bid WHERE price > 2 EMIT STREAM AFTER WATERMARK",
        );
        let Statement::Insert { sink, query } = s else {
            panic!()
        };
        assert_eq!(sink, "out");
        assert!(query.emit.is_some());
    }

    #[test]
    fn explain_and_drop() {
        let s = round_trip_stmt("EXPLAIN SELECT price FROM Bid");
        assert!(matches!(s, Statement::Explain(_)));
        let s = round_trip_stmt("DROP SOURCE Bid");
        assert!(matches!(
            s,
            Statement::Drop {
                kind: DropKind::Source,
                if_exists: false,
                ..
            }
        ));
        let s = round_trip_stmt("DROP SINK IF EXISTS out");
        assert!(matches!(
            s,
            Statement::Drop {
                kind: DropKind::Sink,
                if_exists: true,
                ..
            }
        ));
        round_trip_stmt("DROP STREAM S");
        round_trip_stmt("DROP TABLE T");
        assert!(parse_statement("DROP DATABASE x").is_err());
    }

    #[test]
    fn set_statement() {
        let s = round_trip_stmt("SET workers = 4");
        let Statement::Set { name, value } = s else {
            panic!("expected Set")
        };
        assert_eq!(name, "workers");
        assert_eq!(value, OptionValue::Number("4".into()));

        round_trip_stmt("SET partition_col = 0");
        let s = round_trip_stmt("set MAX_BATCH = 1024");
        assert!(matches!(s, Statement::Set { .. }), "case-insensitive");

        assert!(parse_statement("SET workers").is_err(), "missing =");
        assert!(parse_statement("SET workers = ").is_err(), "missing value");
        assert!(parse_statement("SET = 4").is_err(), "missing knob name");
    }

    #[test]
    fn checkpoint_and_restore_pipeline() {
        let s = round_trip_stmt("CHECKPOINT PIPELINE out TO '/tmp/ckpt'");
        let Statement::CheckpointPipeline { pipeline, path } = s else {
            panic!("expected CheckpointPipeline")
        };
        assert_eq!(pipeline, "out");
        assert_eq!(path, "/tmp/ckpt");

        let s = round_trip_stmt("RESTORE PIPELINE out FROM '/tmp/ckpt'");
        let Statement::RestorePipeline { pipeline, path } = s else {
            panic!("expected RestorePipeline")
        };
        assert_eq!(pipeline, "out");
        assert_eq!(path, "/tmp/ckpt");

        // Paths with embedded quotes round-trip through the escaping.
        let s = round_trip_stmt("CHECKPOINT PIPELINE p TO '/od''d/dir'");
        let Statement::CheckpointPipeline { path, .. } = s else {
            panic!()
        };
        assert_eq!(path, "/od'd/dir");

        assert!(parse_statement("CHECKPOINT out TO '/x'").is_err());
        assert!(parse_statement("CHECKPOINT PIPELINE out TO 17").is_err());
        assert!(parse_statement("RESTORE PIPELINE out TO '/x'").is_err());
    }

    #[test]
    fn new_statement_keywords_stay_usable_as_identifiers() {
        // SET / CHECKPOINT / RESTORE / PIPELINE / TO are soft: queries
        // written before the statements existed keep parsing.
        round_trip("SELECT set, checkpoint, restore FROM pipeline");
        round_trip("SELECT t.to FROM T AS t");
        round_trip_stmt("DROP STREAM pipeline");
        // And so are SHOW / PIPELINES / ANALYZE.
        round_trip("SELECT show, analyze FROM pipelines");
        round_trip_stmt("DROP STREAM show");
    }

    #[test]
    fn show_pipelines_parses_and_round_trips() {
        let s = round_trip_stmt("SHOW PIPELINES");
        assert_eq!(s, Statement::ShowPipelines);
        let s = round_trip_stmt("show pipelines;");
        assert_eq!(s, Statement::ShowPipelines);
        let err = parse_statement("SHOW TABLES").unwrap_err().to_string();
        assert!(err.contains("PIPELINES"), "{err}");
    }

    #[test]
    fn explain_analyze_parses_and_round_trips() {
        let s = round_trip_stmt("EXPLAIN ANALYZE SELECT price FROM Bid WHERE price > 2");
        let Statement::ExplainAnalyze(q) = s else {
            panic!("expected ExplainAnalyze");
        };
        assert!(q.to_string().contains("WHERE"));
        // Plain EXPLAIN still parses as before.
        let s = round_trip_stmt("EXPLAIN SELECT price FROM Bid");
        assert!(matches!(s, Statement::Explain(_)));
    }

    #[test]
    fn explain_lint_parses_and_round_trips() {
        // Statement form.
        let s = round_trip_stmt("EXPLAIN LINT INSERT INTO out SELECT price FROM Bid EMIT STREAM");
        let Statement::ExplainLint(LintTarget::Statement(inner)) = s else {
            panic!("expected ExplainLint(Statement)");
        };
        assert!(matches!(*inner, Statement::Insert { .. }));

        // Script form: a quoted script (with '' escapes round-tripping).
        let s = round_trip_stmt("EXPLAIN LINT 'CREATE SINK out WITH (connector = ''file'')'");
        let Statement::ExplainLint(LintTarget::Script(script)) = s else {
            panic!("expected ExplainLint(Script)");
        };
        assert!(script.contains("connector = 'file'"), "{script}");

        // LINT stays usable as an identifier.
        round_trip("SELECT lint FROM T");
        round_trip_stmt("DROP STREAM lint");
    }

    #[test]
    fn bare_query_is_a_statement() {
        let s = round_trip_stmt("SELECT 1");
        assert!(matches!(s, Statement::Query(_)));
    }

    #[test]
    fn script_parses_multiple_statements() {
        let script = "
            -- declare the topology
            CREATE SOURCE Bid (bidtime TIMESTAMP, price INT, WATERMARK FOR bidtime)
              WITH (connector = 'channel');
            CREATE SINK out WITH (connector = 'changelog');;

            INSERT INTO out SELECT price FROM Bid EMIT STREAM;
        ";
        let statements = parse_script(script).unwrap();
        assert_eq!(statements.len(), 3);
        assert!(matches!(statements[0], Statement::CreateSource(_)));
        assert!(matches!(statements[2], Statement::Insert { .. }));

        assert!(parse_script("").unwrap().is_empty());
        assert!(parse_script(" ;; -- nothing\n").unwrap().is_empty());
        assert!(parse_script("SELECT 1 SELECT 2").is_err());
    }

    #[test]
    fn statement_parse_errors_are_descriptive() {
        let err = parse_statement("CREATE VIEW v").unwrap_err().to_string();
        assert!(err.contains("TEMPORAL TABLE"), "{err}");
        let err = parse_statement("CREATE SOURCE s (x INT) WITH (path = )")
            .unwrap_err()
            .to_string();
        assert!(err.contains("option 'path'"), "{err}");
        let err = parse_statement(
            "CREATE SOURCE s (x INT, WATERMARK FOR a, WATERMARK FOR b) WITH (connector = 'c')",
        )
        .unwrap_err()
        .to_string();
        assert!(err.contains("duplicate WATERMARK"), "{err}");
        assert!(parse_statement("CREATE TEMPORAL TABLE t (x INT, WATERMARK FOR x)").is_err());
        assert!(parse_statement("INSERT INTO").is_err());
        assert!(parse_statement("CREATE STREAM s ()").is_err());
    }

    #[test]
    fn statement_keywords_stay_usable_as_identifiers() {
        // SOURCE / SINK / TEMPORAL / PARTITIONED / IF / EXPLAIN are
        // statement-layer words, not reserved words of the query
        // dialect: columns, tables, and aliases with those names keep
        // parsing (unlike CREATE / WITH / INSERT, which standard SQL
        // reserves too).
        let q = round_trip("SELECT source, B.sink, temporal AS x FROM Bid B WHERE if > 1");
        let SetExpr::Select(s) = &q.body else {
            panic!()
        };
        assert_eq!(s.projection.len(), 3);
        round_trip("SELECT * FROM source");
        round_trip("SELECT * FROM Bid partitioned");
        round_trip("SELECT explain(x) FROM T");
        let q = round_trip("SELECT source.* FROM Bid source");
        let SetExpr::Select(s) = &q.body else {
            panic!()
        };
        assert!(matches!(
            &s.projection[0],
            SelectItem::QualifiedWildcard(a) if a == "source"
        ));
        // DDL positions still accept them as object names.
        round_trip_stmt("CREATE SINK sink WITH (connector = 'changelog')");
        round_trip_stmt("DROP SOURCE source");
    }

    #[test]
    fn negative_option_numbers() {
        let s = round_trip_stmt("CREATE SINK s WITH (offset = -5)");
        let Statement::CreateSink(c) = s else {
            panic!()
        };
        assert_eq!(c.options[0].value, OptionValue::Number("-5".into()));
    }

    #[test]
    fn keywords_work_as_option_keys() {
        // `stream` (the net sink's required option) is a reserved word;
        // WITH keys are positionally unambiguous so keywords are fine.
        let s = round_trip_stmt("CREATE SINK s WITH (stream = 'Mid', table = 'x', if = TRUE)");
        let Statement::CreateSink(c) = s else {
            panic!()
        };
        assert_eq!(c.options[0].key, "STREAM");
        assert_eq!(c.options[0].value, OptionValue::String("Mid".into()));
    }
}
