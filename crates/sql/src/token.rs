//! Tokens and keywords for the SQL lexer.

use std::fmt;

/// A half-open byte range `[start, end)` into the original SQL text.
///
/// Spans flow from the lexer through the parser into diagnostics: every
/// token records the bytes it was lexed from, statements record the union
/// of their tokens, and lint findings point back into the script the user
/// actually wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// A span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// The smallest span containing both `self` and `other`.
    pub fn cover(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// The source text this span points at (clamped to `src`).
    pub fn slice(self, src: &str) -> &str {
        let start = self.start.min(src.len());
        let end = self.end.clamp(start, src.len());
        &src[start..end]
    }

    /// 1-based `(line, column)` of the span start within `src`.
    ///
    /// Columns count bytes since the last newline, which matches columns
    /// exactly for the ASCII SQL this dialect accepts.
    pub fn line_col(self, src: &str) -> (usize, usize) {
        line_col_at(src, self.start)
    }
}

/// 1-based `(line, column)` of byte `offset` within `src`.
pub fn line_col_at(src: &str, offset: usize) -> (usize, usize) {
    let upto = &src.as_bytes()[..offset.min(src.len())];
    let line = 1 + upto.iter().filter(|&&b| b == b'\n').count();
    let col = 1 + upto
        .iter()
        .rposition(|&b| b == b'\n')
        .map_or(upto.len(), |nl| upto.len() - nl - 1);
    (line, col)
}

/// A lexical token with the byte span it was lexed from (for error
/// messages and lint diagnostics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Byte range of the token in the original SQL text.
    pub span: Span,
}

impl Token {
    /// Byte offset of the first character in the original SQL text.
    pub fn offset(&self) -> usize {
        self.span.start
    }
}

/// The kinds of tokens the lexer produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// A reserved word, uppercased.
    Keyword(Keyword),
    /// An unquoted identifier (case-preserved) or a `"quoted"` identifier.
    Ident(String),
    /// A numeric literal, verbatim.
    Number(String),
    /// A `'string'` literal with quote escapes resolved.
    String(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `=>` (named-argument arrow in TVF calls)
    Arrow,
    /// `||` (string concatenation)
    Concat,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "{k}"),
            TokenKind::Ident(s) => write!(f, "identifier '{s}'"),
            TokenKind::Number(s) => write!(f, "number {s}"),
            TokenKind::String(s) => write!(f, "string '{s}'"),
            TokenKind::LParen => f.write_str("("),
            TokenKind::RParen => f.write_str(")"),
            TokenKind::Comma => f.write_str(","),
            TokenKind::Dot => f.write_str("."),
            TokenKind::Semicolon => f.write_str(";"),
            TokenKind::Plus => f.write_str("+"),
            TokenKind::Minus => f.write_str("-"),
            TokenKind::Star => f.write_str("*"),
            TokenKind::Slash => f.write_str("/"),
            TokenKind::Percent => f.write_str("%"),
            TokenKind::Eq => f.write_str("="),
            TokenKind::NotEq => f.write_str("<>"),
            TokenKind::Lt => f.write_str("<"),
            TokenKind::LtEq => f.write_str("<="),
            TokenKind::Gt => f.write_str(">"),
            TokenKind::GtEq => f.write_str(">="),
            TokenKind::Arrow => f.write_str("=>"),
            TokenKind::Concat => f.write_str("||"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

macro_rules! keywords {
    ($($variant:ident => $text:literal),* $(,)?) => {
        /// Reserved words recognized by the lexer.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[allow(missing_docs)]
        pub enum Keyword {
            $($variant),*
        }

        impl Keyword {
            /// Look up a keyword from an identifier, case-insensitively.
            pub fn lookup(word: &str) -> Option<Keyword> {
                let upper = word.to_ascii_uppercase();
                match upper.as_str() {
                    $($text => Some(Keyword::$variant),)*
                    _ => None,
                }
            }

            /// The canonical (uppercase) spelling.
            pub fn as_str(self) -> &'static str {
                match self {
                    $(Keyword::$variant => $text,)*
                }
            }
        }

        impl fmt::Display for Keyword {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.as_str())
            }
        }
    };
}

keywords! {
    After => "AFTER",
    All => "ALL",
    Analyze => "ANALYZE",
    And => "AND",
    As => "AS",
    Asc => "ASC",
    Between => "BETWEEN",
    By => "BY",
    Case => "CASE",
    Cast => "CAST",
    Checkpoint => "CHECKPOINT",
    Create => "CREATE",
    Cross => "CROSS",
    Delay => "DELAY",
    Drop => "DROP",
    Desc => "DESC",
    Descriptor => "DESCRIPTOR",
    Distinct => "DISTINCT",
    Else => "ELSE",
    Emit => "EMIT",
    End => "END",
    Exists => "EXISTS",
    Explain => "EXPLAIN",
    False => "FALSE",
    For => "FOR",
    From => "FROM",
    Group => "GROUP",
    Having => "HAVING",
    Hour => "HOUR",
    Hours => "HOURS",
    If => "IF",
    In => "IN",
    Inner => "INNER",
    Insert => "INSERT",
    Interval => "INTERVAL",
    Into => "INTO",
    Is => "IS",
    Join => "JOIN",
    Left => "LEFT",
    Like => "LIKE",
    Limit => "LIMIT",
    Lint => "LINT",
    Millisecond => "MILLISECOND",
    Milliseconds => "MILLISECONDS",
    Minute => "MINUTE",
    Minutes => "MINUTES",
    Not => "NOT",
    Null => "NULL",
    Of => "OF",
    On => "ON",
    Or => "OR",
    Order => "ORDER",
    Outer => "OUTER",
    Partitioned => "PARTITIONED",
    Pipeline => "PIPELINE",
    Pipelines => "PIPELINES",
    Restore => "RESTORE",
    Second => "SECOND",
    Seconds => "SECONDS",
    Select => "SELECT",
    Set => "SET",
    Show => "SHOW",
    Sink => "SINK",
    Source => "SOURCE",
    Stream => "STREAM",
    System => "SYSTEM",
    Table => "TABLE",
    Temporal => "TEMPORAL",
    Then => "THEN",
    Time => "TIME",
    Timestamp => "TIMESTAMP",
    To => "TO",
    Trace => "TRACE",
    True => "TRUE",
    Union => "UNION",
    Watermark => "WATERMARK",
    When => "WHEN",
    Where => "WHERE",
    With => "WITH",
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_is_case_insensitive() {
        assert_eq!(Keyword::lookup("select"), Some(Keyword::Select));
        assert_eq!(Keyword::lookup("SELECT"), Some(Keyword::Select));
        assert_eq!(Keyword::lookup("SeLeCt"), Some(Keyword::Select));
        assert_eq!(Keyword::lookup("bidtime"), None);
    }

    #[test]
    fn keyword_round_trip() {
        for kw in [
            Keyword::Emit,
            Keyword::Stream,
            Keyword::Watermark,
            Keyword::Descriptor,
            Keyword::Interval,
        ] {
            assert_eq!(Keyword::lookup(kw.as_str()), Some(kw));
        }
    }

    #[test]
    fn token_display() {
        assert_eq!(TokenKind::Arrow.to_string(), "=>");
        assert_eq!(TokenKind::Keyword(Keyword::Select).to_string(), "SELECT");
        assert_eq!(
            TokenKind::Ident("Bid".into()).to_string(),
            "identifier 'Bid'"
        );
    }
}
