//! A compact, self-describing binary codec for state checkpoints.
//!
//! Checkpoints must round-trip exactly and be stable across process
//! restarts, so the codec is hand-written rather than relying on an
//! in-memory representation. Integers are fixed-width little-endian;
//! variable-length data is length-prefixed.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use onesql_time::Watermark;
use onesql_tvr::{Change, TimedChange};
use onesql_types::{Duration, Error, Result, Row, Ts, Value};

// CRC-32 (IEEE 802.3, the zlib polynomial), table generated at compile
// time. Durable checkpoint files protect their payload with it, the same
// way the network frames in `onesql-connect` protect theirs.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes`, used to detect bit-flips in persisted
/// checkpoint files before any decoding is attempted.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Types that can be encoded into / decoded from checkpoint bytes.
pub trait Codec: Sized {
    /// Append the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);

    /// Decode a value from the front of `input`, consuming its bytes.
    fn decode(input: &mut Decoder<'_>) -> Result<Self>;

    /// Encode into a fresh buffer.
    fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.freeze()
    }

    /// Decode from a complete buffer, requiring all bytes be consumed.
    fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut d = Decoder::new(bytes);
        let v = Self::decode(&mut d)?;
        if !d.is_empty() {
            return Err(Error::exec(format!(
                "checkpoint decode left {} trailing bytes",
                d.remaining()
            )));
        }
        Ok(v)
    }
}

/// A cursor over checkpoint bytes with bounds-checked reads.
pub struct Decoder<'a> {
    input: &'a [u8],
}

impl<'a> Decoder<'a> {
    /// Start decoding at the beginning of `input`.
    pub fn new(input: &'a [u8]) -> Decoder<'a> {
        Decoder { input }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.input.len()
    }

    /// True when all bytes are consumed.
    pub fn is_empty(&self) -> bool {
        self.input.is_empty()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.input.len() < n {
            return Err(Error::exec(format!(
                "checkpoint truncated: needed {n} bytes, have {}",
                self.input.len()
            )));
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }

    fn read_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn read_i64(&mut self) -> Result<i64> {
        let mut b = self.take(8)?;
        Ok(b.get_i64_le())
    }

    fn read_u64(&mut self) -> Result<u64> {
        let mut b = self.take(8)?;
        Ok(b.get_u64_le())
    }

    fn read_f64(&mut self) -> Result<f64> {
        let mut b = self.take(8)?;
        Ok(b.get_f64_le())
    }

    fn read_len(&mut self) -> Result<usize> {
        let n = self.read_u64()?;
        usize::try_from(n).map_err(|_| Error::exec("checkpoint length overflows usize"))
    }
}

impl Codec for i64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_i64_le(*self);
    }
    fn decode(input: &mut Decoder<'_>) -> Result<Self> {
        input.read_i64()
    }
}

impl Codec for u64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(*self);
    }
    fn decode(input: &mut Decoder<'_>) -> Result<Self> {
        input.read_u64()
    }
}

impl Codec for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(u8::from(*self));
    }
    fn decode(input: &mut Decoder<'_>) -> Result<Self> {
        match input.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(Error::exec(format!("invalid bool byte {b} in checkpoint"))),
        }
    }
}

impl Codec for Ts {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_i64_le(self.millis());
    }
    fn decode(input: &mut Decoder<'_>) -> Result<Self> {
        Ok(Ts(input.read_i64()?))
    }
}

impl Codec for Duration {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_i64_le(self.millis());
    }
    fn decode(input: &mut Decoder<'_>) -> Result<Self> {
        Ok(Duration(input.read_i64()?))
    }
}

impl Codec for String {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.len() as u64);
        buf.put_slice(self.as_bytes());
    }
    fn decode(input: &mut Decoder<'_>) -> Result<Self> {
        let len = input.read_len()?;
        let bytes = input.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| Error::exec("invalid UTF-8 in checkpoint string"))
    }
}

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_TS: u8 = 5;
const TAG_INTERVAL: u8 = 6;

impl Codec for Value {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Value::Null => buf.put_u8(TAG_NULL),
            Value::Bool(b) => {
                buf.put_u8(TAG_BOOL);
                b.encode(buf);
            }
            Value::Int(i) => {
                buf.put_u8(TAG_INT);
                i.encode(buf);
            }
            Value::Float(f) => {
                buf.put_u8(TAG_FLOAT);
                buf.put_f64_le(*f);
            }
            Value::Str(s) => {
                buf.put_u8(TAG_STR);
                buf.put_u64_le(s.len() as u64);
                buf.put_slice(s.as_bytes());
            }
            Value::Ts(t) => {
                buf.put_u8(TAG_TS);
                t.encode(buf);
            }
            Value::Interval(d) => {
                buf.put_u8(TAG_INTERVAL);
                d.encode(buf);
            }
        }
    }

    fn decode(input: &mut Decoder<'_>) -> Result<Self> {
        Ok(match input.read_u8()? {
            TAG_NULL => Value::Null,
            TAG_BOOL => Value::Bool(bool::decode(input)?),
            TAG_INT => Value::Int(input.read_i64()?),
            TAG_FLOAT => Value::Float(input.read_f64()?),
            TAG_STR => {
                let len = input.read_len()?;
                let bytes = input.take(len)?;
                let s = std::str::from_utf8(bytes)
                    .map_err(|_| Error::exec("invalid UTF-8 in checkpoint string"))?;
                Value::str(s)
            }
            TAG_TS => Value::Ts(Ts::decode(input)?),
            TAG_INTERVAL => Value::Interval(Duration::decode(input)?),
            tag => {
                return Err(Error::exec(format!(
                    "unknown value tag {tag} in checkpoint"
                )))
            }
        })
    }
}

impl Codec for Row {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.arity() as u64);
        for v in self.values() {
            v.encode(buf);
        }
    }
    fn decode(input: &mut Decoder<'_>) -> Result<Self> {
        let n = input.read_len()?;
        let mut values = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            values.push(Value::decode(input)?);
        }
        Ok(Row::new(values))
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.len() as u64);
        for v in self {
            v.encode(buf);
        }
    }
    fn decode(input: &mut Decoder<'_>) -> Result<Self> {
        let n = input.read_len()?;
        let mut out = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            out.push(T::decode(input)?);
        }
        Ok(out)
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
    fn decode(input: &mut Decoder<'_>) -> Result<Self> {
        match input.read_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(input)?)),
            b => Err(Error::exec(format!("invalid Option tag {b} in checkpoint"))),
        }
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(input: &mut Decoder<'_>) -> Result<Self> {
        Ok((A::decode(input)?, B::decode(input)?))
    }
}

impl<A: Codec, B: Codec, C: Codec> Codec for (A, B, C) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
    fn decode(input: &mut Decoder<'_>) -> Result<Self> {
        Ok((A::decode(input)?, B::decode(input)?, C::decode(input)?))
    }
}

impl<A: Codec, B: Codec, C: Codec, D: Codec> Codec for (A, B, C, D) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
        self.3.encode(buf);
    }
    fn decode(input: &mut Decoder<'_>) -> Result<Self> {
        Ok((
            A::decode(input)?,
            B::decode(input)?,
            C::decode(input)?,
            D::decode(input)?,
        ))
    }
}

impl Codec for Bytes {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.len() as u64);
        buf.put_slice(self);
    }
    fn decode(input: &mut Decoder<'_>) -> Result<Self> {
        let len = input.read_len()?;
        Ok(Bytes::copy_from_slice(input.take(len)?))
    }
}

impl Codec for u8 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self);
    }
    fn decode(input: &mut Decoder<'_>) -> Result<Self> {
        input.read_u8()
    }
}

impl Codec for Watermark {
    fn encode(&self, buf: &mut BytesMut) {
        self.ts().encode(buf);
    }
    fn decode(input: &mut Decoder<'_>) -> Result<Self> {
        Ok(Watermark(Ts::decode(input)?))
    }
}

impl Codec for Change {
    fn encode(&self, buf: &mut BytesMut) {
        self.diff.encode(buf);
        self.row.encode(buf);
    }
    fn decode(input: &mut Decoder<'_>) -> Result<Self> {
        let diff = i64::decode(input)?;
        let row = Row::decode(input)?;
        if diff == 0 {
            return Err(Error::exec(
                "zero-diff change in checkpoint (consolidated streams never hold one)",
            ));
        }
        Ok(Change { row, diff })
    }
}

impl Codec for TimedChange {
    fn encode(&self, buf: &mut BytesMut) {
        self.ptime.encode(buf);
        self.change.encode(buf);
    }
    fn decode(input: &mut Decoder<'_>) -> Result<Self> {
        Ok(TimedChange {
            ptime: Ts::decode(input)?,
            change: Change::decode(input)?,
        })
    }
}

impl Codec for crate::keyed::Checkpoint {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
    }
    fn decode(input: &mut Decoder<'_>) -> Result<Self> {
        Ok(crate::keyed::Checkpoint(Bytes::decode(input)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onesql_types::row;

    fn round_trip<T: Codec + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        let back = T::from_bytes(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn scalar_round_trips() {
        round_trip(0i64);
        round_trip(i64::MIN);
        round_trip(u64::MAX);
        round_trip(true);
        round_trip(false);
        round_trip(Ts::hm(8, 7));
        round_trip(Duration::from_minutes(10));
        round_trip(String::from("héllo ✓"));
        round_trip(String::new());
    }

    #[test]
    fn value_round_trips() {
        round_trip(Value::Null);
        round_trip(Value::Bool(true));
        round_trip(Value::Int(-42));
        round_trip(Value::Float(2.5));
        round_trip(Value::Float(f64::NEG_INFINITY));
        round_trip(Value::str("auction item"));
        round_trip(Value::Ts(Ts::hm(8, 13)));
        round_trip(Value::Interval(Duration::from_minutes(6)));
    }

    #[test]
    fn nan_round_trips_bitwise() {
        let v = Value::Float(f64::NAN);
        let back = Value::from_bytes(&v.to_bytes()).unwrap();
        match back {
            Value::Float(f) => assert!(f.is_nan()),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn row_and_containers_round_trip() {
        round_trip(row!(1i64, "x", Ts::hm(8, 0)));
        round_trip(Row::empty());
        round_trip(vec![row!(1i64), row!(2i64)]);
        round_trip(Option::<Row>::None);
        round_trip(Some(row!(3i64)));
        round_trip((Ts::hm(1, 0), row!(1i64)));
        round_trip((1i64, 2i64, String::from("three")));
    }

    #[test]
    fn truncation_detected() {
        let bytes = row!(1i64, 2i64).to_bytes();
        assert!(Row::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut bytes = 5i64.to_bytes().to_vec();
        bytes.push(0xFF);
        assert!(i64::from_bytes(&bytes).is_err());
    }

    #[test]
    fn unknown_tag_detected() {
        assert!(Value::from_bytes(&[99]).is_err());
        assert!(bool::from_bytes(&[7]).is_err());
    }

    #[test]
    fn stream_types_round_trip() {
        round_trip(Watermark(Ts::hm(8, 13)));
        round_trip(Watermark::MIN);
        round_trip(Watermark::MAX);
        round_trip(onesql_tvr::Change::insert(row!(1i64, "x")));
        round_trip(onesql_tvr::Change::retract(row!(2i64)));
        round_trip(TimedChange {
            ptime: Ts::hm(8, 7),
            change: onesql_tvr::Change::insert(row!(3i64)),
        });
        round_trip(crate::keyed::Checkpoint(Bytes::copy_from_slice(b"state")));
    }

    #[test]
    fn zero_diff_change_rejected() {
        let mut buf = BytesMut::new();
        0i64.encode(&mut buf);
        row!(1i64).encode(&mut buf);
        assert!(Change::from_bytes(&buf.freeze()).is_err());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // A single flipped bit changes the checksum.
        assert_ne!(crc32(b"checkpoint"), crc32(b"cheakpoint"));
    }
}
