//! Quickstart: one SQL dialect over a stream, three materializations.
//!
//! Replays the paper's §4 bid timeline through a windowed aggregation and
//! shows the same query rendered three ways: as an instantaneously updated
//! table, as a changelog stream (`EMIT STREAM`), and gated on completeness
//! (`EMIT AFTER WATERMARK`).
//!
//! Run with: `cargo run --example quickstart`

use onesql_core::{Engine, RunningQuery, StreamBuilder};
use onesql_nexmark::paper::{paper_timeline, PaperEvent};
use onesql_types::{DataType, Ts};

fn engine() -> Engine {
    let mut engine = Engine::new();
    engine.register_stream(
        "Bid",
        StreamBuilder::new()
            .event_time_column("bidtime")
            .column("price", DataType::Int)
            .column("item", DataType::String),
    );
    engine
}

fn feed_paper_timeline(q: &mut RunningQuery) {
    for event in paper_timeline() {
        match event {
            PaperEvent::Insert { ptime, row } => q.insert("Bid", ptime, row).unwrap(),
            PaperEvent::Watermark { ptime, wm } => q.watermark("Bid", ptime, wm).unwrap(),
        }
    }
}

fn main() {
    let engine = engine();
    let sql = "SELECT MAX(wstart), wend, SUM(price) AS total
               FROM Tumble(data => TABLE(Bid),
                           timecol => DESCRIPTOR(bidtime),
                           dur => INTERVAL '10' MINUTE)
               GROUP BY wend";

    println!("== Plan ==\n{}", engine.explain(sql).unwrap());

    // 1. Table view: the relation as of 8:13 (partial) and 8:21 (full).
    let mut q = engine.execute(sql).unwrap();
    feed_paper_timeline(&mut q);
    println!("== Table view at 8:13 (partial sums) ==");
    print!("{}", q.table_string_at(Ts::hm(8, 13), None).unwrap());
    println!("\n== Table view at 8:21 ==");
    print!("{}", q.table_string_at(Ts::hm(8, 21), None).unwrap());

    // 2. Stream view: the changelog with undo/ptime/ver metadata.
    println!("\n== EMIT STREAM (changelog with undo/ptime/ver) ==");
    for row in q.stream_rows().unwrap() {
        println!(
            "  {}  ver {}  {}{}",
            row.ptime,
            row.ver,
            if row.undo { "undo " } else { "     " },
            row.row
        );
    }

    // 3. Completeness-gated view: only watermark-final rows.
    let mut gated = engine
        .execute(&format!("{sql} EMIT AFTER WATERMARK"))
        .unwrap();
    feed_paper_timeline(&mut gated);
    println!("\n== EMIT AFTER WATERMARK at 8:21 (only final windows) ==");
    print!("{}", gated.table_string_at(Ts::hm(8, 21), None).unwrap());

    println!(
        "\noutput watermark: {}, operator state: {} keys",
        gated.output_watermark().ts(),
        gated.state_metrics().keys
    );
}
