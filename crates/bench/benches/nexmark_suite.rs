//! B11 — full-stack NEXMark suite throughput.
//!
//! Every suite query (Q0–Q8) end to end through the SQL front door:
//! `Session::execute_script` assembles `SET` knobs, a partitioned
//! NEXMark source, a transactional CSV sink, and the `INSERT` — the
//! exact script shape the consistency checker runs under its nemesis
//! (`crates/checker`), minus the faults. This is the number the paper's
//! "one SQL for streams and tables" claim cashes out to: whole-pipeline
//! events/sec per query, parsing and planning included. Results are
//! recorded in `BENCH_nexmark.json`.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use onesql_connect::session;
use onesql_nexmark::queries::{self, FullStackSpec, ScriptConfig};

const N: u64 = 20_000;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("onesql_bench_nexmark_suite")
        .join(format!("{}-{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("out.csv")
}

/// One full-stack run: script in, committed CSV out. Returns events
/// ingested so the caller can assert the stream actually drained.
fn run_full_stack(spec: &FullStackSpec, sink: &Path) -> u64 {
    let config = ScriptConfig {
        workers: if spec.shardable { 2 } else { 1 },
        events: N,
        ..ScriptConfig::default()
    };
    let script = queries::full_stack_script(spec.sql, sink, &config);
    let mut s = session();
    let mut pipeline = s.execute_script(&script).unwrap().into_pipeline().unwrap();
    pipeline.run().unwrap();
    pipeline.events_in()
}

/// Best-of-`rounds` wall clock: minimum is the noise-robust statistic
/// on a shared host.
fn min_time(rounds: usize, mut f: impl FnMut() -> u64) -> Duration {
    (0..rounds)
        .map(|_| {
            let start = Instant::now();
            assert_eq!(f(), N);
            start.elapsed()
        })
        .min()
        .unwrap()
}

fn bench_nexmark_suite(c: &mut Criterion) {
    let mut group = c.benchmark_group("nexmark_suite");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N));
    for spec in queries::full_stack() {
        let sink = scratch(spec.name);
        group.bench_function(spec.name, |b| {
            b.iter(|| assert_eq!(run_full_stack(&spec, &sink), N))
        });
    }
    group.finish();

    // One summary line per query for the JSON record.
    for spec in queries::full_stack() {
        let sink = scratch(spec.name);
        let best = min_time(5, || run_full_stack(&spec, &sink));
        println!(
            "nexmark_suite [{}] best-of-5: {:?} ({:.0} events/sec, workers = {})",
            spec.name,
            best,
            N as f64 / best.as_secs_f64(),
            if spec.shardable { 2 } else { 1 },
        );
    }
}

criterion_group!(benches, bench_nexmark_suite);
criterion_main!(benches);
