//! B5 — Windowing TVF cost (§6.4).
//!
//! `Tumble` assigns each row to exactly one window; `Hop` multiplies each
//! row by ~`dur / hopsize` windows ("a multiplication of the rows", App.
//! B.3.1). We sweep the overlap factor and measure both the raw assignment
//! functions and an end-to-end windowed aggregation. Expected shape: cost
//! grows linearly with the overlap factor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use onesql_bench::{nexmark_engine, nexmark_events, run_nexmark};
use onesql_exec::window::{hop_windows, tumble_window};
use onesql_types::{Duration, Ts};

fn bench_assignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("window_assignment");
    group.throughput(Throughput::Elements(1));
    let dur = Duration::from_minutes(10);
    group.bench_function("tumble", |b| {
        let mut t = 0i64;
        b.iter(|| {
            t += 61_000;
            tumble_window(Ts(t), dur, Duration::ZERO)
        });
    });
    for overlap in [2i64, 5, 10] {
        let hop = Duration(dur.millis() / overlap);
        group.bench_with_input(BenchmarkId::new("hop", overlap), &hop, |b, &hop| {
            let mut t = 0i64;
            b.iter(|| {
                t += 61_000;
                hop_windows(Ts(t), dur, hop, Duration::ZERO)
            });
        });
    }
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    const N: usize = 2_000;
    let skew = Duration::from_seconds(2);
    let events = nexmark_events(N, 9, skew);
    let mut group = c.benchmark_group("window_query");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));

    group.bench_function("tumble_1m", |b| {
        b.iter(|| {
            let engine = nexmark_engine();
            let mut q = engine
                .execute(
                    "SELECT wend, COUNT(*) FROM Tumble(data => TABLE(Bid), \
                     timecol => DESCRIPTOR(dateTime), dur => INTERVAL '1' MINUTE) \
                     GROUP BY wend",
                )
                .unwrap();
            run_nexmark(&mut q, &events, skew);
            q.changelog().len()
        });
    });
    for (label, hop) in [("hop_1m_over_2", "30"), ("hop_1m_over_4", "15")] {
        let sql = format!(
            "SELECT wend, COUNT(*) FROM Hop(data => TABLE(Bid), \
             timecol => DESCRIPTOR(dateTime), dur => INTERVAL '1' MINUTE, \
             hopsize => INTERVAL '{hop}' SECONDS) GROUP BY wend"
        );
        group.bench_with_input(BenchmarkId::from_parameter(label), &sql, |b, sql| {
            b.iter(|| {
                let engine = nexmark_engine();
                let mut q = engine.execute(sql).unwrap();
                run_nexmark(&mut q, &events, skew);
                q.changelog().len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_assignment, bench_end_to_end);
criterion_main!(benches);
