//! NEXMark query-suite integration tests: every query plans, compiles, and
//! produces consistent results on generated workloads; the SQL Q7 agrees
//! with the CQL baseline where their semantics coincide.

use onesql_core::{Engine, StreamBuilder};
use onesql_cql::CqlQuery7;
use onesql_nexmark::{queries, GeneratorConfig, NexmarkEvent, NexmarkGenerator};
use onesql_time::BoundedOutOfOrderness;
use onesql_types::{row, DataType, Duration, Ts};

fn nexmark_engine() -> Engine {
    let mut engine = Engine::new();
    engine.register_stream(
        "Bid",
        StreamBuilder::new()
            .column("auction", DataType::Int)
            .column("bidder", DataType::Int)
            .column("price", DataType::Int)
            .event_time_column("dateTime"),
    );
    engine.register_stream(
        "Auction",
        StreamBuilder::new()
            .column("id", DataType::Int)
            .column("itemName", DataType::String)
            .column("initialBid", DataType::Int)
            .column("reserve", DataType::Int)
            .event_time_column("dateTime")
            .column("expires", DataType::Timestamp)
            .column("seller", DataType::Int)
            .column("category", DataType::Int),
    );
    engine.register_stream(
        "Person",
        StreamBuilder::new()
            .column("id", DataType::Int)
            .column("name", DataType::String)
            .column("email", DataType::String)
            .column("city", DataType::String)
            .column("state", DataType::String)
            .event_time_column("dateTime"),
    );
    engine
}

fn events(n: usize, seed: u64) -> Vec<(Ts, NexmarkEvent)> {
    NexmarkGenerator::new(GeneratorConfig {
        seed,
        max_skew: Duration::from_seconds(3),
        ..GeneratorConfig::default()
    })
    .take(n)
}

fn run(sql: &str, n: usize, seed: u64) -> onesql_core::RunningQuery {
    let engine = nexmark_engine();
    let mut q = engine.execute(sql).unwrap();
    for stream in ["Bid", "Auction", "Person"] {
        let _ = q.set_watermark_generator(
            stream,
            Box::new(BoundedOutOfOrderness::new(Duration::from_seconds(3))),
        );
    }
    let evts = events(n, seed);
    for (ptime, event) in &evts {
        let (stream, row) = match event {
            NexmarkEvent::Bid(b) => ("Bid", b.to_row()),
            NexmarkEvent::Auction(a) => ("Auction", a.to_row()),
            NexmarkEvent::Person(p) => ("Person", p.to_row()),
        };
        q.insert(stream, *ptime, row).unwrap();
    }
    q.finish(evts.last().unwrap().0 + Duration::from_minutes(1))
        .unwrap();
    q
}

#[test]
fn all_queries_plan_and_compile() {
    let engine = nexmark_engine();
    for (name, sql) in queries::all() {
        let plan = engine.plan(sql);
        assert!(plan.is_ok(), "{name} failed to plan: {:?}", plan.err());
        let running = engine.execute(sql);
        assert!(running.is_ok(), "{name} failed to compile");
    }
}

#[test]
fn q0_passthrough_preserves_all_bids() {
    let q = run(queries::Q0, 1_000, 1);
    let bids = events(1_000, 1)
        .iter()
        .filter(|(_, e)| matches!(e, NexmarkEvent::Bid(_)))
        .count();
    assert_eq!(q.table().unwrap().len(), bids);
}

#[test]
fn q1_converts_currency() {
    let q = run(queries::Q1, 500, 2);
    for r in q.table().unwrap() {
        let eur = r.value(2).unwrap().as_int().unwrap();
        assert!((0..10_000 * 89 / 100 + 1).contains(&eur));
    }
}

#[test]
fn q2_filters_by_auction_id() {
    let q = run(queries::Q2, 2_000, 3);
    for r in q.table().unwrap() {
        assert_eq!(r.value(0).unwrap().as_int().unwrap() % 123, 0);
    }
}

#[test]
fn q3_join_is_consistent_with_manual_join() {
    let q = run(queries::Q3, 3_000, 4);
    let rows = q.table().unwrap();
    // Manual recomputation.
    let evts = events(3_000, 4);
    let mut people = std::collections::BTreeMap::new();
    let mut expected = 0usize;
    for (_, e) in &evts {
        if let NexmarkEvent::Person(p) = e {
            people.insert(p.id, p.clone());
        }
    }
    for (_, e) in &evts {
        if let NexmarkEvent::Auction(a) = e {
            if a.category == 10 {
                if let Some(p) = people.get(&a.seller) {
                    if ["wa", "az", "tn"].contains(&p.state.as_str()) {
                        expected += 1;
                    }
                }
            }
        }
    }
    assert_eq!(rows.len(), expected);
}

#[test]
fn q5_hot_items_counts_match_batch() {
    let q = run(queries::Q5_HOT_ITEMS, 2_000, 5);
    let rows = q.table().unwrap();
    // Each row: (auction, wend, count). Recompute per (auction, wend).
    let mut expected: std::collections::BTreeMap<(i64, i64), i64> = Default::default();
    for (_, e) in events(2_000, 5) {
        if let NexmarkEvent::Bid(b) = e {
            let ts = b.date_time.millis();
            // dur 2m, hop 1m: windows ending at the next minute boundaries.
            let hop = 60_000i64;
            let dur = 120_000i64;
            let max_start = ts.div_euclid(hop) * hop;
            let mut s = max_start;
            while s + dur > ts {
                *expected.entry((b.auction, s + dur)).or_insert(0) += 1;
                s -= hop;
            }
        }
    }
    assert_eq!(rows.len(), expected.len());
    for r in rows {
        let auction = r.value(0).unwrap().as_int().unwrap();
        let wend = r.value(1).unwrap().as_ts().unwrap().millis();
        let count = r.value(2).unwrap().as_int().unwrap();
        assert_eq!(expected.get(&(auction, wend)), Some(&count));
    }
}

#[test]
fn q7_final_answers_agree_with_cql_baseline() {
    // Feed the same bid stream to both engines. Restrict to the case where
    // their semantics coincide: final (watermark-complete) windows.
    let n = 4_000;
    let q = run(&format!("{} EMIT AFTER WATERMARK", queries::Q7), n, 6);
    let sql_rows = q.table().unwrap();

    let mut cql = CqlQuery7::new();
    let mut max_seen = Ts::MIN;
    for (_, e) in events(n, 6) {
        if let NexmarkEvent::Bid(b) = e {
            // CQL needs in-order input: feed by event time below via buffer
            // heartbeats at +inf lag (exact).
            cql.bid(b.date_time, b.price, &b.auction.to_string());
            max_seen = max_seen.max(b.date_time);
        }
    }
    cql.finish(max_seen + Duration::from_minutes(10));
    let cql_rows = cql.results().unwrap();

    // Compare per-window winning prices. CQL emits (price, auction-as-item)
    // at window end; SQL emits (wstart, wend, bidtime, price, auction).
    let mut sql_by_window: std::collections::BTreeMap<i64, Vec<i64>> = Default::default();
    for r in &sql_rows {
        let wend = r.value(1).unwrap().as_ts().unwrap().millis();
        sql_by_window
            .entry(wend)
            .or_default()
            .push(r.value(3).unwrap().as_int().unwrap());
    }
    let mut cql_by_window: std::collections::BTreeMap<i64, Vec<i64>> = Default::default();
    for (t, r) in &cql_rows {
        cql_by_window
            .entry(t.millis())
            .or_default()
            .push(r.value(0).unwrap().as_int().unwrap());
    }
    // Every window both systems saw must agree on the winning price.
    for (wend, sql_prices) in &sql_by_window {
        if let Some(cql_prices) = cql_by_window.get(wend) {
            assert_eq!(
                sql_prices.iter().max(),
                cql_prices.iter().max(),
                "window ending {wend} disagrees"
            );
        }
    }
    assert!(!sql_rows.is_empty());
    assert!(!cql_rows.is_empty());
}

#[test]
fn q8_finds_new_sellers() {
    let q = run(queries::Q8, 3_000, 7);
    // Every reported (id, name, wstart) must be a person who opened an
    // auction in the same 10s window.
    let evts = events(3_000, 7);
    for r in q.table().unwrap() {
        let id = r.value(0).unwrap().as_int().unwrap();
        let ws = r.value(2).unwrap().as_ts().unwrap();
        let registered = evts.iter().any(|(_, e)| match e {
            NexmarkEvent::Person(p) => {
                p.id == id && p.date_time >= ws && p.date_time < ws + Duration::from_seconds(10)
            }
            _ => false,
        });
        assert!(registered, "person {id} not registered in window {ws}");
    }
}

#[test]
fn deterministic_across_runs() {
    let a = run(queries::Q7, 1_500, 8);
    let b = run(queries::Q7, 1_500, 8);
    assert_eq!(a.table().unwrap(), b.table().unwrap());
    assert_eq!(
        a.stream_rows().unwrap().len(),
        b.stream_rows().unwrap().len()
    );
}

#[test]
fn category_table_joins_against_stream() {
    let mut engine = nexmark_engine();
    engine
        .register_table(
            "Category",
            StreamBuilder::new()
                .column("id", DataType::Int)
                .column("name", DataType::String),
            onesql_nexmark::model::category_rows(),
        )
        .unwrap();
    let mut q = engine
        .execute("SELECT A.id, C.name FROM Auction A JOIN Category C ON A.category = C.id")
        .unwrap();
    q.insert(
        "Auction",
        Ts::hm(8, 0),
        row!(
            5000i64,
            "teapot",
            10i64,
            20i64,
            Ts::hm(8, 0),
            Ts::hm(9, 0),
            1000i64,
            12i64
        ),
    )
    .unwrap();
    assert_eq!(q.table().unwrap(), vec![row!(5000i64, "books")]);
}
