//! Vectorized expression kernels.
//!
//! [`compile`] lowers a [`ScalarExpr`] to a [`Kernel`] tree that evaluates
//! against whole columns ([`Frame`]) instead of one [`Row`] at a time. The
//! evaluator is **exactly equivalent** to [`ScalarExpr::eval`] in the
//! following sense, which the batch executor relies on for byte-identical
//! changelogs:
//!
//! - It evaluates exactly the `(sub-expression, row)` pairs the row oracle
//!   evaluates. Short-circuit semantics (`AND`/`OR` right operands, `CASE`
//!   branches) are threaded through evaluation as *masks*: a sub-kernel only
//!   runs — and may only error — on rows where the oracle would have run it.
//! - Per-row combine steps reuse the oracle's own code
//!   (`ScalarExpr::eval_binary`, `eval_scalar_fn`, `like_match`), so
//!   result values and error messages are the oracle's verbatim.
//! - When a kernel reports a [`KernelError`] at row `k`, the oracle is
//!   guaranteed to error on row `k` too (though possibly on a *different*,
//!   earlier row of the batch first). The executor repairs this by splitting
//!   the batch at `k`, re-running the prefix vectorized and row `k` through
//!   the oracle, which converges to the oracle's first failing row and its
//!   exact error (see `crates/exec/src/vector.rs`).
//!
//! `IN` lists with non-literal candidates are the one construct whose
//! per-row candidate short-circuiting cannot be masked column-wise (a match
//! on candidate `i` must suppress an error in candidate `i+1`); those
//! compile to [`Kernel::RowOracle`], which simply materializes each row and
//! calls the oracle — exact by definition, at scalar speed.

use onesql_types::{Column, ColumnData, DataType, Error, Row, Ts, Value};

use crate::expr::{eval_scalar_fn, like_match, BinOp, ScalarExpr, ScalarFunc};

/// A compiled column-at-a-time evaluator for one [`ScalarExpr`].
#[derive(Clone, Debug)]
pub enum Kernel {
    /// Input column by index.
    Col(usize),
    /// A constant (broadcast scalar).
    Lit(Value),
    /// Three-valued `NOT`.
    Not(Box<Kernel>),
    /// Numeric negation.
    Neg(Box<Kernel>),
    /// Binary operation; `AND`/`OR` mask their right operand.
    Binary {
        /// Left operand.
        left: Box<Kernel>,
        /// Operator.
        op: BinOp,
        /// Right operand.
        right: Box<Kernel>,
    },
    /// `IS [NOT] NULL`.
    IsNull {
        /// Operand.
        input: Box<Kernel>,
        /// Negated form?
        negated: bool,
    },
    /// `e [NOT] IN (lit, ..)` — all candidates are literals.
    InListLit {
        /// Tested expression.
        input: Box<Kernel>,
        /// Literal candidates.
        list: Vec<Value>,
        /// `NOT IN`?
        negated: bool,
    },
    /// `e [NOT] LIKE pattern`.
    Like {
        /// Tested expression.
        input: Box<Kernel>,
        /// Pattern expression.
        pattern: Box<Kernel>,
        /// `NOT LIKE`?
        negated: bool,
    },
    /// Searched `CASE` with progressive branch masking.
    Case {
        /// `(condition, result)` branches.
        branches: Vec<(Kernel, Kernel)>,
        /// `ELSE` result.
        else_expr: Option<Box<Kernel>>,
    },
    /// `CAST(e AS t)`.
    Cast {
        /// Operand.
        input: Box<Kernel>,
        /// Target type.
        to: DataType,
    },
    /// Built-in scalar function.
    Fn {
        /// Which function.
        func: ScalarFunc,
        /// Arguments.
        args: Vec<Kernel>,
    },
    /// Exact per-row fallback: materialize the row, call the oracle.
    RowOracle(ScalarExpr),
}

/// Compile an expression to a kernel tree.
pub fn compile(expr: &ScalarExpr) -> Kernel {
    match expr {
        ScalarExpr::Column(i) => Kernel::Col(*i),
        ScalarExpr::Literal(v) => Kernel::Lit(v.clone()),
        ScalarExpr::Not(e) => Kernel::Not(Box::new(compile(e))),
        ScalarExpr::Neg(e) => Kernel::Neg(Box::new(compile(e))),
        ScalarExpr::Binary { left, op, right } => Kernel::Binary {
            left: Box::new(compile(left)),
            op: *op,
            right: Box::new(compile(right)),
        },
        ScalarExpr::IsNull { expr, negated } => Kernel::IsNull {
            input: Box::new(compile(expr)),
            negated: *negated,
        },
        ScalarExpr::InList {
            expr: inner,
            list,
            negated,
        } => {
            let lits: Option<Vec<Value>> = list
                .iter()
                .map(|c| match c {
                    ScalarExpr::Literal(v) => Some(v.clone()),
                    _ => None,
                })
                .collect();
            match lits {
                Some(list) => Kernel::InListLit {
                    input: Box::new(compile(inner)),
                    list,
                    negated: *negated,
                },
                // Candidate evaluation short-circuits per row; stay exact by
                // deferring to the oracle.
                None => Kernel::RowOracle(expr.clone()),
            }
        }
        ScalarExpr::Like {
            expr,
            pattern,
            negated,
        } => Kernel::Like {
            input: Box::new(compile(expr)),
            pattern: Box::new(compile(pattern)),
            negated: *negated,
        },
        ScalarExpr::Case {
            branches,
            else_expr,
        } => Kernel::Case {
            branches: branches
                .iter()
                .map(|(c, r)| (compile(c), compile(r)))
                .collect(),
            else_expr: else_expr.as_ref().map(|e| Box::new(compile(e))),
        },
        ScalarExpr::Cast { expr, to } => Kernel::Cast {
            input: Box::new(compile(expr)),
            to: *to,
        },
        ScalarExpr::ScalarFn { func, args } => Kernel::Fn {
            func: *func,
            args: args.iter().map(compile).collect(),
        },
    }
}

/// A view over the columns of a batch for kernel evaluation.
///
/// `sel` maps logical row indices (`0..len`) to physical rows of `cols`;
/// `None` means the identity.
#[derive(Clone, Copy)]
pub struct Frame<'a> {
    /// Physical columns.
    pub cols: &'a [Column],
    /// Selection vector (logical → physical), if any.
    pub sel: Option<&'a [u32]>,
    /// Logical row count.
    pub len: usize,
}

impl<'a> Frame<'a> {
    /// Build a frame over `len` logical rows. `len` must be passed
    /// explicitly because zero-arity frames (e.g. `SELECT 1` inputs) still
    /// have rows.
    pub fn new(cols: &'a [Column], sel: Option<&'a [u32]>, len: usize) -> Frame<'a> {
        debug_assert!(sel.is_none_or(|s| s.len() == len));
        Frame { cols, sel, len }
    }

    #[inline]
    fn phys(&self, i: usize) -> usize {
        match self.sel {
            Some(s) => s[i] as usize,
            None => i,
        }
    }

    /// Materialize logical row `i` (used by [`Kernel::RowOracle`] and error
    /// repair).
    pub fn row(&self, i: usize) -> Row {
        let p = self.phys(i);
        Row::new(self.cols.iter().map(|c| c.value(p)).collect())
    }
}

/// A kernel evaluation error, pinned to the (logical) row that raised it.
///
/// The oracle is guaranteed to error at this row too; `error` is the
/// oracle's message for the sub-expression that failed here (not necessarily
/// the error the oracle reports first for the whole batch — the executor's
/// split-and-repair loop recovers that).
#[derive(Debug)]
pub struct KernelError {
    /// Logical row index the error occurred at.
    pub row: usize,
    /// The underlying evaluation error.
    pub error: Error,
}

type KResult<T> = std::result::Result<T, KernelError>;

/// The result of evaluating a kernel: a broadcast scalar or a dense column
/// of `frame.len` values (logical order).
#[derive(Clone, Debug)]
pub enum Vector {
    /// Same value for every row.
    Scalar(Value),
    /// One value per logical row.
    Col(Column),
}

impl Vector {
    /// The value at logical row `i`.
    #[inline]
    pub fn value_at(&self, i: usize) -> Value {
        match self {
            Vector::Scalar(v) => v.clone(),
            Vector::Col(c) => c.value(i),
        }
    }

    /// Materialize as a dense column of `len` rows.
    pub fn into_column(self, len: usize) -> Column {
        match self {
            Vector::Scalar(v) => Column::repeat(&v, len),
            Vector::Col(c) => c,
        }
    }
}

#[inline]
fn live(mask: Option<&[bool]>, i: usize) -> bool {
    mask.is_none_or(|m| m[i])
}

fn any_live(mask: Option<&[bool]>, len: usize) -> bool {
    match mask {
        None => len > 0,
        Some(m) => m.iter().any(|&b| b),
    }
}

/// Evaluate `kernel` over `frame`, restricted to rows where `mask` is true
/// (`None` = all rows). Values at dead rows are unspecified and must not be
/// observed.
// Inner-loop unwraps re-assert invariants the compile step already
// established (a live row exists after `any_live`; a too-large column
// index errors on every live row, so the oracle's error is a Result::Err).
#[allow(clippy::unwrap_used)]
pub fn eval(kernel: &Kernel, frame: &Frame<'_>, mask: Option<&[bool]>) -> KResult<Vector> {
    if !any_live(mask, frame.len) {
        return Ok(Vector::Scalar(Value::Null));
    }
    match kernel {
        Kernel::Lit(v) => Ok(Vector::Scalar(v.clone())),
        Kernel::Col(idx) => {
            if *idx >= frame.cols.len() {
                // Arity is uniform across the batch: the oracle errors on
                // the first live row. Reproduce its exact message.
                let first = (0..frame.len).find(|&i| live(mask, i)).unwrap();
                let error = frame.row(first).value(*idx).unwrap_err();
                return Err(KernelError { row: first, error });
            }
            let col = &frame.cols[*idx];
            Ok(Vector::Col(match frame.sel {
                None => col.clone(),
                Some(sel) => col.gather(sel),
            }))
        }
        Kernel::Not(input) => {
            let v = eval(input, frame, mask)?;
            // Fast path: boolean column without nulls.
            if mask.is_none() {
                if let Vector::Col(c) = &v {
                    if let ColumnData::Bool { vals, nulls: None } = c.data() {
                        let flipped: Vec<bool> = vals.iter().map(|b| !b).collect();
                        return Ok(Vector::Col(Column::new(ColumnData::Bool {
                            vals: flipped,
                            nulls: None,
                        })));
                    }
                }
            }
            per_row(frame.len, mask, |i| match v.value_at(i) {
                Value::Null => Ok(Value::Null),
                x => Ok(Value::Bool(!x.as_bool()?)),
            })
        }
        Kernel::Neg(input) => {
            let v = eval(input, frame, mask)?;
            per_row(frame.len, mask, |i| v.value_at(i).neg())
        }
        Kernel::Binary { left, op, right } => eval_binary_kernel(left, *op, right, frame, mask),
        Kernel::IsNull { input, negated } => {
            let v = eval(input, frame, mask)?;
            per_row(frame.len, mask, |i| {
                Ok(Value::Bool(v.value_at(i).is_null() != *negated))
            })
        }
        Kernel::InListLit {
            input,
            list,
            negated,
        } => {
            let v = eval(input, frame, mask)?;
            per_row(frame.len, mask, |i| {
                let x = v.value_at(i);
                if x.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for c in list {
                    match x.sql_eq(c) {
                        Some(true) => return Ok(Value::Bool(!negated)),
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                Ok(if saw_null {
                    Value::Null
                } else {
                    Value::Bool(*negated)
                })
            })
        }
        Kernel::Like {
            input,
            pattern,
            negated,
        } => {
            let v = eval(input, frame, mask)?;
            let p = eval(pattern, frame, mask)?;
            per_row(frame.len, mask, |i| {
                let x = v.value_at(i);
                let pat = p.value_at(i);
                if x.is_null() || pat.is_null() {
                    return Ok(Value::Null);
                }
                let matched = like_match(x.as_str()?, pat.as_str()?);
                Ok(Value::Bool(matched != *negated))
            })
        }
        Kernel::Case {
            branches,
            else_expr,
        } => {
            let len = frame.len;
            let mut result: Vec<Value> = vec![Value::Null; len];
            let mut cur: Vec<bool> = (0..len).map(|i| live(mask, i)).collect();
            for (cond, res) in branches {
                if !cur.iter().any(|&b| b) {
                    break;
                }
                let c = eval(cond, frame, Some(&cur))?;
                let mut hit = vec![false; len];
                let mut any_hit = false;
                for i in 0..len {
                    if cur[i] && c.value_at(i) == Value::Bool(true) {
                        hit[i] = true;
                        any_hit = true;
                    }
                }
                if any_hit {
                    let r = eval(res, frame, Some(&hit))?;
                    for i in 0..len {
                        if hit[i] {
                            result[i] = r.value_at(i);
                            cur[i] = false;
                        }
                    }
                }
            }
            if let Some(e) = else_expr {
                if cur.iter().any(|&b| b) {
                    let r = eval(e, frame, Some(&cur))?;
                    for i in 0..len {
                        if cur[i] {
                            result[i] = r.value_at(i);
                        }
                    }
                }
            }
            Ok(Vector::Col(Column::from_values(result)))
        }
        Kernel::Cast { input, to } => {
            let v = eval(input, frame, mask)?;
            per_row(frame.len, mask, |i| v.value_at(i).cast(*to))
        }
        Kernel::Fn { func, args } => {
            let arg_vecs: Vec<Vector> = args
                .iter()
                .map(|a| eval(a, frame, mask))
                .collect::<KResult<_>>()?;
            per_row(frame.len, mask, |i| {
                let vals: Vec<Value> = arg_vecs.iter().map(|v| v.value_at(i)).collect();
                eval_scalar_fn(*func, &vals)
            })
        }
        Kernel::RowOracle(expr) => per_row(frame.len, mask, |i| expr.eval(&frame.row(i))),
    }
}

/// Generic per-row evaluation: run `f` on live rows, `Null` elsewhere.
fn per_row(
    len: usize,
    mask: Option<&[bool]>,
    mut f: impl FnMut(usize) -> onesql_types::Result<Value>,
) -> KResult<Vector> {
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        if live(mask, i) {
            out.push(f(i).map_err(|error| KernelError { row: i, error })?);
        } else {
            out.push(Value::Null);
        }
    }
    Ok(Vector::Col(Column::from_values(out)))
}

/// Typed operand views for the comparison/arithmetic fast paths.
enum Operand<'a> {
    IntCol(&'a [i64]),
    IntLit(i64),
    FloatCol(&'a [f64]),
    FloatLit(f64),
    TsCol(&'a [Ts]),
    TsLit(Ts),
    StrCol(&'a [std::sync::Arc<str>]),
    StrLit(&'a str),
}

impl Operand<'_> {
    fn of(v: &Vector) -> Option<Operand<'_>> {
        match v {
            Vector::Scalar(Value::Int(x)) => Some(Operand::IntLit(*x)),
            Vector::Scalar(Value::Float(x)) => Some(Operand::FloatLit(*x)),
            Vector::Scalar(Value::Ts(x)) => Some(Operand::TsLit(*x)),
            Vector::Scalar(Value::Str(s)) => Some(Operand::StrLit(s.as_ref())),
            Vector::Scalar(_) => None,
            Vector::Col(c) => match c.data() {
                ColumnData::Int { vals, nulls: None } => Some(Operand::IntCol(vals)),
                ColumnData::Float { vals, nulls: None } => Some(Operand::FloatCol(vals)),
                ColumnData::Ts { vals, nulls: None } => Some(Operand::TsCol(vals)),
                ColumnData::Str { vals, nulls: None } => Some(Operand::StrCol(vals)),
                _ => None,
            },
        }
    }

    #[inline]
    fn int_at(&self, i: usize) -> Option<i64> {
        match self {
            Operand::IntCol(v) => Some(v[i]),
            Operand::IntLit(x) => Some(*x),
            _ => None,
        }
    }

    #[inline]
    fn float_at(&self, i: usize) -> f64 {
        match self {
            Operand::IntCol(v) => v[i] as f64,
            Operand::IntLit(x) => *x as f64,
            Operand::FloatCol(v) => v[i],
            Operand::FloatLit(x) => *x,
            _ => unreachable!("numeric operand expected"),
        }
    }

    fn is_numeric(&self) -> bool {
        matches!(
            self,
            Operand::IntCol(_) | Operand::IntLit(_) | Operand::FloatCol(_) | Operand::FloatLit(_)
        )
    }

    fn is_int(&self) -> bool {
        matches!(self, Operand::IntCol(_) | Operand::IntLit(_))
    }
}

// `is_int`-guarded operands make `int_at` infallible at live rows, and the
// overflow path re-runs the oracle's own arithmetic, which is the error.
#[allow(clippy::unwrap_used)]
fn eval_binary_kernel(
    left: &Kernel,
    op: BinOp,
    right: &Kernel,
    frame: &Frame<'_>,
    mask: Option<&[bool]>,
) -> KResult<Vector> {
    let len = frame.len;
    // AND/OR: the right operand only runs where the left has not already
    // decided the result — identical to the oracle's short-circuit.
    if matches!(op, BinOp::And | BinOp::Or) {
        let l = eval(left, frame, mask)?;
        let stop = Value::Bool(matches!(op, BinOp::Or));
        let rmask: Vec<bool> = (0..len)
            .map(|i| live(mask, i) && l.value_at(i) != stop)
            .collect();
        let r = eval(right, frame, Some(&rmask))?;
        // Fast path: both sides boolean columns without nulls.
        if mask.is_none() {
            if let (Vector::Col(lc), Vector::Col(rc)) = (&l, &r) {
                if let (
                    ColumnData::Bool {
                        vals: lv,
                        nulls: None,
                    },
                    ColumnData::Bool {
                        vals: rv,
                        nulls: None,
                    },
                ) = (lc.data(), rc.data())
                {
                    let vals: Vec<bool> = match op {
                        BinOp::And => lv.iter().zip(rv).map(|(a, b)| *a && *b).collect(),
                        _ => lv.iter().zip(rv).map(|(a, b)| *a || *b).collect(),
                    };
                    return Ok(Vector::Col(Column::new(ColumnData::Bool {
                        vals,
                        nulls: None,
                    })));
                }
            }
        }
        return per_row(len, mask, |i| {
            ScalarExpr::eval_binary(l.value_at(i), op, || Ok(r.value_at(i)))
        });
    }

    let l = eval(left, frame, mask)?;
    let r = eval(right, frame, mask)?;

    if let (Some(a), Some(b)) = (Operand::of(&l), Operand::of(&r)) {
        use BinOp::*;
        let comparable = (a.is_numeric() && b.is_numeric())
            || matches!(
                (&a, &b),
                (
                    Operand::TsCol(_) | Operand::TsLit(_),
                    Operand::TsCol(_) | Operand::TsLit(_)
                )
            )
            || matches!(
                (&a, &b),
                (
                    Operand::StrCol(_) | Operand::StrLit(_),
                    Operand::StrCol(_) | Operand::StrLit(_)
                )
            );
        match op {
            Eq | NotEq | Lt | LtEq | Gt | GtEq if comparable => {
                let mut vals = vec![false; len];
                for (i, slot) in vals.iter_mut().enumerate() {
                    if !live(mask, i) {
                        continue;
                    }
                    // Mirrors Value::coerced_cmp: int/int exact, any float
                    // coerces to IEEE total order, ts and str use Ord.
                    let ord = match (a.int_at(i), b.int_at(i)) {
                        (Some(x), Some(y)) => x.cmp(&y),
                        _ if a.is_numeric() => a.float_at(i).total_cmp(&b.float_at(i)),
                        _ => match (&a, &b) {
                            (Operand::TsCol(v), Operand::TsCol(w)) => v[i].cmp(&w[i]),
                            (Operand::TsCol(v), Operand::TsLit(y)) => v[i].cmp(y),
                            (Operand::TsLit(x), Operand::TsCol(w)) => x.cmp(&w[i]),
                            (Operand::TsLit(x), Operand::TsLit(y)) => x.cmp(y),
                            (Operand::StrCol(v), Operand::StrCol(w)) => {
                                v[i].as_ref().cmp(w[i].as_ref())
                            }
                            (Operand::StrCol(v), Operand::StrLit(y)) => v[i].as_ref().cmp(y),
                            (Operand::StrLit(x), Operand::StrCol(w)) => (*x).cmp(w[i].as_ref()),
                            (Operand::StrLit(x), Operand::StrLit(y)) => (*x).cmp(y),
                            _ => unreachable!(),
                        },
                    };
                    *slot = match op {
                        Eq => ord.is_eq(),
                        NotEq => ord.is_ne(),
                        Lt => ord.is_lt(),
                        LtEq => ord.is_le(),
                        Gt => ord.is_gt(),
                        _ => ord.is_ge(),
                    };
                }
                return Ok(Vector::Col(Column::new(ColumnData::Bool {
                    vals,
                    nulls: None,
                })));
            }
            Plus | Minus | Mul | Div | Mod if a.is_int() && b.is_int() => {
                let mut vals = vec![0i64; len];
                for (i, slot) in vals.iter_mut().enumerate() {
                    if !live(mask, i) {
                        continue;
                    }
                    let (x, y) = (a.int_at(i).unwrap(), b.int_at(i).unwrap());
                    let checked = match op {
                        Plus => x.checked_add(y),
                        Minus => x.checked_sub(y),
                        Mul => x.checked_mul(y),
                        Div if y != 0 => Some(x / y),
                        Mod if y != 0 => Some(x % y),
                        _ => None,
                    };
                    match checked {
                        Some(v) => *slot = v,
                        // Overflow or division by zero: the oracle's own
                        // arithmetic produces the exact error.
                        None => {
                            let error =
                                ScalarExpr::eval_binary(Value::Int(x), op, || Ok(Value::Int(y)))
                                    .unwrap_err();
                            return Err(KernelError { row: i, error });
                        }
                    }
                }
                return Ok(Vector::Col(Column::new(ColumnData::Int {
                    vals,
                    nulls: None,
                })));
            }
            Plus | Minus | Mul | Div if a.is_numeric() && b.is_numeric() => {
                // At least one float side: coerces to DOUBLE, never errors.
                let mut vals = vec![0f64; len];
                for (i, slot) in vals.iter_mut().enumerate() {
                    if !live(mask, i) {
                        continue;
                    }
                    let (x, y) = (a.float_at(i), b.float_at(i));
                    *slot = match op {
                        Plus => x + y,
                        Minus => x - y,
                        Mul => x * y,
                        _ => x / y,
                    };
                }
                return Ok(Vector::Col(Column::new(ColumnData::Float {
                    vals,
                    nulls: None,
                })));
            }
            _ => {}
        }
    }

    per_row(len, mask, |i| {
        ScalarExpr::eval_binary(l.value_at(i), op, || Ok(r.value_at(i)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use onesql_types::row;

    fn frame_cols(rows: &[Row]) -> Vec<Column> {
        let arity = rows[0].arity();
        (0..arity)
            .map(|c| Column::from_values(rows.iter().map(|r| r.values()[c].clone()).collect()))
            .collect()
    }

    /// Oracle-equivalence harness for clean (non-erroring) expressions.
    fn check(expr: &ScalarExpr, rows: &[Row]) {
        let cols = frame_cols(rows);
        let frame = Frame::new(&cols, None, rows.len());
        let kernel = compile(expr);
        let v = eval(&kernel, &frame, None).expect("kernel eval");
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(v.value_at(i), expr.eval(r).unwrap(), "row {i}");
        }
    }

    #[test]
    fn comparisons_match_oracle() {
        let rows = vec![row!(1i64, 2.5f64), row!(-3i64, 0.0f64), row!(5i64, 5.0f64)];
        for op in [
            BinOp::Eq,
            BinOp::NotEq,
            BinOp::Lt,
            BinOp::LtEq,
            BinOp::Gt,
            BinOp::GtEq,
        ] {
            check(
                &ScalarExpr::binary(ScalarExpr::Column(0), op, ScalarExpr::Column(1)),
                &rows,
            );
            check(
                &ScalarExpr::binary(ScalarExpr::Column(0), op, ScalarExpr::lit(1i64)),
                &rows,
            );
        }
    }

    #[test]
    fn arithmetic_matches_oracle() {
        let rows = vec![row!(6i64, 3i64), row!(-7i64, 2i64), row!(0i64, 5i64)];
        for op in [
            BinOp::Plus,
            BinOp::Minus,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Mod,
        ] {
            check(
                &ScalarExpr::binary(ScalarExpr::Column(0), op, ScalarExpr::Column(1)),
                &rows,
            );
        }
    }

    #[test]
    fn short_circuit_suppresses_rhs_errors() {
        // col0 > 0 AND (1 / col0) > 0 — division by zero on rows where the
        // left side is false must not error, exactly like the oracle.
        let rows = vec![row!(2i64), row!(0i64), row!(-1i64)];
        let div = ScalarExpr::binary(ScalarExpr::lit(1i64), BinOp::Div, ScalarExpr::Column(0));
        let expr = ScalarExpr::binary(
            ScalarExpr::binary(ScalarExpr::Column(0), BinOp::Gt, ScalarExpr::lit(0i64)),
            BinOp::And,
            ScalarExpr::binary(div, BinOp::Gt, ScalarExpr::lit(0i64)),
        );
        check(&expr, &rows);
    }

    #[test]
    fn kernel_error_is_oracle_error_at_that_row() {
        let rows = vec![row!(4i64), row!(0i64), row!(1i64)];
        let expr = ScalarExpr::binary(ScalarExpr::lit(8i64), BinOp::Div, ScalarExpr::Column(0));
        let cols = frame_cols(&rows);
        let frame = Frame::new(&cols, None, rows.len());
        let err = eval(&compile(&expr), &frame, None).unwrap_err();
        assert_eq!(err.row, 1);
        let oracle = expr.eval(&rows[1]).unwrap_err();
        assert_eq!(err.error.to_string(), oracle.to_string());
    }

    #[test]
    fn case_masks_branches() {
        // CASE WHEN col0 = 0 THEN -1 ELSE 10 / col0 END
        let rows = vec![row!(0i64), row!(2i64), row!(0i64), row!(5i64)];
        let expr = ScalarExpr::Case {
            branches: vec![(
                ScalarExpr::binary(ScalarExpr::Column(0), BinOp::Eq, ScalarExpr::lit(0i64)),
                ScalarExpr::lit(-1i64),
            )],
            else_expr: Some(Box::new(ScalarExpr::binary(
                ScalarExpr::lit(10i64),
                BinOp::Div,
                ScalarExpr::Column(0),
            ))),
        };
        check(&expr, &rows);
    }

    #[test]
    fn in_list_with_expr_candidates_falls_back() {
        let expr = ScalarExpr::InList {
            expr: Box::new(ScalarExpr::Column(0)),
            list: vec![ScalarExpr::Column(0)],
            negated: false,
        };
        assert!(matches!(compile(&expr), Kernel::RowOracle(_)));
        check(&expr, &[row!(1i64), row!(7i64)]);
    }

    #[test]
    fn strings_like_and_functions() {
        let rows = vec![row!("apple"), row!("banana"), row!("avocado")];
        check(
            &ScalarExpr::Like {
                expr: Box::new(ScalarExpr::Column(0)),
                pattern: Box::new(ScalarExpr::lit(Value::str("a%"))),
                negated: false,
            },
            &rows,
        );
        check(
            &ScalarExpr::ScalarFn {
                func: ScalarFunc::Upper,
                args: vec![ScalarExpr::Column(0)],
            },
            &rows,
        );
        check(
            &ScalarExpr::binary(
                ScalarExpr::Column(0),
                BinOp::Eq,
                ScalarExpr::lit(Value::str("banana")),
            ),
            &rows,
        );
    }

    #[test]
    fn nulls_propagate() {
        let rows = vec![row!(1i64), Row::new(vec![Value::Null]), row!(3i64)];
        check(
            &ScalarExpr::binary(ScalarExpr::Column(0), BinOp::Gt, ScalarExpr::lit(2i64)),
            &rows,
        );
        check(
            &ScalarExpr::IsNull {
                expr: Box::new(ScalarExpr::Column(0)),
                negated: false,
            },
            &rows,
        );
        check(
            &ScalarExpr::Not(Box::new(ScalarExpr::IsNull {
                expr: Box::new(ScalarExpr::Column(0)),
                negated: true,
            })),
            &rows,
        );
    }
}
