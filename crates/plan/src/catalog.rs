//! Catalogs: where the binder finds table and stream schemas.

use std::collections::BTreeMap;

use onesql_types::{Error, Result, SchemaRef};

/// Whether a catalog relation is a bounded table or an unbounded stream.
///
/// Both are TVRs; the distinction only affects planning constraints (e.g.
/// whether an aggregate can ever finalize without watermarks) and execution
/// strategy — exactly the paper's stance that streams and tables are two
/// representations of one object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableKind {
    /// Bounded relation.
    Table,
    /// Unbounded relation with (possibly trivial) watermarks.
    Stream,
}

/// Resolves table names to schemas during binding.
pub trait Catalog {
    /// Look up a table's schema and kind. Names are case-insensitive.
    fn resolve(&self, name: &str) -> Result<(SchemaRef, TableKind)>;
}

/// A simple in-memory catalog.
#[derive(Debug, Default, Clone)]
pub struct MemoryCatalog {
    tables: BTreeMap<String, (SchemaRef, TableKind)>,
}

impl MemoryCatalog {
    /// Empty catalog.
    pub fn new() -> MemoryCatalog {
        MemoryCatalog::default()
    }

    /// Register a relation; replaces any existing entry of the same name.
    pub fn register(&mut self, name: impl Into<String>, schema: SchemaRef, kind: TableKind) {
        self.tables
            .insert(name.into().to_ascii_lowercase(), (schema, kind));
    }

    /// Names of all registered relations.
    pub fn names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Remove a relation (for `DROP`); returns whether it existed.
    pub fn remove(&mut self, name: &str) -> bool {
        self.tables.remove(&name.to_ascii_lowercase()).is_some()
    }
}

impl Catalog for MemoryCatalog {
    fn resolve(&self, name: &str) -> Result<(SchemaRef, TableKind)> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| {
                Error::catalog(format!(
                    "table '{name}' not found; known tables: [{}]",
                    self.names().join(", ")
                ))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onesql_types::{DataType, Field, Schema};
    use std::sync::Arc;

    #[test]
    fn register_and_resolve_case_insensitive() {
        let mut cat = MemoryCatalog::new();
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int)]));
        cat.register("Bid", Arc::clone(&schema), TableKind::Stream);
        let (s, kind) = cat.resolve("bid").unwrap();
        assert_eq!(s.arity(), 1);
        assert_eq!(kind, TableKind::Stream);
        let (_, kind) = cat.resolve("BID").unwrap();
        assert_eq!(kind, TableKind::Stream);
    }

    #[test]
    fn unknown_table_lists_known() {
        let mut cat = MemoryCatalog::new();
        cat.register("bid", Arc::new(Schema::empty()), TableKind::Stream);
        let err = cat.resolve("Auction").unwrap_err();
        assert!(err.to_string().contains("bid"), "{err}");
    }
}
