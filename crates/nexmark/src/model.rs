//! The NEXMark data model: Person, Auction, Bid, and the Category table.

use onesql_types::{row, DataType, Field, Row, Schema, Ts};

/// A registered user who can open auctions and place bids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Person {
    /// Unique person id.
    pub id: i64,
    /// Display name.
    pub name: String,
    /// Email address.
    pub email: String,
    /// City of residence.
    pub city: String,
    /// State of residence.
    pub state: String,
    /// Event time of registration.
    pub date_time: Ts,
}

impl Person {
    /// Schema: `(id, name, email, city, state, dateTime*)`.
    pub fn schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("name", DataType::String),
            Field::new("email", DataType::String),
            Field::new("city", DataType::String),
            Field::new("state", DataType::String),
            Field::event_time("dateTime"),
        ])
    }

    /// Convert to a row matching [`Person::schema`].
    pub fn to_row(&self) -> Row {
        row!(
            self.id,
            self.name.as_str(),
            self.email.as_str(),
            self.city.as_str(),
            self.state.as_str(),
            self.date_time
        )
    }
}

/// An auction for one item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Auction {
    /// Unique auction id.
    pub id: i64,
    /// Short item name.
    pub item_name: String,
    /// Starting bid, in whole currency units.
    pub initial_bid: i64,
    /// Reserve price.
    pub reserve: i64,
    /// Event time the auction opened.
    pub date_time: Ts,
    /// Event time the auction closes.
    pub expires: Ts,
    /// Seller's person id.
    pub seller: i64,
    /// Category id (joins the static `Category` table).
    pub category: i64,
}

impl Auction {
    /// Schema: `(id, itemName, initialBid, reserve, dateTime*, expires,
    /// seller, category)`.
    pub fn schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("itemName", DataType::String),
            Field::new("initialBid", DataType::Int),
            Field::new("reserve", DataType::Int),
            Field::event_time("dateTime"),
            Field::new("expires", DataType::Timestamp),
            Field::new("seller", DataType::Int),
            Field::new("category", DataType::Int),
        ])
    }

    /// Convert to a row matching [`Auction::schema`].
    pub fn to_row(&self) -> Row {
        row!(
            self.id,
            self.item_name.as_str(),
            self.initial_bid,
            self.reserve,
            self.date_time,
            self.expires,
            self.seller,
            self.category
        )
    }
}

/// A bid on an auction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bid {
    /// The auction being bid on.
    pub auction: i64,
    /// The bidder's person id.
    pub bidder: i64,
    /// Bid price in whole currency units.
    pub price: i64,
    /// Event time the bid was placed.
    pub date_time: Ts,
}

impl Bid {
    /// Schema: `(auction, bidder, price, dateTime*)`.
    pub fn schema() -> Schema {
        Schema::new(vec![
            Field::new("auction", DataType::Int),
            Field::new("bidder", DataType::Int),
            Field::new("price", DataType::Int),
            Field::event_time("dateTime"),
        ])
    }

    /// Convert to a row matching [`Bid::schema`].
    pub fn to_row(&self) -> Row {
        row!(self.auction, self.bidder, self.price, self.date_time)
    }
}

/// The static `Category` table: `(id, name)`.
pub fn category_schema() -> Schema {
    Schema::new(vec![
        Field::new("id", DataType::Int),
        Field::new("name", DataType::String),
    ])
}

/// Default category rows.
pub fn category_rows() -> Vec<Row> {
    [
        (10, "collectibles"),
        (11, "electronics"),
        (12, "books"),
        (13, "cars"),
        (14, "art"),
    ]
    .into_iter()
    .map(|(id, name)| row!(id as i64, name))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_match_schemas() {
        let p = Person {
            id: 1,
            name: "ada".into(),
            email: "ada@example.com".into(),
            city: "london".into(),
            state: "uk".into(),
            date_time: Ts::hm(8, 0),
        };
        assert_eq!(p.to_row().arity(), Person::schema().arity());

        let a = Auction {
            id: 1,
            item_name: "teapot".into(),
            initial_bid: 10,
            reserve: 20,
            date_time: Ts::hm(8, 0),
            expires: Ts::hm(9, 0),
            seller: 1,
            category: 10,
        };
        assert_eq!(a.to_row().arity(), Auction::schema().arity());

        let b = Bid {
            auction: 1,
            bidder: 1,
            price: 15,
            date_time: Ts::hm(8, 5),
        };
        assert_eq!(b.to_row().arity(), Bid::schema().arity());
    }

    #[test]
    fn event_time_columns_flagged() {
        assert_eq!(Person::schema().event_time_columns(), vec![5]);
        assert_eq!(Auction::schema().event_time_columns(), vec![4]);
        assert_eq!(Bid::schema().event_time_columns(), vec![3]);
    }

    #[test]
    fn categories_nonempty() {
        assert_eq!(category_rows().len(), 5);
        assert_eq!(category_schema().arity(), 2);
    }
}
