//! End-to-end connector pipeline: the NEXMark bid stream flows through the
//! paper's Query 7 (highest bid per ten-minute window) into a changelog
//! sink — external data in, external results out, no bespoke glue.
//!
//! Run with: `cargo run --example connect_nexmark`

use onesql::connect::{ChangelogSink, NexmarkSource};
use onesql::core::Engine;
use onesql_nexmark::queries;

fn main() {
    let mut engine = Engine::new();
    onesql::connect::register_nexmark_streams(&mut engine);

    // An end-to-end job is three lines: source, sink, SQL.
    engine
        .attach_source(Box::new(NexmarkSource::seeded(42, 5_000)))
        .expect("streams registered");
    let (rendered, sink) = ChangelogSink::in_memory();
    engine.attach_sink(Box::new(sink.with_watermarks()));
    let mut pipeline = engine.run_pipeline(queries::Q7).expect("Q7 plans");

    let metrics = pipeline.run().expect("pipeline runs").clone();

    let text = rendered.lock().unwrap();
    println!("{}", text.lines().take(30).collect::<Vec<_>>().join("\n"));
    let total = text.lines().count();
    if total > 30 {
        println!("... ({} more lines)", total - 30);
    }

    println!();
    println!("pipeline metrics:");
    println!("  events in:      {}", metrics.events_in);
    println!("  events out:     {}", metrics.events_out);
    println!("  watermarks in:  {}", metrics.watermarks_in);
    println!("  rounds:         {}", metrics.rounds);
    for s in &metrics.sources {
        println!(
            "  source {:<20} {:>6} events, finished={}",
            s.name, s.events, s.finished
        );
    }
    println!(
        "  output watermark: {} (final: {})",
        metrics.output_watermark,
        metrics.output_watermark.is_final()
    );
}
