//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the API this workspace's property tests use:
//! the [`strategy::Strategy`] trait with `prop_map` / `prop_recursive`,
//! range / tuple / `Just` / `any::<T>()` / regex-string strategies, the
//! `prop::collection::vec`, `prop::option::of`, and `prop::bool::ANY`
//! helpers, and the `proptest!` / `prop_oneof!` / `prop_assert*!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//! - **No shrinking** — a failing case reports the panic from the first
//!   failing input instead of a minimized one.
//! - **Deterministic seeding** — each test's RNG is seeded from its name,
//!   so runs are reproducible; set `PROPTEST_CASES` to raise case counts.
//! - **Regex strategies** support the literal-class subset actually used
//!   (`[a-z0-9_]{m,n}`-style patterns and `\PC`).

#![forbid(unsafe_code)]
// Test infrastructure: a malformed strategy (e.g. a bad regex pattern
// written in a test) should panic the test loudly, like real proptest.
#![allow(clippy::unwrap_used, clippy::expect_used)]

pub mod strategy;
pub mod test_runner;

/// Collection, option, and bool strategy namespaces (`prop::...`).
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};

    /// A strategy for `Vec`s of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(
        element: S,
        size: impl Into<crate::strategy::SizeRange>,
    ) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Option strategies.
pub mod option {
    use crate::strategy::{OptionStrategy, Strategy};

    /// A strategy yielding `None` roughly a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    /// Uniformly random booleans.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// `prop::` namespace as re-exported by the real prelude.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::option;
}

/// Everything a property test file imports.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a property; failure panics with the failing input in the
/// backtrace (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::BoxedStrategy::new($strategy)),+
        ])
    };
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..__config.effective_cases() {
                    let ($($arg,)+) = (
                        $($crate::strategy::Strategy::generate(&($strategy), &mut __rng),)+
                    );
                    $body
                }
            }
        )*
    };
}
