//! The NEXMark generator as a source: the benchmark's Person / Auction /
//! Bid mix streamed through the connector runtime.

use onesql_core::connect::{
    PartitionedSource, PartitionedVec, Source, SourceBatch, SourceEvent, SourceStatus,
};
use onesql_core::Engine;
use onesql_nexmark::model::{Auction, Bid, Person};
use onesql_nexmark::{GeneratorConfig, NexmarkEvent, NexmarkGenerator};
use onesql_tvr::Change;
use onesql_types::{Duration, Result};

/// Register the three NEXMark streams (and nothing else) on an engine,
/// with the model crate's schemas.
pub fn register_nexmark_streams(engine: &mut Engine) {
    engine.register_stream_schema("Person", Person::schema());
    engine.register_stream_schema("Auction", Auction::schema());
    engine.register_stream_schema("Bid", Bid::schema());
}

/// A bounded NEXMark workload as a source feeding `Person`, `Auction`,
/// and `Bid`.
///
/// Watermarking uses the generator's contract: every event's event time
/// lags its processing time by at most `max_skew`, so after emitting an
/// event at processing time `p` the source asserts a watermark of
/// `p − max_skew`.
pub struct NexmarkSource {
    name: String,
    streams: Vec<String>,
    generator: NexmarkGenerator,
    remaining: u64,
    config: GeneratorConfig,
}

impl NexmarkSource {
    /// A source producing `events` events under `config`.
    pub fn new(config: GeneratorConfig, events: u64) -> NexmarkSource {
        NexmarkSource {
            name: format!("nexmark:seed={}", config.seed),
            streams: vec![
                "Person".to_string(),
                "Auction".to_string(),
                "Bid".to_string(),
            ],
            generator: NexmarkGenerator::new(config.clone()),
            remaining: events,
            config,
        }
    }

    /// Default configuration with the given seed.
    pub fn seeded(seed: u64, events: u64) -> NexmarkSource {
        NexmarkSource::new(
            GeneratorConfig {
                seed,
                ..GeneratorConfig::default()
            },
            events,
        )
    }
}

/// The NEXMark workload split across N partitions by seed range:
/// partition `p` runs its own deterministic generator seeded with
/// `base seed + p`, producing an equal share of the configured events.
///
/// Each partition is independently replayable (the generator is a pure
/// function of its seed), so a checkpointed pipeline reconstructs any
/// partition's position by regenerating and discarding — the replay seek
/// [`PartitionedVec`] provides. Watermarks are per partition, from the
/// generator's bounded-skew contract.
pub struct PartitionedNexmarkSource(PartitionedVec<NexmarkSource>);

impl PartitionedNexmarkSource {
    /// A source producing `events` events split across `partitions`
    /// generators seeded `config.seed`, `config.seed + 1`, … Each
    /// partition issues entity IDs from its own disjoint block (stride
    /// `events + 1`), so the union of the partitions never produces two
    /// Persons or two Auctions sharing an ID — joins against `Person` /
    /// `Auction` behave like one workload, just partitioned.
    // `partitions.max(1)` identically-named single-stream parts satisfy
    // `PartitionedVec`'s non-empty/uniform invariants, so the `expect`
    // below cannot fire.
    #[allow(clippy::expect_used)]
    pub fn new(
        config: GeneratorConfig,
        events: u64,
        partitions: usize,
    ) -> PartitionedNexmarkSource {
        let partitions = partitions.max(1);
        let per_part = events / partitions as u64;
        let remainder = events % partitions as u64;
        let id_stride = events as i64 + 1;
        let parts: Vec<NexmarkSource> = (0..partitions as u64)
            .map(|p| {
                let share = per_part + u64::from(p < remainder);
                NexmarkSource::new(
                    GeneratorConfig {
                        seed: config.seed.wrapping_add(p),
                        first_person_id: config.first_person_id + p as i64 * id_stride,
                        first_auction_id: config.first_auction_id + p as i64 * id_stride,
                        ..config.clone()
                    },
                    share,
                )
            })
            .collect();
        PartitionedNexmarkSource(
            PartitionedVec::new(format!("nexmark:seed={}x{partitions}", config.seed), parts)
                .expect("partitions >= 1 and uniform streams"),
        )
    }

    /// Default configuration with the given seed.
    pub fn seeded(seed: u64, events: u64, partitions: usize) -> PartitionedNexmarkSource {
        PartitionedNexmarkSource::new(
            GeneratorConfig {
                seed,
                ..GeneratorConfig::default()
            },
            events,
            partitions,
        )
    }
}

impl PartitionedSource for PartitionedNexmarkSource {
    fn name(&self) -> &str {
        self.0.name()
    }

    fn streams(&self) -> &[String] {
        self.0.streams()
    }

    fn partitions(&self) -> usize {
        self.0.partitions()
    }

    fn poll_partition(&mut self, partition: usize, max_events: usize) -> Result<SourceBatch> {
        self.0.poll_partition(partition, max_events)
    }

    fn offset(&self, partition: usize) -> u64 {
        self.0.offset(partition)
    }

    fn seek(&mut self, partition: usize, offset: u64) -> Result<()> {
        self.0.seek(partition, offset)
    }
}

impl Source for NexmarkSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn streams(&self) -> &[String] {
        &self.streams
    }

    fn poll_batch(&mut self, max_events: usize) -> Result<SourceBatch> {
        if self.remaining == 0 {
            return Ok(SourceBatch::empty(SourceStatus::Finished));
        }
        let n = (max_events as u64).min(self.remaining);
        let mut batch = SourceBatch::empty(SourceStatus::Ready);
        let mut last_ptime = None;
        for _ in 0..n {
            let (ptime, event) = self.generator.next_event();
            let (stream, row) = match event {
                NexmarkEvent::Person(p) => (0, p.to_row()),
                NexmarkEvent::Auction(a) => (1, a.to_row()),
                NexmarkEvent::Bid(b) => (2, b.to_row()),
            };
            batch.events.push(SourceEvent {
                stream,
                ptime,
                change: Change::insert(row),
            });
            last_ptime = Some(ptime);
        }
        self.remaining -= n;
        if let Some(p) = last_ptime {
            // All event times lie in [ptime − max_skew, ptime] and ptime is
            // non-decreasing, so trailing by max_skew plus 1ms (ptimes may
            // repeat when the inter-event gap is zero) is a valid watermark
            // for all three streams.
            batch.watermark = Some(p - self.config.max_skew - Duration(1));
        }
        if self.remaining == 0 {
            batch.status = SourceStatus::Finished;
        }
        Ok(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onesql_types::Value;

    /// The partitions must behave like one workload: entity IDs are
    /// globally unique, not restarted per partition (a Bid→Auction join
    /// over colliding IDs would fabricate matches).
    #[test]
    fn partitioned_entity_ids_are_disjoint_across_partitions() {
        let mut source = PartitionedNexmarkSource::seeded(9, 2_000, 4);
        let mut person_ids = std::collections::BTreeSet::new();
        let mut auction_ids = std::collections::BTreeSet::new();
        for p in 0..source.partitions() {
            loop {
                let batch = source.poll_partition(p, 256).unwrap();
                for event in &batch.events {
                    let id = match event.change.row.value(0).unwrap() {
                        Value::Int(id) => *id,
                        other => panic!("id column held {other:?}"),
                    };
                    match event.stream {
                        0 => assert!(person_ids.insert(id), "duplicate person {id}"),
                        1 => assert!(auction_ids.insert(id), "duplicate auction {id}"),
                        _ => {} // bids reference, not define, entities
                    };
                }
                if batch.status == SourceStatus::Finished {
                    break;
                }
            }
        }
        assert!(!person_ids.is_empty() && !auction_ids.is_empty());
    }
}
