//! CQL relation-to-stream operators.
//!
//! Over a sequence of instantaneous relations `R(T)` (§2.1.1):
//!
//! - `Istream(R)` contains `(r, T)` when `r ∈ R(T)` but `r ∉ R(T-1)`;
//! - `Dstream(R)` contains `(r, T)` when `r ∈ R(T-1)` but `r ∉ R(T)`;
//! - `Rstream(R)` contains `(r, T)` whenever `r ∈ R(T)`.
//!
//! These operate on multisets: multiplicities difference per CQL's bag
//! semantics.

use onesql_tvr::Bag;
use onesql_types::{Row, Ts};

/// `Istream`: rows inserted at each evaluation, relative to the previous.
pub fn istream(evaluations: &[(Ts, Bag)]) -> Vec<(Ts, Row)> {
    diff_stream(evaluations, false)
}

/// `Dstream`: rows deleted at each evaluation, relative to the previous.
pub fn dstream(evaluations: &[(Ts, Bag)]) -> Vec<(Ts, Row)> {
    diff_stream(evaluations, true)
}

/// `Rstream`: every row of every evaluation, stamped with its time.
pub fn rstream(evaluations: &[(Ts, Bag)]) -> Vec<(Ts, Row)> {
    let mut out = Vec::new();
    for (t, bag) in evaluations {
        for row in bag.rows() {
            out.push((*t, row.clone()));
        }
    }
    out
}

fn diff_stream(evaluations: &[(Ts, Bag)], deletions: bool) -> Vec<(Ts, Row)> {
    let mut out = Vec::new();
    let empty = Bag::new();
    let mut prev = &empty;
    for (t, bag) in evaluations {
        let changes = prev.diff(bag);
        for change in changes {
            let (wanted, count) = if deletions {
                (change.diff < 0, (-change.diff).max(0))
            } else {
                (change.diff > 0, change.diff.max(0))
            };
            if wanted {
                for _ in 0..count {
                    out.push((*t, change.row.clone()));
                }
            }
        }
        prev = bag;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use onesql_types::row;

    fn evals() -> Vec<(Ts, Bag)> {
        vec![
            (Ts(1), Bag::from_rows(vec![row!("a")])),
            (Ts(2), Bag::from_rows(vec![row!("a"), row!("b")])),
            (Ts(3), Bag::from_rows(vec![row!("b")])),
        ]
    }

    #[test]
    fn istream_reports_insertions() {
        assert_eq!(
            istream(&evals()),
            vec![(Ts(1), row!("a")), (Ts(2), row!("b"))]
        );
    }

    #[test]
    fn dstream_reports_deletions() {
        assert_eq!(dstream(&evals()), vec![(Ts(3), row!("a"))]);
    }

    #[test]
    fn rstream_reports_everything() {
        assert_eq!(
            rstream(&evals()),
            vec![
                (Ts(1), row!("a")),
                (Ts(2), row!("a")),
                (Ts(2), row!("b")),
                (Ts(3), row!("b")),
            ]
        );
    }

    #[test]
    fn multiplicities_respected() {
        let evals = vec![
            (Ts(1), Bag::from_rows(vec![row!("a"), row!("a")])),
            (Ts(2), Bag::from_rows(vec![row!("a")])),
        ];
        // One copy deleted at T=2.
        assert_eq!(dstream(&evals), vec![(Ts(2), row!("a"))]);
        assert_eq!(
            istream(&evals),
            vec![(Ts(1), row!("a")), (Ts(1), row!("a"))]
        );
    }

    #[test]
    fn empty_input() {
        assert!(istream(&[]).is_empty());
        assert!(dstream(&[]).is_empty());
        assert!(rstream(&[]).is_empty());
    }
}
