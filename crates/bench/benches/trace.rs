//! B11 — flight-recorder overhead on the ingest path.
//!
//! The B8/B10 ingest workloads, run three ways: **bare** (no label, no
//! sink — spans are inert), **trace-off** (a labelled driver, tracing
//! still uninstalled: every span site pays exactly one relaxed atomic
//! load), and **trace-on** (the [`FlightRecorder`] installed at full
//! sampling, every driver span recorded). The contract this bench
//! enforces: trace-off costs **at most ~1%** over bare, trace-on **at
//! most ~5%**. Results are recorded in `BENCH_trace.json`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use onesql_connect::{channel, NexmarkSource};
use onesql_core::observe::{self, FlightRecorder};
use onesql_core::{Engine, StreamBuilder};
use onesql_types::{row, DataType, Ts};

const N: usize = 20_000;
const SQL: &str = "SELECT item, price FROM Bid WHERE price > 10";
const LABEL: &str = "bench_trace";

fn bid_engine() -> Engine {
    let mut engine = Engine::new();
    engine.register_stream(
        "Bid",
        StreamBuilder::new()
            .event_time_column("bidtime")
            .column("price", DataType::Int)
            .column("item", DataType::String),
    );
    engine
}

fn run_channel(labelled: bool) -> u64 {
    let mut engine = bid_engine();
    let (publisher, source) = channel("Bid", N + 1);
    engine.attach_source(Box::new(source)).unwrap();
    for i in 0..N as i64 {
        publisher
            .insert(Ts(i), row!(Ts(i), i % 100, "item"))
            .unwrap();
    }
    drop(publisher);
    let mut pipeline = engine.run_pipeline(SQL).unwrap();
    if labelled {
        pipeline.set_label(LABEL);
    }
    pipeline.run().unwrap().events_in
}

fn run_nexmark(labelled: bool) -> u64 {
    let mut engine = Engine::new();
    onesql_connect::register_nexmark_streams(&mut engine);
    engine
        .attach_source(Box::new(NexmarkSource::seeded(7, N as u64)))
        .unwrap();
    let mut pipeline = engine
        .run_pipeline("SELECT auction, price FROM Bid WHERE price > 100")
        .unwrap();
    if labelled {
        pipeline.set_label(LABEL);
    }
    pipeline.run().unwrap().events_in
}

/// Best-of-`rounds` wall clock: minimum is the noise-robust statistic for
/// a same-process A/B comparison on a shared host.
fn min_time(rounds: usize, mut f: impl FnMut() -> u64) -> Duration {
    (0..rounds)
        .map(|_| {
            let start = Instant::now();
            assert_eq!(f(), N as u64);
            start.elapsed()
        })
        .min()
        .unwrap()
}

fn bench_trace(c: &mut Criterion) {
    // A private ring so the bench never pollutes the process recorder
    // that `SHOW TRACE` reads.
    let ring = Arc::new(FlightRecorder::new(1 << 16));

    let mut group = c.benchmark_group("trace");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("channel_bare", |b| {
        b.iter(|| assert_eq!(run_channel(false), N as u64))
    });
    group.bench_function("channel_trace_off", |b| {
        b.iter(|| assert_eq!(run_channel(true), N as u64))
    });
    observe::set_sample(1);
    observe::install(ring.clone());
    group.bench_function("channel_trace_on", |b| {
        b.iter(|| assert_eq!(run_channel(true), N as u64))
    });
    observe::uninstall();
    group.finish();

    // The enforced contract, measured back-to-back so machine noise hits
    // all sides equally: trace-off within 1% of bare, trace-on within 5%
    // (each plus a 500us absolute floor so micro-jitter cannot fail a
    // sub-ms run).
    for (name, f) in [
        ("channel", run_channel as fn(bool) -> u64),
        ("nexmark", run_nexmark as fn(bool) -> u64),
    ] {
        let bare = min_time(10, || f(false));
        let off = min_time(10, || f(true));
        observe::set_sample(1);
        observe::install(ring.clone());
        let on = min_time(10, || f(true));
        observe::uninstall();
        observe::hub().clear(LABEL);
        assert!(!ring.is_empty(), "trace-on actually recorded spans");
        ring.clear();
        let off_budget = bare + bare / 100 + Duration::from_micros(500);
        let on_budget = bare + bare * 5 / 100 + Duration::from_micros(500);
        println!(
            "trace overhead [{name}]: bare {bare:?}, off {off:?} (budget {off_budget:?}), \
             on {on:?} (budget {on_budget:?})"
        );
        assert!(
            off <= off_budget,
            "disabled tracing on '{name}' exceeds 1% over bare: {bare:?} vs {off:?}"
        );
        assert!(
            on <= on_budget,
            "enabled tracing on '{name}' exceeds 5% over bare: {bare:?} vs {on:?}"
        );
    }
}

criterion_group!(benches, bench_trace);
criterion_main!(benches);
