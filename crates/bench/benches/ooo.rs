//! B6 — In-order buffering (CQL/STREAM) vs. direct out-of-order processing
//! (§2.1.1 vs. §3.2).
//!
//! STREAM "accommodates out-of-order data by buffering it on intake"; the
//! paper's approach computes directly on out-of-order data with watermarks.
//! We sweep the skew bound and compare (a) the CQL pipeline's buffering
//! cost (peak buffered tuples — released only at heartbeats, i.e. added
//! latency) against (b) the direct engine's flat behavior. Expected shape:
//! peak buffer grows linearly with the skew bound; the direct engine's
//! state is governed by open windows, not skew.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use onesql_bench::{nexmark_engine, nexmark_events, run_nexmark};
use onesql_cql::CqlQuery7;
use onesql_nexmark::NexmarkEvent;
use onesql_types::{Duration, Ts};

const N: usize = 4_000;

fn cql_with_skew(events: &[(Ts, NexmarkEvent)], skew: Duration) -> usize {
    let mut q = CqlQuery7::new();
    let mut max_seen = Ts::MIN;
    for (_, event) in events {
        if let NexmarkEvent::Bid(b) = event {
            q.bid(b.date_time, b.price, "item");
            max_seen = max_seen.max(b.date_time);
            q.heartbeat(max_seen - skew);
        }
    }
    q.finish(max_seen + Duration::from_minutes(10));
    q.peak_buffered()
}

fn direct_with_skew(events: &[(Ts, NexmarkEvent)], skew: Duration) -> usize {
    let engine = nexmark_engine();
    let mut q = engine
        .execute(
            "SELECT wend, MAX(price) FROM Tumble(data => TABLE(Bid), \
             timecol => DESCRIPTOR(dateTime), dur => INTERVAL '10' MINUTE) \
             GROUP BY wend",
        )
        .unwrap();
    run_nexmark(&mut q, events, skew);
    q.state_metrics().keys
}

fn bench_ooo(c: &mut Criterion) {
    eprintln!("\nB6 buffering cost vs. skew ({N} events):");
    eprintln!(
        "  {:>10} {:>24} {:>26}",
        "skew", "CQL peak buffered tuples", "direct engine state (keys)"
    );
    for secs in [1i64, 10, 60, 300] {
        let skew = Duration::from_seconds(secs);
        let events = nexmark_events(N, 13, skew);
        eprintln!(
            "  {:>10} {:>24} {:>26}",
            format!("{secs}s"),
            cql_with_skew(&events, skew),
            direct_with_skew(&events, skew)
        );
    }

    let mut group = c.benchmark_group("out_of_order");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));
    for secs in [1i64, 60] {
        let skew = Duration::from_seconds(secs);
        let events = nexmark_events(N, 13, skew);
        group.bench_with_input(BenchmarkId::new("cql_buffered", secs), &events, |b, e| {
            b.iter(|| cql_with_skew(e, skew))
        });
        group.bench_with_input(BenchmarkId::new("direct", secs), &events, |b, e| {
            b.iter(|| direct_with_skew(e, skew))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ooo);
criterion_main!(benches);
