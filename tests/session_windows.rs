//! End-to-end session windows through SQL (the paper's §8 extension:
//! "transitive closure sessions (periods of contiguous activity)").

use onesql_core::{Engine, StreamBuilder};
use onesql_types::{row, DataType, Ts};

fn engine() -> Engine {
    let mut e = Engine::new();
    e.register_stream(
        "Click",
        StreamBuilder::new()
            .column("user_id", DataType::Int)
            .column("page", DataType::String)
            .event_time_column("ts"),
    );
    e
}

const SESSION_SQL: &str = "\
SELECT user_id, wstart, wend, COUNT(*) AS clicks
FROM Session(data => TABLE(Click), timecol => DESCRIPTOR(ts),
             gap => INTERVAL '5' MINUTE)
GROUP BY user_id, wstart, wend";

#[test]
fn contiguous_activity_forms_one_session() {
    let e = engine();
    let mut q = e.execute(SESSION_SQL).unwrap();
    // User 7 clicks at 8:00, 8:03, 8:06 (each within 5m of the last), then
    // again at 8:30.
    for (i, m) in [0i64, 3, 6, 30].iter().enumerate() {
        q.insert(
            "Click",
            Ts::hm(8, 40 + i as i64),
            row!(7i64, "home", Ts::hm(8, *m)),
        )
        .unwrap();
    }
    q.finish(Ts::hm(9, 0)).unwrap();
    assert_eq!(
        q.table().unwrap(),
        vec![
            // Session 1: [8:00, 8:06 + 5m) with 3 clicks.
            row!(7i64, Ts::hm(8, 0), Ts::hm(8, 11), 3i64),
            // Session 2: the lone 8:30 click.
            row!(7i64, Ts::hm(8, 30), Ts::hm(8, 35), 1i64),
        ]
    );
}

#[test]
fn sessions_are_per_user() {
    let e = engine();
    let mut q = e.execute(SESSION_SQL).unwrap();
    q.insert("Click", Ts(1), row!(1i64, "a", Ts::hm(8, 0)))
        .unwrap();
    q.insert("Click", Ts(2), row!(2i64, "a", Ts::hm(8, 2)))
        .unwrap();
    q.finish(Ts(10)).unwrap();
    let rows = q.table().unwrap();
    assert_eq!(rows.len(), 2, "different users never merge: {rows:?}");
}

#[test]
fn out_of_order_bridging_event_merges_sessions() {
    let e = engine();
    let mut q = e.execute(SESSION_SQL).unwrap();
    // Two distant bursts arrive first, the bridging click arrives late.
    q.insert("Click", Ts(1), row!(1i64, "a", Ts::hm(8, 0)))
        .unwrap();
    q.insert("Click", Ts(2), row!(1i64, "b", Ts::hm(8, 8)))
        .unwrap();
    assert_eq!(q.table().unwrap().len(), 2);
    q.insert("Click", Ts(3), row!(1i64, "c", Ts::hm(8, 4)))
        .unwrap();
    q.finish(Ts(10)).unwrap();
    assert_eq!(
        q.table().unwrap(),
        vec![row!(1i64, Ts::hm(8, 0), Ts::hm(8, 13), 3i64)]
    );
}

#[test]
fn emit_after_watermark_finalizes_sessions() {
    let e = engine();
    let mut q = e
        .execute(&format!("{SESSION_SQL} EMIT STREAM AFTER WATERMARK"))
        .unwrap();
    q.insert("Click", Ts(1), row!(1i64, "a", Ts::hm(8, 0)))
        .unwrap();
    q.insert("Click", Ts(2), row!(1i64, "b", Ts::hm(8, 3)))
        .unwrap();
    assert!(q.stream_rows().unwrap().is_empty(), "gated until final");
    // Watermark past session end (8:08): the merged session materializes
    // once, final.
    q.watermark("Click", Ts(3), Ts::hm(8, 9)).unwrap();
    let rows = q.stream_rows().unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].row, row!(1i64, Ts::hm(8, 0), Ts::hm(8, 8), 2i64));
    assert!(!rows[0].undo);
}

#[test]
fn session_aggregates_sum_and_max() {
    let mut e = Engine::new();
    e.register_stream(
        "Purchase",
        StreamBuilder::new()
            .column("user_id", DataType::Int)
            .column("amount", DataType::Int)
            .event_time_column("ts"),
    );
    let mut q = e
        .execute(
            "SELECT user_id, wstart, wend, SUM(amount), MAX(amount)
             FROM Session(data => TABLE(Purchase), timecol => DESCRIPTOR(ts),
                          gap => INTERVAL '10' MINUTE)
             GROUP BY user_id, wstart, wend",
        )
        .unwrap();
    q.insert("Purchase", Ts(1), row!(1i64, 30i64, Ts::hm(9, 0)))
        .unwrap();
    q.insert("Purchase", Ts(2), row!(1i64, 50i64, Ts::hm(9, 5)))
        .unwrap();
    q.insert("Purchase", Ts(3), row!(1i64, 20i64, Ts::hm(9, 9)))
        .unwrap();
    q.finish(Ts(10)).unwrap();
    assert_eq!(
        q.table().unwrap(),
        vec![row!(1i64, Ts::hm(9, 0), Ts::hm(9, 19), 100i64, 50i64)]
    );
}

#[test]
fn session_without_window_keys_is_rejected() {
    let e = engine();
    let err = e
        .execute(
            "SELECT user_id, COUNT(*) FROM Session(data => TABLE(Click), \
             timecol => DESCRIPTOR(ts), gap => INTERVAL '5' MINUTE) GROUP BY user_id",
        )
        .unwrap_err();
    assert!(err.to_string().contains("wstart"), "{err}");
}
