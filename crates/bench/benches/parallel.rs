//! B7 — Keyed parallelism (Appendix B: the engines scale by hash-
//! partitioning keyed operators across workers).
//!
//! A grouped aggregation partitioned by its grouping key runs as n
//! independent pipelines; correctness is unchanged (partition-aligned keys
//! never interact) and throughput scales with cores until coordination
//! dominates. Expected shape: speedup > 1 from 1 → 2 → 4 partitions on a
//! multi-core host, with identical results.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use onesql_core::{Engine, PartitionedQuery, StreamBuilder};
use onesql_types::{row, DataType, Ts};

const SQL: &str = "SELECT auction, COUNT(*), SUM(price), MAX(price) FROM Bid GROUP BY auction";
const N: i64 = 20_000;
const KEYS: i64 = 256;

fn engine() -> Engine {
    let mut e = Engine::new();
    e.register_stream(
        "Bid",
        StreamBuilder::new()
            .column("auction", DataType::Int)
            .column("price", DataType::Int)
            .event_time_column("ts"),
    );
    e
}

fn run(partitions: usize) -> usize {
    let e = engine();
    let pq = PartitionedQuery::start(&e, SQL, partitions, 0).unwrap();
    for i in 0..N {
        pq.insert("Bid", Ts(i), row!(i % KEYS, i * 31 % 997, Ts(i)))
            .unwrap();
    }
    pq.finish(Ts(N)).unwrap().len()
}

fn bench_parallel(c: &mut Criterion) {
    // Sanity: identical results across partition counts.
    let baseline = run(1);
    for p in [2usize, 4] {
        assert_eq!(run(p), baseline, "partitioned result diverged at {p}");
    }
    eprintln!("\nB7 partitioned aggregation: {baseline} groups over {N} events");

    let mut group = c.benchmark_group("parallel_partitions");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));
    for partitions in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(partitions),
            &partitions,
            |b, &p| b.iter(|| run(p)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
