//! B2 — Changelog encodings: retraction vs. upsert streams (App. B.2.3).
//!
//! "While retraction streams are more general because they do not require a
//! unique key, they are less efficient than upsert streams." We measure
//! both directions of the conversion and report the message-count ratio.
//! Expected shape: upsert message count ≈ ⅔ of the retraction count for an
//! update-heavy keyed history (each update collapses DELETE+INSERT into one
//! UPSERT), and conversion throughput in the millions of changes/s.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use onesql_tvr::{retractions_to_upserts, upserts_to_retractions, Change};
use onesql_types::{row, Row};

/// A keyed history of `n` operations over `keys` keys where every
/// operation after the first per key is an update (DELETE + INSERT).
fn keyed_history(n: usize, keys: i64) -> Vec<Change> {
    let mut live: std::collections::BTreeMap<i64, i64> = Default::default();
    let mut out = Vec::with_capacity(2 * n);
    let mut state = 0x9E3779B97F4A7C15u64;
    for i in 0..n {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let key = (state >> 33) as i64 % keys;
        let value = i as i64;
        if let Some(old) = live.insert(key, value) {
            out.push(Change::retract(kv(key, old)));
        }
        out.push(Change::insert(kv(key, value)));
    }
    out
}

fn kv(k: i64, v: i64) -> Row {
    row!(k, v)
}

fn bench_changelog(c: &mut Criterion) {
    let history = keyed_history(20_000, 64);
    let upserts = retractions_to_upserts(&history, &[0]).unwrap();
    eprintln!(
        "\nB2 message counts (20k ops, 64 keys): retraction stream = {}, \
         upsert stream = {} ({:.2}x smaller)",
        history.len(),
        upserts.len(),
        history.len() as f64 / upserts.len() as f64
    );

    let mut group = c.benchmark_group("changelog_encoding");
    for n in [1_000usize, 10_000] {
        let history = keyed_history(n, 64);
        group.bench_with_input(
            BenchmarkId::new("retractions_to_upserts", n),
            &history,
            |b, h| b.iter(|| retractions_to_upserts(h, &[0]).unwrap()),
        );
        let ups = retractions_to_upserts(&history, &[0]).unwrap();
        group.bench_with_input(
            BenchmarkId::new("upserts_to_retractions", n),
            &ups,
            |b, u| b.iter(|| upserts_to_retractions(u).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_changelog);
criterion_main!(benches);
