//! The executor: an operator tree driven by a virtual processing-time clock.

use onesql_state::StateMetrics;
use onesql_time::Watermark;
use onesql_tvr::{Changelog, Element};
use onesql_types::{Duration, Error, Result, SchemaRef, Ts};

use crate::operator::Operator;

/// Execution configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecConfig {
    /// Allowed lateness for event-time groupings (Extension 2 notes the
    /// practical need); groups stay open this long past the watermark.
    pub allowed_lateness: Duration,
}

/// Identifies one source leaf of a compiled pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceInfo {
    /// Source index, usable with [`Executor::feed_source`].
    pub id: usize,
    /// Catalog table this leaf scans. Multiple leaves may scan the same
    /// table (NEXMark Q7 scans `Bid` twice); [`Executor::feed`] fans out.
    pub table: String,
    /// `AS OF SYSTEM TIME` snapshot point, if any.
    pub as_of: Option<Ts>,
}

/// A node of the compiled operator tree.
pub struct OpNode {
    /// The operator.
    pub op: Box<dyn Operator>,
    /// Child subtrees; child `i` feeds the operator's port `i`.
    pub children: Vec<OpNode>,
    /// Present iff this leaf is a table/stream source.
    pub source: Option<SourceInfo>,
}

impl OpNode {
    /// A leaf node.
    pub fn leaf(op: Box<dyn Operator>, source: Option<SourceInfo>) -> OpNode {
        OpNode {
            op,
            children: vec![],
            source,
        }
    }

    /// An interior node.
    pub fn unary(op: Box<dyn Operator>, child: OpNode) -> OpNode {
        OpNode {
            op,
            children: vec![child],
            source: None,
        }
    }

    /// A two-input node.
    pub fn binary(op: Box<dyn Operator>, left: OpNode, right: OpNode) -> OpNode {
        OpNode {
            op,
            children: vec![left, right],
            source: None,
        }
    }

    fn initialize(&mut self, now: Ts, out: &mut Vec<Element>) -> Result<()> {
        let mut child_out = Vec::new();
        for (port, child) in self.children.iter_mut().enumerate() {
            child_out.clear();
            child.initialize(now, &mut child_out)?;
            for e in child_out.drain(..) {
                self.op.process(port, e, now, out)?;
            }
        }
        self.op.initialize(now, out)
    }

    fn feed(
        &mut self,
        source_id: usize,
        elem: &Element,
        now: Ts,
        out: &mut Vec<Element>,
    ) -> Result<()> {
        if let Some(info) = &self.source {
            if info.id == source_id {
                self.op.process(0, elem.clone(), now, out)?;
            }
            return Ok(());
        }
        let mut child_out = Vec::new();
        for (port, child) in self.children.iter_mut().enumerate() {
            child_out.clear();
            child.feed(source_id, elem, now, &mut child_out)?;
            for e in child_out.drain(..) {
                self.op.process(port, e, now, out)?;
            }
        }
        Ok(())
    }

    fn tick(&mut self, now: Ts, out: &mut Vec<Element>) -> Result<()> {
        let mut child_out = Vec::new();
        for (port, child) in self.children.iter_mut().enumerate() {
            child_out.clear();
            child.tick(now, &mut child_out)?;
            for e in child_out.drain(..) {
                self.op.process(port, e, now, out)?;
            }
        }
        self.op.on_processing_time(now, out)
    }

    fn next_timer(&self) -> Option<Ts> {
        let own = self.op.next_timer();
        let children = self.children.iter().filter_map(OpNode::next_timer).min();
        match (own, children) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn metrics(&self) -> StateMetrics {
        let mut m = self.op.state_metrics();
        for c in &self.children {
            let cm = c.metrics();
            m.keys += cm.keys;
            m.encoded_bytes += cm.encoded_bytes;
        }
        m
    }

    fn collect_sources<'a>(&'a self, out: &mut Vec<&'a SourceInfo>) {
        if let Some(info) = &self.source {
            out.push(info);
        }
        for c in &self.children {
            c.collect_sources(out);
        }
    }

    fn collect_checkpoints(&self, out: &mut Vec<Option<onesql_state::Checkpoint>>) -> Result<()> {
        out.push(self.op.checkpoint()?);
        for c in &self.children {
            c.collect_checkpoints(out)?;
        }
        Ok(())
    }

    fn restore_checkpoints(
        &mut self,
        cps: &[Option<onesql_state::Checkpoint>],
        idx: &mut usize,
    ) -> Result<()> {
        let cp = cps
            .get(*idx)
            .ok_or_else(|| Error::exec("checkpoint has fewer operator entries than the plan"))?;
        *idx += 1;
        match cp {
            Some(cp) => self.op.restore(cp)?,
            None => {
                // Stateless in the checkpoint; must be stateless here too.
                if self.op.checkpoint()?.is_some() {
                    return Err(Error::exec(format!(
                        "checkpoint/plan mismatch: operator {} expects state",
                        self.op.name()
                    )));
                }
            }
        }
        for c in &mut self.children {
            c.restore_checkpoints(cps, idx)?;
        }
        Ok(())
    }
}

/// Executes a compiled pipeline deterministically: callers feed elements in
/// processing-time order; the executor stamps root outputs into the result
/// [`Changelog`] and steps the clock through pending materialization
/// deadlines so `ptime` metadata is exact.
pub struct Executor {
    root: OpNode,
    schema: SchemaRef,
    now: Ts,
    output: Changelog,
    watermark: Watermark,
    initialized: bool,
}

impl Executor {
    /// Wrap a compiled operator tree.
    pub fn new(root: OpNode, schema: SchemaRef) -> Executor {
        Executor {
            root,
            schema,
            now: Ts(0),
            output: Changelog::new(),
            watermark: Watermark::MIN,
            initialized: false,
        }
    }

    /// Output schema.
    pub fn schema(&self) -> SchemaRef {
        self.schema.clone()
    }

    /// All source leaves in tree order.
    pub fn sources(&self) -> Vec<SourceInfo> {
        let mut out = Vec::new();
        self.root.collect_sources(&mut out);
        out.into_iter().cloned().collect()
    }

    /// Current processing time.
    pub fn now(&self) -> Ts {
        self.now
    }

    /// The latest watermark observed at the root (completeness of the
    /// output relation).
    pub fn output_watermark(&self) -> Watermark {
        self.watermark
    }

    /// The stamped output changelog (the result TVR's stream encoding).
    pub fn changelog(&self) -> &Changelog {
        &self.output
    }

    /// Aggregate state footprint across all operators.
    pub fn state_metrics(&self) -> StateMetrics {
        self.root.metrics()
    }

    /// Run initialization (constant relations, global-aggregate seeds).
    /// Idempotent; runs automatically on first feed if not called.
    pub fn initialize(&mut self) -> Result<()> {
        if self.initialized {
            return Ok(());
        }
        self.initialized = true;
        let mut out = Vec::new();
        let now = self.now;
        self.root.initialize(now, &mut out)?;
        self.record(out);
        Ok(())
    }

    /// Advance the processing-time clock to `to`, firing any delayed
    /// materialization deadlines on the way (each at its exact instant).
    ///
    /// A deadline at exactly `to` does *not* fire yet: elements arriving at
    /// processing time `to` must be processed first (Listing 14's 8:18
    /// emission reflects the 8:18 input). It fires as soon as the clock
    /// moves past `to`, stamped at the deadline.
    pub fn advance_to(&mut self, to: Ts) -> Result<()> {
        self.initialize()?;
        if to < self.now {
            return Err(Error::exec(format!(
                "processing time may not regress: now {} > target {}",
                self.now, to
            )));
        }
        loop {
            match self.root.next_timer() {
                Some(deadline) if deadline < to => {
                    self.now = self.now.max(deadline);
                    let mut out = Vec::new();
                    let now = self.now;
                    self.root.tick(now, &mut out)?;
                    self.record(out);
                }
                _ => break,
            }
        }
        self.now = to;
        Ok(())
    }

    /// Feed one element into a specific source leaf at processing time
    /// `ptime`.
    pub fn feed_source(&mut self, source_id: usize, ptime: Ts, elem: Element) -> Result<()> {
        self.advance_to(ptime)?;
        let mut out = Vec::new();
        let now = self.now;
        self.root.feed(source_id, &elem, now, &mut out)?;
        self.record(out);
        Ok(())
    }

    /// Feed one element into every source leaf scanning `table`.
    pub fn feed(&mut self, table: &str, ptime: Ts, elem: Element) -> Result<()> {
        self.advance_to(ptime)?;
        let ids: Vec<usize> = self
            .sources()
            .iter()
            .filter(|s| s.table.eq_ignore_ascii_case(table))
            .map(|s| s.id)
            .collect();
        if ids.is_empty() {
            // The query does not read this table; ignore.
            return Ok(());
        }
        for id in ids {
            let mut out = Vec::new();
            let now = self.now;
            self.root.feed(id, &elem, now, &mut out)?;
            self.record(out);
        }
        Ok(())
    }

    /// Fire any remaining timers and deliver final watermarks to all
    /// sources: the input will never change again.
    pub fn finish(&mut self, at: Ts) -> Result<()> {
        self.advance_to(at)?;
        for info in self.sources() {
            self.feed_source(info.id, at, Element::Watermark(Watermark::MAX))?;
        }
        // Final watermark may have armed last-gasp delay timers.
        while let Some(deadline) = self.root.next_timer() {
            self.now = self.now.max(deadline);
            let mut out = Vec::new();
            let now = self.now;
            self.root.tick(now, &mut out)?;
            self.record(out);
        }
        Ok(())
    }

    /// Take a consistent checkpoint of the whole pipeline: every stateful
    /// operator's state plus the clock and output watermark (Appendix
    /// B.2.1's periodic checkpoints). Call between feeds, never mid-feed.
    pub fn checkpoint(&self) -> Result<onesql_state::Checkpoint> {
        use onesql_state::Codec;
        let mut ops = Vec::new();
        self.root.collect_checkpoints(&mut ops)?;
        let op_bytes: Vec<Option<bytes::Bytes>> = ops.into_iter().map(|o| o.map(|c| c.0)).collect();
        let snapshot = (self.now, self.watermark.ts(), op_bytes);
        Ok(onesql_state::Checkpoint(snapshot.to_bytes()))
    }

    /// Restore a pipeline compiled from the *same plan* to the exact state
    /// of a checkpoint. The output changelog restarts empty: it records
    /// changes from the restore point onward (the pre-checkpoint prefix is
    /// already owned by whoever consumed it).
    pub fn restore(&mut self, checkpoint: &onesql_state::Checkpoint) -> Result<()> {
        use onesql_state::Codec;
        type Snapshot = (Ts, Ts, Vec<Option<bytes::Bytes>>);
        let (now, wm, op_bytes): Snapshot = Codec::from_bytes(&checkpoint.0)?;
        let cps: Vec<Option<onesql_state::Checkpoint>> = op_bytes
            .into_iter()
            .map(|o| o.map(onesql_state::Checkpoint))
            .collect();
        let mut idx = 0;
        self.root.restore_checkpoints(&cps, &mut idx)?;
        if idx != cps.len() {
            return Err(Error::exec(
                "checkpoint has more operator entries than the plan",
            ));
        }
        self.now = now;
        self.watermark = Watermark(wm);
        self.output = Changelog::new();
        // A restored pipeline must not replay initialization effects
        // (constant rows, global-aggregate seeds) — they are part of the
        // checkpointed state.
        self.initialized = true;
        Ok(())
    }

    fn record(&mut self, elements: Vec<Element>) {
        for e in elements {
            match e {
                Element::Data(change) => {
                    if change.diff != 0 {
                        self.output.push(self.now, change);
                    }
                }
                Element::Watermark(wm) => {
                    self.watermark.advance_to(wm);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple::{Filter, Source};
    use onesql_plan::expr::{BinOp, ScalarExpr};
    use onesql_types::{row, DataType, Field, Schema};
    use std::sync::Arc;

    fn simple_executor() -> Executor {
        // Filter(price > 2) over a Bid(price) source.
        let source = OpNode::leaf(
            Box::new(Source),
            Some(SourceInfo {
                id: 0,
                table: "bid".into(),
                as_of: None,
            }),
        );
        let root = OpNode::unary(
            Box::new(Filter::new(ScalarExpr::binary(
                ScalarExpr::col(0),
                BinOp::Gt,
                ScalarExpr::lit(2i64),
            ))),
            source,
        );
        Executor::new(
            root,
            Arc::new(Schema::new(vec![Field::new("price", DataType::Int)])),
        )
    }

    #[test]
    fn feeds_and_stamps_ptime() {
        let mut ex = simple_executor();
        ex.feed("Bid", Ts::hm(8, 8), Element::insert(row!(3i64)))
            .unwrap();
        ex.feed("Bid", Ts::hm(8, 9), Element::insert(row!(1i64)))
            .unwrap();
        let log = ex.changelog();
        assert_eq!(log.len(), 1);
        assert_eq!(log.entries()[0].ptime, Ts::hm(8, 8));
    }

    #[test]
    fn processing_time_cannot_regress() {
        let mut ex = simple_executor();
        ex.advance_to(Ts::hm(8, 10)).unwrap();
        assert!(ex
            .feed("Bid", Ts::hm(8, 5), Element::insert(row!(3i64)))
            .is_err());
    }

    #[test]
    fn watermark_tracked_at_root() {
        let mut ex = simple_executor();
        ex.feed("Bid", Ts::hm(8, 7), Element::watermark(Ts::hm(8, 5)))
            .unwrap();
        assert_eq!(ex.output_watermark(), Watermark(Ts::hm(8, 5)));
    }

    #[test]
    fn unknown_table_feed_is_ignored() {
        let mut ex = simple_executor();
        ex.feed("Person", Ts(1), Element::insert(row!(1i64)))
            .unwrap();
        assert!(ex.changelog().is_empty());
    }

    #[test]
    fn sources_enumerated() {
        let ex = simple_executor();
        let sources = ex.sources();
        assert_eq!(sources.len(), 1);
        assert_eq!(sources[0].table, "bid");
    }

    #[test]
    fn finish_delivers_final_watermark() {
        let mut ex = simple_executor();
        ex.finish(Ts::hm(9, 0)).unwrap();
        assert!(ex.output_watermark().is_final());
    }
}
