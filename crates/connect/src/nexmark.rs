//! The NEXMark generator as a source: the benchmark's Person / Auction /
//! Bid mix streamed through the connector runtime.

use onesql_core::connect::{Source, SourceBatch, SourceEvent, SourceStatus};
use onesql_core::Engine;
use onesql_nexmark::model::{Auction, Bid, Person};
use onesql_nexmark::{GeneratorConfig, NexmarkEvent, NexmarkGenerator};
use onesql_tvr::Change;
use onesql_types::{Duration, Result};

/// Register the three NEXMark streams (and nothing else) on an engine,
/// with the model crate's schemas.
pub fn register_nexmark_streams(engine: &mut Engine) {
    engine.register_stream_schema("Person", Person::schema());
    engine.register_stream_schema("Auction", Auction::schema());
    engine.register_stream_schema("Bid", Bid::schema());
}

/// A bounded NEXMark workload as a source feeding `Person`, `Auction`,
/// and `Bid`.
///
/// Watermarking uses the generator's contract: every event's event time
/// lags its processing time by at most `max_skew`, so after emitting an
/// event at processing time `p` the source asserts a watermark of
/// `p − max_skew`.
pub struct NexmarkSource {
    name: String,
    streams: Vec<String>,
    generator: NexmarkGenerator,
    remaining: u64,
    config: GeneratorConfig,
}

impl NexmarkSource {
    /// A source producing `events` events under `config`.
    pub fn new(config: GeneratorConfig, events: u64) -> NexmarkSource {
        NexmarkSource {
            name: format!("nexmark:seed={}", config.seed),
            streams: vec![
                "Person".to_string(),
                "Auction".to_string(),
                "Bid".to_string(),
            ],
            generator: NexmarkGenerator::new(config.clone()),
            remaining: events,
            config,
        }
    }

    /// Default configuration with the given seed.
    pub fn seeded(seed: u64, events: u64) -> NexmarkSource {
        NexmarkSource::new(
            GeneratorConfig {
                seed,
                ..GeneratorConfig::default()
            },
            events,
        )
    }
}

impl Source for NexmarkSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn streams(&self) -> &[String] {
        &self.streams
    }

    fn poll_batch(&mut self, max_events: usize) -> Result<SourceBatch> {
        if self.remaining == 0 {
            return Ok(SourceBatch::empty(SourceStatus::Finished));
        }
        let n = (max_events as u64).min(self.remaining);
        let mut batch = SourceBatch::empty(SourceStatus::Ready);
        let mut last_ptime = None;
        for _ in 0..n {
            let (ptime, event) = self.generator.next_event();
            let (stream, row) = match event {
                NexmarkEvent::Person(p) => (0, p.to_row()),
                NexmarkEvent::Auction(a) => (1, a.to_row()),
                NexmarkEvent::Bid(b) => (2, b.to_row()),
            };
            batch.events.push(SourceEvent {
                stream,
                ptime,
                change: Change::insert(row),
            });
            last_ptime = Some(ptime);
        }
        self.remaining -= n;
        if let Some(p) = last_ptime {
            // All event times lie in [ptime − max_skew, ptime] and ptime is
            // non-decreasing, so trailing by max_skew plus 1ms (ptimes may
            // repeat when the inter-event gap is zero) is a valid watermark
            // for all three streams.
            batch.watermark = Some(p - self.config.max_skew - Duration(1));
        }
        if self.remaining == 0 {
            batch.status = SourceStatus::Finished;
        }
        Ok(batch)
    }
}
