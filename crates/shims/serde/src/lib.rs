//! Offline stand-in for `serde`.
//!
//! Exposes `Serialize` / `Deserialize` in both the trait and macro
//! namespaces so `use serde::{Serialize, Deserialize};` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged. The derives are
//! no-ops (see `serde_derive`); the traits are empty markers. If real
//! serialization is ever needed, replace these path dependencies with the
//! crates.io versions — no source changes required.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
