#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! Core data types for the `onesql` engine.
//!
//! This crate defines the dynamically-typed value model ([`Value`]), row and
//! schema representations ([`Row`], [`Schema`], [`Field`]), the temporal
//! scalar types ([`Ts`], [`Duration`]), and the shared error type
//! ([`Error`]). Everything else in the workspace builds on these.
//!
//! Design notes (see `DESIGN.md` §2):
//! - Event timestamps are ordinary data values of type
//!   [`DataType::Timestamp`]; whether a column is an *event-time column*
//!   (paper Extension 1) is schema metadata carried by [`Field::event_time`].
//! - [`Value`] has a total order (`Ord`) so values can serve as grouping and
//!   state keys directly; floats use IEEE total ordering.

pub mod column;
pub mod datatype;
pub mod error;
pub mod format;
pub mod row;
pub mod schema;
pub mod temporal;
pub mod value;

pub use column::{Column, ColumnBuilder, ColumnData};
pub use datatype::DataType;
pub use error::{Error, Result};
pub use format::{format_table, format_table_with_header};
pub use row::Row;
pub use schema::{Field, Schema, SchemaRef};
pub use temporal::{Duration, Ts};
pub use value::Value;
