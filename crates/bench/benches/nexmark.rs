//! B4 — NEXMark query throughput (§4; NEXMark is the paper's benchmark of
//! reference for stream query systems).
//!
//! End-to-end events/second for the query suite on the proposed engine,
//! plus the CQL baseline on Query 7 over the same bid stream. Expected
//! shape: stateless queries (q0–q2) fastest; windowed aggregations next;
//! the self-joining q7 slowest; CQL-q7 (one pass, tumbling, no incremental
//! updates) is cheap but produces only final answers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use onesql_bench::{nexmark_engine, nexmark_events, run_nexmark};
use onesql_cql::CqlQuery7;
use onesql_nexmark::{queries, NexmarkEvent};
use onesql_types::{Duration, Ts};

const N: usize = 5_000;
const SKEW: Duration = Duration(2_000);

fn run_sql(sql: &str, events: &[(Ts, NexmarkEvent)]) -> usize {
    let engine = nexmark_engine();
    let mut q = engine.execute(sql).unwrap();
    run_nexmark(&mut q, events, SKEW);
    q.changelog().len()
}

fn run_cql_q7(events: &[(Ts, NexmarkEvent)]) -> usize {
    let mut q = CqlQuery7::new();
    let mut max_seen = Ts::MIN;
    for (i, (_, event)) in events.iter().enumerate() {
        if let NexmarkEvent::Bid(b) = event {
            q.bid(b.date_time, b.price, &b.auction.to_string());
            max_seen = max_seen.max(b.date_time);
            // Periodic heartbeats at the skew bound, like STREAM's.
            if i % 64 == 0 {
                q.heartbeat(max_seen - SKEW);
            }
        }
    }
    q.finish(max_seen + Duration::from_minutes(10));
    q.results().unwrap().len()
}

fn bench_nexmark(c: &mut Criterion) {
    let events = nexmark_events(N, 3, SKEW);

    let suite: Vec<(&str, &str)> = queries::all()
        .into_iter()
        .filter(|(name, _)| *name != "q4_avg_by_category") // slowest join; covered by q3/q7
        .collect();

    eprintln!("\nB4 changelog sizes over {N} events:");
    for (name, sql) in &suite {
        eprintln!("  {name:>14}: {} output changes", run_sql(sql, &events));
    }
    eprintln!("  {:>14}: {} output rows", "q7_cql", run_cql_q7(&events));

    let mut group = c.benchmark_group("nexmark");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));
    for (name, sql) in &suite {
        group.bench_with_input(BenchmarkId::from_parameter(name), sql, |b, sql| {
            b.iter(|| run_sql(sql, &events));
        });
    }
    group.bench_function("q7_cql_baseline", |b| b.iter(|| run_cql_q7(&events)));
    group.finish();
}

criterion_group!(benches, bench_nexmark);
criterion_main!(benches);
