//! Row-level changes: the unit of the stream encoding of a TVR.

use std::fmt;

use serde::{Deserialize, Serialize};

use onesql_types::Row;

/// A row paired with a signed multiplicity delta.
///
/// `diff = +1` is an `INSERT`, `diff = -1` a `DELETE`/retraction (§3.3.1).
/// General multiplicities let consolidation represent "insert the same row
/// twice" compactly and make the algebra of changes closed under addition.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Change {
    /// The affected row.
    pub row: Row,
    /// Signed multiplicity delta; never zero in a consolidated stream.
    pub diff: i64,
}

impl Change {
    /// An insertion of `row`.
    pub fn insert(row: Row) -> Change {
        Change { row, diff: 1 }
    }

    /// A deletion (retraction) of `row`.
    pub fn retract(row: Row) -> Change {
        Change { row, diff: -1 }
    }

    /// A change with an explicit multiplicity delta.
    pub fn with_diff(row: Row, diff: i64) -> Change {
        Change { row, diff }
    }

    /// True for insertions (positive diff).
    pub fn is_insert(&self) -> bool {
        self.diff > 0
    }

    /// True for retractions (negative diff).
    pub fn is_retract(&self) -> bool {
        self.diff < 0
    }

    /// The same change with the sign of `diff` flipped.
    pub fn negated(&self) -> Change {
        Change {
            row: self.row.clone(),
            diff: -self.diff,
        }
    }
}

impl fmt::Display for Change {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.diff >= 0 { "+" } else { "" };
        write!(f, "{} {}{}", self.row, sign, self.diff)
    }
}

/// Consolidate a batch of changes: sum diffs per distinct row and drop rows
/// whose net diff is zero. The result is sorted by row, making it a
/// canonical form (two change sets are semantically equal iff their
/// consolidations are equal).
pub fn consolidate(changes: Vec<Change>) -> Vec<Change> {
    use std::collections::BTreeMap;
    let mut acc: BTreeMap<Row, i64> = BTreeMap::new();
    for c in changes {
        let e = acc.entry(c.row).or_insert(0);
        *e += c.diff;
    }
    acc.into_iter()
        .filter(|(_, d)| *d != 0)
        .map(|(row, diff)| Change { row, diff })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use onesql_types::row;

    #[test]
    fn constructors() {
        let c = Change::insert(row!(1i64));
        assert!(c.is_insert());
        assert!(!c.is_retract());
        let r = Change::retract(row!(1i64));
        assert!(r.is_retract());
        assert_eq!(c.negated(), r);
        assert_eq!(Change::with_diff(row!(1i64), 3).diff, 3);
    }

    #[test]
    fn consolidate_cancels_and_sorts() {
        let cs = vec![
            Change::insert(row!(2i64)),
            Change::insert(row!(1i64)),
            Change::retract(row!(2i64)),
            Change::insert(row!(1i64)),
        ];
        let out = consolidate(cs);
        assert_eq!(out, vec![Change::with_diff(row!(1i64), 2)]);
    }

    #[test]
    fn consolidate_empty_and_identity() {
        assert!(consolidate(vec![]).is_empty());
        let cs = vec![Change::insert(row!(1i64)), Change::insert(row!(2i64))];
        assert_eq!(consolidate(cs.clone()), cs);
    }

    #[test]
    fn display() {
        assert_eq!(Change::insert(row!(1i64)).to_string(), "(1) +1");
        assert_eq!(Change::retract(row!(1i64)).to_string(), "(1) -1");
    }
}
