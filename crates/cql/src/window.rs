//! CQL stream-to-relation operators.
//!
//! A CQL window specification turns a stream into a sequence of
//! *instantaneous relations* (§2.1.1). `[RANGE l SLIDE s]` re-evaluates
//! every `s` and contains the tuples of the trailing `l`; `[ROWS n]`
//! contains the latest `n` tuples; `[NOW]` is `[RANGE 0]`; `[UNBOUNDED]`
//! accumulates everything.

use std::collections::VecDeque;

use onesql_tvr::Bag;
use onesql_types::{Duration, Row, Ts};

/// `[RANGE range SLIDE slide]`: a time-based sliding window over an
/// in-order stream. With `range == slide` this is CQL's tumbling form, as
/// in Listing 1's `Bid [RANGE 10 MINUTE SLIDE 10 MINUTE]`.
#[derive(Debug, Clone)]
pub struct RangeWindow {
    range: Duration,
    slide: Duration,
    /// In-order retained tuples (those that may still be in some window).
    tuples: VecDeque<(Ts, Row)>,
    /// Next slide boundary to evaluate at.
    next_eval: Option<Ts>,
}

impl RangeWindow {
    /// Create with window length `range` re-evaluated every `slide`.
    /// Panics if either is non-positive.
    pub fn new(range: Duration, slide: Duration) -> RangeWindow {
        assert!(range.is_positive(), "RANGE must be positive");
        assert!(slide.is_positive(), "SLIDE must be positive");
        RangeWindow {
            range,
            slide,
            tuples: VecDeque::new(),
            next_eval: None,
        }
    }

    /// Accept the next in-order tuple, returning any `(evaluation time,
    /// instantaneous relation)` pairs whose slide boundary it crossed.
    ///
    /// CQL's logical clock evaluates the relation at each multiple of
    /// `slide`; a window evaluated at time `t` contains tuples with
    /// timestamps in `(t - range, t]`.
    pub fn push(&mut self, ts: Ts, row: Row) -> Vec<(Ts, Bag)> {
        let mut out = Vec::new();
        // Emit evaluations for boundaries passed before this tuple.
        while let Some(eval_at) = self.next_eval {
            if ts > eval_at {
                out.push((eval_at, self.relation_at(eval_at)));
                self.next_eval = Some(eval_at + self.slide);
            } else {
                break;
            }
        }
        if self.next_eval.is_none() {
            // First tuple: next boundary is the first multiple of slide at
            // or after ts (a tuple exactly on a boundary belongs to that
            // evaluation — windows are `(t - range, t]`).
            let s = self.slide.millis();
            let floor = ts.millis().div_euclid(s) * s;
            let next = if floor == ts.millis() {
                floor
            } else {
                floor + s
            };
            self.next_eval = Some(Ts(next));
        }
        self.tuples.push_back((ts, row));
        out
    }

    /// Declare the stream finished at `end`: evaluate all remaining slide
    /// boundaries up to and including the first at or after `end`.
    pub fn finish(&mut self, end: Ts) -> Vec<(Ts, Bag)> {
        let mut out = Vec::new();
        while let Some(eval_at) = self.next_eval {
            let done = eval_at >= end;
            out.push((eval_at, self.relation_at(eval_at)));
            self.next_eval = Some(eval_at + self.slide);
            if done {
                self.next_eval = None;
                break;
            }
        }
        out
    }

    /// Number of retained tuples (state size).
    pub fn retained(&self) -> usize {
        self.tuples.len()
    }

    fn relation_at(&mut self, at: Ts) -> Bag {
        // Expire tuples that can never appear again: ts <= at - range.
        let cutoff = at.saturating_sub(self.range);
        while self.tuples.front().is_some_and(|(ts, _)| *ts <= cutoff) {
            self.tuples.pop_front();
        }
        self.tuples
            .iter()
            .filter(|(ts, _)| *ts <= at)
            .map(|(_, row)| row.clone())
            .collect()
    }
}

/// `[ROWS n]`: the latest `n` tuples.
#[derive(Debug, Clone)]
pub struct RowsWindow {
    n: usize,
    tuples: VecDeque<Row>,
}

impl RowsWindow {
    /// Create a window over the latest `n` rows.
    pub fn new(n: usize) -> RowsWindow {
        RowsWindow {
            n,
            tuples: VecDeque::new(),
        }
    }

    /// Accept the next in-order tuple; returns the new instantaneous
    /// relation (ROWS windows re-evaluate on every tuple).
    pub fn push(&mut self, row: Row) -> Bag {
        self.tuples.push_back(row);
        while self.tuples.len() > self.n {
            self.tuples.pop_front();
        }
        self.tuples.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onesql_types::row;

    const M10: Duration = Duration(10 * 60_000);

    #[test]
    fn tumbling_range_matches_listing_1_semantics() {
        // RANGE 10 SLIDE 10 over the paper's bids, fed in event-time order
        // (CQL requires in-order input).
        let mut w = RangeWindow::new(M10, M10);
        let bids = [
            (Ts::hm(8, 5), row!(4i64, "C")),
            (Ts::hm(8, 7), row!(2i64, "A")),
            (Ts::hm(8, 9), row!(5i64, "D")),
            (Ts::hm(8, 11), row!(3i64, "B")),
            (Ts::hm(8, 13), row!(1i64, "E")),
            (Ts::hm(8, 17), row!(6i64, "F")),
        ];
        let mut evals = Vec::new();
        for (ts, row) in bids {
            evals.extend(w.push(ts, row));
        }
        evals.extend(w.finish(Ts::hm(8, 20)));
        // Evaluations at 8:10 and 8:20.
        assert_eq!(evals.len(), 2);
        assert_eq!(evals[0].0, Ts::hm(8, 10));
        assert_eq!(evals[0].1.len(), 3); // C, A, D
        assert!(evals[0].1.contains(&row!(5i64, "D")));
        assert_eq!(evals[1].0, Ts::hm(8, 20));
        assert_eq!(evals[1].1.len(), 3); // B, E, F
        assert!(evals[1].1.contains(&row!(6i64, "F")));
    }

    #[test]
    fn sliding_window_overlaps() {
        // RANGE 10 SLIDE 5: each tuple can appear in two evaluations.
        let mut w = RangeWindow::new(M10, Duration(5 * 60_000));
        let mut evals = Vec::new();
        evals.extend(w.push(Ts::hm(8, 7), row!("A")));
        evals.extend(w.finish(Ts::hm(8, 20)));
        let containing: Vec<Ts> = evals
            .iter()
            .filter(|(_, bag)| bag.contains(&row!("A")))
            .map(|(t, _)| *t)
            .collect();
        assert_eq!(containing, vec![Ts::hm(8, 10), Ts::hm(8, 15)]);
    }

    #[test]
    fn expired_tuples_are_dropped_from_state() {
        let mut w = RangeWindow::new(M10, M10);
        w.push(Ts::hm(8, 5), row!("old"));
        w.push(Ts::hm(8, 25), row!("new")); // crosses 8:10 and 8:20
        let _ = w.finish(Ts::hm(8, 30));
        assert!(w.retained() <= 1);
    }

    #[test]
    fn window_boundary_inclusive_at_eval_exclusive_after_range() {
        // Tuple exactly at the boundary 8:10 belongs to the (8:00, 8:10]
        // evaluation in CQL (inclusive upper).
        let mut w = RangeWindow::new(M10, M10);
        w.push(Ts::hm(8, 10), row!("edge"));
        let evals = w.finish(Ts::hm(8, 10));
        assert_eq!(evals.len(), 1);
        assert!(evals[0].1.contains(&row!("edge")));
    }

    #[test]
    fn rows_window_keeps_latest_n() {
        let mut w = RowsWindow::new(2);
        assert_eq!(w.push(row!(1i64)).len(), 1);
        assert_eq!(w.push(row!(2i64)).len(), 2);
        let r = w.push(row!(3i64));
        assert_eq!(r.len(), 2);
        assert!(!r.contains(&row!(1i64)));
        assert!(r.contains(&row!(3i64)));
    }
}
