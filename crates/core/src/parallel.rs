//! Partitioned parallel execution.
//!
//! The paper's engines scale streaming SQL by hash-partitioning keyed
//! operators across workers (Appendix B: Flink's "distributed processing
//! engine", Beam's "massively parallel computation"). This module provides
//! the single-machine version of that strategy: a query whose result is
//! partitioned by some input column can run as `n` independent pipelines,
//! each fed the slice of input that hashes to it, with the output relation
//! being the disjoint union of the partitions' outputs.
//!
//! Soundness requires the *partition-alignment* property: rows that could
//! ever combine (same group, same join key) must land in the same
//! partition. The caller names the partitioning column per stream; the
//! classic use is partitioning by the grouping key of an aggregate, as in
//! the scaling benchmark.

use std::hash::{Hash, Hasher};

use crossbeam::channel::{bounded, Sender};

use onesql_types::{Error, Result, Row, Ts, Value};

use crate::engine::Engine;
use crate::query::RunningQuery;

/// A seeded FNV-1a hasher with a **stable** output: the same value hashes
/// to the same partition in every process, on every run.
///
/// `DefaultHasher` deliberately randomizes per process (HashDoS hardening),
/// which is poison for partition routing — a checkpoint written by one
/// process would replay rows into different partitions after restart,
/// silently corrupting keyed state. Partitioning keys come from the data,
/// not from untrusted map keys, so stability wins here.
///
/// Multi-byte writes fold little-endian so the result is also
/// architecture-independent.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The fixed seed behind [`PartitionedQuery::partition_of`]; folding it
/// into the initial state keeps routing distinct from other FNV uses.
const PARTITION_SEED: u64 = 0x0165_667b_19e3_779f;

impl StableHasher {
    /// A hasher seeded with `seed` (equal seeds give equal hash functions).
    pub fn seeded(seed: u64) -> StableHasher {
        let mut h = StableHasher { state: FNV_OFFSET };
        h.write_u64(seed);
        h
    }
}

impl Default for StableHasher {
    fn default() -> StableHasher {
        StableHasher::seeded(PARTITION_SEED)
    }
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    // Fixed-width writes go through little-endian bytes explicitly: the
    // std defaults use native endianness, which would make partition
    // assignment differ across architectures.
    fn write_u8(&mut self, i: u8) {
        self.write(&[i]);
    }
    fn write_u16(&mut self, i: u16) {
        self.write(&i.to_le_bytes());
    }
    fn write_u32(&mut self, i: u32) {
        self.write(&i.to_le_bytes());
    }
    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }
    fn write_u128(&mut self, i: u128) {
        self.write(&i.to_le_bytes());
    }
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
    fn write_i8(&mut self, i: i8) {
        self.write_u8(i as u8);
    }
    fn write_i16(&mut self, i: i16) {
        self.write_u16(i as u16);
    }
    fn write_i32(&mut self, i: i32) {
        self.write_u32(i as u32);
    }
    fn write_i64(&mut self, i: i64) {
        self.write_u64(i as u64);
    }
    fn write_i128(&mut self, i: i128) {
        self.write_u128(i as u128);
    }
    fn write_isize(&mut self, i: isize) {
        self.write_u64(i as u64);
    }
}

/// Commands sent to partition workers.
enum Cmd {
    Insert(String, Ts, Row),
    Watermark(String, Ts, Ts),
    Finish(Ts),
}

/// A query running as `n` hash-partitioned pipelines on worker threads.
pub struct PartitionedQuery {
    senders: Vec<Sender<Cmd>>,
    handles: Vec<std::thread::JoinHandle<Result<RunningQuery>>>,
    /// Which input column of each stream is the partition key.
    partition_col: usize,
}

impl PartitionedQuery {
    /// Start `partitions` pipelines of `sql` on the given engine,
    /// partitioning every stream by `partition_col` (an index into the
    /// stream's schema).
    pub fn start(
        engine: &Engine,
        sql: &str,
        partitions: usize,
        partition_col: usize,
    ) -> Result<PartitionedQuery> {
        if partitions == 0 {
            return Err(Error::exec("need at least one partition"));
        }
        let mut senders = Vec::with_capacity(partitions);
        let mut handles = Vec::with_capacity(partitions);
        for _ in 0..partitions {
            let mut query = engine.execute(sql)?;
            let (tx, rx) = bounded::<Cmd>(1024);
            senders.push(tx);
            handles.push(std::thread::spawn(move || -> Result<RunningQuery> {
                while let Ok(cmd) = rx.recv() {
                    match cmd {
                        Cmd::Insert(table, ptime, row) => query.insert(&table, ptime, row)?,
                        Cmd::Watermark(table, ptime, wm) => query.watermark(&table, ptime, wm)?,
                        Cmd::Finish(at) => {
                            query.finish(at)?;
                            break;
                        }
                    }
                }
                Ok(query)
            }));
        }
        Ok(PartitionedQuery {
            senders,
            handles,
            partition_col,
        })
    }

    fn route(&self, row: &Row) -> Result<usize> {
        let key = row.value(self.partition_col)?;
        Ok(PartitionedQuery::partition_of(key, self.senders.len()))
    }

    /// Insert a row; it is routed to the partition owning its key.
    pub fn insert(&self, table: &str, ptime: Ts, row: Row) -> Result<()> {
        let p = self.route(&row)?;
        self.senders[p]
            .send(Cmd::Insert(table.to_string(), ptime, row))
            .map_err(|_| Error::exec("partition worker terminated"))
    }

    /// Broadcast a watermark to every partition (watermarks are assertions
    /// about the whole stream, so all partitions must hear them).
    pub fn watermark(&self, table: &str, ptime: Ts, wm: Ts) -> Result<()> {
        for tx in &self.senders {
            tx.send(Cmd::Watermark(table.to_string(), ptime, wm))
                .map_err(|_| Error::exec("partition worker terminated"))?;
        }
        Ok(())
    }

    /// Finish all partitions and collect the merged final table: the
    /// disjoint union of the per-partition results, in row order.
    pub fn finish(self, at: Ts) -> Result<Vec<Row>> {
        for tx in &self.senders {
            tx.send(Cmd::Finish(at))
                .map_err(|_| Error::exec("partition worker terminated"))?;
        }
        drop(self.senders);
        let mut rows = Vec::new();
        for handle in self.handles {
            let query = handle
                .join()
                .map_err(|_| Error::exec("partition worker panicked"))??;
            rows.extend(query.table()?);
        }
        rows.sort();
        Ok(rows)
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.senders.len()
    }

    /// Hash a value to a partition index. Stable across processes and
    /// restarts (see [`StableHasher`]): the routing recorded in a
    /// checkpoint is the routing a restarted pipeline reproduces.
    pub fn partition_of(value: &Value, partitions: usize) -> usize {
        let mut hasher = StableHasher::default();
        value.hash(&mut hasher);
        (hasher.finish() as usize) % partitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StreamBuilder;
    use onesql_types::{row, DataType};

    fn engine() -> Engine {
        let mut e = Engine::new();
        e.register_stream(
            "Bid",
            StreamBuilder::new()
                .column("auction", DataType::Int)
                .column("price", DataType::Int)
                .event_time_column("ts"),
        );
        e
    }

    const SQL: &str = "SELECT auction, COUNT(*), SUM(price) FROM Bid GROUP BY auction";

    fn feed_and_finish(pq: PartitionedQuery, n: i64) -> Vec<Row> {
        for i in 0..n {
            pq.insert("Bid", Ts(i), row!(i % 7, i, Ts(i))).unwrap();
        }
        pq.finish(Ts(n)).unwrap()
    }

    #[test]
    fn partitioned_equals_single() {
        let e = engine();
        let single = feed_and_finish(PartitionedQuery::start(&e, SQL, 1, 0).unwrap(), 200);
        for parts in [2, 4] {
            let multi = feed_and_finish(PartitionedQuery::start(&e, SQL, parts, 0).unwrap(), 200);
            assert_eq!(single, multi, "{parts} partitions diverged");
        }
    }

    #[test]
    fn watermarks_broadcast_to_all_partitions() {
        let e = engine();
        let pq = PartitionedQuery::start(
            &e,
            "SELECT wend, COUNT(*) FROM Tumble(data => TABLE(Bid), \
             timecol => DESCRIPTOR(ts), dur => INTERVAL '1' MINUTE) \
             GROUP BY wend EMIT AFTER WATERMARK",
            3,
            0,
        )
        .unwrap();
        for i in 0..30i64 {
            pq.insert("Bid", Ts(i), row!(i, i, Ts(i * 1000))).unwrap();
        }
        pq.watermark("Bid", Ts(31), Ts::from_minutes(2)).unwrap();
        let rows = pq.finish(Ts(100)).unwrap();
        // All 30 events in minute [0,1): counts sum to 30 across partitions.
        let total: i64 = rows
            .iter()
            .map(|r| r.value(1).unwrap().as_int().unwrap())
            .sum();
        assert_eq!(total, 30);
    }

    #[test]
    fn zero_partitions_rejected() {
        let e = engine();
        assert!(PartitionedQuery::start(&e, SQL, 0, 0).is_err());
    }

    #[test]
    fn partition_of_is_stable() {
        let v = Value::Int(42);
        assert_eq!(
            PartitionedQuery::partition_of(&v, 4),
            PartitionedQuery::partition_of(&v, 4)
        );
    }

    #[test]
    fn partition_of_matches_golden_values() {
        // Pinned outputs: if these change, checkpoints written by earlier
        // builds would replay into the wrong partitions after an upgrade.
        // Changing the hash is a checkpoint-format break and must be
        // deliberate.
        assert_eq!(PartitionedQuery::partition_of(&Value::Int(42), 4), 0);
        assert_eq!(PartitionedQuery::partition_of(&Value::Int(7), 4), 1);
        assert_eq!(PartitionedQuery::partition_of(&Value::str("teapot"), 4), 2);
        assert_eq!(PartitionedQuery::partition_of(&Value::Null, 4), 0);
    }

    #[test]
    fn stable_hasher_is_seed_sensitive_and_deterministic() {
        use std::hash::{Hash, Hasher};
        let hash_with = |seed: u64, v: &Value| {
            let mut h = StableHasher::seeded(seed);
            v.hash(&mut h);
            h.finish()
        };
        let v = Value::str("auction-17");
        assert_eq!(hash_with(1, &v), hash_with(1, &v));
        assert_ne!(hash_with(1, &v), hash_with(2, &v));
    }

    #[test]
    fn partition_of_spreads_keys() {
        // 1000 distinct int keys over 8 partitions: every partition gets a
        // reasonable share (FNV-1a mixes small ints adequately).
        let mut counts = [0usize; 8];
        for i in 0..1000i64 {
            counts[PartitionedQuery::partition_of(&Value::Int(i), 8)] += 1;
        }
        for (p, &n) in counts.iter().enumerate() {
            assert!(n > 50, "partition {p} starved: {counts:?}");
        }
    }
}
