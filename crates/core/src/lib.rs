#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! `onesql-core`: the unified streaming/table SQL engine.
//!
//! This crate is the paper's primary contribution assembled into a usable
//! system: register streams and tables as time-varying relations, run one
//! SQL dialect over both, and choose *how* and *when* results materialize
//! (table snapshots, changelog streams, watermark-gated or periodically
//! delayed emission).
//!
//! # Quickstart
//!
//! ```
//! use onesql_core::{Engine, StreamBuilder};
//! use onesql_types::{row, DataType, Ts};
//!
//! let mut engine = Engine::new();
//! engine.register_stream(
//!     "Bid",
//!     StreamBuilder::new()
//!         .event_time_column("bidtime")
//!         .column("price", DataType::Int)
//!         .column("item", DataType::String),
//! );
//!
//! let mut q = engine
//!     .execute("SELECT item, price FROM Bid WHERE price > 2")
//!     .unwrap();
//! q.insert("Bid", Ts::hm(8, 8), row!(Ts::hm(8, 7), 2i64, "A")).unwrap();
//! q.insert("Bid", Ts::hm(8, 12), row!(Ts::hm(8, 11), 3i64, "B")).unwrap();
//!
//! assert_eq!(q.table_at(Ts::hm(8, 21)).unwrap(), vec![row!("B", 3i64)]);
//! ```

pub mod connect;
pub mod durable;
pub mod engine;
pub mod history;
pub mod observe;
pub mod parallel;
pub mod query;
pub mod session;
pub mod shard;

pub use connect::{
    AdaptiveBatch, AnySource, BatchController, ConnectorRegistry, DriverConfig, Exports, OptionBag,
    PartitionedSource, PipelineDriver, PipelineMetrics, SinglePartition, Sink, SinkConnector,
    SinkSpec, Source, SourceBatch, SourceConnector, SourceEvent, SourceMetrics, SourceSpec,
    SourceStatus, WatermarkProvenance,
};
pub use durable::{schema_fingerprint, CheckpointStore, DEFAULT_RETAIN};
pub use engine::{Engine, StreamBuilder};
pub use history::{HistoryEvent, HistoryTap};
pub use observe::{
    FlightRecorder, Histogram, MetricKind, MetricRow, MetricsHub, PipelineSnapshot, TraceRecord,
    TraceSpan,
};
pub use parallel::{PartitionedQuery, StableHasher};
pub use query::RunningQuery;
pub use session::{PipelineInfo, ScriptOutcome, Session, SqlPipeline, StatementResult};
pub use shard::{PipelineCheckpoint, ShardedConfig, ShardedPipelineDriver};

pub use onesql_exec::{ExecConfig, StreamRow};
pub use onesql_plan::{render_report, BoundQuery, Diagnostic, EmitSpec, LintMode, Severity};
