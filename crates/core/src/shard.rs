//! The sharded pipeline runtime: partition-aware ingestion, parallel
//! operator workers, and exactly-once checkpoint/resume.
//!
//! [`crate::connect::PipelineDriver`] pumps sources through **one**
//! running query on the calling thread. This module scales both sides of
//! that loop together, the way the paper's engines do (Appendix B):
//!
//! - **In**: [`PartitionedSource`]s expose N ordered partitions, each with
//!   its own watermark and a replayable offset. The driver polls
//!   partitions independently and combines their watermarks per stream as
//!   the min, exactly as [`onesql_time::WatermarkTracker`] combines
//!   operator ports.
//! - **Across**: each event routes to one of W worker threads by the
//!   stable hash of its partition key ([`PartitionedQuery::partition_of`]),
//!   so rows that can ever combine (same group, same join key) always meet
//!   in the same worker — the partition-alignment property of
//!   [`crate::parallel`], now fed by connectors instead of direct inserts.
//! - **Out**: worker changelogs merge through a deterministic
//!   partition-aligned order — `(ptime, worker, per-worker sequence)` —
//!   with entries at the current clock held back until the clock passes
//!   them, so the sink-observed changelog is a pure function of the input
//!   and never depends on thread scheduling.
//! - **Recovery**: [`ShardedPipelineDriver::checkpoint`] barriers the
//!   workers and captures operator state *plus* per-partition source
//!   offsets *plus* the driver's merge/render cursors in one
//!   [`PipelineCheckpoint`]. A fresh driver over fresh (replayable)
//!   sources [`ShardedPipelineDriver::restore`]s it and continues as if
//!   the crash never happened: the resumed sink output concatenated onto
//!   the pre-crash output is byte-identical to an uninterrupted run.
//!
//! The determinism argument for the merge: the driver's clock is monotone
//! and every changelog entry a worker produces is stamped with the clock
//! value of the command that caused it. Once the clock has advanced past
//! `t`, no worker can ever produce another entry with `ptime <= t`, so
//! entries strictly below the clock can be flushed in globally sorted
//! order; ties at the clock wait (a slower worker may still produce a
//! same-`ptime` entry that sorts between them).
//!
//! # Example
//!
//! Any plain [`crate::connect::Source`] rides the sharded driver through
//! the 1-partition adapter; here three bids fan out over two hash-sharded
//! workers and the merged result table comes back deterministic:
//!
//! ```
//! use onesql_core::connect::{Source, SourceBatch, SourceEvent, SourceStatus};
//! use onesql_core::{Engine, ShardedConfig, StreamBuilder};
//! use onesql_tvr::Change;
//! use onesql_types::{row, DataType, Result, Ts};
//!
//! struct Bids(Vec<(i64, i64)>, Vec<String>);
//!
//! impl Source for Bids {
//!     fn name(&self) -> &str {
//!         "bids"
//!     }
//!     fn streams(&self) -> &[String] {
//!         &self.1
//!     }
//!     fn poll_batch(&mut self, max_events: usize) -> Result<SourceBatch> {
//!         let take = max_events.min(self.0.len());
//!         let mut batch = SourceBatch::empty(SourceStatus::Ready);
//!         for (i, (auction, price)) in self.0.drain(..take).enumerate() {
//!             let ptime = Ts(i as i64);
//!             batch.events.push(SourceEvent {
//!                 stream: 0,
//!                 ptime,
//!                 change: Change::insert(row!(auction, price, ptime)),
//!             });
//!         }
//!         if self.0.is_empty() {
//!             batch.status = SourceStatus::Finished;
//!         }
//!         Ok(batch)
//!     }
//! }
//!
//! let mut engine = Engine::new();
//! engine.register_stream(
//!     "Bid",
//!     StreamBuilder::new()
//!         .column("auction", DataType::Int)
//!         .column("price", DataType::Int)
//!         .event_time_column("bidtime"),
//! );
//! let script = Bids(vec![(1, 3), (2, 11), (1, 7)], vec!["Bid".to_string()]);
//! engine.attach_source(Box::new(script)).unwrap();
//! let mut driver = engine
//!     .run_sharded_pipeline(
//!         "SELECT auction, COUNT(*), SUM(price) FROM Bid GROUP BY auction",
//!         ShardedConfig::new(2),
//!     )
//!     .unwrap();
//! driver.run().unwrap();
//! assert_eq!(
//!     driver.table().unwrap(),
//!     vec![row!(1i64, 2i64, 10i64), row!(2i64, 1i64, 11i64)],
//! );
//! ```

use std::collections::VecDeque;

use crossbeam::channel::{bounded, Receiver, Sender};

use onesql_exec::{StreamRenderer, StreamRow};
use onesql_time::Watermark;
use onesql_tvr::{Change, ChangeBatch, TimedChange};
use onesql_types::{Error, Result, Row, SchemaRef, Ts};

use crate::connect::{
    change_bytes, BatchController, DriverConfig, PartitionedSource, PipelineMetrics,
    SinglePartition, Sink, Source, SourceMetrics, SourceStatus, WatermarkLedger,
    WatermarkProvenance,
};
use crate::engine::Engine;
use crate::history::{HistoryEvent, HistoryTap};
use crate::observe::{self, Stopwatch};
use crate::parallel::PartitionedQuery;
use crate::query::RunningQuery;

/// Tuning for a sharded pipeline.
#[derive(Debug, Clone, Copy)]
pub struct ShardedConfig {
    /// Number of worker threads (= operator state shards).
    pub workers: usize,
    /// Which input column is the partition key, for every stream (the
    /// caller must pick a column consistent with the query's grouping /
    /// join keys — the partition-alignment property).
    pub partition_col: usize,
    /// Polling and adaptive-batch knobs, shared with the simple driver.
    pub driver: DriverConfig,
}

impl ShardedConfig {
    /// A config with `workers` workers, partitioning on column 0.
    pub fn new(workers: usize) -> ShardedConfig {
        ShardedConfig {
            workers,
            partition_col: 0,
            driver: DriverConfig::default(),
        }
    }

    /// Set the partition-key column.
    pub fn with_partition_col(mut self, col: usize) -> ShardedConfig {
        self.partition_col = col;
        self
    }

    /// Replace the driver knobs.
    pub fn with_driver(mut self, driver: DriverConfig) -> ShardedConfig {
        self.driver = driver;
        self
    }
}

impl Default for ShardedConfig {
    fn default() -> ShardedConfig {
        ShardedConfig::new(1)
    }
}

/// A consistent snapshot of an entire sharded pipeline: per-worker
/// operator state, per-partition source offsets, and the driver's merge /
/// render / watermark cursors. Everything needed to resume exactly-once.
///
/// Restore requires a *fresh* driver with the same SQL, worker count, and
/// source shapes, over **replayable** sources (see
/// [`PartitionedSource::seek`]).
#[derive(Debug, Clone)]
pub struct PipelineCheckpoint {
    /// Per-worker operator state, from [`RunningQuery::checkpoint`].
    pub workers: Vec<onesql_state::Checkpoint>,
    /// Per-source, per-partition replay offsets (events consumed).
    pub offsets: Vec<Vec<u64>>,
    /// Per-source, per-partition finished flags.
    pub finished: Vec<Vec<bool>>,
    /// Per-feeder (source partition) watermarks, in feeder order.
    pub feeders: Vec<Watermark>,
    /// The driver's monotone processing-time clock.
    pub clock: Ts,
    /// The adaptive controller's batch size, so a resumed pipeline polls
    /// exactly as the uninterrupted run would.
    pub batch_size: usize,
    /// Changelog entries drained from workers but still held back by the
    /// deterministic merge (ptime == clock ties), per worker with their
    /// merge sequence numbers.
    pub pending: Vec<Vec<(u64, TimedChange)>>,
    /// Next merge sequence number per worker.
    pub next_seq: Vec<u64>,
    /// `EMIT STREAM` per-grouping version counters at the flush cursor.
    pub renderer_versions: Vec<(Row, u64)>,
    /// Output watermark already reported to sinks.
    pub sink_watermark: Watermark,
    /// Combined worker output watermark at the checkpoint barrier.
    pub output_watermark: Watermark,
    /// Rows delivered to sinks so far (metrics continuity).
    pub events_out: u64,
    /// Watermark deliveries into the workers so far (metrics continuity).
    pub watermarks_in: u64,
    /// Per-source, per-partition ingested payload bytes (same shape as
    /// `offsets`; metrics continuity — `bytes_in` and the per-source byte
    /// counters resume monotonically across incarnations).
    pub source_bytes: Vec<Vec<u64>>,
    /// Checkpoint epoch: 1 for the pipeline's first checkpoint, counting
    /// up. Transactional sinks stage output per epoch and a restore tells
    /// them which epoch's staging boundary to truncate back to.
    pub epoch: u64,
}

/// What a worker reports at a drain barrier.
struct DrainReply {
    /// Changelog entries produced since the previous drain.
    entries: Vec<TimedChange>,
    /// The worker's current output watermark.
    watermark: Watermark,
}

/// Commands from the driver's control thread to a worker.
enum Cmd {
    /// Declare a stream name; subsequent commands reference it by index.
    Declare(String),
    /// A routed batch of `(stream index, ptime, change)` events, plus the
    /// control thread's current trace span (0 = tracing off/unsampled) so
    /// worker-side processing spans stitch under the driver round.
    Batch(Vec<(usize, Ts, Change)>, u64),
    /// Deliver a stream watermark.
    Watermark(usize, Ts, Ts),
    /// All inputs complete: flush pending materialization.
    Finish(Ts),
    /// Barrier: report new changelog entries and the output watermark.
    Drain(Sender<Result<DrainReply>>),
    /// Barrier: snapshot operator state.
    Checkpoint(Sender<Result<onesql_state::Checkpoint>>),
    /// Load operator state (fresh workers only).
    Restore(onesql_state::Checkpoint, Sender<Result<()>>),
    /// Barrier: report this worker's table view as of a past ptime
    /// (`AS OF` probe — see [`ShardedPipelineDriver::table_at`]).
    TableAt(Ts, Sender<Result<Vec<Row>>>),
}

fn worker_loop(
    worker: usize,
    mut query: RunningQuery,
    rx: Receiver<Cmd>,
    vectorize: bool,
) -> RunningQuery {
    observe::set_thread_worker(worker.min(i32::MAX as usize) as i32);
    let mut streams: Vec<String> = Vec::new();
    let mut drained = 0usize;
    // The first failure wins; later data commands are skipped and every
    // subsequent barrier reports it, so the control thread hears about it
    // at the next drain instead of deadlocking or panicking.
    let mut failure: Option<Error> = None;
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Declare(name) => streams.push(name),
            Cmd::Batch(events, trace_parent) => {
                if failure.is_some() {
                    continue;
                }
                // Span only when the driver round is being recorded, so
                // an unsampled round doesn't spawn orphan worker trees.
                let _span = (trace_parent != 0)
                    .then(|| observe::TraceSpan::with_parent("worker.process", trace_parent));
                // Group consecutive same-stream events into columnar runs,
                // mirroring `PipelineDriver::step`. Ptimes within a routed
                // batch are monotone (the control thread stamps its clamped
                // clock), so the run satisfies `ChangeBatch`'s ordering.
                let mut events = events.into_iter().peekable();
                while let Some((stream, ptime, change)) = events.next() {
                    let mut run = vec![(ptime, change)];
                    if vectorize && query.vectorizes(&streams[stream]) {
                        while let Some((_, p, c)) = events.next_if(|(next, ..)| *next == stream) {
                            run.push((p, c));
                        }
                    }
                    let res = if run.len() > 1 {
                        match ChangeBatch::from_changes(&run) {
                            Some(batch) => query.change_batch(&streams[stream], &batch),
                            // Mixed arity (invalid rows): keep per-row order.
                            None => run
                                .into_iter()
                                .try_for_each(|(p, c)| query.change(&streams[stream], p, c)),
                        }
                    } else {
                        match run.pop() {
                            Some((p, c)) => query.change(&streams[stream], p, c),
                            None => Ok(()),
                        }
                    };
                    if let Err(e) = res {
                        failure = Some(e);
                        break;
                    }
                }
            }
            Cmd::Watermark(stream, ptime, wm) => {
                if failure.is_some() {
                    continue;
                }
                if let Err(e) = query.watermark(&streams[stream], ptime, wm) {
                    failure = Some(e);
                }
            }
            Cmd::Finish(at) => {
                if failure.is_some() {
                    continue;
                }
                if let Err(e) = query.finish(at) {
                    failure = Some(e);
                }
            }
            Cmd::Drain(reply) => {
                let result = match &failure {
                    Some(e) => Err(e.clone()),
                    None => {
                        let entries = query.changelog_since(drained).to_vec();
                        drained = query.changelog().len();
                        Ok(DrainReply {
                            entries,
                            watermark: query.output_watermark(),
                        })
                    }
                };
                let _ = reply.send(result);
            }
            Cmd::Checkpoint(reply) => {
                let result = match &failure {
                    Some(e) => Err(e.clone()),
                    None => query.checkpoint(),
                };
                let _ = reply.send(result);
            }
            Cmd::Restore(checkpoint, reply) => {
                let result = query.restore(&checkpoint);
                drained = 0;
                let _ = reply.send(result);
            }
            Cmd::TableAt(at, reply) => {
                let result = match &failure {
                    Some(e) => Err(e.clone()),
                    None => query.table_at(at),
                };
                let _ = reply.send(result);
            }
        }
    }
    query
}

struct Worker {
    tx: Sender<Cmd>,
    handle: std::thread::JoinHandle<RunningQuery>,
}

/// One partition's driver-side state.
struct PartState {
    /// Index into the watermark ledger.
    feeder: usize,
    finished: bool,
    events: u64,
    bytes: u64,
}

struct SourceSlot {
    source: Box<dyn PartitionedSource>,
    /// Lowercased stream names, resolved to global indices at attach.
    stream_ids: Vec<usize>,
    parts: Vec<PartState>,
    non_empty_polls: u64,
}

/// Pumps partitioned sources through W hash-sharded query workers into
/// sinks, with deterministic output order and whole-pipeline
/// checkpoint/restore. See the module docs for the architecture.
pub struct ShardedPipelineDriver {
    workers: Vec<Worker>,
    sources: Vec<SourceSlot>,
    sinks: Vec<Box<dyn Sink>>,
    config: ShardedConfig,
    controller: BatchController,
    metrics: PipelineMetrics,
    ledger: WatermarkLedger,
    advances: Vec<(String, Watermark)>,
    /// Global stream table: lowercased names, indices shared with workers.
    streams: Vec<String>,
    /// Monotone processing-time clock across all partitions.
    clock: Ts,
    /// Held-back changelog entries per worker: `(merge seq, entry)`, in
    /// per-worker order (which is ptime-then-seq order by construction).
    pending: Vec<VecDeque<(u64, TimedChange)>>,
    next_seq: Vec<u64>,
    renderer: StreamRenderer,
    schema: SchemaRef,
    /// Combined (min) worker output watermark as of the last drain.
    output_watermark: Watermark,
    /// Output watermark already reported to sinks.
    sink_watermark: Watermark,
    finished: bool,
    /// Checkpoints taken so far; the next checkpoint gets epoch
    /// `self.epoch + 1`. Restoring adopts the checkpoint's epoch so the
    /// numbering continues where the crashed incarnation left off.
    epoch: u64,
    /// Set when a step failed after source offsets had already advanced:
    /// polled events may never have reached a worker, so continuing — and
    /// above all checkpointing — would silently violate exactly-once.
    poisoned: bool,
    /// Set by [`ShardedPipelineDriver::restore`]: the watermark ledger and
    /// cursors now mirror a checkpoint, so the source/sink set is sealed
    /// even though no round has run yet.
    restored: bool,
    /// When set, the driver publishes a metrics snapshot to the global
    /// [`observe::hub`] under this name after every round.
    label: Option<String>,
    /// When set, every sink-observable event (rows, watermarks, epoch
    /// transitions, finish) is also appended here, in sink order.
    tap: Option<HistoryTap>,
    /// The workers' final queries, populated by `finish`.
    final_queries: Vec<RunningQuery>,
}

impl ShardedPipelineDriver {
    /// Plan `sql` on `engine` and spawn `config.workers` query workers.
    /// Attach sources and sinks, then [`ShardedPipelineDriver::run`] (or
    /// [`ShardedPipelineDriver::restore`] a checkpoint first).
    pub fn new(engine: &Engine, sql: &str, config: ShardedConfig) -> Result<ShardedPipelineDriver> {
        if config.workers == 0 {
            return Err(Error::exec("need at least one worker"));
        }
        let mut workers = Vec::with_capacity(config.workers);
        let mut schema = None;
        let mut ver_cols = Vec::new();
        let mut clock = Ts::MIN;
        for w in 0..config.workers {
            let query = engine.execute(sql)?;
            if schema.is_none() {
                schema = Some(query.schema());
                ver_cols = onesql_exec::compile::version_columns(query.bound());
                clock = query.now();
            }
            let (tx, rx) = bounded::<Cmd>(64);
            let vectorize = config.driver.vectorize;
            let handle = std::thread::spawn(move || worker_loop(w, query, rx, vectorize));
            workers.push(Worker { tx, handle });
        }
        let worker_count = workers.len();
        let Some(schema) = schema else {
            return Err(Error::exec("a sharded pipeline needs at least one worker"));
        };
        Ok(ShardedPipelineDriver {
            workers,
            sources: Vec::new(),
            sinks: Vec::new(),
            config,
            controller: BatchController::new(&config.driver),
            metrics: PipelineMetrics::default(),
            ledger: WatermarkLedger::new(),
            advances: Vec::new(),
            streams: Vec::new(),
            clock,
            pending: (0..worker_count).map(|_| VecDeque::new()).collect(),
            next_seq: vec![0; worker_count],
            renderer: StreamRenderer::new(ver_cols),
            schema,
            output_watermark: Watermark::MIN,
            sink_watermark: Watermark::MIN,
            finished: false,
            epoch: 0,
            poisoned: false,
            restored: false,
            label: None,
            tap: None,
            final_queries: Vec::new(),
        })
    }

    /// Name this pipeline on the global [`observe::hub`]: every subsequent
    /// round publishes a [`crate::PipelineSnapshot`] under `label`, which
    /// is what the `metrics` source connector and `SHOW PIPELINES` read.
    /// Unlabelled drivers never touch the hub.
    pub fn set_label(&mut self, label: impl Into<String>) {
        self.label = Some(label.into());
    }

    /// The hub label, if one was set.
    pub fn label(&self) -> Option<&str> {
        self.label.as_deref()
    }

    /// Install a [`HistoryTap`]: every sink-observable event — rendered
    /// rows, watermark deliveries, checkpoint/restore epoch transitions,
    /// the finish marker — is also appended to `tap`, in sink order.
    /// Installing the same (cloned) tap on successive incarnations of a
    /// killed-and-restored pipeline yields one crash-spanning history.
    pub fn set_history_tap(&mut self, tap: HistoryTap) {
        self.tap = Some(tap);
    }

    fn publish_snapshot(&mut self) {
        if self.label.is_none() {
            return;
        }
        self.refresh_metrics();
        let label = self.label.as_deref().unwrap_or_default();
        observe::hub().publish(label, self.clock, true, self.finished, self.metrics.clone());
    }

    /// Record that a durable checkpoint at `epoch` was persisted in
    /// `micros` microseconds (called by the session layer after the store
    /// write completes, so the persist cost lands in this pipeline's
    /// metrics and not just the global trace).
    pub fn note_checkpoint_persisted(&mut self, epoch: u64, micros: u64) {
        self.metrics.checkpoints += 1;
        self.metrics.checkpoint_epoch = epoch;
        self.metrics.checkpoint_persist_micros.record(micros);
        self.publish_snapshot();
    }

    /// Attach a partitioned source. Fails once the pipeline has started
    /// or restored a checkpoint (the per-stream watermark trackers are
    /// sized at attach time; growing them afterwards would wipe observed
    /// watermark state).
    pub fn attach_partitioned_source(&mut self, source: Box<dyn PartitionedSource>) -> Result<()> {
        if self.metrics.rounds > 0 || self.restored || self.poisoned {
            return Err(Error::plan(
                "attach sources before stepping or restoring the pipeline",
            ));
        }
        if source.streams().is_empty() {
            return Err(Error::plan(format!(
                "source '{}' declares no streams",
                source.name()
            )));
        }
        if source.partitions() == 0 {
            return Err(Error::plan(format!(
                "source '{}' declares no partitions",
                source.name()
            )));
        }
        let mut stream_ids = Vec::with_capacity(source.streams().len());
        for stream in source.streams() {
            let stream = stream.to_ascii_lowercase();
            let id = match self.streams.iter().position(|s| *s == stream) {
                Some(id) => id,
                None => {
                    self.streams.push(stream.clone());
                    self.broadcast(|| Cmd::Declare(stream.clone()))?;
                    self.streams.len() - 1
                }
            };
            stream_ids.push(id);
        }
        let streams_lc: Vec<String> = stream_ids
            .iter()
            .map(|&i| self.streams[i].clone())
            .collect();
        let parts = (0..source.partitions())
            .map(|part| PartState {
                feeder: self
                    .ledger
                    .add_feeder(format!("{}[{part}]", source.name()), &streams_lc),
                finished: false,
                events: 0,
                bytes: 0,
            })
            .collect();
        self.sources.push(SourceSlot {
            source,
            stream_ids,
            parts,
            non_empty_polls: 0,
        });
        Ok(())
    }

    /// Attach a plain single-partition source via [`SinglePartition`].
    pub fn attach_source(&mut self, source: Box<dyn Source>) -> Result<()> {
        self.attach_partitioned_source(Box::new(SinglePartition::new(source)))
    }

    /// Attach a sink; it is immediately bound to the query's output
    /// schema.
    pub fn attach_sink(&mut self, mut sink: Box<dyn Sink>) -> Result<()> {
        sink.bind(self.schema.clone())?;
        self.sinks.push(sink);
        Ok(())
    }

    /// Number of worker shards.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The batch size the adaptive controller will use for the next poll.
    pub fn current_batch_size(&self) -> usize {
        self.controller.size()
    }

    /// True once every source partition finished and the workers flushed.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Current accounting. Watermark fields refresh on access.
    pub fn metrics(&mut self) -> &PipelineMetrics {
        self.refresh_metrics();
        &self.metrics
    }

    /// Events ingested so far. Maintained incrementally — cheap enough
    /// for per-step loop conditions, unlike
    /// [`ShardedPipelineDriver::metrics`] which rebuilds derived fields.
    pub fn events_in(&self) -> u64 {
        self.metrics.events_in
    }

    fn refresh_metrics(&mut self) {
        self.metrics.sources = self
            .sources
            .iter()
            .map(|s| SourceMetrics {
                name: s.source.name().to_string(),
                events: s.parts.iter().map(|p| p.events).sum(),
                bytes: s.parts.iter().map(|p| p.bytes).sum(),
                non_empty_polls: s.non_empty_polls,
                watermark: s
                    .parts
                    .iter()
                    .map(|p| self.ledger.feeder(p.feeder))
                    .min()
                    .unwrap_or(Watermark::MIN),
                finished: s.parts.iter().all(|p| p.finished),
            })
            .collect();
        self.metrics.input_watermark = self.ledger.input_watermark();
        self.metrics.output_watermark = self.output_watermark;
        self.metrics.watermark_provenance = self.ledger.provenance();
    }

    /// Per-stream watermark provenance: which source partition holds each
    /// stream's minimum watermark and when it last produced an event.
    pub fn watermark_provenance(&self) -> Vec<WatermarkProvenance> {
        self.ledger.provenance()
    }

    fn broadcast(&self, mut cmd: impl FnMut() -> Cmd) -> Result<()> {
        for worker in &self.workers {
            worker
                .tx
                .send(cmd())
                .map_err(|_| Error::exec("pipeline worker terminated"))?;
        }
        Ok(())
    }

    /// One scheduling round: poll every unfinished partition once, route
    /// events to workers by partition key, propagate watermarks, barrier,
    /// and flush the deterministic merge. Returns events ingested.
    ///
    /// A step that errors after sources were polled poisons the driver:
    /// the polled events may never have reached a worker while the source
    /// offsets already advanced, so further stepping or checkpointing
    /// would silently lose them. A poisoned pipeline only reports its
    /// error; recovery is restoring the last good checkpoint into a fresh
    /// driver.
    pub fn step(&mut self) -> Result<usize> {
        if self.poisoned {
            return Err(Error::exec(
                "pipeline is poisoned by an earlier failed step; \
                 restore the last checkpoint into a fresh driver",
            ));
        }
        if self.sources.is_empty() {
            return Err(Error::plan("pipeline has no sources"));
        }
        match self.step_inner() {
            Ok(n) => Ok(n),
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    fn step_inner(&mut self) -> Result<usize> {
        if self.finished {
            return Ok(0);
        }
        if observe::enabled() {
            observe::set_thread_pipeline(self.label.as_deref().unwrap_or(""));
        }
        let _round = observe::TraceSpan::root("driver.round");
        let round = Stopwatch::start();
        let round_clock = self.clock;
        let batch_size = self.controller.size();
        let mut routed: Vec<Vec<(usize, Ts, Change)>> =
            (0..self.workers.len()).map(|_| Vec::new()).collect();
        let mut ingested = 0usize;
        let mut poll_micros = 0u64;
        for slot in 0..self.sources.len() {
            for part in 0..self.sources[slot].parts.len() {
                if self.sources[slot].parts[part].finished {
                    continue;
                }
                let poll = Stopwatch::start();
                let batch = self.sources[slot].source.poll_partition(part, batch_size)?;
                poll_micros = poll_micros.saturating_add(poll.micros());
                let had_events = !batch.events.is_empty();
                if had_events {
                    self.sources[slot].non_empty_polls += 1;
                }
                // The ingest span parents under the wire-carried producer
                // span when the partition supplied one, else this round.
                let _ingest = (had_events || batch.watermark.is_some()).then(|| {
                    observe::TraceSpan::with_parent(
                        "driver.ingest",
                        batch.trace_parent.unwrap_or(0),
                    )
                    .partition(part.min(i32::MAX as usize) as i32)
                });
                for event in batch.events {
                    let &stream_id =
                        self.sources[slot]
                            .stream_ids
                            .get(event.stream)
                            .ok_or_else(|| {
                                Error::exec(format!(
                                    "source '{}' produced an event for stream index {} \
                                 but declares only {} streams",
                                    self.sources[slot].source.name(),
                                    event.stream,
                                    self.sources[slot].stream_ids.len()
                                ))
                            })?;
                    // Processing time is monotone across every partition;
                    // a partition whose clock lags is dragged forward.
                    self.clock = self.clock.max(event.ptime);
                    let key = event
                        .change
                        .row
                        .value(self.config.partition_col)
                        .map_err(|_| {
                            Error::exec(format!(
                                "stream '{}' row has no partition column {}",
                                self.streams[stream_id], self.config.partition_col
                            ))
                        })?;
                    let worker = PartitionedQuery::partition_of(key, self.workers.len());
                    let bytes = change_bytes(&event.change);
                    routed[worker].push((stream_id, self.clock, event.change));
                    self.sources[slot].parts[part].events += 1;
                    self.sources[slot].parts[part].bytes += bytes;
                    self.metrics.events_in += 1;
                    self.metrics.bytes_in += bytes;
                    ingested += 1;
                }
                let feeder = self.sources[slot].parts[part].feeder;
                if had_events {
                    self.ledger.note_event(feeder, self.clock);
                }
                if let Some(wm) = batch.watermark {
                    self.ledger
                        .observe(feeder, Watermark(wm), &mut self.advances);
                }
                if batch.status == SourceStatus::Finished {
                    self.sources[slot].parts[part].finished = true;
                    // A finished partition asserts completeness: it stops
                    // constraining its streams' watermarks.
                    self.ledger
                        .observe(feeder, Watermark::MAX, &mut self.advances);
                }
            }
        }
        // Events first (they were polled before the watermark assertions),
        // then the per-stream advances, broadcast to every worker because
        // watermarks are assertions about whole streams.
        for (worker, batch) in routed.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            // Routing-side accounting: workers group each routed batch into
            // columnar runs themselves (and fall back per-row when the plan
            // requires it), so the control thread samples the routed size.
            self.metrics.batch_rows.record(batch.len() as u64);
            self.workers[worker]
                .tx
                .send(Cmd::Batch(batch, observe::current_span()))
                .map_err(|_| Error::exec("pipeline worker terminated"))?;
        }
        if ingested > 0 {
            if self.config.driver.vectorize {
                self.metrics.vectorized_rounds += 1;
            } else {
                self.metrics.fallback_rounds += 1;
            }
        }
        let mut advances = std::mem::take(&mut self.advances);
        for (stream, combined) in advances.drain(..) {
            let stream_id = self
                .streams
                .iter()
                .position(|s| *s == stream)
                .ok_or_else(|| {
                    Error::exec(format!("watermark for unregistered stream '{stream}'"))
                })?;
            self.broadcast(|| Cmd::Watermark(stream_id, self.clock, combined.ts()))?;
            self.metrics.watermarks_in += 1;
        }
        self.advances = advances;

        let merge = Stopwatch::start();
        {
            let _gather = observe::TraceSpan::child("driver.gather");
            self.drain_workers()?;
        }
        self.flush(false)?;
        self.metrics.merge_micros.record(merge.micros());
        self.metrics.rounds += 1;
        if ingested == 0 {
            self.metrics.idle_rounds += 1;
        }
        // A round that left the clock where it found it — idle, or a live
        // source whose ptimes stall — would otherwise withhold the
        // entries at ptime == clock (and let `pending` grow) until some
        // future event advances it. Nudge the clock 1ms and re-flush:
        // future events are clamped monotone anyway, so merge order is
        // preserved, and the nudge is a deterministic function of the
        // replayed rounds, so checkpointed resumes still reproduce it.
        if self.clock == round_clock && !self.pending.iter().all(|p| p.is_empty()) {
            self.clock += onesql_types::Duration(1);
            self.flush(false)?;
        }
        if self
            .sources
            .iter()
            .all(|s| s.parts.iter().all(|p| p.finished))
        {
            self.finish()?;
        } else {
            // Backpressure signal choice: this driver has a real queue to
            // measure — the pending merge buffers, holding worker output
            // the deterministic merge has not yet been able to release to
            // sinks. That depth is entries of real memory and grows
            // without bound exactly when the merge cannot keep up (deep
            // hold-back, stalled clock), unlike watermark lag, which
            // under barrier-per-round scheduling mostly encodes the
            // query's structural event-time offset (gates, delays). So
            // depth drives the controller (against the absolute
            // high/low_pending bounds — see BatchController::observe_load
            // for why ratios of the batch size would cancel out); the lag
            // reading rides along only as the documented fallback for
            // depth-less drivers.
            let depth = self.pending.iter().map(|p| p.len()).sum::<usize>();
            self.metrics.pending_depth = depth as u64;
            self.metrics.batch_size = self.controller.observe_load(
                Some(depth),
                PipelineMetrics::lag_between(self.ledger.input_watermark(), self.output_watermark),
            );
        }
        self.metrics.poll_micros.record(poll_micros);
        self.metrics.round_micros.record(round.micros());
        self.publish_snapshot();
        Ok(ingested)
    }

    /// Scatter a barrier command to every worker, then gather the replies
    /// in worker order. Sending to all before receiving from any is what
    /// makes the barrier run in parallel across workers.
    fn gather<T>(&self, make: impl Fn(usize, Sender<Result<T>>) -> Cmd) -> Result<Vec<T>> {
        let mut replies = Vec::with_capacity(self.workers.len());
        for (w, worker) in self.workers.iter().enumerate() {
            let (tx, rx) = bounded(1);
            worker
                .tx
                .send(make(w, tx))
                .map_err(|_| Error::exec("pipeline worker terminated"))?;
            replies.push(rx);
        }
        replies
            .into_iter()
            .map(|rx| {
                rx.recv()
                    .map_err(|_| Error::exec("pipeline worker terminated"))?
            })
            .collect()
    }

    /// Barrier: every worker reports its new changelog entries (into the
    /// per-worker pending buffers) and its output watermark. On return,
    /// every command sent so far has been fully processed.
    fn drain_workers(&mut self) -> Result<()> {
        let replies = self.gather(|_, tx| Cmd::Drain(tx))?;
        let mut combined = Watermark::MAX;
        for (w, reply) in replies.into_iter().enumerate() {
            for entry in reply.entries {
                self.pending[w].push_back((self.next_seq[w], entry));
                self.next_seq[w] += 1;
            }
            combined = combined.min(reply.watermark);
        }
        self.output_watermark = combined;
        Ok(())
    }

    /// Flush the deterministic merge: emit every held entry with
    /// `ptime < clock` (or all of them at finish) in `(ptime, worker,
    /// seq)` order, rendered with `EMIT STREAM` version numbering shared
    /// across all workers.
    fn flush(&mut self, everything: bool) -> Result<()> {
        let mut batch: Vec<(Ts, usize, u64, TimedChange)> = Vec::new();
        let clock = self.clock;
        for (w, pending) in self.pending.iter_mut().enumerate() {
            while pending
                .front()
                .is_some_and(|(_, entry)| everything || entry.ptime < clock)
            {
                if let Some((seq, entry)) = pending.pop_front() {
                    batch.push((entry.ptime, w, seq, entry));
                }
            }
        }
        if !batch.is_empty() {
            // Current span while sinks write: a `NetSink` attaches it to
            // outgoing BATCH frames as the consumer side's trace parent.
            let _emit_span = observe::TraceSpan::child("driver.emit");
            let emit = Stopwatch::start();
            batch.sort_by_key(|&(ptime, worker, seq, _)| (ptime, worker, seq));
            let mut rows: Vec<StreamRow> = Vec::with_capacity(batch.len());
            for (_, _, _, entry) in &batch {
                self.renderer.render_into(entry, &mut rows)?;
            }
            self.metrics.events_out += rows.len() as u64;
            for sink in &mut self.sinks {
                sink.write(&rows)?;
            }
            if let Some(tap) = &self.tap {
                tap.record_rows(&rows);
            }
            self.metrics.emit_micros.record(emit.micros());
        }
        self.notify_sink_watermark()
    }

    /// Report the combined output watermark to sinks — but only while no
    /// entries are held back, so a sink never hears "complete up to W"
    /// before the rows W released.
    fn notify_sink_watermark(&mut self) -> Result<()> {
        if !self.pending.iter().all(|p| p.is_empty()) {
            return Ok(());
        }
        if self.output_watermark > self.sink_watermark {
            self.sink_watermark = self.output_watermark;
            for sink in &mut self.sinks {
                sink.on_watermark(self.sink_watermark)?;
            }
            if let Some(tap) = &self.tap {
                tap.record(HistoryEvent::Watermark(self.sink_watermark));
            }
        }
        Ok(())
    }

    /// Declare the pipeline complete: workers flush all gated
    /// materialization, the merge drains entirely, sinks flush, and the
    /// worker threads join. Idempotent on success; a failed finish
    /// poisons the driver (it does NOT report finished), so callers can't
    /// mistake a half-flushed pipeline for a completed one.
    pub fn finish(&mut self) -> Result<()> {
        if self.finished {
            return Ok(());
        }
        if self.poisoned {
            return Err(Error::exec(
                "pipeline is poisoned by an earlier failure; \
                 restore the last checkpoint into a fresh driver",
            ));
        }
        match self.finish_inner() {
            Ok(()) => {
                self.finished = true;
                self.metrics.pending_depth = 0;
                if let Some(tap) = &self.tap {
                    tap.record(HistoryEvent::Finished);
                }
                self.publish_snapshot();
                Ok(())
            }
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    fn finish_inner(&mut self) -> Result<()> {
        if observe::enabled() {
            observe::set_thread_pipeline(self.label.as_deref().unwrap_or(""));
        }
        let _finish_span = observe::TraceSpan::root("driver.finish");
        self.broadcast(|| Cmd::Finish(self.clock))?;
        self.drain_workers()?;
        self.flush(true)?;
        for sink in &mut self.sinks {
            sink.flush()?;
        }
        // Every event is materialized in the sinks: acknowledge the final
        // offsets so upstream processes holding a replay spool for this
        // pipeline know they can drain and exit.
        for slot in &mut self.sources {
            for part in 0..slot.parts.len() {
                let offset = slot.source.offset(part);
                slot.source.ack(part, offset)?;
            }
        }
        for worker in std::mem::take(&mut self.workers) {
            drop(worker.tx);
            let query = worker
                .handle
                .join()
                .map_err(|_| Error::exec("pipeline worker panicked"))?;
            self.final_queries.push(query);
        }
        self.refresh_metrics();
        Ok(())
    }

    /// Run until every partition finishes. All-idle rounds yield the
    /// thread; `max_idle_rounds` bounds the wait, erroring on exhaustion
    /// so a stuck pipeline is loud.
    pub fn run(&mut self) -> Result<&PipelineMetrics> {
        if self.sources.is_empty() {
            return Err(Error::plan("pipeline has no sources"));
        }
        let mut idle_streak = 0u64;
        while !self.finished {
            let ingested = self.step()?;
            if self.finished {
                break;
            }
            if ingested == 0 {
                idle_streak += 1;
                if let Some(limit) = self.config.driver.max_idle_rounds {
                    if idle_streak > limit {
                        return Err(Error::exec(format!(
                            "pipeline made no progress for {idle_streak} rounds \
                             (sources idle, none finished)"
                        )));
                    }
                }
                std::thread::yield_now();
            } else {
                idle_streak = 0;
            }
        }
        self.refresh_metrics();
        Ok(&self.metrics)
    }

    /// The merged final table: the disjoint union of the workers' result
    /// partitions, in row order. Only available after the pipeline
    /// finished (before that the rows live in the worker threads).
    pub fn table(&self) -> Result<Vec<Row>> {
        if !self.finished {
            return Err(Error::exec("table() requires a finished pipeline"));
        }
        let mut rows = Vec::new();
        for query in &self.final_queries {
            rows.extend(query.table()?);
        }
        rows.sort();
        Ok(rows)
    }

    /// The merged table view **as of** processing time `at` (a temporal
    /// `AS OF` probe): the union of the workers' `table_at` snapshots, in
    /// sorted row order. Unlike [`ShardedPipelineDriver::table`] this
    /// works mid-run — the probe barriers each worker, so it reflects
    /// every event routed before the call. A probe at `at` strictly below
    /// the current [`ShardedPipelineDriver::clock`] is *stable*: future
    /// events are stamped at or above the clock, so re-reading the same
    /// `at` later returns identical rows.
    ///
    /// After a restore the workers' changelogs restart, so the probe only
    /// covers changes since the restore point — probes are meaningful
    /// within one incarnation.
    pub fn table_at(&self, at: Ts) -> Result<Vec<Row>> {
        if self.finished {
            let mut rows = Vec::new();
            for query in &self.final_queries {
                rows.extend(query.table_at(at)?);
            }
            rows.sort();
            return Ok(rows);
        }
        if self.poisoned {
            return Err(Error::exec(
                "pipeline is poisoned by an earlier failure; \
                 restore the last checkpoint into a fresh driver",
            ));
        }
        let mut rows = Vec::new();
        for part in self.gather(|_, tx| Cmd::TableAt(at, tx))? {
            rows.extend(part);
        }
        rows.sort();
        Ok(rows)
    }

    /// The driver's monotone processing-time clock: the max ptime stamped
    /// onto any routed event so far. Changelog entries strictly below the
    /// clock are final (see the module docs' determinism argument), which
    /// is what makes [`ShardedPipelineDriver::table_at`] probes below it
    /// stable.
    pub fn clock(&self) -> Ts {
        self.clock
    }

    /// Take a consistent whole-pipeline snapshot: barrier the workers,
    /// capture their operator state, and record source offsets plus the
    /// driver's merge cursors. The pipeline keeps running afterwards.
    ///
    /// The snapshot is only in memory; once the caller has persisted it,
    /// [`ShardedPipelineDriver::ack_checkpoint`] tells the sources (and
    /// any remote producers behind them) that everything below it may be
    /// garbage-collected.
    pub fn checkpoint(&mut self) -> Result<PipelineCheckpoint> {
        if self.finished {
            return Err(Error::exec("cannot checkpoint a finished pipeline"));
        }
        if self.poisoned {
            // The recorded source offsets would include events that never
            // reached a worker: such a checkpoint replays with gaps.
            return Err(Error::exec(
                "cannot checkpoint a poisoned pipeline (a step failed after \
                 its sources were polled)",
            ));
        }
        // Barrier first: all in-flight commands processed, pending buffers
        // current, so the captured cursors and state agree.
        self.drain_workers()?;
        let worker_states = self.gather(|_, tx| Cmd::Checkpoint(tx))?;
        // Stage the sinks under the new epoch *before* handing the
        // checkpoint to the caller: a transactional sink durably records
        // "everything written so far is epoch E" now, so whether or not
        // the caller ever persists E, a restore of any persisted epoch
        // finds its staging boundary on disk.
        self.epoch += 1;
        for sink in &mut self.sinks {
            sink.on_checkpoint(self.epoch)?;
        }
        if let Some(tap) = &self.tap {
            tap.record(HistoryEvent::CheckpointTaken { epoch: self.epoch });
        }
        let checkpoint = PipelineCheckpoint {
            workers: worker_states,
            offsets: self
                .sources
                .iter()
                .map(|s| (0..s.parts.len()).map(|p| s.source.offset(p)).collect())
                .collect(),
            finished: self
                .sources
                .iter()
                .map(|s| s.parts.iter().map(|p| p.finished).collect())
                .collect(),
            feeders: self.ledger.feeder_watermarks().to_vec(),
            clock: self.clock,
            batch_size: self.controller.size(),
            pending: self
                .pending
                .iter()
                .map(|p| p.iter().cloned().collect())
                .collect(),
            next_seq: self.next_seq.clone(),
            renderer_versions: self.renderer.versions(),
            sink_watermark: self.sink_watermark,
            output_watermark: self.output_watermark,
            events_out: self.metrics.events_out,
            watermarks_in: self.metrics.watermarks_in,
            source_bytes: self
                .sources
                .iter()
                .map(|s| s.parts.iter().map(|p| p.bytes).collect())
                .collect(),
            epoch: self.epoch,
        };
        Ok(checkpoint)
    }

    /// Acknowledge a checkpoint the caller has made **durable**: forward
    /// its per-partition offsets to every source's
    /// [`PartitionedSource::ack`] hook, declaring them the new resume
    /// floor — no future restore will ever ask for earlier events, so
    /// sources (and, through them, remote producers holding a replay
    /// spool) may release replay resources below it.
    ///
    /// Deliberately separate from [`ShardedPipelineDriver::checkpoint`]:
    /// taking a checkpoint only builds an in-memory struct, and acking it
    /// before it is persisted would let the upstream trim away the only
    /// data that could rebuild it — a crash in that window would leave
    /// every surviving (older) checkpoint unrestorable. Call this after
    /// the checkpoint is safely stored; skipping it entirely is always
    /// correct, just less memory-frugal upstream.
    pub fn ack_checkpoint(&mut self, checkpoint: &PipelineCheckpoint) -> Result<()> {
        if checkpoint.offsets.len() != self.sources.len() {
            return Err(Error::exec(format!(
                "checkpoint has {} sources, driver has {}",
                checkpoint.offsets.len(),
                self.sources.len()
            )));
        }
        for (slot, offsets) in checkpoint.offsets.iter().enumerate() {
            if offsets.len() != self.sources[slot].parts.len() {
                return Err(Error::exec(format!(
                    "checkpoint source {slot} has {} partitions, driver has {}",
                    offsets.len(),
                    self.sources[slot].parts.len()
                )));
            }
            for (part, &offset) in offsets.iter().enumerate() {
                self.sources[slot].source.ack(part, offset)?;
            }
        }
        // Second phase for two-phase sinks: the epoch is durable, staged
        // rows below it are committed.
        for sink in &mut self.sinks {
            sink.commit_checkpoint(checkpoint.epoch)?;
        }
        Ok(())
    }

    /// Resume from a [`PipelineCheckpoint`]: restore every worker's
    /// operator state, seek every source partition to its recorded offset,
    /// and reload the merge/render/watermark cursors. Requires a fresh
    /// driver (same SQL, worker count, and source shapes, attached in the
    /// same order) that has not yet stepped.
    pub fn restore(&mut self, checkpoint: &PipelineCheckpoint) -> Result<()> {
        if self.metrics.rounds > 0 || self.metrics.events_in > 0 || self.restored {
            return Err(Error::exec("restore requires a fresh pipeline driver"));
        }
        if checkpoint.workers.len() != self.workers.len() {
            return Err(Error::exec(format!(
                "checkpoint has {} workers, driver has {}",
                checkpoint.workers.len(),
                self.workers.len()
            )));
        }
        if checkpoint.offsets.len() != self.sources.len() {
            return Err(Error::exec(format!(
                "checkpoint has {} sources, driver has {}",
                checkpoint.offsets.len(),
                self.sources.len()
            )));
        }
        for (slot, offsets) in checkpoint.offsets.iter().enumerate() {
            if offsets.len() != self.sources[slot].parts.len() {
                return Err(Error::exec(format!(
                    "checkpoint source {slot} has {} partitions, driver has {}",
                    offsets.len(),
                    self.sources[slot].parts.len()
                )));
            }
        }
        // The fields are public (checkpoints may round-trip through
        // external storage), so validate every vec we will index rather
        // than panicking on a truncated one.
        if checkpoint.finished.len() != checkpoint.offsets.len()
            || checkpoint
                .finished
                .iter()
                .zip(&checkpoint.offsets)
                .any(|(f, o)| f.len() != o.len())
        {
            return Err(Error::exec(
                "checkpoint finished-flags do not match its offsets shape",
            ));
        }
        if checkpoint.source_bytes.len() != checkpoint.offsets.len()
            || checkpoint
                .source_bytes
                .iter()
                .zip(&checkpoint.offsets)
                .any(|(b, o)| b.len() != o.len())
        {
            return Err(Error::exec(
                "checkpoint byte counters do not match its offsets shape",
            ));
        }
        if checkpoint.pending.len() != self.workers.len()
            || checkpoint.next_seq.len() != self.workers.len()
        {
            return Err(Error::exec(format!(
                "checkpoint pending/next_seq cover {}/{} workers, driver has {}",
                checkpoint.pending.len(),
                checkpoint.next_seq.len(),
                self.workers.len()
            )));
        }
        let feeder_count = self.ledger.feeder_watermarks().len();
        if checkpoint.feeders.len() != feeder_count {
            return Err(Error::exec(format!(
                "checkpoint has {} feeders, driver has {feeder_count}",
                checkpoint.feeders.len()
            )));
        }

        // Validation is done; from here on state mutates, and a partial
        // failure (e.g. one partition's seek) would leave workers holding
        // checkpoint state over half-reset cursors — poison rather than
        // let a caller step a Frankenstein pipeline.
        match self.restore_inner(checkpoint) {
            Ok(()) => {
                self.restored = true;
                self.refresh_metrics();
                Ok(())
            }
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    fn restore_inner(&mut self, checkpoint: &PipelineCheckpoint) -> Result<()> {
        // Workers first (operator state), then sources (replay position).
        self.gather(|w, tx| Cmd::Restore(checkpoint.workers[w].clone(), tx))?;
        // Sinks next: a transactional sink truncates everything staged
        // after this epoch, so the replayed rows append exactly where the
        // uninterrupted run had them.
        for sink in &mut self.sinks {
            sink.on_restore(checkpoint.epoch)?;
        }
        for (slot, offsets) in checkpoint.offsets.iter().enumerate() {
            for (part, &offset) in offsets.iter().enumerate() {
                // Seek unconditionally — even to offset 0. For local
                // replayable sources that is a no-op, but a source whose
                // upstream is another process uses the seek to learn the
                // resume position it must announce in its handshake, and
                // "resume from the beginning" is as real a position as any.
                self.sources[slot].source.seek(part, offset)?;
                let state = &mut self.sources[slot].parts[part];
                state.events = offset;
                state.bytes = checkpoint.source_bytes[slot][part];
                state.finished = checkpoint.finished[slot][part];
            }
        }
        // Re-observe the feeder watermarks; the advances this generates
        // are discarded — the workers' restored state already reflects
        // every watermark that was delivered before the checkpoint.
        let mut discard = Vec::new();
        for (feeder, wm) in checkpoint.feeders.iter().enumerate() {
            self.ledger.observe(feeder, *wm, &mut discard);
        }
        self.clock = checkpoint.clock;
        self.controller.set_size(checkpoint.batch_size);
        self.pending = checkpoint
            .pending
            .iter()
            .map(|p| p.iter().cloned().collect())
            .collect();
        self.next_seq = checkpoint.next_seq.clone();
        self.renderer
            .set_versions(checkpoint.renderer_versions.clone());
        self.sink_watermark = checkpoint.sink_watermark;
        self.output_watermark = checkpoint.output_watermark;
        self.epoch = checkpoint.epoch;
        self.metrics.events_in = checkpoint.offsets.iter().flatten().sum();
        self.metrics.events_out = checkpoint.events_out;
        self.metrics.watermarks_in = checkpoint.watermarks_in;
        self.metrics.bytes_in = checkpoint.source_bytes.iter().flatten().sum();
        self.metrics.checkpoint_epoch = checkpoint.epoch;
        self.metrics.restores += 1;
        observe::counter("driver.restores", 1);
        if let Some(tap) = &self.tap {
            tap.record(HistoryEvent::Restored {
                epoch: checkpoint.epoch,
            });
        }
        Ok(())
    }
}

impl Drop for ShardedPipelineDriver {
    fn drop(&mut self) {
        // Disconnect the command channels so worker threads exit their
        // recv loops, then reap them; leaking threads from an abandoned
        // (e.g. crashed-and-dropped) pipeline would accumulate in tests.
        for worker in std::mem::take(&mut self.workers) {
            drop(worker.tx);
            let _ = worker.handle.join();
        }
    }
}

impl std::fmt::Debug for ShardedPipelineDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedPipelineDriver")
            .field("workers", &self.workers.len().max(self.final_queries.len()))
            .field("sources", &self.sources.len())
            .field("sinks", &self.sinks.len())
            .field("events_in", &self.metrics.events_in)
            .field("events_out", &self.metrics.events_out)
            .field("finished", &self.finished)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connect::{SourceBatch, SourceEvent};
    use crate::engine::StreamBuilder;
    use onesql_types::{row, DataType};

    fn engine() -> Engine {
        let mut e = Engine::new();
        e.register_stream(
            "Bid",
            StreamBuilder::new()
                .column("auction", DataType::Int)
                .column("price", DataType::Int)
                .event_time_column("ts"),
        );
        e
    }

    /// A replayable partitioned source: each partition emits its scripted
    /// events in order, asserting a watermark at its max event time.
    struct ScriptPartitions {
        name: String,
        streams: Vec<String>,
        parts: Vec<Vec<(Ts, Row)>>,
        cursors: Vec<usize>,
    }

    impl ScriptPartitions {
        fn new(parts: Vec<Vec<(Ts, Row)>>) -> ScriptPartitions {
            ScriptPartitions {
                name: "script".to_string(),
                streams: vec!["Bid".to_string()],
                cursors: vec![0; parts.len()],
                parts,
            }
        }
    }

    impl PartitionedSource for ScriptPartitions {
        fn name(&self) -> &str {
            &self.name
        }
        fn streams(&self) -> &[String] {
            &self.streams
        }
        fn partitions(&self) -> usize {
            self.parts.len()
        }
        fn poll_partition(&mut self, partition: usize, max_events: usize) -> Result<SourceBatch> {
            let cursor = self.cursors[partition];
            let script = &self.parts[partition];
            let take = max_events.min(script.len() - cursor);
            let mut batch = SourceBatch::empty(SourceStatus::Ready);
            for (ptime, row) in &script[cursor..cursor + take] {
                batch.events.push(SourceEvent {
                    stream: 0,
                    ptime: *ptime,
                    change: Change::insert(row.clone()),
                });
                batch.watermark = Some(batch.watermark.map_or(*ptime, |w: Ts| w.max(*ptime)));
            }
            self.cursors[partition] += take;
            if self.cursors[partition] == script.len() {
                batch.status = SourceStatus::Finished;
            }
            Ok(batch)
        }
        fn offset(&self, partition: usize) -> u64 {
            self.cursors[partition] as u64
        }
    }

    fn bids(n: i64, salt: i64) -> Vec<(Ts, Row)> {
        (0..n)
            .map(|i| (Ts(i * 10 + salt), row!(i % 5, i + salt, Ts(i * 10 + salt))))
            .collect()
    }

    const AGG: &str = "SELECT auction, COUNT(*), SUM(price) FROM Bid GROUP BY auction";

    #[test]
    fn sharded_matches_unsharded_table() {
        let e = engine();
        let parts = vec![bids(40, 0), bids(40, 3), bids(40, 7)];
        let mut tables = Vec::new();
        for workers in [1usize, 2, 4] {
            let mut driver =
                ShardedPipelineDriver::new(&e, AGG, ShardedConfig::new(workers)).unwrap();
            driver
                .attach_partitioned_source(Box::new(ScriptPartitions::new(parts.clone())))
                .unwrap();
            driver.run().unwrap();
            tables.push(driver.table().unwrap());
        }
        assert_eq!(tables[0], tables[1], "2 workers diverged");
        assert_eq!(tables[0], tables[2], "4 workers diverged");
    }

    #[test]
    fn zero_workers_rejected() {
        let e = engine();
        assert!(ShardedPipelineDriver::new(&e, AGG, ShardedConfig::new(0)).is_err());
    }

    #[test]
    fn table_requires_finish() {
        let e = engine();
        let mut driver = ShardedPipelineDriver::new(&e, AGG, ShardedConfig::new(2)).unwrap();
        driver
            .attach_partitioned_source(Box::new(ScriptPartitions::new(vec![bids(5, 0)])))
            .unwrap();
        assert!(driver.table().is_err());
        driver.run().unwrap();
        assert!(driver.table().is_ok());
    }

    #[test]
    fn restore_validates_shapes() {
        let e = engine();
        // Small fixed batches so one step leaves the source mid-stream.
        let config = ShardedConfig::new(2).with_driver(DriverConfig {
            batch_size: 4,
            adaptive: None,
            ..DriverConfig::default()
        });
        let mut driver = ShardedPipelineDriver::new(&e, AGG, config).unwrap();
        driver
            .attach_partitioned_source(Box::new(ScriptPartitions::new(vec![bids(20, 0)])))
            .unwrap();
        driver.step().unwrap();
        let cp = driver.checkpoint().unwrap();

        // Wrong worker count.
        let mut other = ShardedPipelineDriver::new(&e, AGG, ShardedConfig::new(3)).unwrap();
        other
            .attach_partitioned_source(Box::new(ScriptPartitions::new(vec![bids(20, 0)])))
            .unwrap();
        assert!(other.restore(&cp).is_err());

        // Wrong partition count.
        let mut other = ShardedPipelineDriver::new(&e, AGG, ShardedConfig::new(2)).unwrap();
        other
            .attach_partitioned_source(Box::new(ScriptPartitions::new(vec![
                bids(10, 0),
                bids(10, 1),
            ])))
            .unwrap();
        assert!(other.restore(&cp).is_err());

        // A driver that already ran refuses restore.
        let mut other = ShardedPipelineDriver::new(&e, AGG, config).unwrap();
        other
            .attach_partitioned_source(Box::new(ScriptPartitions::new(vec![bids(20, 0)])))
            .unwrap();
        other.step().unwrap();
        assert!(other.restore(&cp).is_err());

        // A restored driver seals its source set and refuses a second
        // restore: attaching would rebuild the watermark trackers and wipe
        // the state the restore just loaded.
        let mut other = ShardedPipelineDriver::new(&e, AGG, config).unwrap();
        other
            .attach_partitioned_source(Box::new(ScriptPartitions::new(vec![bids(20, 0)])))
            .unwrap();
        other.restore(&cp).unwrap();
        assert!(other
            .attach_partitioned_source(Box::new(ScriptPartitions::new(vec![bids(20, 0)])))
            .is_err());
        assert!(other.restore(&cp).is_err());
        // But it still runs to completion normally.
        other.run().unwrap();
        assert!(other.is_finished());
    }

    #[test]
    fn failed_step_poisons_the_pipeline() {
        let e = engine();
        // Partition column out of range: the first step fails after the
        // source was polled, so the driver must refuse to continue or
        // checkpoint (the polled events never reached a worker).
        let mut driver =
            ShardedPipelineDriver::new(&e, AGG, ShardedConfig::new(2).with_partition_col(9))
                .unwrap();
        driver
            .attach_partitioned_source(Box::new(ScriptPartitions::new(vec![bids(5, 0)])))
            .unwrap();
        assert!(driver.step().is_err());
        let err = driver.step().unwrap_err().to_string();
        assert!(err.contains("poisoned"), "{err}");
        let err = driver.checkpoint().unwrap_err().to_string();
        assert!(err.contains("poisoned"), "{err}");
    }

    #[test]
    fn single_partition_adapter_reports_offsets() {
        struct Counting {
            name: String,
            streams: Vec<String>,
            left: usize,
        }
        impl Source for Counting {
            fn name(&self) -> &str {
                &self.name
            }
            fn streams(&self) -> &[String] {
                &self.streams
            }
            fn poll_batch(&mut self, max_events: usize) -> Result<SourceBatch> {
                let take = max_events.min(self.left);
                self.left -= take;
                let mut batch = SourceBatch::empty(if self.left == 0 {
                    SourceStatus::Finished
                } else {
                    SourceStatus::Ready
                });
                for i in 0..take {
                    batch.events.push(SourceEvent {
                        stream: 0,
                        ptime: Ts(i as i64),
                        change: Change::insert(row!(1i64, 1i64, Ts(i as i64))),
                    });
                }
                Ok(batch)
            }
        }
        let mut adapted = SinglePartition::new(Box::new(Counting {
            name: "counting".to_string(),
            streams: vec!["Bid".to_string()],
            left: 10,
        }));
        assert_eq!(adapted.partitions(), 1);
        assert_eq!(adapted.offset(0), 0);
        adapted.poll_partition(0, 4).unwrap();
        assert_eq!(adapted.offset(0), 4);
        // Default seek replays forward and refuses to rewind.
        adapted.seek(0, 8).unwrap();
        assert_eq!(adapted.offset(0), 8);
        assert!(adapted.seek(0, 2).is_err());
        assert!(adapted.seek(0, 100).is_err(), "exhausts at 10");
    }
}
