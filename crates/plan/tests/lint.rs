//! Positive and negative coverage for every `OSQL...` diagnostic class,
//! plus span correctness and a never-panics property test.

use onesql_plan::lint::{analyze_script, lint_script_text, Diagnostic, LintContext, Severity};
use onesql_sql::parse_script_spanned;
use proptest::prelude::*;

fn lint(script: &str) -> Vec<Diagnostic> {
    lint_script_text(script, &LintContext::default())
}

fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.code).collect()
}

/// A watermarked bids source + file sink, the baseline most tests extend.
const PRELUDE: &str = "\
CREATE SOURCE bids (t TIMESTAMP, price INT, auction INT, WATERMARK FOR t)
  WITH (connector = 'channel');
CREATE SINK out WITH (connector = 'file', path = '/tmp/lint-out');
";

#[test]
fn clean_script_has_no_findings() {
    let script = format!(
        "{PRELUDE}INSERT INTO out SELECT wstart, COUNT(*) FROM Tumble(data => TABLE(bids), \
         timecol => DESCRIPTOR(t), dur => INTERVAL '1' MINUTE) \
         GROUP BY wstart EMIT STREAM AFTER WATERMARK;"
    );
    assert_eq!(lint(&script), vec![], "clean script must lint clean");
}

// -- OSQL000: parse / bind errors -------------------------------------------

#[test]
fn osql000_bind_error_carries_statement_span() {
    let script = format!("{PRELUDE}SELECT nope FROM bids;");
    let diags = lint(&script);
    assert_eq!(codes(&diags), vec!["OSQL000"]);
    assert_eq!(diags[0].severity, Severity::Error);
    assert_eq!(diags[0].statement, 2);
    assert_eq!(diags[0].span.slice(&script), "SELECT nope FROM bids");
    assert!(diags[0].message.contains("nope"), "{}", diags[0].message);
}

#[test]
fn osql000_parse_error_spans_whole_text() {
    let diags = lint("SELECT FROM");
    assert_eq!(codes(&diags), vec!["OSQL000"]);
    assert!(
        diags[0].message.contains("line 1"),
        "parse errors keep positions: {}",
        diags[0].message
    );
}

#[test]
fn osql000_negative_valid_statements_bind() {
    assert_eq!(lint("SELECT 1;"), vec![]);
}

// -- OSQL001: unbounded keyed state -----------------------------------------

#[test]
fn osql001_unwindowed_stream_join_fires() {
    let script = format!(
        "{PRELUDE}CREATE SOURCE asks (t TIMESTAMP, price INT, auction INT, WATERMARK FOR t)
           WITH (connector = 'channel');
         INSERT INTO out SELECT b.price FROM bids b JOIN asks a
           ON b.auction = a.auction EMIT STREAM;"
    );
    let diags = lint(&script);
    assert_eq!(codes(&diags), vec!["OSQL001"]);
    assert_eq!(diags[0].severity, Severity::Warning);
    assert!(
        diags[0].message.contains("time-bounded"),
        "{}",
        diags[0].message
    );
    assert!(diags[0].span.slice(&script).starts_with("INSERT INTO out"));
}

#[test]
fn osql001_negative_time_bounded_join_is_clean() {
    let script = format!(
        "{PRELUDE}CREATE SOURCE asks (t TIMESTAMP, price INT, auction INT, WATERMARK FOR t)
           WITH (connector = 'channel');
         INSERT INTO out SELECT b.price FROM bids b, asks a
           WHERE b.auction = a.auction AND
                 b.t >= a.t - INTERVAL '1' MINUTE AND b.t < a.t
           EMIT STREAM;"
    );
    assert_eq!(lint(&script), vec![]);
}

#[test]
fn osql001_retraction_aggregate_fires_windowed_does_not() {
    let retraction = format!(
        "{PRELUDE}INSERT INTO out SELECT auction, COUNT(*) FROM bids GROUP BY auction EMIT STREAM;"
    );
    let diags = lint(&retraction);
    assert_eq!(codes(&diags), vec!["OSQL001"]);
    assert!(
        diags[0].message.contains("retraction"),
        "{}",
        diags[0].message
    );

    let windowed = format!(
        "{PRELUDE}INSERT INTO out SELECT wstart, COUNT(*) FROM Tumble(data => TABLE(bids), \
         timecol => DESCRIPTOR(t), dur => INTERVAL '1' MINUTE) \
         GROUP BY wstart EMIT STREAM AFTER WATERMARK;"
    );
    assert_eq!(lint(&windowed), vec![]);
}

#[test]
fn osql001_distinct_over_stream_fires() {
    let script = format!("{PRELUDE}INSERT INTO out SELECT DISTINCT price FROM bids EMIT STREAM;");
    let diags = lint(&script);
    assert_eq!(codes(&diags), vec!["OSQL001"]);
    assert!(
        diags[0].message.contains("DISTINCT"),
        "{}",
        diags[0].message
    );
}

// -- OSQL002: shard-key misalignment ----------------------------------------

const SHARDED_PRELUDE: &str = "\
SET workers = 2;
CREATE PARTITIONED SOURCE bids (auction INT, t TIMESTAMP, price INT, WATERMARK FOR t)
  WITH (connector = 'channel', partitions = 2);
CREATE SINK out WITH (connector = 'file', path = '/tmp/lint-out');
";

#[test]
fn osql002_group_key_off_partition_column_fires() {
    // Routing hashes column 0 (auction); grouping by price splits groups
    // across workers.
    let script = format!(
        "{SHARDED_PRELUDE}INSERT INTO out SELECT price, wstart, COUNT(*) \
         FROM Tumble(data => TABLE(bids), timecol => DESCRIPTOR(t), \
         dur => INTERVAL '1' MINUTE) \
         GROUP BY price, wstart EMIT STREAM AFTER WATERMARK;"
    );
    let diags = lint(&script);
    assert_eq!(codes(&diags), vec!["OSQL002"]);
    assert_eq!(diags[0].severity, Severity::Warning);
    assert!(
        diags[0].message.contains("workers = 2"),
        "{}",
        diags[0].message
    );
}

#[test]
fn osql002_negative_group_key_on_partition_column_is_clean() {
    let script = format!(
        "{SHARDED_PRELUDE}INSERT INTO out SELECT auction, wstart, COUNT(*) \
         FROM Tumble(data => TABLE(bids), timecol => DESCRIPTOR(t), \
         dur => INTERVAL '1' MINUTE) \
         GROUP BY auction, wstart EMIT STREAM AFTER WATERMARK;"
    );
    assert_eq!(lint(&script), vec![]);
}

#[test]
fn osql002_negative_single_worker_never_fires() {
    let script = "SET workers = 1;
         CREATE PARTITIONED SOURCE bids (auction INT, t TIMESTAMP, price INT, WATERMARK FOR t)
           WITH (connector = 'channel', partitions = 2);
         CREATE SINK out WITH (connector = 'file', path = '/tmp/lint-out');
         INSERT INTO out SELECT price, wstart, COUNT(*) \
         FROM Tumble(data => TABLE(bids), timecol => DESCRIPTOR(t), \
         dur => INTERVAL '1' MINUTE) \
         GROUP BY price, wstart EMIT STREAM AFTER WATERMARK;";
    assert_eq!(lint(script), vec![]);
}

// -- OSQL003: windowed pipeline without the watermark gate ------------------

#[test]
fn osql003_ungated_windowed_insert_fires() {
    let script = format!(
        "{PRELUDE}INSERT INTO out SELECT wstart, COUNT(*) FROM Tumble(data => TABLE(bids), \
         timecol => DESCRIPTOR(t), dur => INTERVAL '1' MINUTE) \
         GROUP BY wstart EMIT STREAM;"
    );
    let diags = lint(&script);
    assert_eq!(codes(&diags), vec!["OSQL003"]);
    assert!(
        diags[0].message.contains("AFTER WATERMARK"),
        "{}",
        diags[0].message
    );
}

#[test]
fn osql003_negative_gated_or_unwindowed_is_clean() {
    let gated = format!(
        "{PRELUDE}INSERT INTO out SELECT wstart, COUNT(*) FROM Tumble(data => TABLE(bids), \
         timecol => DESCRIPTOR(t), dur => INTERVAL '1' MINUTE) \
         GROUP BY wstart EMIT STREAM AFTER WATERMARK;"
    );
    assert_eq!(lint(&gated), vec![]);
    // No window anywhere: a plain filter pipeline may emit raw.
    let unwindowed = format!("{PRELUDE}INSERT INTO out SELECT price FROM bids EMIT STREAM;");
    assert_eq!(lint(&unwindowed), vec![]);
}

// -- OSQL004: doomed CHECKPOINT ---------------------------------------------

#[test]
fn osql004_plain_pipeline_checkpoint_is_error() {
    let script = format!(
        "{PRELUDE}INSERT INTO out SELECT price FROM bids EMIT STREAM;
         CHECKPOINT PIPELINE out TO '/tmp/lint-ck';"
    );
    let diags = lint(&script);
    assert_eq!(codes(&diags), vec!["OSQL004"]);
    assert_eq!(diags[0].severity, Severity::Error);
    assert!(diags[0].message.contains("sharded"), "{}", diags[0].message);
    assert!(diags[0]
        .span
        .slice(&script)
        .starts_with("CHECKPOINT PIPELINE"));
}

#[test]
fn osql004_non_replayable_sharded_source_warns() {
    let script = format!(
        "{SHARDED_PRELUDE}INSERT INTO out SELECT auction, wstart, COUNT(*) \
         FROM Tumble(data => TABLE(bids), timecol => DESCRIPTOR(t), \
         dur => INTERVAL '1' MINUTE) \
         GROUP BY auction, wstart EMIT STREAM AFTER WATERMARK;
         CHECKPOINT PIPELINE out TO '/tmp/lint-ck';"
    );
    let diags = lint(&script);
    assert_eq!(codes(&diags), vec!["OSQL004"]);
    assert_eq!(diags[0].severity, Severity::Warning);
    assert!(
        diags[0].message.contains("not replayable"),
        "{}",
        diags[0].message
    );
}

#[test]
fn osql004_unknown_pipeline_is_error() {
    let diags = lint("CHECKPOINT PIPELINE ghost TO '/tmp/lint-ck';");
    assert_eq!(codes(&diags), vec!["OSQL004"]);
    assert!(
        diags[0].message.contains("no such pipeline"),
        "{}",
        diags[0].message
    );
}

#[test]
fn osql004_negative_replayable_sharded_pipeline_is_clean() {
    let script = "SET workers = 2;
         CREATE PARTITIONED SOURCE bids (auction INT, t TIMESTAMP, price INT, WATERMARK FOR t)
           WITH (connector = 'file', path = '/tmp/lint-in', partitions = 2);
         CREATE SINK out WITH (connector = 'file', path = '/tmp/lint-out');
         INSERT INTO out SELECT auction, wstart, COUNT(*)
           FROM Tumble(data => TABLE(bids), timecol => DESCRIPTOR(t),
                       dur => INTERVAL '1' MINUTE)
           GROUP BY auction, wstart EMIT STREAM AFTER WATERMARK;
         CHECKPOINT PIPELINE out TO '/tmp/lint-ck';";
    assert_eq!(lint(script), vec![]);
}

// -- OSQL005: watermark-dependent query with no event-time column -----------

#[test]
fn osql005_window_on_unwatermarked_column_fires() {
    // `t` is a TIMESTAMP but carries no WATERMARK FOR, so windows only
    // finalize at end of stream.
    let script = "CREATE SOURCE bids (t TIMESTAMP, price INT) WITH (connector = 'channel');
         CREATE SINK out WITH (connector = 'file', path = '/tmp/lint-out');
         INSERT INTO out SELECT wstart, COUNT(*) FROM Tumble(data => TABLE(bids), \
         timecol => DESCRIPTOR(t), dur => INTERVAL '1' MINUTE) \
         GROUP BY wstart EMIT STREAM AFTER WATERMARK;";
    let diags = lint(script);
    assert_eq!(codes(&diags), vec!["OSQL005"]);
    assert!(
        diags[0].message.contains("WATERMARK FOR"),
        "{}",
        diags[0].message
    );
}

#[test]
fn osql005_gated_emit_without_event_time_fires() {
    let script = "CREATE SOURCE bids (t TIMESTAMP, price INT) WITH (connector = 'channel');
         CREATE SINK out WITH (connector = 'file', path = '/tmp/lint-out');
         INSERT INTO out SELECT price FROM bids EMIT STREAM AFTER WATERMARK;";
    let diags = lint(script);
    assert_eq!(codes(&diags), vec!["OSQL005"]);
    assert!(
        diags[0].message.contains("end of stream"),
        "{}",
        diags[0].message
    );
}

#[test]
fn osql005_negative_watermarked_source_is_clean() {
    let script =
        format!("{PRELUDE}INSERT INTO out SELECT price FROM bids EMIT STREAM AFTER WATERMARK;");
    assert_eq!(lint(&script), vec![]);
}

// -- OSQL006: sink schema drift ---------------------------------------------

#[test]
fn osql006_conflicting_inserts_fire() {
    let script = format!(
        "{PRELUDE}INSERT INTO out SELECT price FROM bids EMIT STREAM;
         INSERT INTO out SELECT price, auction FROM bids EMIT STREAM;"
    );
    let diags = lint(&script);
    assert_eq!(codes(&diags), vec!["OSQL006"]);
    assert_eq!(diags[0].severity, Severity::Error);
    assert!(diags[0].message.contains("differs"), "{}", diags[0].message);
    assert!(diags[0]
        .span
        .slice(&script)
        .contains("SELECT price, auction"));
}

#[test]
fn osql006_net_sink_stream_mismatch_fires() {
    let script = "CREATE SOURCE bids (t TIMESTAMP, price INT, WATERMARK FOR t)
           WITH (connector = 'channel');
         CREATE STREAM quotes (q INT, r INT, s INT);
         CREATE SINK fwd WITH (connector = 'net', addr = '127.0.0.1:0', stream = 'quotes');
         INSERT INTO fwd SELECT price FROM bids EMIT STREAM;";
    let diags = lint(script);
    assert_eq!(codes(&diags), vec!["OSQL006"]);
    assert!(diags[0].message.contains("quotes"), "{}", diags[0].message);
}

#[test]
fn osql006_negative_consistent_inserts_are_clean() {
    let script = format!(
        "{PRELUDE}INSERT INTO out SELECT price FROM bids EMIT STREAM;
         INSERT INTO out SELECT auction FROM bids EMIT STREAM;"
    );
    // Same arity and types (both single INT); names may differ.
    assert_eq!(lint(&script), vec![]);
}

// -- OSQL007: unfed streams and dead CREATEs --------------------------------

#[test]
fn osql007_insert_over_unfed_stream_is_error() {
    let script = "CREATE STREAM quotes (q INT);
         CREATE SINK out WITH (connector = 'file', path = '/tmp/lint-out');
         INSERT INTO out SELECT q FROM quotes EMIT STREAM;";
    let diags = lint(script);
    assert_eq!(codes(&diags), vec!["OSQL007"]);
    assert_eq!(diags[0].severity, Severity::Error);
    assert!(
        diags[0].message.contains("no CREATE SOURCE feeds"),
        "{}",
        diags[0].message
    );
}

#[test]
fn osql007_dead_create_is_noted() {
    let script = format!(
        "{PRELUDE}CREATE STREAM orphan (x INT);\nINSERT INTO out SELECT price FROM bids EMIT STREAM;"
    );
    let diags = lint(&script);
    assert_eq!(codes(&diags), vec!["OSQL007"]);
    assert_eq!(diags[0].severity, Severity::Note);
    assert!(
        diags[0].message.contains("never used"),
        "{}",
        diags[0].message
    );
    assert!(diags[0].span.slice(&script).contains("orphan"));
}

#[test]
fn osql007_negative_fed_and_used_objects_are_clean() {
    let script = format!("{PRELUDE}INSERT INTO out SELECT price FROM bids EMIT STREAM;");
    assert_eq!(lint(&script), vec![]);
}

// -- OSQL008: contradictory knobs -------------------------------------------

#[test]
fn osql008_min_batch_above_max_batch_fires() {
    let diags = lint("SET min_batch = 100;\nSET max_batch = 50;");
    assert_eq!(codes(&diags), vec!["OSQL008"]);
    assert!(
        diags[0].message.contains("min_batch = 100"),
        "{}",
        diags[0].message
    );
    // The finding anchors to the statement completing the contradiction.
    assert_eq!(diags[0].statement, 1);
}

#[test]
fn osql008_batch_size_outside_adaptive_range_fires() {
    let diags = lint("SET batch_size = 10;\nSET min_batch = 20;\nSET max_batch = 40;");
    assert_eq!(codes(&diags), vec!["OSQL008"]);
    assert!(
        diags[0].message.contains("below min_batch"),
        "{}",
        diags[0].message
    );
}

#[test]
fn osql008_workers_above_partitions_fires_either_order() {
    let set_last = "CREATE PARTITIONED SOURCE bids (t TIMESTAMP, v INT, WATERMARK FOR t)
           WITH (connector = 'channel', partitions = 2);
         SET workers = 4;";
    let diags = lint(set_last);
    assert_eq!(codes(&diags), vec!["OSQL007", "OSQL008"]);
    let knob = diags.iter().find(|d| d.code == "OSQL008").unwrap();
    assert!(knob.message.contains("sit idle"), "{}", knob.message);

    let set_first = "SET workers = 4;
         CREATE PARTITIONED SOURCE bids (t TIMESTAMP, v INT, WATERMARK FOR t)
           WITH (connector = 'channel', partitions = 2);";
    let diags = lint(set_first);
    assert!(codes(&diags).contains(&"OSQL008"), "{diags:?}");
}

#[test]
fn osql008_negative_consistent_knobs_are_clean() {
    assert_eq!(
        lint("SET min_batch = 10;\nSET max_batch = 100;\nSET batch_size = 50;"),
        vec![]
    );
}

// -- report rendering -------------------------------------------------------

#[test]
fn diagnostics_render_with_line_and_column() {
    let script = format!("{PRELUDE}SELECT nope FROM bids;");
    let diags = lint(&script);
    let line = diags[0].render(&script);
    assert!(
        line.starts_with("OSQL000 error at line 4, column 1:"),
        "{line}"
    );
    let report = onesql_plan::render_report(&diags, &script);
    assert!(report.contains("OSQL000"), "{report}");
    assert_eq!(onesql_plan::render_report(&[], &script), "no lint findings");
}

// -- never panics -----------------------------------------------------------

/// Fragments that compose into scripts exercising every statement kind,
/// valid or not — the analyzer must never panic, whatever the mix.
fn fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("CREATE SOURCE s (t TIMESTAMP, v INT, WATERMARK FOR t) WITH (connector = 'channel')".to_string()),
        Just("CREATE PARTITIONED SOURCE p (k INT, t TIMESTAMP, WATERMARK FOR t) WITH (connector = 'channel', partitions = 2)".to_string()),
        Just("CREATE SOURCE ghost WITH (connector = 'nexmark', events = 10)".to_string()),
        Just("CREATE SINK out WITH (connector = 'file', path = '/tmp/x')".to_string()),
        Just("CREATE SINK fwd WITH (connector = 'net', addr = '127.0.0.1:0', stream = 's')".to_string()),
        Just("CREATE STREAM q (a INT)".to_string()),
        Just("CREATE TEMPORAL TABLE r (id INT, rate INT) WITH (key = 'id')".to_string()),
        Just("INSERT INTO out SELECT v FROM s EMIT STREAM".to_string()),
        Just("INSERT INTO out SELECT DISTINCT v FROM s EMIT STREAM".to_string()),
        Just("INSERT INTO out SELECT k, COUNT(*) FROM p GROUP BY k EMIT STREAM".to_string()),
        Just("INSERT INTO fwd SELECT wstart, COUNT(*) FROM Tumble(data => TABLE(s), timecol => DESCRIPTOR(t), dur => INTERVAL '1' MINUTE) GROUP BY wstart EMIT STREAM".to_string()),
        Just("SELECT missing FROM nowhere".to_string()),
        Just("SET workers = 4".to_string()),
        Just("SET min_batch = 100".to_string()),
        Just("SET max_batch = 10".to_string()),
        Just("SET batch_size = 1".to_string()),
        Just("CHECKPOINT PIPELINE out TO '/tmp/ck'".to_string()),
        Just("RESTORE PIPELINE out FROM '/tmp/ck'".to_string()),
        Just("SHOW PIPELINES".to_string()),
        Just("DROP SOURCE IF EXISTS s".to_string()),
        Just("DROP STREAM IF EXISTS q".to_string()),
        Just("DROP SINK IF EXISTS out".to_string()),
        Just("EXPLAIN SELECT 1".to_string()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn analyze_script_never_panics(stmts in proptest::collection::vec(fragment(), 0..8)) {
        let script = stmts.join(";\n");
        // Through the text entry point (parse may fail: still no panic)...
        let _ = lint_script_text(&script, &LintContext::default());
        // ...and through the parsed entry point when the script parses.
        if let Ok(parsed) = parse_script_spanned(&script) {
            let _ = analyze_script(&parsed, &LintContext::default());
        }
    }
}
