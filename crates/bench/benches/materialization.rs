//! B1 — "Torrents of updates" (§3.3.2 / §6.5.2).
//!
//! Measures how the EMIT materialization strategy shapes the output volume
//! and runtime of a windowed aggregation over a NEXMark bid stream:
//! continuous (instantaneous view) vs. `AFTER DELAY d` (periodic) vs.
//! `AFTER WATERMARK` (final only). The paper's claim: delayed
//! materialization "can be limited to fewer and more relevant updates".
//! Expected shape: changelog rows continuous > delay(short) > delay(long) >
//! watermark; runtimes in the same order or flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use onesql_bench::{nexmark_engine, nexmark_events, run_nexmark};
use onesql_types::Duration;

const BASE: &str = "\
SELECT auction, wend, MAX(price), COUNT(*)
FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(dateTime),
            dur => INTERVAL '1' MINUTE)
GROUP BY auction, wend";

const STRATEGIES: [(&str, &str); 4] = [
    ("continuous", ""),
    (
        "delay_10s",
        " EMIT STREAM AFTER DELAY INTERVAL '10' SECONDS",
    ),
    (
        "delay_60s",
        " EMIT STREAM AFTER DELAY INTERVAL '60' SECONDS",
    ),
    ("after_watermark", " EMIT STREAM AFTER WATERMARK"),
];

fn run_strategy(suffix: &str, n: usize) -> usize {
    let events = nexmark_events(n, 11, Duration::from_seconds(5));
    let engine = nexmark_engine();
    let sql = format!("{BASE}{suffix}");
    let mut q = engine.execute(&sql).unwrap();
    run_nexmark(&mut q, &events, Duration::from_seconds(5));
    q.changelog().len()
}

fn bench_materialization(c: &mut Criterion) {
    // Report the update-volume series once (the B1 "figure").
    eprintln!("\nB1 update volume (changelog rows, 5k events):");
    for (name, suffix) in STRATEGIES {
        eprintln!("  {name:>16}: {}", run_strategy(suffix, 5_000));
    }

    let mut group = c.benchmark_group("materialization");
    group.sample_size(10);
    for (name, suffix) in STRATEGIES {
        group.bench_with_input(BenchmarkId::from_parameter(name), &suffix, |b, suffix| {
            b.iter(|| run_strategy(suffix, 2_000));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_materialization);
criterion_main!(benches);
