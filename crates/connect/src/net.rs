//! Network connectors: pipelines that span processes.
//!
//! A producer process pushes `SourceBatch`-shaped data — row changes,
//! watermark assertions, end-of-stream — through a length-prefixed,
//! CRC-protected binary framing over TCP or unix sockets; a consumer
//! process accepts those connections as the partitions of a
//! [`PartitionedNetSource`] feeding a (sharded) pipeline. The partition /
//! offset / watermark model of [`PartitionedSource`] is already
//! wire-shaped, so the protocol only has to carry it faithfully:
//!
//! - **Writer side**: [`NetPublisher`] (raw event/watermark publishing,
//!   one connection = one partition) and [`NetSink`] (a [`Sink`] adapter
//!   so one pipeline's output changelog becomes another process's input
//!   stream). Every event the publisher sends is retained in a **bounded
//!   replay spool** until the consumer acknowledges it, so a consumer
//!   that crashes and restores from a [`PipelineCheckpoint`] can
//!   reconnect and have exactly the unacknowledged suffix replayed —
//!   exactly-once across the process boundary.
//! - **Reader side**: [`PartitionedNetSource`] (one partition per
//!   accepted connection, claimed by the producer's handshake) and the
//!   single-partition [`NetSource`]. Seeking a fresh source to a
//!   checkpointed offset records a *resume offset* announced in the
//!   handshake reply; the producer rewinds its spool to that offset and
//!   re-sends. Driver checkpoints flow back as `ACK` frames
//!   ([`PartitionedSource::ack`]) that let the producer trim the spool.
//!
//! The frame layout (magic, version, schema header, batch / ack frames,
//! CRC) is specified in `docs/WIRE_FORMAT.md`, including a worked hex
//! example, so a non-Rust producer can implement it.
//!
//! # Determinism across kill/restore
//!
//! Byte-identical resume (the black-box exactly-once property the sharded
//! runtime tests demand) requires the resumed consumer to observe the
//! *same per-poll batches* the uninterrupted run would have. Three
//! protocol choices make that a function of the byte stream rather than
//! of timing: the consumer delivers **at most one wire frame per poll**
//! (never coalescing frames that happen to have both arrived); watermarks
//! **ride event frames** instead of traveling alone, so mid-stream frames
//! always carry events and the consumer's event offset fully determines
//! its consumption point; and every spooled watermark records which frame
//! carried it, so a reconnect replays exactly the watermarks the consumer
//! never consumed, at their original stream positions. Frame boundaries
//! themselves are the producer's batching decision, so for byte-identical
//! resume keep the producer's `batch_events` aligned with the consumer's
//! poll batch size (fixed, not adaptive), and checkpoint at poll
//! boundaries — which is the only place the sharded driver checkpoints
//! anyway.
//!
//! [`PipelineCheckpoint`]: onesql_core::shard::PipelineCheckpoint

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration as StdDuration, Instant};

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};

use onesql_core::connect::{
    PartitionedSource, PartitionedVec, Sink, Source, SourceBatch, SourceEvent, SourceStatus,
};
use onesql_core::observe;
use onesql_exec::StreamRow;
use onesql_time::Watermark;
use onesql_tvr::Change;
use onesql_types::{Error, Result, Row, Ts, Value};

/// First bytes of every connection: `b"OSQW"` (onesql wire).
pub const WIRE_MAGIC: [u8; 4] = *b"OSQW";
/// Protocol version carried right after the magic; bumped on any change
/// to the frame layout. Version 2 appends two optional trailing sections
/// to version-1 bodies: `BATCH` gains a trace-context field (`u8` flag +
/// `u64` producer span id) so consumer-side spans can stitch into the
/// producer's trace, and `KEEPALIVE` gains the producer's current
/// watermark (`u8` flag + `i64` millis) so lag attribution survives idle
/// stretches. Producers always write [`WIRE_VERSION`]; consumers accept
/// any version in [`MIN_WIRE_VERSION`]`..=`[`WIRE_VERSION`] and parse
/// each connection at the version its preamble announced — so upgrade
/// consumers first: a new consumer reads old producers, but an old
/// consumer rejects a new producer's preamble.
pub const WIRE_VERSION: u16 = 2;
/// Oldest protocol version a consumer still accepts. Version-1 bodies
/// are parsed exactly as a version-1 build would: the version-2 trailing
/// sections are simply absent.
pub const MIN_WIRE_VERSION: u16 = 1;
/// Upper bound on a frame body; larger length prefixes are rejected as
/// corruption before any allocation happens.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

const KIND_HELLO: u8 = 1;
const KIND_HELLO_ACK: u8 = 2;
const KIND_BATCH: u8 = 3;
const KIND_ACK: u8 = 4;
const KIND_FINISH: u8 = 5;
const KIND_KEEPALIVE: u8 = 6;

/// CRC-32 (IEEE 802.3, the zlib polynomial) of `data`, as appended to
/// every frame body. One checksum definition serves both the wire format
/// and the durable checkpoint format: this is the shared implementation
/// from `onesql_state::codec`.
pub use onesql_state::codec::crc32;

// ---------------------------------------------------------------------------
// Addresses, connections, listeners: TCP and unix sockets behind one face.
// ---------------------------------------------------------------------------

/// Where a network endpoint lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetAddr {
    /// A TCP address in `host:port` form.
    Tcp(String),
    /// A unix-domain socket path.
    Unix(PathBuf),
}

impl NetAddr {
    /// A TCP address, e.g. `NetAddr::tcp("127.0.0.1:9400")`.
    pub fn tcp(addr: impl Into<String>) -> NetAddr {
        NetAddr::Tcp(addr.into())
    }

    /// A unix-domain socket path.
    pub fn unix(path: impl Into<PathBuf>) -> NetAddr {
        NetAddr::Unix(path.into())
    }

    fn connect(&self) -> std::io::Result<NetConn> {
        match self {
            NetAddr::Tcp(addr) => TcpStream::connect(addr.as_str()).map(NetConn::Tcp),
            NetAddr::Unix(path) => UnixStream::connect(path).map(NetConn::Unix),
        }
    }

    fn bind(&self) -> std::io::Result<NetListener> {
        match self {
            NetAddr::Tcp(addr) => TcpListener::bind(addr.as_str()).map(NetListener::Tcp),
            NetAddr::Unix(path) => {
                // A previous consumer instance leaves its socket file
                // behind; rebinding the same path is the normal restart
                // flow, so replace a stale file rather than failing.
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                UnixListener::bind(path).map(NetListener::Unix)
            }
        }
    }
}

impl std::fmt::Display for NetAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetAddr::Tcp(addr) => write!(f, "tcp:{addr}"),
            NetAddr::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

enum NetConn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl NetConn {
    fn try_clone(&self) -> std::io::Result<NetConn> {
        match self {
            NetConn::Tcp(s) => s.try_clone().map(NetConn::Tcp),
            NetConn::Unix(s) => s.try_clone().map(NetConn::Unix),
        }
    }

    fn shutdown(&self) {
        let _ = match self {
            NetConn::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            NetConn::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }

    fn set_read_timeout(&self, dur: Option<StdDuration>) -> std::io::Result<()> {
        match self {
            NetConn::Tcp(s) => s.set_read_timeout(dur),
            NetConn::Unix(s) => s.set_read_timeout(dur),
        }
    }
}

impl Read for NetConn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            NetConn::Tcp(s) => s.read(buf),
            NetConn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for NetConn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            NetConn::Tcp(s) => s.write(buf),
            NetConn::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            NetConn::Tcp(s) => s.flush(),
            NetConn::Unix(s) => s.flush(),
        }
    }
}

enum NetListener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl NetListener {
    fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            NetListener::Tcp(l) => l.set_nonblocking(nb),
            NetListener::Unix(l) => l.set_nonblocking(nb),
        }
    }

    fn accept(&self) -> std::io::Result<NetConn> {
        match self {
            NetListener::Tcp(l) => l.accept().map(|(s, _)| NetConn::Tcp(s)),
            NetListener::Unix(l) => l.accept().map(|(s, _)| NetConn::Unix(s)),
        }
    }

    fn local_addr(&self, bound: &NetAddr) -> NetAddr {
        match self {
            NetListener::Tcp(l) => match l.local_addr() {
                Ok(addr) => NetAddr::Tcp(addr.to_string()),
                Err(_) => bound.clone(),
            },
            NetListener::Unix(_) => bound.clone(),
        }
    }
}

// ---------------------------------------------------------------------------
// Wire codec: values, events, frames.
// ---------------------------------------------------------------------------

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_TS: u8 = 5;
const TAG_INTERVAL: u8 = 6;

/// One event as it crosses the wire: a change to one of the handshake's
/// declared streams at a processing time.
#[derive(Debug, Clone, PartialEq, Eq)]
struct WireEvent {
    stream: u16,
    ptime: Ts,
    diff: i64,
    row: Row,
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(TAG_NULL),
        Value::Bool(b) => {
            buf.push(TAG_BOOL);
            buf.push(u8::from(*b));
        }
        Value::Int(i) => {
            buf.push(TAG_INT);
            put_i64(buf, *i);
        }
        Value::Float(f) => {
            buf.push(TAG_FLOAT);
            put_u64(buf, f.to_bits());
        }
        Value::Str(s) => {
            buf.push(TAG_STR);
            put_u32(buf, s.len() as u32);
            buf.extend_from_slice(s.as_bytes());
        }
        Value::Ts(t) => {
            buf.push(TAG_TS);
            put_i64(buf, t.millis());
        }
        Value::Interval(d) => {
            buf.push(TAG_INTERVAL);
            put_i64(buf, d.millis());
        }
    }
}

fn put_event(buf: &mut Vec<u8>, event: &WireEvent) {
    put_u16(buf, event.stream);
    put_i64(buf, event.ptime.millis());
    put_i64(buf, event.diff);
    put_u16(buf, event.row.arity() as u16);
    for value in event.row.values() {
        put_value(buf, value);
    }
}

/// Encoded size of one event, for bounding frame bodies before encoding.
fn event_encoded_len(event: &WireEvent) -> usize {
    let values: usize = event
        .row
        .values()
        .iter()
        .map(|v| match v {
            Value::Null => 1,
            Value::Bool(_) => 2,
            Value::Int(_) | Value::Float(_) | Value::Ts(_) | Value::Interval(_) => 9,
            Value::Str(s) => 5 + s.len(),
        })
        .sum();
    2 + 8 + 8 + 2 + values
}

/// Soft cap on a frame body the producer assembles: comfortably inside
/// [`MAX_FRAME_LEN`] so legal data can never produce a frame the consumer
/// rejects as corruption. Frames close early when the next event would
/// cross it — a deterministic function of the event stream, so the
/// determinism contract is unaffected.
const FRAME_BODY_SOFT_CAP: usize = (MAX_FRAME_LEN as usize) - 4096;

/// A bounds-checked little-endian reader over a frame body.
struct FrameReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> FrameReader<'a> {
    fn new(buf: &'a [u8]) -> FrameReader<'a> {
        FrameReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| Error::exec("malformed frame: body shorter than its fields"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N]> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.take(N)?);
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.array()?))
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.array()?))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.array()?))
    }
    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.array()?))
    }

    fn value(&mut self) -> Result<Value> {
        Ok(match self.u8()? {
            TAG_NULL => Value::Null,
            TAG_BOOL => Value::Bool(self.u8()? != 0),
            TAG_INT => Value::Int(self.i64()?),
            TAG_FLOAT => Value::Float(f64::from_bits(self.u64()?)),
            TAG_STR => {
                let len = self.u32()? as usize;
                let bytes = self.take(len)?;
                let s = std::str::from_utf8(bytes)
                    .map_err(|_| Error::exec("malformed frame: string is not UTF-8"))?;
                Value::str(s)
            }
            TAG_TS => Value::Ts(Ts(self.i64()?)),
            TAG_INTERVAL => Value::Interval(onesql_types::Duration(self.i64()?)),
            tag => return Err(Error::exec(format!("malformed frame: value tag {tag}"))),
        })
    }

    fn event(&mut self) -> Result<WireEvent> {
        let stream = self.u16()?;
        let ptime = Ts(self.i64()?);
        let diff = self.i64()?;
        let arity = self.u16()? as usize;
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            values.push(self.value()?);
        }
        Ok(WireEvent {
            stream,
            ptime,
            diff,
            row: Row::new(values),
        })
    }

    fn done(&self) -> Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(Error::exec("malformed frame: trailing bytes after payload"))
        }
    }
}

fn io_err(context: &str, e: std::io::Error) -> Error {
    Error::exec(format!("{context}: {e}"))
}

/// Write one frame: `len | body | crc32(body)`.
fn write_frame(conn: &mut NetConn, context: &str, body: &[u8]) -> Result<()> {
    let mut wire = Vec::with_capacity(body.len() + 8);
    put_u32(&mut wire, body.len() as u32);
    wire.extend_from_slice(body);
    put_u32(&mut wire, crc32(body));
    conn.write_all(&wire)
        .and_then(|()| conn.flush())
        .map_err(|e| io_err(context, e))
}

/// How reading one frame ended, classified so restart-tolerant readers
/// can tell a *dead* peer (transport gone) from a *wrong* one (bytes
/// arrived but are corrupt).
enum FrameRead {
    /// A whole, CRC-verified frame body.
    Frame(Vec<u8>),
    /// Clean end-of-stream exactly on a frame boundary.
    Eof,
    /// The transport died mid-frame (partial bytes then EOF, or a read
    /// error): a dead peer.
    Death(String),
    /// The bytes themselves are wrong (over-bound length prefix, CRC
    /// mismatch): a buggy or corrupted peer — never tolerable, or a
    /// deterministic producer would replay the same bad frame forever.
    Corrupt(String),
}

/// Read and classify one frame: `len | body | crc32(body)`.
fn read_frame_raw(conn: &mut NetConn, context: &str) -> FrameRead {
    let mut len_buf = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match conn.read(&mut len_buf[got..]) {
            Ok(0) => {
                if got == 0 {
                    return FrameRead::Eof;
                }
                return FrameRead::Death(format!(
                    "{context}: disconnected inside a frame length prefix \
                     ({got} of 4 bytes)"
                ));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return FrameRead::Death(io_err(context, e).to_string()),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return FrameRead::Corrupt(format!(
            "{context}: frame length {len} exceeds the {MAX_FRAME_LEN}-byte bound \
             (corrupt length prefix?)"
        ));
    }
    let mut body = vec![0u8; len as usize + 4];
    if let Err(e) = conn.read_exact(&mut body) {
        return FrameRead::Death(if e.kind() == std::io::ErrorKind::UnexpectedEof {
            format!("{context}: disconnected mid-frame")
        } else {
            io_err(context, e).to_string()
        });
    }
    let mut crc_bytes = [0u8; 4];
    crc_bytes.copy_from_slice(&body[len as usize..]);
    let crc_wire = u32::from_le_bytes(crc_bytes);
    body.truncate(len as usize);
    let crc_body = crc32(&body);
    if crc_wire != crc_body {
        return FrameRead::Corrupt(format!(
            "{context}: CRC mismatch (frame says {crc_wire:#010x}, body hashes \
             to {crc_body:#010x})"
        ));
    }
    FrameRead::Frame(body)
}

/// Read one frame body, verifying the length bound and the CRC.
///
/// `Ok(None)` is a clean end-of-stream: the peer closed exactly on a
/// frame boundary. EOF anywhere else — inside the length prefix, the
/// body, or the trailing CRC — is a mid-frame disconnect and errors, as
/// does corruption.
fn read_frame(conn: &mut NetConn, context: &str) -> Result<Option<Vec<u8>>> {
    match read_frame_raw(conn, context) {
        FrameRead::Frame(body) => Ok(Some(body)),
        FrameRead::Eof => Ok(None),
        FrameRead::Death(msg) | FrameRead::Corrupt(msg) => Err(Error::exec(msg)),
    }
}

/// How a connection preamble read ended. Protocol violations (bad
/// magic, wrong version) stay `Err`: the peer *spoke* and got it wrong.
enum Preamble {
    /// Magic matched and the version is one this build speaks; carries
    /// the peer's announced version so frames parse at the right layout.
    Valid(u16),
    /// The peer never sent a byte — it closed cleanly or sat silent
    /// past the handshake read timeout. That is a port scan, a
    /// load-balancer health check, or a stray `nc`, not a producer;
    /// such connections are dropped silently.
    Silent,
    /// The transport died mid-preamble (partial bytes then EOF, or a
    /// read error): a dead peer, not a wrong one. Carries the message
    /// to surface when producer restarts are *not* tolerated.
    Died(String),
}

/// Read and classify the connection preamble (magic + version).
fn read_preamble(conn: &mut NetConn, context: &str) -> Result<Preamble> {
    let mut preamble = [0u8; 6];
    let mut got = 0usize;
    while got < preamble.len() {
        match conn.read(&mut preamble[got..]) {
            Ok(0) if got == 0 => return Ok(Preamble::Silent),
            Ok(0) => {
                return Ok(Preamble::Died(format!(
                    "{context}: disconnected inside the preamble"
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if got == 0
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
            {
                return Ok(Preamble::Silent)
            }
            Err(e) => return Ok(Preamble::Died(io_err(context, e).to_string())),
        }
    }
    if preamble[..4] != WIRE_MAGIC {
        return Err(Error::exec(format!(
            "{context}: bad magic {:02x?} (expected {WIRE_MAGIC:02x?})",
            &preamble[..4]
        )));
    }
    let mut version_bytes = [0u8; 2];
    version_bytes.copy_from_slice(&preamble[4..6]);
    let version = u16::from_le_bytes(version_bytes);
    if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
        return Err(Error::exec(format!(
            "{context}: wire version {version} (this build speaks \
             {MIN_WIRE_VERSION}..={WIRE_VERSION})"
        )));
    }
    Ok(Preamble::Valid(version))
}

// ---------------------------------------------------------------------------
// Configuration.
// ---------------------------------------------------------------------------

/// Tuning for both ends of a network pipeline.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Producer: events per `BATCH` frame. For byte-identical
    /// kill/restore keep this equal to the consumer driver's (fixed) poll
    /// batch size — see the module docs on determinism.
    pub batch_events: usize,
    /// Producer: bound on the replay spool (items retained until the
    /// consumer acknowledges them). When full, sends wait up to
    /// [`NetConfig::ack_wait`] for acks before erroring: a consumer that
    /// never checkpoints cannot force unbounded producer memory.
    pub spool_events: usize,
    /// Producer: total window for establishing (or re-establishing) a
    /// connection, covering connect retries and the handshake reply.
    pub connect_timeout: StdDuration,
    /// Consumer: how long a poll waits for the next frame before
    /// reporting an idle batch.
    ///
    /// This wait is what keeps a consumer's scheduling rounds a function
    /// of the byte stream rather than of arrival timing (the determinism
    /// contract in the module docs) — but it is paid per quiet partition
    /// per round, so a connected-but-silent producer throttles the whole
    /// driver to one round per `poll_wait`. Lower it (or accept idle
    /// batches) for latency-sensitive multi-partition deployments that
    /// do not need byte-identical replays.
    pub poll_wait: StdDuration,
    /// Producer: how long a send may wait for acknowledgements when the
    /// replay spool is full.
    pub ack_wait: StdDuration,
    /// Producer: minimum interval between `KEEPALIVE` frames sent by
    /// [`NetPublisher::keepalive`]. `None` (the default) disables
    /// keepalives entirely. Keepalives carry no events and do not move
    /// offsets; they only prove the producer process is alive while it
    /// has nothing to say.
    pub keepalive: Option<StdDuration>,
    /// Consumer: declare a **claimed, unfinished** partition's producer
    /// dead when nothing (no data frame, no keepalive) has been heard
    /// from it for this long, surfacing an error instead of idling
    /// forever. `None` (the default) never gives up — a silent producer
    /// and a dead one then look the same, which is exactly what
    /// keepalives plus this limit disambiguate.
    pub silence_limit: Option<StdDuration>,
    /// Consumer: tolerate producer restarts. When set, a connection
    /// whose transport dies mid-stream (clean close, mid-frame
    /// disconnect, read error — including during the handshake window)
    /// *releases* its partition instead of poisoning the pipeline: the
    /// next producer to claim it resumes exactly at the consumer's
    /// delivered offset (the handshake floor drops everything already
    /// delivered, so a restarted deterministic producer just
    /// re-publishes from the start). Corrupt bytes (bad CRC, over-bound
    /// frame length) and in-frame protocol violations — offset gaps,
    /// undeclared streams, a FINISH miscount — still poison: those are
    /// *wrong* producers, not dead ones, and a deterministic wrong
    /// producer would otherwise replay the same bad frame forever. Off
    /// by default: a vanished producer is an error unless the
    /// deployment plans for restarts.
    pub producer_restarts: bool,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            batch_events: 256,
            spool_events: 1 << 16,
            connect_timeout: StdDuration::from_secs(10),
            poll_wait: StdDuration::from_secs(2),
            ack_wait: StdDuration::from_secs(10),
            keepalive: None,
            silence_limit: None,
            producer_restarts: false,
        }
    }
}

// ---------------------------------------------------------------------------
// Writer side: NetPublisher and NetSink.
// ---------------------------------------------------------------------------

/// An item in the producer's replay spool. Watermarks are spooled inline
/// at their positions between events and each remembers which frame
/// delivered it, so a reconnect replays exactly the watermarks the
/// consumer has not seen: a resume offset alone cannot distinguish a
/// watermark that rode the frame *ending* at that offset (delivered)
/// from one still waiting to ride the next frame (not delivered) — the
/// recorded frame end does.
#[derive(Debug, Clone)]
enum SpoolItem {
    Event(WireEvent),
    Watermark {
        wm: Ts,
        /// End offset of the frame that carried this watermark to the
        /// consumer; `None` until it has been sent.
        sent_frame_end: Option<u64>,
    },
}

/// The producer half of a network pipeline: connects to a
/// [`PartitionedNetSource`] (or [`NetSource`]) and pushes events,
/// watermarks, and end-of-stream for **one** partition.
///
/// Exactly-once machinery: every item sent is retained in a bounded spool
/// until the consumer acknowledges it (acks are sent when the consuming
/// driver checkpoints, and once more when it finishes). If the consumer
/// dies, the next send notices, reconnects within
/// [`NetConfig::connect_timeout`], learns the consumer's resume offset
/// from the handshake reply, and replays the spool from there — so a
/// consumer restored from a checkpoint seamlessly continues mid-stream.
pub struct NetPublisher {
    addr: NetAddr,
    partition: u32,
    streams: Vec<String>,
    config: NetConfig,
    conn: Option<NetConn>,
    /// Set by the ack-reader thread when its connection dies.
    conn_dead: Arc<AtomicBool>,
    /// Highest offset the consumer has acknowledged (monotone).
    acked: Arc<AtomicU64>,
    /// Items not yet acknowledged, oldest first.
    spool: VecDeque<SpoolItem>,
    /// Offset of the first event in the spool (== trim floor).
    spool_base: u64,
    /// Trailing spool items not yet written to the current connection.
    unsent: usize,
    /// Offset of the next event to write on the current connection (the
    /// base offset of the next frame); kept in step with `unsent` so
    /// frames need no spool rescans to learn their base.
    send_cursor: u64,
    /// Offset the next appended event will get.
    next_offset: u64,
    /// `finish` was called; replays re-send the FINISH frame too.
    finished: bool,
    /// FINISH has been written to the *current* connection.
    finish_sent: bool,
    /// When the last KEEPALIVE frame went out.
    last_keepalive: Option<Instant>,
    /// Highest watermark published so far; carried on KEEPALIVE frames
    /// (wire v2) so consumer-side lag attribution survives idle
    /// stretches.
    last_wm: Option<Ts>,
    /// Telemetry; see [`NetPublisherStats`].
    stats: NetPublisherStats,
}

/// Wire telemetry of one [`NetPublisher`], via [`NetPublisher::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetPublisherStats {
    /// Frames written (data, FINISH, KEEPALIVE), over all connections.
    pub frames: u64,
    /// Payload bytes of those frames.
    pub bytes: u64,
    /// Connections established (handshake completed); every one past
    /// the first was a reconnect.
    pub connections: u64,
    /// Spool items a reconnect rewound for re-sending: how much work
    /// exactly-once recovery actually re-did.
    pub replayed: u64,
}

impl NetPublisher {
    /// A publisher for `partition` of the consumer at `addr`, declaring
    /// `streams` (which must match the consumer's declaration exactly).
    /// The connection is established lazily on the first send.
    pub fn new(
        addr: NetAddr,
        partition: usize,
        streams: Vec<String>,
        config: NetConfig,
    ) -> NetPublisher {
        NetPublisher {
            addr,
            partition: partition as u32,
            streams,
            config,
            conn: None,
            conn_dead: Arc::new(AtomicBool::new(false)),
            acked: Arc::new(AtomicU64::new(0)),
            spool: VecDeque::new(),
            spool_base: 0,
            unsent: 0,
            send_cursor: 0,
            next_offset: 0,
            finished: false,
            finish_sent: false,
            last_keepalive: None,
            last_wm: None,
            stats: NetPublisherStats::default(),
        }
    }

    /// The offset the next event will be assigned (== events published).
    pub fn offset(&self) -> u64 {
        self.next_offset
    }

    /// Wire telemetry so far: frames/bytes written, connections made,
    /// spool items replayed by reconnects.
    pub fn stats(&self) -> NetPublisherStats {
        self.stats
    }

    /// Record one frame of `bytes` payload put on the wire.
    fn note_frame(&mut self, bytes: usize) {
        self.stats.frames += 1;
        self.stats.bytes += bytes as u64;
        if observe::enabled() {
            let context = format!("net publisher {}#{}", self.addr, self.partition);
            observe::counter(&format!("{context}.frames"), 1);
            observe::counter(&format!("{context}.bytes"), bytes as u64);
        }
    }

    /// Highest offset the consumer has acknowledged so far.
    pub fn acked(&self) -> u64 {
        self.acked.load(Ordering::Acquire)
    }

    /// Publish a change on `stream` (an index into the declared stream
    /// list) at processing time `ptime`.
    pub fn send(&mut self, stream: usize, ptime: Ts, change: Change) -> Result<()> {
        if self.finished {
            return Err(Error::exec(format!(
                "net publisher {}#{}: send after finish",
                self.addr, self.partition
            )));
        }
        if stream >= self.streams.len() {
            return Err(Error::exec(format!(
                "net publisher {}#{}: stream index {stream} out of range \
                 ({} declared)",
                self.addr,
                self.partition,
                self.streams.len()
            )));
        }
        // The consumer's handshake may have acknowledged offsets this
        // publisher never sent — a restarted producer deterministically
        // re-publishing its stream to a consumer that already checkpointed
        // part of it. Those events are provably durable downstream: count
        // them, send nothing.
        if self.next_offset < self.acked() {
            self.next_offset += 1;
            return Ok(());
        }
        let event = WireEvent {
            stream: stream as u16,
            ptime,
            diff: change.diff,
            row: change.row,
        };
        // Reject rows that cannot fit any legal frame *before* spooling
        // them: once spooled they would be replayed forever, and the
        // consumer would misdiagnose the oversized frame as corruption.
        // The 32 bytes mirror the header slack frame collection reserves.
        let encoded = event_encoded_len(&event);
        if encoded + 32 > FRAME_BODY_SOFT_CAP {
            return Err(Error::exec(format!(
                "net publisher {}#{}: a single event encodes to {encoded} bytes, \
                 beyond the {FRAME_BODY_SOFT_CAP}-byte frame bound",
                self.addr, self.partition
            )));
        }
        self.reserve_spool_slot()?;
        if self.spool.is_empty() {
            // Everything before this event is acked (or was never
            // spooled, for a restarted producer below the ack floor).
            self.spool_base = self.next_offset;
        }
        self.spool.push_back(SpoolItem::Event(event));
        self.unsent += 1;
        self.next_offset += 1;
        self.pump(false)
    }

    /// Insert `row` on `stream` at `ptime` (diff `+1`).
    pub fn insert(&mut self, stream: usize, ptime: Ts, row: Row) -> Result<()> {
        self.send(stream, ptime, Change::insert(row))
    }

    /// Assert that all future events (on every declared stream) have
    /// event times strictly greater than `wm`. Flushes the pending frame
    /// so the watermark's position in the stream is exactly here.
    pub fn watermark(&mut self, wm: Ts) -> Result<()> {
        if self.finished {
            return Err(Error::exec(format!(
                "net publisher {}#{}: watermark after finish",
                self.addr, self.partition
            )));
        }
        // Below the acknowledged floor the consumer already heard a
        // watermark at this position (see the same check in `send`); at
        // or above it, send — a duplicate watermark is absorbed by the
        // consumer's monotone ledger, a missing one would stall gates.
        self.last_wm = Some(self.last_wm.map_or(wm, |prev| prev.max(wm)));
        if self.next_offset < self.acked() {
            return Ok(());
        }
        self.reserve_spool_slot()?;
        if self.spool.is_empty() {
            self.spool_base = self.next_offset;
        }
        self.spool.push_back(SpoolItem::Watermark {
            wm,
            sent_frame_end: None,
        });
        self.unsent += 1;
        self.pump(false)
    }

    /// Send any buffered partial frame now.
    pub fn flush(&mut self) -> Result<()> {
        self.pump(true)
    }

    /// Send a `KEEPALIVE` frame when one is due: at most once per
    /// [`NetConfig::keepalive`] interval. A no-op when keepalives are
    /// disabled. Call this from the producer's idle loop; paired with
    /// the consumer's [`NetConfig::silence_limit`], it makes a *silent*
    /// producer distinguishable from a *dead* one.
    ///
    /// Keepalives carry no events and move no offsets, and frames only
    /// ever reach the wire whole — so sending one between data frames
    /// is always legal, including while a *partial* data frame is still
    /// buffered waiting to fill (buffered bytes the consumer has never
    /// seen prove nothing about liveness).
    ///
    /// The first call also establishes the connection (claiming the
    /// partition), so a producer with nothing to say yet still
    /// announces itself. Write failures drop the connection and report
    /// the error; the next data send (or keepalive) reconnects.
    pub fn keepalive(&mut self) -> Result<()> {
        let Some(interval) = self.config.keepalive else {
            return Ok(());
        };
        if self.finished && self.finish_sent {
            return Ok(());
        }
        let now = Instant::now();
        if self
            .last_keepalive
            .is_some_and(|last| now.duration_since(last) < interval)
        {
            return Ok(());
        }
        let had_conn = self.conn.is_some() && !self.conn_dead.load(Ordering::Acquire);
        let deadline = now + self.config.connect_timeout;
        self.ensure_conn(deadline)?;
        if !had_conn && self.unsent > 0 {
            // Reconnecting rewound unacknowledged items: replaying them
            // is better proof of life than an empty keepalive.
            self.last_keepalive = Some(Instant::now());
            return self.pump(true);
        }
        let context = format!("net publisher {}#{}", self.addr, self.partition);
        let mut body = Vec::with_capacity(18);
        body.push(KIND_KEEPALIVE);
        put_u64(&mut body, self.send_cursor);
        // Wire v2: carry the current watermark so the consumer's
        // watermark-lag attribution keeps working while we idle.
        match self.last_wm {
            Some(wm) => {
                body.push(1);
                put_i64(&mut body, wm.millis());
            }
            None => {
                body.push(0);
                put_i64(&mut body, 0);
            }
        }
        let Some(mut conn) = self.conn.take() else {
            return Err(Error::exec(format!(
                "{context}: connection vanished after ensure"
            )));
        };
        let result = write_frame(&mut conn, &context, &body);
        match result {
            Ok(()) => {
                self.note_frame(body.len());
                self.conn = Some(conn);
            }
            Err(_) => conn.shutdown(),
        }
        self.last_keepalive = Some(Instant::now());
        result
    }

    /// Declare the partition complete: flush everything and send the
    /// `FINISH` frame. The publisher stays usable for
    /// [`NetPublisher::wait_drained`] (and will re-send spool + FINISH if
    /// the consumer reconnects), but accepts no new events.
    pub fn finish(&mut self) -> Result<()> {
        if self.finished {
            return Ok(());
        }
        self.pump(true)?;
        self.finished = true;
        self.pump(true)
    }

    /// One drain maintenance step: reconnect-and-replay if the connection
    /// died, then report whether the consumer has acknowledged every
    /// published event (a consuming pipeline checkpointed or finished
    /// past them).
    ///
    /// A producer feeding **several** partitions must interleave this
    /// across its publishers rather than blocking on one at a time: the
    /// final acks only flow once the consuming pipeline finishes, and it
    /// cannot finish until *every* partition has replayed — waiting
    /// serially would deadlock against a consumer restored mid-stream.
    pub fn poll_drained(&mut self) -> Result<bool> {
        self.trim();
        if self.acked() >= self.next_offset {
            return Ok(true);
        }
        if self.conn.is_none() || self.conn_dead.load(Ordering::Acquire) {
            self.pump(true)?;
        }
        self.trim();
        Ok(self.acked() >= self.next_offset)
    }

    /// Block until [`NetPublisher::poll_drained`] reports drained or
    /// `timeout` elapses. Reconnects and replays as needed, so this is
    /// the producer-side way to outlive consumer crashes: keep waiting
    /// and the restored consumer will come back for the rest. For
    /// multi-partition producers, drive `poll_drained` over all
    /// publishers in one loop instead (see there for why).
    pub fn wait_drained(&mut self, timeout: StdDuration) -> Result<()> {
        let deadline = Instant::now() + timeout;
        loop {
            if self.poll_drained()? {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(Error::exec(format!(
                    "net publisher {}#{}: consumer acknowledged only {} of {} \
                     events within the drain timeout",
                    self.addr,
                    self.partition,
                    self.acked(),
                    self.next_offset
                )));
            }
            std::thread::sleep(StdDuration::from_millis(2));
        }
    }

    /// Drop spool items the consumer has acknowledged.
    fn trim(&mut self) {
        let acked = self.acked();
        while self.spool.len() > self.unsent {
            match self.spool.front() {
                Some(SpoolItem::Event(_)) if self.spool_base < acked => {
                    self.spool.pop_front();
                    self.spool_base += 1;
                }
                // A watermark is disposable once the frame that carried
                // it is fully acknowledged.
                Some(SpoolItem::Watermark { sent_frame_end, .. })
                    if sent_frame_end.is_some_and(|end| end <= acked) =>
                {
                    self.spool.pop_front();
                }
                _ => break,
            }
        }
    }

    /// Make room for one more spool item, waiting for acks when the
    /// bounded spool is full.
    fn reserve_spool_slot(&mut self) -> Result<()> {
        if self.spool.len() < self.config.spool_events {
            return Ok(());
        }
        let deadline = Instant::now() + self.config.ack_wait;
        loop {
            // Acks only move when a connection is alive to carry them.
            if self.conn.is_none() || self.conn_dead.load(Ordering::Acquire) {
                self.pump(false)?;
            }
            self.trim();
            if self.spool.len() < self.config.spool_events {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(Error::exec(format!(
                    "net publisher {}#{}: replay spool full ({} items) and the \
                     consumer is not acknowledging — is it checkpointing?",
                    self.addr,
                    self.partition,
                    self.spool.len()
                )));
            }
            std::thread::sleep(StdDuration::from_millis(2));
        }
    }

    /// Ensure a live connection, then encode-and-send unsent spool items
    /// as frames. Frames break only at `batch_events`; watermarks ride
    /// the frame containing them (applied after its events — delaying a
    /// monotone lower bound is always legal), so every mid-stream frame
    /// carries at least one event and the consumer's event offset fully
    /// determines what it has consumed. A trailing partial frame is held
    /// back unless `force` is set (or `finish` was called). On a broken
    /// connection the whole cycle — reconnect, handshake, rewind to the
    /// consumer's resume offset, re-send — retries until
    /// [`NetConfig::connect_timeout`] elapses.
    fn pump(&mut self, force: bool) -> Result<()> {
        let deadline = Instant::now() + self.config.connect_timeout;
        loop {
            match self.try_pump(force, deadline) {
                Ok(()) => {
                    self.trim();
                    return Ok(());
                }
                Err(e) => {
                    // The connection died mid-write: drop it and retry the
                    // full reconnect cycle within the deadline.
                    if let Some(conn) = self.conn.take() {
                        conn.shutdown();
                    }
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(StdDuration::from_millis(5));
                }
            }
        }
    }

    fn try_pump(&mut self, force: bool, deadline: Instant) -> Result<()> {
        let finish_pending = self.finished && !self.finish_sent;
        if self.unsent == 0
            && !finish_pending
            && self.conn.is_some()
            && !self.conn_dead.load(Ordering::Acquire)
        {
            return Ok(());
        }
        // A frame needs `batch_events` events before it closes (and
        // unsent counts watermark items too, so it is an upper bound on
        // pending events): until then a non-forced pump has nothing to
        // do, and skipping the scan keeps the per-send cost O(1) instead
        // of rescanning the partial frame on every append.
        if !force && !self.finished && self.unsent < self.config.batch_events {
            return Ok(());
        }
        self.ensure_conn(deadline)?;
        let context = format!("net publisher {}#{}", self.addr, self.partition);
        while self.unsent > 0 {
            let start = self.spool.len() - self.unsent;
            // Collect one frame: up to `batch_events` events (or the
            // frame-body byte cap, whichever closes first), absorbing
            // every watermark item encountered (leading, interleaved, or
            // immediately trailing) into the frame's single watermark
            // field — watermarks are monotone, so the max wins.
            let mut events: Vec<&WireEvent> = Vec::new();
            let mut watermark: Option<Ts> = None;
            let mut items = 0usize;
            let mut bytes = 32usize; // frame header slack
            let mut capped = false;
            for item in self.spool.iter().skip(start) {
                match item {
                    SpoolItem::Event(e) => {
                        if events.len() == self.config.batch_events {
                            break;
                        }
                        let len = event_encoded_len(e);
                        if bytes + len > FRAME_BODY_SOFT_CAP {
                            capped = !events.is_empty();
                            break;
                        }
                        bytes += len;
                        events.push(e);
                        items += 1;
                    }
                    SpoolItem::Watermark { wm, .. } => {
                        watermark = Some(watermark.map_or(*wm, |prev| prev.max(*wm)));
                        items += 1;
                    }
                }
            }
            let full = events.len() == self.config.batch_events || capped;
            if !(full || force || self.finished) {
                break; // partial frame: wait for more data
            }
            if items == 0 {
                break;
            }
            let base_offset = self.send_cursor;
            let frame_end = base_offset + events.len() as u64;
            let mut body = Vec::with_capacity(64 + events.len() * 32);
            body.push(KIND_BATCH);
            put_u64(&mut body, base_offset);
            match watermark {
                Some(wm) => {
                    body.push(1);
                    put_i64(&mut body, wm.millis());
                }
                None => {
                    body.push(0);
                    put_i64(&mut body, 0);
                }
            }
            put_u32(&mut body, events.len() as u32);
            for event in &events {
                put_event(&mut body, event);
            }
            drop(events);
            // Wire v2: trace context. The span current on this thread is
            // the producer-side span responsible for putting the frame on
            // the wire (the driver's emit span when pumped inline from a
            // sink write); 0 when tracing is off or the root was
            // unsampled, shipped as "absent" so the consumer never
            // parents onto a span nobody recorded.
            let trace_span = observe::current_span();
            if trace_span != 0 {
                body.push(1);
                put_u64(&mut body, trace_span);
            } else {
                body.push(0);
                put_u64(&mut body, 0);
            }
            let Some(mut conn) = self.conn.take() else {
                return Err(Error::exec(format!(
                    "{context}: connection vanished after ensure"
                )));
            };
            let result = write_frame(&mut conn, &context, &body);
            self.conn = Some(conn);
            result?;
            self.note_frame(body.len());
            // The frame is on the wire: record which frame carried each
            // watermark (what reconnect rewinds key on) and advance the
            // send cursor past the frame's events.
            for item in self.spool.range_mut(start..start + items) {
                if let SpoolItem::Watermark { sent_frame_end, .. } = item {
                    *sent_frame_end = Some(frame_end);
                }
            }
            self.send_cursor = frame_end;
            self.unsent -= items;
        }
        if self.finished && !self.finish_sent && self.unsent == 0 {
            let mut body = Vec::with_capacity(9);
            body.push(KIND_FINISH);
            put_u64(&mut body, self.next_offset);
            let Some(mut conn) = self.conn.take() else {
                return Err(Error::exec(format!(
                    "{context}: connection vanished after ensure"
                )));
            };
            let result = write_frame(&mut conn, &context, &body);
            self.conn = Some(conn);
            result?;
            self.note_frame(body.len());
            self.finish_sent = true;
        }
        Ok(())
    }

    /// Connect (with retries until `deadline`), run the handshake, rewind
    /// the unsent cursor to the consumer's resume offset, and spawn the
    /// ack-reader thread for the new connection.
    fn ensure_conn(&mut self, deadline: Instant) -> Result<()> {
        if self.conn.is_some() && !self.conn_dead.load(Ordering::Acquire) {
            return Ok(());
        }
        if let Some(conn) = self.conn.take() {
            conn.shutdown();
        }
        let context = format!("net publisher {}#{}", self.addr, self.partition);
        let mut conn = loop {
            match self.addr.connect() {
                Ok(conn) => break conn,
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(Error::exec(format!(
                            "{context}: cannot connect within the timeout: {e}"
                        )));
                    }
                    std::thread::sleep(StdDuration::from_millis(5));
                }
            }
        };
        // Preamble + HELLO (the schema header: which streams this
        // connection feeds, and which partition it claims).
        let mut opening = Vec::with_capacity(64);
        opening.extend_from_slice(&WIRE_MAGIC);
        opening.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        conn.write_all(&opening).map_err(|e| io_err(&context, e))?;
        let mut body = Vec::with_capacity(64);
        body.push(KIND_HELLO);
        put_u32(&mut body, self.partition);
        put_u16(&mut body, self.streams.len() as u16);
        for stream in &self.streams {
            put_u16(&mut body, stream.len() as u16);
            body.extend_from_slice(stream.as_bytes());
        }
        write_frame(&mut conn, &context, &body)?;

        // HELLO_ACK tells us where to resume. The consumer holds the
        // reply until its driver has restored (so a checkpointed resume
        // offset can land first); bound the wait by the remaining window.
        let remaining = deadline
            .checked_duration_since(Instant::now())
            .filter(|d| !d.is_zero())
            .unwrap_or(StdDuration::from_millis(1));
        conn.set_read_timeout(Some(remaining))
            .map_err(|e| io_err(&context, e))?;
        let body = read_frame(&mut conn, &context)?
            .ok_or_else(|| Error::exec(format!("{context}: consumer closed during handshake")))?;
        let mut reader = FrameReader::new(&body);
        let kind = reader.u8()?;
        if kind != KIND_HELLO_ACK {
            return Err(Error::exec(format!(
                "{context}: expected HELLO_ACK, got frame kind {kind}"
            )));
        }
        let resume = reader.u64()?;
        reader.done()?;
        if resume < self.spool_base {
            return Err(Error::exec(format!(
                "{context}: consumer asks to resume at {resume} but the spool \
                 was already trimmed to {} (acked earlier); cannot replay",
                self.spool_base
            )));
        }
        conn.set_read_timeout(None)
            .map_err(|e| io_err(&context, e))?;

        // The resume offset is also an acknowledgement: the consumer
        // durably checkpointed everything below it and will never ask for
        // it again. (It may even exceed what *this* publisher instance has
        // published — a restarted producer re-publishing its deterministic
        // stream — in which case sends below the floor are dropped.)
        self.acked.fetch_max(resume, Ordering::AcqRel);

        // Rewind: everything the consumer has not consumed is unsent for
        // this connection — events at or past `resume`, and watermarks
        // that were never sent or whose carrying frame ended past
        // `resume` (the recorded frame end, not the watermark's position,
        // decides: the consumer consumed a watermark iff it consumed the
        // whole frame that carried it). Scanning backwards finds the
        // longest consumed prefix; in the misaligned-resume corner (a
        // checkpoint taken mid-frame) an ambiguous watermark is dropped
        // rather than risking an offset gap — losing a watermark only
        // delays releases, never data.
        let mut offset = self.spool_base
            + self
                .spool
                .iter()
                .filter(|i| matches!(i, SpoolItem::Event(_)))
                .count() as u64;
        let mut first_unsent = 0;
        for (idx, item) in self.spool.iter().enumerate().rev() {
            let consumed = match item {
                SpoolItem::Event(_) => {
                    offset -= 1;
                    offset < resume
                }
                SpoolItem::Watermark { sent_frame_end, .. } => {
                    sent_frame_end.is_some_and(|end| end <= resume)
                }
            };
            if consumed {
                first_unsent = idx + 1;
                break;
            }
        }
        let was_unsent = self.unsent;
        self.unsent = self.spool.len() - first_unsent;
        // Items the rewind re-opened had already been written once:
        // that is the replay work this reconnect costs.
        let replayed = self.unsent.saturating_sub(was_unsent) as u64;
        self.stats.replayed += replayed;
        self.stats.connections += 1;
        if observe::enabled() {
            let context = format!("net publisher {}#{}", self.addr, self.partition);
            if self.stats.connections > 1 {
                observe::counter(&format!("{context}.reconnects"), 1);
            }
            if replayed > 0 {
                observe::counter(&format!("{context}.replayed"), replayed);
            }
        }
        self.send_cursor = resume;
        self.finish_sent = false;

        // Fresh liveness flag per connection so a stale reader thread
        // cannot mark the new connection dead.
        let dead = Arc::new(AtomicBool::new(false));
        self.conn_dead = dead.clone();
        let acked = self.acked.clone();
        let mut reader_conn = conn.try_clone().map_err(|e| io_err(&context, e))?;
        std::thread::spawn(move || loop {
            match read_frame(&mut reader_conn, "net ack reader") {
                Ok(Some(body)) => {
                    let mut reader = FrameReader::new(&body);
                    if let (Ok(KIND_ACK), Ok(offset)) = (reader.u8(), reader.u64()) {
                        acked.fetch_max(offset, Ordering::AcqRel);
                    }
                }
                Ok(None) | Err(_) => {
                    dead.store(true, Ordering::Release);
                    return;
                }
            }
        });
        self.conn = Some(conn);
        Ok(())
    }
}

impl Drop for NetPublisher {
    fn drop(&mut self) {
        // The ack-reader thread holds a dup of the socket; shutdown (not
        // just close) reaches every dup, so the reader exits and the
        // consumer sees end-of-stream instead of a silent idle hang.
        if let Some(conn) = self.conn.take() {
            conn.shutdown();
        }
    }
}

impl std::fmt::Debug for NetPublisher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetPublisher")
            .field("addr", &self.addr)
            .field("partition", &self.partition)
            .field("offset", &self.next_offset)
            .field("acked", &self.acked())
            .field("spooled", &self.spool.len())
            .finish()
    }
}

/// A [`Sink`] that ships a pipeline's output changelog to another process
/// over the wire, where a [`NetSource`] re-ingests it as a stream: the
/// glue that chains pipelines across processes.
///
/// Each output [`StreamRow`] crosses as one wire event — the data row
/// with `diff = -1` for an `undo` and `+1` otherwise, at the row's
/// materialization `ptime`. `ver` numbering is *not* shipped: the
/// downstream pipeline derives its own revision numbers from the changes
/// it ingests, exactly as it would for any other source. Output
/// watermarks are forwarded as watermark frames, and pipeline finish
/// becomes end-of-stream.
pub struct NetSink {
    name: String,
    publisher: NetPublisher,
}

impl NetSink {
    /// A sink feeding the consumer at `addr`, declaring its rows as
    /// downstream stream `stream` on partition `partition`. Connects
    /// lazily on the first write.
    pub fn connect(
        addr: NetAddr,
        stream: impl Into<String>,
        partition: usize,
        config: NetConfig,
    ) -> NetSink {
        let stream = stream.into();
        NetSink {
            name: format!("net:{addr}#{partition}"),
            publisher: NetPublisher::new(addr, partition, vec![stream], config),
        }
    }

    /// The wrapped publisher (offsets, acks, drain waits).
    pub fn publisher_mut(&mut self) -> &mut NetPublisher {
        &mut self.publisher
    }
}

impl Sink for NetSink {
    fn name(&self) -> &str {
        &self.name
    }

    fn write(&mut self, rows: &[StreamRow]) -> Result<()> {
        for sr in rows {
            let change = Change::with_diff(sr.row.clone(), if sr.undo { -1 } else { 1 });
            self.publisher.send(0, sr.ptime, change)?;
        }
        Ok(())
    }

    fn on_watermark(&mut self, wm: Watermark) -> Result<()> {
        self.publisher.watermark(wm.ts())
    }

    fn flush(&mut self) -> Result<()> {
        self.publisher.finish()
    }
}

// ---------------------------------------------------------------------------
// Reader side: PartitionedNetSource and NetSource.
// ---------------------------------------------------------------------------

/// What a connection's reader thread hands the polling source.
enum Decoded {
    Batch {
        events: Vec<SourceEvent>,
        watermark: Option<Ts>,
        /// Producer-side span id carried in the frame (wire v2); the
        /// ingesting driver parents its ingest span on it so both sides
        /// stitch into one trace.
        trace: Option<u64>,
    },
    /// A `KEEPALIVE` frame: the producer is alive but has nothing to
    /// say. Carries no events and moves no offsets; it refreshes the
    /// partition's silence clock, and (wire v2) may restate the
    /// producer's current watermark — a duplicate is absorbed by the
    /// consumer's monotone ledger.
    Keepalive {
        watermark: Option<Ts>,
    },
    Finished,
    Failed(String),
}

/// Per-partition shared state between the acceptor/reader threads and the
/// polling source.
struct PartSlot {
    tx: Sender<Decoded>,
    /// Write half of the accepted connection, for `ACK` frames.
    writer: Mutex<Option<NetConn>>,
    /// At most one connection may hold a partition at a time. Without
    /// [`NetConfig::producer_restarts`] the claim is for the source's
    /// lifetime; with it, a dead connection releases the claim so a
    /// restarted producer can take over.
    claimed: AtomicBool,
    /// Offset announced in the handshake reply: set by seek before the
    /// first poll (0 for a fresh start), and advanced past every
    /// delivered frame when producer restarts are tolerated, so a
    /// reconnecting producer resumes exactly where the last one stopped.
    resume: AtomicU64,
    /// The partition's FINISH arrived; no reconnect can ever matter.
    finished: AtomicBool,
    /// Telemetry: post-handshake frames delivered on this partition.
    frames: AtomicU64,
    /// Telemetry: payload bytes of those frames.
    bytes: AtomicU64,
    /// Telemetry: producer connections that completed the handshake
    /// (`connections - 1` is the partition's reconnect count).
    connections: AtomicU64,
}

/// Per-partition wire telemetry of a net source: what arrived, and how
/// many producer incarnations delivered it. Snapshot via
/// [`PartitionedNetSource::part_stats`] / [`NetSource::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetPartStats {
    /// Post-handshake frames (data, FINISH, KEEPALIVE) delivered.
    pub frames: u64,
    /// Payload bytes of those frames.
    pub bytes: u64,
    /// Producer connections that completed the handshake; every one
    /// past the first was a reconnect.
    pub connections: u64,
}

struct ListenerShared {
    name: String,
    /// Expected stream declaration; producers must match it exactly.
    streams: Vec<String>,
    parts: Vec<PartSlot>,
    /// Handshake replies wait for this: the driver had its chance to seek
    /// (restore) before the first poll flips it.
    ready: (Mutex<bool>, Condvar),
    /// Failures that cannot be attributed to a claimed partition (bad
    /// preamble, version mismatch, bogus HELLO): surfaced by every poll.
    failure: Mutex<Option<String>>,
    /// [`NetConfig::producer_restarts`].
    allow_restart: bool,
    shutdown: AtomicBool,
}

impl ListenerShared {
    fn fail(&self, msg: String) {
        let mut slot = self
            .failure
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if slot.is_none() {
            *slot = Some(msg);
        }
    }
}

/// One partition of a [`PartitionedNetSource`], as a [`Source`] the
/// [`PartitionedVec`] adapter can fold. Polls deliver **at most one wire
/// frame each** (see the module docs on determinism), waiting up to
/// [`NetConfig::poll_wait`] for it before reporting idle.
struct NetPartition {
    name: String,
    streams: Vec<String>,
    /// This partition's index into `shared.parts`.
    slot: usize,
    rx: Receiver<Decoded>,
    shared: Arc<ListenerShared>,
    /// Events of the frame currently being emitted.
    pending: VecDeque<SourceEvent>,
    /// The frame's watermark, emitted with its last events.
    pending_wm: Option<Ts>,
    /// The frame's producer-side trace span (wire v2), attached to every
    /// batch that drains the frame's events.
    pending_trace: Option<u64>,
    finished: bool,
    failed: Option<String>,
    poll_wait: StdDuration,
    /// [`NetConfig::silence_limit`].
    silence_limit: Option<StdDuration>,
    /// Last time anything (frame or keepalive) arrived from a claimed
    /// producer; starts when the claim is first observed.
    last_heard: Option<Instant>,
}

impl NetPartition {
    fn check_failures(&mut self) -> Result<()> {
        if let Some(msg) = &self.failed {
            return Err(Error::exec(msg.clone()));
        }
        if let Some(msg) = self
            .shared
            .failure
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
        {
            self.failed = Some(msg.clone());
            return Err(Error::exec(msg));
        }
        Ok(())
    }

    /// Enforce [`NetConfig::silence_limit`]: once a producer has claimed
    /// this partition, it must keep talking (data or keepalives). Called
    /// when a poll comes up empty.
    fn check_silence(&mut self) -> Result<()> {
        let Some(limit) = self.silence_limit else {
            return Ok(());
        };
        if self.finished || !self.shared.parts[self.slot].claimed.load(Ordering::Acquire) {
            // An unclaimed partition is *waiting*, not silent: no
            // producer has promised liveness yet (or the old one died
            // and a restart is being tolerated).
            self.last_heard = None;
            return Ok(());
        }
        let since = self.last_heard.get_or_insert_with(Instant::now).elapsed();
        if since > limit {
            let msg = format!(
                "{}: producer silent for {since:?} (silence limit {limit:?}); \
                 presumed dead — enable keepalives on the producer if it is \
                 legitimately quiet",
                self.name
            );
            self.failed = Some(msg.clone());
            return Err(Error::exec(msg));
        }
        Ok(())
    }
}

impl Source for NetPartition {
    fn name(&self) -> &str {
        &self.name
    }

    fn streams(&self) -> &[String] {
        &self.streams
    }

    fn poll_batch(&mut self, max_events: usize) -> Result<SourceBatch> {
        // First poll: the driver is running, so any checkpoint restore
        // (seek) already happened — release the handshake replies.
        {
            let (lock, cvar) = &self.shared.ready;
            let mut ready = lock
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if !*ready {
                *ready = true;
                cvar.notify_all();
            }
        }
        self.check_failures()?;
        if self.finished && self.pending.is_empty() {
            return Ok(SourceBatch::empty(SourceStatus::Finished));
        }
        let mut received = false;
        if self.pending.is_empty() {
            match self.rx.recv_timeout(self.poll_wait) {
                Ok(Decoded::Batch {
                    events,
                    watermark,
                    trace,
                }) => {
                    self.pending.extend(events);
                    self.pending_wm = watermark;
                    self.pending_trace = trace;
                    self.last_heard = Some(Instant::now());
                    received = true;
                }
                Ok(Decoded::Keepalive { watermark }) => {
                    // Proof of life; a v2 keepalive may also restate the
                    // producer's watermark (duplicates are absorbed by
                    // the driver's monotone ledger).
                    self.last_heard = Some(Instant::now());
                    let mut batch = SourceBatch::empty(SourceStatus::Idle);
                    batch.watermark = watermark;
                    return Ok(batch);
                }
                Ok(Decoded::Finished) => {
                    self.finished = true;
                    self.last_heard = Some(Instant::now());
                }
                Ok(Decoded::Failed(msg)) => {
                    self.failed = Some(msg.clone());
                    return Err(Error::exec(msg));
                }
                Err(RecvTimeoutError::Timeout) => {
                    self.check_silence()?;
                    return Ok(SourceBatch::empty(SourceStatus::Idle));
                }
                Err(RecvTimeoutError::Disconnected) => {
                    let msg = format!("{}: reader threads are gone", self.name);
                    self.failed = Some(msg.clone());
                    return Err(Error::exec(msg));
                }
            }
        }
        let take = max_events.min(self.pending.len());
        let mut batch = SourceBatch::empty(SourceStatus::Ready);
        batch.events.extend(self.pending.drain(..take));
        if !batch.events.is_empty() {
            batch.trace_parent = self.pending_trace;
        }
        if self.pending.is_empty() {
            batch.watermark = self.pending_wm.take();
            self.pending_trace = None;
            if self.finished {
                batch.status = SourceStatus::Finished;
            }
        }
        if batch.events.is_empty() && batch.watermark.is_none() && !received {
            batch.status = if self.finished {
                SourceStatus::Finished
            } else {
                SourceStatus::Idle
            };
        }
        Ok(batch)
    }
}

/// The consumer half of a network pipeline: binds a TCP or unix-socket
/// listener and exposes N partitions, **one per accepted connection** —
/// each producer's handshake claims the partition it feeds.
///
/// Replayability across the process boundary comes from the offset-ack
/// handshake rather than local re-reading: a fresh instance seeked to a
/// checkpointed offset announces that offset in its handshake reply, and
/// the producer's bounded spool (trimmed only by the acks this source
/// sends at checkpoints) replays exactly the missing suffix. See the
/// module docs for the full recovery story.
pub struct PartitionedNetSource {
    inner: PartitionedVec<NetPartition>,
    shared: Arc<ListenerShared>,
    local: NetAddr,
}

impl PartitionedNetSource {
    /// Bind `addr` and accept up to `partitions` producer connections
    /// feeding the declared `streams`. Accepting happens on a background
    /// thread; partitions with no producer yet simply poll as idle.
    pub fn bind(
        addr: NetAddr,
        streams: Vec<String>,
        partitions: usize,
        config: NetConfig,
    ) -> Result<PartitionedNetSource> {
        if partitions == 0 {
            return Err(Error::plan("net source needs at least one partition"));
        }
        if streams.is_empty() {
            return Err(Error::plan("net source declares no streams"));
        }
        let name = format!("net:{addr}");
        let listener = addr
            .bind()
            .map_err(|e| Error::exec(format!("{name}: cannot bind: {e}")))?;
        let local = listener.local_addr(&addr);
        let mut parts = Vec::with_capacity(partitions);
        let mut receivers = Vec::with_capacity(partitions);
        for _ in 0..partitions {
            // Bounded: a producer far ahead of the consumer blocks its
            // reader thread here, pushing backpressure into the socket
            // instead of buffering the whole stream in memory.
            let (tx, rx) = bounded::<Decoded>(256);
            parts.push(PartSlot {
                tx,
                writer: Mutex::new(None),
                claimed: AtomicBool::new(false),
                resume: AtomicU64::new(0),
                finished: AtomicBool::new(false),
                frames: AtomicU64::new(0),
                bytes: AtomicU64::new(0),
                connections: AtomicU64::new(0),
            });
            receivers.push(rx);
        }
        let shared = Arc::new(ListenerShared {
            name: name.clone(),
            streams: streams.clone(),
            parts,
            ready: (Mutex::new(false), Condvar::new()),
            failure: Mutex::new(None),
            allow_restart: config.producer_restarts,
            shutdown: AtomicBool::new(false),
        });
        spawn_acceptor(listener, shared.clone());
        let partitions: Vec<NetPartition> = receivers
            .into_iter()
            .enumerate()
            .map(|(p, rx)| NetPartition {
                name: format!("{name}#{p}"),
                streams: streams.clone(),
                slot: p,
                rx,
                shared: shared.clone(),
                pending: VecDeque::new(),
                pending_wm: None,
                pending_trace: None,
                finished: false,
                failed: None,
                poll_wait: config.poll_wait,
                silence_limit: config.silence_limit,
                last_heard: None,
            })
            .collect();
        Ok(PartitionedNetSource {
            inner: PartitionedVec::new(name, partitions)?,
            shared,
            local,
        })
    }

    /// The bound address. For `NetAddr::Tcp` with port 0 this is the
    /// actual ephemeral address producers should connect to.
    pub fn local_addr(&self) -> NetAddr {
        self.local.clone()
    }

    /// Snapshot the per-partition wire telemetry, in partition order.
    pub fn part_stats(&self) -> Vec<NetPartStats> {
        self.shared
            .parts
            .iter()
            .map(|slot| NetPartStats {
                frames: slot.frames.load(Ordering::Acquire),
                bytes: slot.bytes.load(Ordering::Acquire),
                connections: slot.connections.load(Ordering::Acquire),
            })
            .collect()
    }
}

impl PartitionedSource for PartitionedNetSource {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn streams(&self) -> &[String] {
        self.inner.streams()
    }

    fn partitions(&self) -> usize {
        self.inner.partitions()
    }

    fn poll_partition(&mut self, partition: usize, max_events: usize) -> Result<SourceBatch> {
        self.inner.poll_partition(partition, max_events)
    }

    fn offset(&self, partition: usize) -> u64 {
        self.inner.offset(partition)
    }

    /// Seeking records the resume offset the handshake reply announces to
    /// the producer, whose spool replays from there — no local replay.
    /// Only possible before the first poll (the handshake is held back
    /// until then, precisely so a checkpoint restore can land first);
    /// afterwards only the current offset is accepted.
    fn seek(&mut self, partition: usize, offset: u64) -> Result<()> {
        if offset == self.inner.offset(partition) && offset == 0 {
            // Fresh source, fresh start: the default resume of 0 stands.
            return Ok(());
        }
        let started = *self
            .shared
            .ready
            .0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if started {
            if offset == self.inner.offset(partition) {
                return Ok(());
            }
            return Err(Error::exec(format!(
                "{}: partition {partition} is already streaming; a checkpoint \
                 can only be restored into a freshly bound net source",
                self.inner.name()
            )));
        }
        self.shared.parts[partition]
            .resume
            .store(offset, Ordering::Release);
        self.inner.part_mut(partition); // partition bounds check
        self.inner.set_offset(partition, offset);
        Ok(())
    }

    /// Forward the checkpoint acknowledgement to the producer as an `ACK`
    /// frame so it can trim its replay spool. Best-effort by design: with
    /// no producer connected (or one that just died) there is nothing to
    /// trim — the handshake's resume offset will catch it up instead —
    /// so transport errors clear the stored writer and succeed.
    fn ack(&mut self, partition: usize, offset: u64) -> Result<()> {
        let slot = &self.shared.parts[partition];
        let mut writer = slot
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(conn) = writer.as_mut() {
            let mut body = Vec::with_capacity(9);
            body.push(KIND_ACK);
            put_u64(&mut body, offset);
            if write_frame(conn, "net ack", &body).is_err() {
                *writer = None;
            }
        }
        Ok(())
    }
}

impl Drop for PartitionedNetSource {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Wake handshake threads parked on the ready condvar...
        self.shared.ready.1.notify_all();
        // ...and unblock reader threads parked on their sockets.
        for slot in &self.shared.parts {
            if let Some(conn) = slot
                .writer
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .take()
            {
                conn.shutdown();
            }
        }
    }
}

fn spawn_acceptor(listener: NetListener, shared: Arc<ListenerShared>) {
    std::thread::spawn(move || {
        if listener.set_nonblocking(true).is_err() {
            shared.fail(format!("{}: cannot poll the listener", shared.name));
            return;
        }
        loop {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            // Stop polling (and close the listener) once no further
            // accept can ever be useful: with restarts tolerated, that
            // is when every partition has FINISHed; without, one
            // connection per partition per source lifetime suffices.
            let done = if shared.allow_restart {
                shared
                    .parts
                    .iter()
                    .all(|p| p.finished.load(Ordering::Acquire))
            } else {
                shared
                    .parts
                    .iter()
                    .all(|p| p.claimed.load(Ordering::Acquire))
            };
            if done {
                return;
            }
            match listener.accept() {
                Ok(conn) => {
                    let shared = shared.clone();
                    std::thread::spawn(move || serve_connection(conn, shared));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(StdDuration::from_millis(10));
                }
                Err(_) => {
                    std::thread::sleep(StdDuration::from_millis(20));
                }
            }
        }
    });
}

/// Handshake + frame pump for one accepted connection. Protocol errors
/// before a partition is claimed go to the source-level failure slot;
/// after that they poison the partition's channel. The one exception: a
/// peer that closes cleanly without sending a byte (port scanner, health
/// probe) is dropped silently — it never spoke the protocol, so it
/// cannot have violated it.
fn serve_connection(mut conn: NetConn, shared: Arc<ListenerShared>) {
    let context = shared.name.clone();
    // The handshake must finish within a bounded window, so a source
    // dropped while a connection dangles does not leak this thread
    // forever.
    let _ = conn.set_read_timeout(Some(StdDuration::from_secs(30)));
    let version = match read_preamble(&mut conn, &context) {
        Ok(Preamble::Valid(version)) => version,
        Ok(Preamble::Silent) => {
            conn.shutdown();
            return;
        }
        // A transport death this early claimed nothing: with restarts
        // tolerated the producer's next incarnation simply reconnects,
        // so there is nothing to fail.
        Ok(Preamble::Died(msg)) => {
            if !shared.allow_restart {
                shared.fail(msg);
            }
            conn.shutdown();
            return;
        }
        Err(e) => {
            shared.fail(e.to_string());
            conn.shutdown();
            return;
        }
    };
    let hello = match read_frame_raw(&mut conn, &context) {
        FrameRead::Frame(body) => body,
        // Same classification as the preamble: dying between preamble
        // and HELLO is a dead peer (tolerable), not a wrong one.
        FrameRead::Eof => {
            if !shared.allow_restart {
                shared.fail(format!("{context}: peer closed before HELLO"));
            }
            conn.shutdown();
            return;
        }
        FrameRead::Death(msg) => {
            if !shared.allow_restart {
                shared.fail(msg);
            }
            conn.shutdown();
            return;
        }
        // Corrupt bytes are a wrong peer, restarts or not.
        FrameRead::Corrupt(msg) => {
            shared.fail(msg);
            conn.shutdown();
            return;
        }
    };
    let (partition, declared) = match parse_hello(&hello) {
        Ok(parsed) => parsed,
        Err(e) => {
            shared.fail(format!("{context}: {e}"));
            conn.shutdown();
            return;
        }
    };
    if partition >= shared.parts.len() {
        shared.fail(format!(
            "{context}: peer claims partition {partition}, but only {} exist",
            shared.parts.len()
        ));
        conn.shutdown();
        return;
    }
    if declared != shared.streams {
        shared.fail(format!(
            "{context}: peer declares streams {declared:?}, this source \
             expects {:?}",
            shared.streams
        ));
        conn.shutdown();
        return;
    }
    let slot = &shared.parts[partition];
    if slot.claimed.swap(true, Ordering::AcqRel)
        // A FINISHed partition keeps its claim forever, but a restarted
        // producer may legitimately reconnect to it (it re-publishes its
        // whole deterministic stream): serve it — the resume floor equals
        // the final offset, so nothing replays and its FINISH
        // re-validates against the same count.
        && !(shared.allow_restart && slot.finished.load(Ordering::Acquire))
    {
        // With restarts tolerated, the replacement producer may connect
        // before the dead connection's reader has released the claim:
        // give the release a bounded window before calling it a genuine
        // double-claim.
        let deadline = Instant::now() + StdDuration::from_secs(10);
        let acquired = shared.allow_restart
            && loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    conn.shutdown();
                    return;
                }
                if !slot.claimed.swap(true, Ordering::AcqRel) {
                    break true;
                }
                if shared.allow_restart && slot.finished.load(Ordering::Acquire) {
                    break true; // FINISH raced the wait: serve (above)
                }
                if Instant::now() >= deadline {
                    break false;
                }
                std::thread::sleep(StdDuration::from_millis(5));
            };
        if !acquired {
            shared.fail(format!(
                "{context}: partition {partition} claimed by a second connection"
            ));
            conn.shutdown();
            return;
        }
    }

    // Hold the reply until the consumer driver is running: a checkpoint
    // restore seeks before the first poll, and the resume offset must
    // include it.
    {
        let (lock, cvar) = &shared.ready;
        let mut ready = lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while !*ready {
            if shared.shutdown.load(Ordering::Acquire) {
                conn.shutdown();
                return;
            }
            let (guard, _) = cvar
                .wait_timeout(ready, StdDuration::from_millis(50))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            ready = guard;
        }
    }
    let resume = slot.resume.load(Ordering::Acquire);
    let tx = slot.tx.clone();
    // Release this connection's claim so a restarted producer can take
    // over mid-stream: record where delivery stopped (the handshake
    // floor for the next connection), drop the ack writer, then free the
    // claim — strictly in that order, since a new connection may claim
    // the instant the flag drops and must read the updated resume.
    let release_for_restart = |expected: u64| {
        slot.resume.store(expected, Ordering::Release);
        *slot
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
        slot.claimed.store(false, Ordering::Release);
    };
    match conn.try_clone() {
        Ok(writer) => {
            *slot
                .writer
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(writer)
        }
        Err(e) => {
            if shared.allow_restart {
                release_for_restart(resume);
            } else {
                let _ = tx.send(Decoded::Failed(format!("{context}: {e}")));
            }
            conn.shutdown();
            return;
        }
    }
    let mut body = Vec::with_capacity(9);
    body.push(KIND_HELLO_ACK);
    put_u64(&mut body, resume);
    if let Err(e) = write_frame(&mut conn, &context, &body) {
        // The producer died before hearing HELLO_ACK: nothing was
        // delivered on this connection, so with restarts tolerated the
        // partition is simply released for its next incarnation.
        if shared.allow_restart {
            release_for_restart(resume);
        } else {
            let _ = tx.send(Decoded::Failed(e.to_string()));
        }
        conn.shutdown();
        return;
    }
    let _ = conn.set_read_timeout(None);

    let context = format!("{context}#{partition}");
    let reconnect = slot.connections.fetch_add(1, Ordering::AcqRel) > 0;
    if reconnect && observe::enabled() {
        observe::counter(&format!("{context}.reconnects"), 1);
    }
    let mut expected = resume;
    loop {
        match read_frame_raw(&mut conn, &context) {
            FrameRead::Frame(body) => {
                slot.frames.fetch_add(1, Ordering::AcqRel);
                slot.bytes.fetch_add(body.len() as u64, Ordering::AcqRel);
                if observe::enabled() {
                    observe::counter(&format!("{context}.frames"), 1);
                    observe::counter(&format!("{context}.bytes"), body.len() as u64);
                }
                match parse_data_frame(&body, &context, &mut expected, &shared, version) {
                    Ok(Some(decoded)) => {
                        let finished = matches!(decoded, Decoded::Finished);
                        if tx.send(decoded).is_err() {
                            return; // source dropped
                        }
                        if finished {
                            // Publish the final offset as the resume floor
                            // first, so a restarted producer reconnecting to
                            // this finished partition replays nothing.
                            slot.resume.store(expected, Ordering::Release);
                            slot.finished.store(true, Ordering::Release);
                            return; // writer half stays in the slot for acks
                        }
                    }
                    Ok(None) => {}
                    // An in-frame protocol violation (offset gap, undeclared
                    // stream, FINISH miscount): the producer is *wrong*, not
                    // merely gone — always poison, restarts or not.
                    Err(e) => {
                        let _ = tx.send(Decoded::Failed(e.to_string()));
                        conn.shutdown();
                        return;
                    }
                }
            }
            // Transport-level death — clean close or a failed read. With
            // restarts tolerated the partition is released for the
            // producer's next incarnation (offset continuity is still
            // enforced: its frames must resume at `expected`); otherwise
            // the pipeline poisons.
            FrameRead::Eof => {
                if shared.allow_restart {
                    release_for_restart(expected);
                    return;
                }
                let _ = tx.send(Decoded::Failed(format!(
                    "{context}: producer disconnected before FINISH \
                     (offset {expected})"
                )));
                return;
            }
            FrameRead::Death(msg) => {
                if shared.allow_restart {
                    conn.shutdown();
                    release_for_restart(expected);
                    return;
                }
                let _ = tx.send(Decoded::Failed(msg));
                conn.shutdown();
                return;
            }
            // Corrupt bytes always poison: releasing instead would let a
            // deterministic producer replay the same bad frame forever,
            // stalling the pipeline with zero diagnostics.
            FrameRead::Corrupt(msg) => {
                let _ = tx.send(Decoded::Failed(msg));
                conn.shutdown();
                return;
            }
        }
    }
}

fn parse_hello(body: &[u8]) -> Result<(usize, Vec<String>)> {
    let mut reader = FrameReader::new(body);
    let kind = reader.u8()?;
    if kind != KIND_HELLO {
        return Err(Error::exec(format!(
            "expected HELLO, got frame kind {kind}"
        )));
    }
    let partition = reader.u32()? as usize;
    let nstreams = reader.u16()? as usize;
    let mut streams = Vec::with_capacity(nstreams);
    for _ in 0..nstreams {
        let len = reader.u16()? as usize;
        let bytes = reader.take(len)?;
        let s = std::str::from_utf8(bytes)
            .map_err(|_| Error::exec("malformed HELLO: stream name is not UTF-8"))?;
        streams.push(s.to_string());
    }
    reader.done()?;
    Ok((partition, streams))
}

/// Decode a post-handshake frame into a channel message, enforcing offset
/// continuity. `Ok(None)` means "nothing to forward". `version` is the
/// wire version this connection's preamble announced: version-2 bodies
/// carry trailing sections (trace context on `BATCH`, watermark on
/// `KEEPALIVE`) that version-1 bodies lack.
fn parse_data_frame(
    body: &[u8],
    context: &str,
    expected: &mut u64,
    shared: &ListenerShared,
    version: u16,
) -> Result<Option<Decoded>> {
    let mut reader = FrameReader::new(body);
    match reader.u8()? {
        KIND_BATCH => {
            let base = reader.u64()?;
            let has_wm = reader.u8()? != 0;
            let wm_millis = reader.i64()?;
            let count = reader.u32()? as usize;
            if base != *expected {
                return Err(Error::exec(format!(
                    "{context}: offset gap — batch starts at {base}, expected \
                     {expected} (events lost or replayed out of order)"
                )));
            }
            let mut events = Vec::with_capacity(count);
            for _ in 0..count {
                let event = reader.event()?;
                if event.stream as usize >= shared.streams.len() {
                    return Err(Error::exec(format!(
                        "{context}: event references stream index {}, but only \
                         {} streams were declared",
                        event.stream,
                        shared.streams.len()
                    )));
                }
                events.push(SourceEvent {
                    stream: event.stream as usize,
                    ptime: event.ptime,
                    change: Change::with_diff(event.row, event.diff),
                });
            }
            let trace = if version >= 2 {
                let has_trace = reader.u8()? != 0;
                let span = reader.u64()?;
                (has_trace && span != 0).then_some(span)
            } else {
                None
            };
            reader.done()?;
            *expected += count as u64;
            Ok(Some(Decoded::Batch {
                events,
                watermark: has_wm.then_some(Ts(wm_millis)),
                trace,
            }))
        }
        KIND_FINISH => {
            let final_offset = reader.u64()?;
            reader.done()?;
            if final_offset != *expected {
                return Err(Error::exec(format!(
                    "{context}: FINISH claims {final_offset} events, consumer \
                     counted {expected}"
                )));
            }
            Ok(Some(Decoded::Finished))
        }
        KIND_KEEPALIVE => {
            // Proof of life: the payload (the producer's send cursor) is
            // informational and the frame moves no offsets. Wire v2 may
            // restate the producer's current watermark.
            let _cursor = reader.u64()?;
            let watermark = if version >= 2 {
                let has_wm = reader.u8()? != 0;
                let wm_millis = reader.i64()?;
                has_wm.then_some(Ts(wm_millis))
            } else {
                None
            };
            reader.done()?;
            Ok(Some(Decoded::Keepalive { watermark }))
        }
        kind => Err(Error::exec(format!(
            "{context}: unexpected frame kind {kind} after handshake"
        ))),
    }
}

/// The single-partition network source: one listener, one producer
/// connection, a plain [`Source`] for the unsharded [`PipelineDriver`].
///
/// The plain driver takes no checkpoints, so there is no restore path
/// that could ever replay — which means holding the producer's spool
/// hostage buys nothing. This source therefore **acknowledges as it
/// consumes**: every poll that advances the offset sends an `ACK`, so
/// the producer's bounded spool trims continuously and
/// [`NetPublisher::wait_drained`] completes when the consumer catches
/// up. When crash recovery matters, use [`PartitionedNetSource`] with
/// the sharded driver, whose acks track durable checkpoints instead.
///
/// [`PipelineDriver`]: onesql_core::connect::PipelineDriver
pub struct NetSource {
    inner: PartitionedNetSource,
    acked: u64,
}

impl NetSource {
    /// Bind `addr` and accept one producer feeding `streams`.
    pub fn bind(addr: NetAddr, streams: Vec<String>, config: NetConfig) -> Result<NetSource> {
        Ok(NetSource {
            inner: PartitionedNetSource::bind(addr, streams, 1, config)?,
            acked: 0,
        })
    }

    /// The bound address (resolves TCP port 0 to the ephemeral port).
    pub fn local_addr(&self) -> NetAddr {
        self.inner.local_addr()
    }

    /// Wire telemetry of the single partition.
    pub fn stats(&self) -> NetPartStats {
        self.inner.part_stats()[0]
    }
}

impl Source for NetSource {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn streams(&self) -> &[String] {
        self.inner.streams()
    }

    fn poll_batch(&mut self, max_events: usize) -> Result<SourceBatch> {
        let batch = self.inner.poll_partition(0, max_events)?;
        // No checkpoints, no replay: consumed == durable. Ack eagerly so
        // the producer's spool stays trimmed over unbounded streams.
        let offset = self.inner.offset(0);
        if offset > self.acked {
            self.inner.ack(0, offset)?;
            self.acked = offset;
        }
        Ok(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onesql_types::row;

    fn test_config() -> NetConfig {
        NetConfig {
            batch_events: 4,
            poll_wait: StdDuration::from_millis(200),
            connect_timeout: StdDuration::from_secs(5),
            ..NetConfig::default()
        }
    }

    fn tcp_source(streams: &[&str], partitions: usize) -> PartitionedNetSource {
        PartitionedNetSource::bind(
            NetAddr::tcp("127.0.0.1:0"),
            streams.iter().map(|s| s.to_string()).collect(),
            partitions,
            test_config(),
        )
        .unwrap()
    }

    /// Raw client: preamble + HELLO for partition 0, then read HELLO_ACK.
    /// Blocks until the source side is polled (which releases the reply).
    fn raw_handshake(addr: &NetAddr, streams: &[&str]) -> NetConn {
        raw_handshake_versioned(addr, streams, WIRE_VERSION)
    }

    /// Like [`raw_handshake`], but announcing an explicit wire version —
    /// the interop tests speak old dialects on purpose.
    fn raw_handshake_versioned(addr: &NetAddr, streams: &[&str], version: u16) -> NetConn {
        let mut conn = addr.connect().unwrap();
        conn.write_all(&WIRE_MAGIC).unwrap();
        conn.write_all(&version.to_le_bytes()).unwrap();
        let mut body = vec![KIND_HELLO];
        put_u32(&mut body, 0);
        put_u16(&mut body, streams.len() as u16);
        for s in streams {
            put_u16(&mut body, s.len() as u16);
            body.extend_from_slice(s.as_bytes());
        }
        write_frame(&mut conn, "test client", &body).unwrap();
        let ack = read_frame(&mut conn, "test client").unwrap().unwrap();
        assert_eq!(ack[0], KIND_HELLO_ACK);
        conn
    }

    /// Poll partition 0 until it errors; panics if it never does.
    fn poll_until_err(source: &mut PartitionedNetSource) -> String {
        for _ in 0..100 {
            if let Err(e) = source.poll_partition(0, 64) {
                return e.to_string();
            }
        }
        panic!("source never surfaced an error");
    }

    #[test]
    fn crc32_known_vector() {
        // The standard IEEE 802.3 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn value_and_event_codec_roundtrip() {
        let event = WireEvent {
            stream: 2,
            ptime: Ts(123_456),
            diff: -3,
            row: row!(
                Value::Null,
                true,
                -42i64,
                1.5f64,
                "héllo\nworld",
                Ts(-7),
                onesql_types::Duration(99)
            ),
        };
        let mut buf = Vec::new();
        put_event(&mut buf, &event);
        let mut reader = FrameReader::new(&buf);
        let decoded = reader.event().unwrap();
        reader.done().unwrap();
        assert_eq!(decoded, event);
    }

    #[test]
    fn nan_floats_survive_the_wire() {
        let mut buf = Vec::new();
        put_value(&mut buf, &Value::Float(f64::NAN));
        let mut reader = FrameReader::new(&buf);
        // Value's Eq is total (bitwise for NaN), so equality holds.
        assert_eq!(reader.value().unwrap(), Value::Float(f64::NAN));
    }

    #[test]
    fn publisher_roundtrip_over_tcp() {
        let mut source = tcp_source(&["S"], 1);
        let addr = source.local_addr();
        let producer = std::thread::spawn(move || {
            let mut publisher = NetPublisher::new(addr, 0, vec!["S".to_string()], test_config());
            for i in 0..10i64 {
                publisher.insert(0, Ts(i), row!(i, i * 2)).unwrap();
            }
            publisher.watermark(Ts(9)).unwrap();
            publisher.finish().unwrap();
            publisher.offset()
        });
        let mut events = Vec::new();
        let mut watermark = None;
        for _ in 0..200 {
            let batch = source.poll_partition(0, 3).unwrap();
            events.extend(batch.events);
            if let Some(wm) = batch.watermark {
                watermark = Some(wm);
            }
            if batch.status == SourceStatus::Finished {
                break;
            }
        }
        assert_eq!(producer.join().unwrap(), 10);
        assert_eq!(events.len(), 10);
        assert_eq!(source.offset(0), 10);
        assert_eq!(events[3].change.row, row!(3i64, 6i64));
        assert_eq!(watermark, Some(Ts(9)));
    }

    #[test]
    fn v1_producer_interops_with_v2_consumer() {
        // An old producer announces version 1 and writes version-1
        // bodies (no trailing trace context, bare keepalives); a current
        // consumer must parse the connection at that dialect.
        let mut source = tcp_source(&["S"], 1);
        let addr = source.local_addr();
        let client = std::thread::spawn(move || {
            let mut conn = raw_handshake_versioned(&addr, &["S"], 1);
            // v1 BATCH: base, wm flag + millis, count, events — nothing
            // after the events.
            let mut body = vec![KIND_BATCH];
            put_u64(&mut body, 0);
            body.push(1);
            put_i64(&mut body, 41);
            put_u32(&mut body, 2);
            for i in 0..2i64 {
                put_event(
                    &mut body,
                    &WireEvent {
                        stream: 0,
                        ptime: Ts(i),
                        diff: 1,
                        row: row!(i),
                    },
                );
            }
            write_frame(&mut conn, "v1 client", &body).unwrap();
            // v1 KEEPALIVE: kind + cursor only.
            let mut body = vec![KIND_KEEPALIVE];
            put_u64(&mut body, 2);
            write_frame(&mut conn, "v1 client", &body).unwrap();
            let mut body = vec![KIND_FINISH];
            put_u64(&mut body, 2);
            write_frame(&mut conn, "v1 client", &body).unwrap();
        });
        let mut events = Vec::new();
        let mut watermark = None;
        let mut traces = Vec::new();
        for _ in 0..200 {
            let batch = source.poll_partition(0, 16).unwrap();
            if !batch.events.is_empty() {
                traces.push(batch.trace_parent);
            }
            events.extend(batch.events);
            if let Some(wm) = batch.watermark {
                watermark = Some(wm);
            }
            if batch.status == SourceStatus::Finished {
                break;
            }
        }
        client.join().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(watermark, Some(Ts(41)));
        assert_eq!(traces, vec![None], "v1 frames carry no trace context");
        assert_eq!(source.offset(0), 2);
    }

    #[test]
    fn wire_version_zero_is_rejected() {
        let mut source = tcp_source(&["S"], 1);
        let addr = source.local_addr();
        let client = std::thread::spawn(move || {
            let mut conn = addr.connect().unwrap();
            conn.write_all(&WIRE_MAGIC).unwrap();
            conn.write_all(&0u16.to_le_bytes()).unwrap();
        });
        let err = poll_until_err(&mut source);
        client.join().unwrap();
        assert!(err.contains("wire version 0"), "{err}");
    }

    #[test]
    fn v2_batch_trace_context_reaches_source_batch() {
        let mut source = tcp_source(&["S"], 1);
        let addr = source.local_addr();
        let client = std::thread::spawn(move || {
            let mut conn = raw_handshake(&addr, &["S"]);
            // Frame 1: trace context present.
            let mut body = vec![KIND_BATCH];
            put_u64(&mut body, 0);
            body.push(0);
            put_i64(&mut body, 0);
            put_u32(&mut body, 1);
            put_event(
                &mut body,
                &WireEvent {
                    stream: 0,
                    ptime: Ts(1),
                    diff: 1,
                    row: row!(1i64),
                },
            );
            body.push(1);
            put_u64(&mut body, 0xABC0_0001);
            write_frame(&mut conn, "v2 client", &body).unwrap();
            // Frame 2: trace context absent (flag 0).
            let mut body = vec![KIND_BATCH];
            put_u64(&mut body, 1);
            body.push(0);
            put_i64(&mut body, 0);
            put_u32(&mut body, 1);
            put_event(
                &mut body,
                &WireEvent {
                    stream: 0,
                    ptime: Ts(2),
                    diff: 1,
                    row: row!(2i64),
                },
            );
            body.push(0);
            put_u64(&mut body, 0);
            write_frame(&mut conn, "v2 client", &body).unwrap();
            let mut body = vec![KIND_FINISH];
            put_u64(&mut body, 2);
            write_frame(&mut conn, "v2 client", &body).unwrap();
        });
        let mut traces = Vec::new();
        for _ in 0..200 {
            let batch = source.poll_partition(0, 16).unwrap();
            if !batch.events.is_empty() {
                traces.push(batch.trace_parent);
            }
            if batch.status == SourceStatus::Finished {
                break;
            }
        }
        client.join().unwrap();
        assert_eq!(traces, vec![Some(0xABC0_0001), None]);
    }

    #[test]
    fn v2_keepalive_carries_watermark() {
        let mut source = tcp_source(&["S"], 1);
        let addr = source.local_addr();
        let client = std::thread::spawn(move || {
            let mut conn = raw_handshake(&addr, &["S"]);
            let mut body = vec![KIND_KEEPALIVE];
            put_u64(&mut body, 0);
            body.push(1);
            put_i64(&mut body, 777);
            write_frame(&mut conn, "v2 client", &body).unwrap();
            let mut body = vec![KIND_FINISH];
            put_u64(&mut body, 0);
            write_frame(&mut conn, "v2 client", &body).unwrap();
        });
        let mut watermark = None;
        for _ in 0..200 {
            let batch = source.poll_partition(0, 16).unwrap();
            if let Some(wm) = batch.watermark {
                watermark = Some(wm);
            }
            if batch.status == SourceStatus::Finished {
                break;
            }
        }
        client.join().unwrap();
        assert_eq!(watermark, Some(Ts(777)));
    }

    #[test]
    fn publisher_keepalive_restates_watermark() {
        // A real publisher's keepalive (wire v2) carries the highest
        // watermark published so far, so an idle producer keeps the
        // consumer's lag attribution alive.
        let mut source = tcp_source(&["S"], 1);
        let addr = source.local_addr();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_producer = stop.clone();
        let producer = std::thread::spawn(move || {
            let mut publisher = NetPublisher::new(
                addr,
                0,
                vec!["S".to_string()],
                NetConfig {
                    keepalive: Some(StdDuration::from_millis(10)),
                    ..test_config()
                },
            );
            publisher.insert(0, Ts(5), row!(5i64)).unwrap();
            publisher.watermark(Ts(5)).unwrap();
            publisher.flush().unwrap();
            while !stop_producer.load(Ordering::Acquire) {
                publisher.keepalive().unwrap();
                std::thread::sleep(StdDuration::from_millis(5));
            }
            publisher.finish().unwrap();
        });
        // Drain the data frame, then look for a keepalive-borne
        // watermark on an otherwise idle poll.
        let mut keepalive_wm = None;
        let mut saw_events = 0usize;
        for _ in 0..400 {
            let batch = source.poll_partition(0, 16).unwrap();
            saw_events += batch.events.len();
            if batch.events.is_empty() && batch.watermark == Some(Ts(5)) && saw_events > 0 {
                keepalive_wm = batch.watermark;
                break;
            }
        }
        stop.store(true, Ordering::Release);
        producer.join().unwrap();
        assert_eq!(saw_events, 1);
        assert_eq!(keepalive_wm, Some(Ts(5)));
    }

    #[test]
    fn truncated_length_prefix_surfaces_as_error() {
        let mut source = tcp_source(&["S"], 1);
        let addr = source.local_addr();
        let client = std::thread::spawn(move || {
            let mut conn = raw_handshake(&addr, &["S"]);
            // Two bytes of a four-byte length prefix, then gone.
            conn.write_all(&[0x05, 0x00]).unwrap();
            conn.shutdown();
        });
        let err = poll_until_err(&mut source);
        client.join().unwrap();
        assert!(err.contains("length prefix"), "{err}");
    }

    #[test]
    fn bad_crc_surfaces_as_error() {
        let mut source = tcp_source(&["S"], 1);
        let addr = source.local_addr();
        let client = std::thread::spawn(move || {
            let mut conn = raw_handshake(&addr, &["S"]);
            let mut body = vec![KIND_BATCH];
            put_u64(&mut body, 0);
            body.push(0);
            put_i64(&mut body, 0);
            put_u32(&mut body, 0);
            let mut wire = Vec::new();
            put_u32(&mut wire, body.len() as u32);
            wire.extend_from_slice(&body);
            put_u32(&mut wire, crc32(&body) ^ 0xDEAD_BEEF);
            conn.write_all(&wire).unwrap();
        });
        let err = poll_until_err(&mut source);
        client.join().unwrap();
        assert!(err.contains("CRC mismatch"), "{err}");
    }

    #[test]
    fn version_mismatch_surfaces_as_error() {
        let mut source = tcp_source(&["S"], 1);
        let addr = source.local_addr();
        let client = std::thread::spawn(move || {
            let mut conn = addr.connect().unwrap();
            conn.write_all(&WIRE_MAGIC).unwrap();
            conn.write_all(&99u16.to_le_bytes()).unwrap();
        });
        let err = poll_until_err(&mut source);
        client.join().unwrap();
        assert!(err.contains("wire version 99"), "{err}");
    }

    #[test]
    fn mid_frame_disconnect_surfaces_as_error() {
        let mut source = tcp_source(&["S"], 1);
        let addr = source.local_addr();
        let client = std::thread::spawn(move || {
            let mut conn = raw_handshake(&addr, &["S"]);
            let mut wire = Vec::new();
            put_u32(&mut wire, 100); // frame claims 100 bytes...
            wire.extend_from_slice(&[0u8; 10]); // ...but only 10 arrive
            conn.write_all(&wire).unwrap();
            conn.shutdown();
        });
        let err = poll_until_err(&mut source);
        client.join().unwrap();
        assert!(err.contains("disconnected mid-frame"), "{err}");
    }

    #[test]
    fn clean_disconnect_before_finish_surfaces_as_error() {
        let mut source = tcp_source(&["S"], 1);
        let addr = source.local_addr();
        let client = std::thread::spawn(move || {
            let conn = raw_handshake(&addr, &["S"]);
            conn.shutdown(); // frame boundary, but no FINISH was sent
        });
        let err = poll_until_err(&mut source);
        client.join().unwrap();
        assert!(err.contains("before FINISH"), "{err}");
    }

    #[test]
    fn offset_gap_surfaces_as_error() {
        let mut source = tcp_source(&["S"], 1);
        let addr = source.local_addr();
        let client = std::thread::spawn(move || {
            let mut conn = raw_handshake(&addr, &["S"]);
            let mut body = vec![KIND_BATCH];
            put_u64(&mut body, 7); // expected offset is 0
            body.push(0);
            put_i64(&mut body, 0);
            put_u32(&mut body, 0);
            write_frame(&mut conn, "test client", &body).unwrap();
        });
        let err = poll_until_err(&mut source);
        client.join().unwrap();
        assert!(err.contains("offset gap"), "{err}");
    }

    #[test]
    fn oversized_length_prefix_surfaces_as_error() {
        let mut source = tcp_source(&["S"], 1);
        let addr = source.local_addr();
        let client = std::thread::spawn(move || {
            let mut conn = raw_handshake(&addr, &["S"]);
            let mut wire = Vec::new();
            put_u32(&mut wire, MAX_FRAME_LEN + 1);
            conn.write_all(&wire).unwrap();
        });
        let err = poll_until_err(&mut source);
        client.join().unwrap();
        assert!(err.contains("exceeds"), "{err}");
    }

    #[test]
    fn wrong_stream_declaration_is_rejected() {
        let mut source = tcp_source(&["S"], 1);
        let addr = source.local_addr();
        let client = std::thread::spawn(move || {
            let mut conn = addr.connect().unwrap();
            conn.write_all(&WIRE_MAGIC).unwrap();
            conn.write_all(&WIRE_VERSION.to_le_bytes()).unwrap();
            let mut body = vec![KIND_HELLO];
            put_u32(&mut body, 0);
            put_u16(&mut body, 1);
            put_u16(&mut body, 5);
            body.extend_from_slice(b"Other");
            write_frame(&mut conn, "test client", &body).unwrap();
        });
        let err = poll_until_err(&mut source);
        client.join().unwrap();
        assert!(err.contains("declares streams"), "{err}");
    }

    #[test]
    fn bounded_spool_errors_without_acks() {
        let mut source = tcp_source(&["S"], 1);
        let addr = source.local_addr();
        // Consumer polls (so the handshake completes and frames drain)
        // but never checkpoints, so no acks ever flow.
        let consumer = std::thread::spawn(move || {
            for _ in 0..400 {
                if source.poll_partition(0, 64).is_err() {
                    break;
                }
                std::thread::sleep(StdDuration::from_millis(1));
            }
        });
        let mut publisher = NetPublisher::new(
            addr,
            0,
            vec!["S".to_string()],
            NetConfig {
                batch_events: 2,
                spool_events: 4,
                ack_wait: StdDuration::from_millis(100),
                ..test_config()
            },
        );
        let mut failed = None;
        for i in 0..64i64 {
            if let Err(e) = publisher.insert(0, Ts(i), row!(i)) {
                failed = Some(e.to_string());
                break;
            }
        }
        let err = failed.expect("spool bound never tripped");
        assert!(err.contains("replay spool full"), "{err}");
        // Closing the producer unblocks the consumer's poll loop (it sees
        // the mid-stream disconnect and stops).
        drop(publisher);
        consumer.join().unwrap();
    }

    #[test]
    fn seek_after_streaming_is_rejected() {
        let mut source = tcp_source(&["S"], 1);
        let addr = source.local_addr();
        let producer = std::thread::spawn(move || {
            let mut publisher = NetPublisher::new(addr, 0, vec!["S".to_string()], test_config());
            publisher.insert(0, Ts(0), row!(1i64)).unwrap();
            publisher.finish().unwrap();
        });
        for _ in 0..100 {
            if source.poll_partition(0, 16).unwrap().status == SourceStatus::Finished {
                break;
            }
        }
        producer.join().unwrap();
        assert!(source.seek(0, 1).is_ok(), "current offset is fine");
        let err = source.seek(0, 0).unwrap_err().to_string();
        assert!(err.contains("already streaming"), "{err}");
    }

    #[test]
    fn seek_before_streaming_sets_resume_offset() {
        let mut source = tcp_source(&["S"], 1);
        let addr = source.local_addr();
        source.seek(0, 6).unwrap();
        assert_eq!(source.offset(0), 6);
        let producer = std::thread::spawn(move || {
            let mut publisher = NetPublisher::new(addr, 0, vec!["S".to_string()], test_config());
            // Publish 10, pretend 6 were consumed pre-crash: the
            // handshake must make the publisher replay only 6..10.
            for i in 0..10i64 {
                publisher.insert(0, Ts(i), row!(i)).unwrap();
            }
            publisher.finish().unwrap();
        });
        let mut events = Vec::new();
        for _ in 0..200 {
            let batch = source.poll_partition(0, 16).unwrap();
            events.extend(batch.events);
            if batch.status == SourceStatus::Finished {
                break;
            }
        }
        producer.join().unwrap();
        assert_eq!(events.len(), 4, "only the unconsumed suffix replays");
        assert_eq!(events[0].change.row, row!(6i64));
        assert_eq!(source.offset(0), 10);
    }

    #[test]
    fn undelivered_watermark_replays_after_resume() {
        // Regression: a watermark the producer issued right at the
        // consumer's checkpoint offset — but which never reached the
        // consumer (it was waiting to ride the next frame) — must be
        // re-sent after a resume at exactly that offset. An offset-equal
        // watermark is only skippable when the frame that carried it was
        // consumed; this one was never sent at all.
        let dir = std::env::temp_dir().join("onesql_net_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("wm-resume-{}.sock", std::process::id()));
        let addr = NetAddr::unix(&path);

        let consumer_died = Arc::new(AtomicBool::new(false));
        let producer = {
            let addr = addr.clone();
            let consumer_died = consumer_died.clone();
            std::thread::spawn(move || {
                let mut publisher = NetPublisher::new(
                    addr,
                    0,
                    vec!["S".to_string()],
                    NetConfig {
                        batch_events: 4,
                        connect_timeout: StdDuration::from_secs(10),
                        ..NetConfig::default()
                    },
                );
                // One full frame of 4 events goes out; the watermark has
                // no frame to ride yet and stays spooled unsent.
                for i in 0..4i64 {
                    publisher.insert(0, Ts(i), row!(i)).unwrap();
                }
                publisher.watermark(Ts(3)).unwrap();
                while !consumer_died.load(Ordering::Acquire) {
                    std::thread::sleep(StdDuration::from_millis(1));
                }
                // finish() notices the dead connection, reconnects to the
                // restored consumer (resume offset 4), and must replay
                // the watermark before FINISH.
                publisher.finish().unwrap();
            })
        };

        let mut first =
            PartitionedNetSource::bind(addr.clone(), vec!["S".to_string()], 1, test_config())
                .unwrap();
        let mut consumed = 0;
        while consumed < 4 {
            consumed += first.poll_partition(0, 16).unwrap().events.len();
        }
        assert_eq!(first.offset(0), 4);
        drop(first); // the crash, checkpointed at offset 4
        let mut restored =
            PartitionedNetSource::bind(addr, vec!["S".to_string()], 1, test_config()).unwrap();
        restored.seek(0, 4).unwrap();
        consumer_died.store(true, Ordering::Release);

        let mut watermark = None;
        for _ in 0..200 {
            let batch = restored.poll_partition(0, 16).unwrap();
            assert!(batch.events.is_empty(), "no events were outstanding");
            if let Some(wm) = batch.watermark {
                watermark = Some(wm);
            }
            if batch.status == SourceStatus::Finished {
                break;
            }
        }
        producer.join().unwrap();
        assert_eq!(
            watermark,
            Some(Ts(3)),
            "the undelivered watermark must replay on resume"
        );
    }

    #[test]
    fn plain_net_source_acks_as_it_consumes() {
        // The plain driver never checkpoints, so NetSource acks eagerly:
        // a producer's wait_drained must complete (and its spool trim)
        // without any checkpoint in the picture.
        let mut source = NetSource::bind(
            NetAddr::tcp("127.0.0.1:0"),
            vec!["S".to_string()],
            test_config(),
        )
        .unwrap();
        let addr = source.local_addr();
        let producer = std::thread::spawn(move || {
            let mut publisher = NetPublisher::new(
                addr,
                0,
                vec!["S".to_string()],
                NetConfig {
                    batch_events: 2,
                    spool_events: 8, // far fewer than the 64 events sent
                    ..test_config()
                },
            );
            for i in 0..64i64 {
                publisher.insert(0, Ts(i), row!(i)).unwrap();
            }
            publisher.finish().unwrap();
            publisher.wait_drained(StdDuration::from_secs(10)).unwrap();
            publisher.acked()
        });
        let mut events = 0;
        for _ in 0..400 {
            let batch = source.poll_batch(16).unwrap();
            events += batch.events.len();
            if batch.status == SourceStatus::Finished {
                break;
            }
        }
        assert_eq!(events, 64);
        assert_eq!(producer.join().unwrap(), 64, "drained without checkpoints");
    }

    #[test]
    fn silent_claimed_producer_trips_silence_limit() {
        // A producer that handshakes and then says nothing must become
        // an error once silence_limit elapses — that is what makes a
        // hung producer distinguishable from a merely quiet one.
        let mut source = PartitionedNetSource::bind(
            NetAddr::tcp("127.0.0.1:0"),
            vec!["S".to_string()],
            1,
            NetConfig {
                poll_wait: StdDuration::from_millis(50),
                silence_limit: Some(StdDuration::from_millis(250)),
                ..NetConfig::default()
            },
        )
        .unwrap();
        let addr = source.local_addr();
        let client = std::thread::spawn(move || {
            let conn = raw_handshake(&addr, &["S"]);
            std::thread::sleep(StdDuration::from_secs(3));
            conn.shutdown();
        });
        let err = poll_until_err(&mut source);
        assert!(err.contains("silent"), "{err}");
        assert!(err.contains("presumed dead"), "{err}");
        client.join().unwrap();
    }

    #[test]
    fn keepalives_keep_a_quiet_producer_alive() {
        // The same silence limit, but the producer sends KEEPALIVE
        // frames while it has nothing to say: no error, and the data it
        // eventually sends arrives normally. The quiet phase holds a
        // *partial* data frame (1 event < batch_events) — buffered bytes
        // the consumer has never seen must not suppress keepalives.
        let mut source = PartitionedNetSource::bind(
            NetAddr::tcp("127.0.0.1:0"),
            vec!["S".to_string()],
            1,
            NetConfig {
                poll_wait: StdDuration::from_millis(50),
                silence_limit: Some(StdDuration::from_millis(400)),
                ..NetConfig::default()
            },
        )
        .unwrap();
        let addr = source.local_addr();
        let producer = std::thread::spawn(move || {
            let mut publisher = NetPublisher::new(
                addr,
                0,
                vec!["S".to_string()],
                NetConfig {
                    keepalive: Some(StdDuration::from_millis(50)),
                    ..test_config() // batch_events = 4
                },
            );
            // Announce first (connection + claim), then buffer one
            // event of an unclosed frame.
            publisher.keepalive().unwrap();
            publisher.insert(0, Ts(0), row!(0i64)).unwrap();
            // Quiet for well past the silence limit, but heartbeating,
            // with the partial frame still buffered.
            let quiet_until = Instant::now() + StdDuration::from_millis(900);
            while Instant::now() < quiet_until {
                publisher.keepalive().unwrap();
                std::thread::sleep(StdDuration::from_millis(20));
            }
            for i in 1..4i64 {
                publisher.insert(0, Ts(i), row!(i)).unwrap();
            }
            publisher.finish().unwrap();
        });
        let mut events = 0;
        for _ in 0..400 {
            let batch = source.poll_partition(0, 16).unwrap();
            events += batch.events.len();
            if batch.status == SourceStatus::Finished {
                break;
            }
        }
        producer.join().unwrap();
        assert_eq!(events, 4, "the deferred events still arrived");
    }

    #[test]
    fn corruption_poisons_even_with_producer_restarts() {
        // Restart tolerance forgives dead peers, never wrong ones: a
        // corrupt frame must poison, or a deterministic producer would
        // replay the same bad bytes forever with zero diagnostics.
        let mut source = PartitionedNetSource::bind(
            NetAddr::tcp("127.0.0.1:0"),
            vec!["S".to_string()],
            1,
            NetConfig {
                producer_restarts: true,
                ..test_config()
            },
        )
        .unwrap();
        let addr = source.local_addr();
        let client = std::thread::spawn(move || {
            let mut conn = raw_handshake(&addr, &["S"]);
            let mut body = vec![KIND_BATCH];
            put_u64(&mut body, 0);
            body.push(0);
            put_i64(&mut body, 0);
            put_u32(&mut body, 0);
            let mut wire = Vec::new();
            put_u32(&mut wire, body.len() as u32);
            wire.extend_from_slice(&body);
            put_u32(&mut wire, crc32(&body) ^ 0xBAD_C0DE);
            conn.write_all(&wire).unwrap();
        });
        let err = poll_until_err(&mut source);
        client.join().unwrap();
        assert!(err.contains("CRC mismatch"), "{err}");
    }

    #[test]
    fn producer_restart_resumes_at_delivered_offset() {
        // With producer_restarts, a producer that dies mid-stream
        // releases its partition; its restarted (deterministic)
        // incarnation re-publishes from the start and the handshake
        // floor drops everything already delivered.
        let config = NetConfig {
            producer_restarts: true,
            ..test_config()
        };
        let mut source = PartitionedNetSource::bind(
            NetAddr::tcp("127.0.0.1:0"),
            vec!["S".to_string()],
            1,
            config,
        )
        .unwrap();
        let addr = source.local_addr();
        // Incarnation 1: exactly one full frame (batch_events = 4),
        // then killed without FINISH.
        let first = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut publisher =
                    NetPublisher::new(addr, 0, vec!["S".to_string()], test_config());
                for i in 0..4i64 {
                    publisher.insert(0, Ts(i), row!(i)).unwrap();
                }
                // Dropped here: the crash.
            })
        };
        let mut events = Vec::new();
        while events.len() < 4 {
            events.extend(source.poll_partition(0, 16).unwrap().events);
        }
        first.join().unwrap();

        // Incarnation 2: regenerates the whole stream and finishes.
        let second = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut publisher =
                    NetPublisher::new(addr, 0, vec!["S".to_string()], test_config());
                for i in 0..8i64 {
                    publisher.insert(0, Ts(i), row!(i)).unwrap();
                }
                publisher.finish().unwrap();
            })
        };
        for _ in 0..400 {
            let batch = source.poll_partition(0, 16).unwrap();
            events.extend(batch.events);
            if batch.status == SourceStatus::Finished {
                break;
            }
        }
        second.join().unwrap();
        let values: Vec<i64> = events
            .iter()
            .map(|e| e.change.row.value(0).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(
            values,
            (0..8).collect::<Vec<i64>>(),
            "already-delivered events must not replay, later ones must"
        );
        assert_eq!(source.offset(0), 8);
    }

    #[test]
    fn restarted_producer_reconnecting_to_finished_partition_is_served() {
        // A producer FINISHes partition 0 but dies with partition 1
        // mid-stream; its restarted incarnation re-publishes its whole
        // deterministic stream — *including* the already-finished
        // partition 0. That reconnect must be served (floor == final
        // offset, FINISH re-validates), not treated as a double-claim
        // that poisons the still-streaming partition 1.
        let config = NetConfig {
            producer_restarts: true,
            ..test_config()
        };
        let mut source = PartitionedNetSource::bind(
            NetAddr::tcp("127.0.0.1:0"),
            vec!["S".to_string()],
            2,
            config,
        )
        .unwrap();
        let addr = source.local_addr();
        let first = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut p0 =
                    NetPublisher::new(addr.clone(), 0, vec!["S".to_string()], test_config());
                let mut p1 = NetPublisher::new(addr, 1, vec!["S".to_string()], test_config());
                for i in 0..4i64 {
                    p0.insert(0, Ts(i), row!(i)).unwrap();
                }
                p0.finish().unwrap();
                for i in 0..4i64 {
                    p1.insert(0, Ts(i), row!(i)).unwrap();
                }
                // p1 never finishes: the whole producer dies here.
            })
        };
        let (mut done0, mut got1) = (false, 0usize);
        while !done0 || got1 < 4 {
            let b0 = source.poll_partition(0, 16).unwrap();
            done0 |= b0.status == SourceStatus::Finished;
            got1 += source.poll_partition(1, 16).unwrap().events.len();
        }
        first.join().unwrap();

        // The restart: republish everything on both partitions.
        let second = std::thread::spawn(move || {
            let mut p0 = NetPublisher::new(addr.clone(), 0, vec!["S".to_string()], test_config());
            let mut p1 = NetPublisher::new(addr, 1, vec!["S".to_string()], test_config());
            for i in 0..4i64 {
                p0.insert(0, Ts(i), row!(i)).unwrap();
            }
            p0.finish().unwrap();
            for i in 0..8i64 {
                p1.insert(0, Ts(i), row!(i)).unwrap();
            }
            p1.finish().unwrap();
            (p0.acked(), p1.acked())
        });
        let mut events1 = got1;
        for _ in 0..400 {
            let batch = source.poll_partition(1, 16).unwrap();
            events1 += batch.events.len();
            if batch.status == SourceStatus::Finished {
                break;
            }
        }
        let (acked0, _acked1) = second.join().unwrap();
        assert_eq!(acked0, 4, "floor covered partition 0's replay");
        assert_eq!(events1, 8, "partition 1 resumed at its delivered offset");
        // Partition 0 is still cleanly finished — nothing replayed, no
        // poison anywhere.
        let batch = source.poll_partition(0, 16).unwrap();
        assert_eq!(batch.status, SourceStatus::Finished);
        assert!(batch.events.is_empty());
        assert_eq!(source.offset(0), 4);
        assert_eq!(source.offset(1), 8);
    }

    #[test]
    fn handshake_window_death_tolerated_with_producer_restarts() {
        // A producer killed between the preamble and HELLO (or before
        // hearing HELLO_ACK) claimed nothing durable; with restarts
        // tolerated its next incarnation must simply work — no poison.
        let mut source = PartitionedNetSource::bind(
            NetAddr::tcp("127.0.0.1:0"),
            vec!["S".to_string()],
            1,
            NetConfig {
                producer_restarts: true,
                ..test_config()
            },
        )
        .unwrap();
        let addr = source.local_addr();
        {
            // Dies right after the preamble.
            let mut conn = addr.connect().unwrap();
            conn.write_all(&WIRE_MAGIC).unwrap();
            conn.write_all(&WIRE_VERSION.to_le_bytes()).unwrap();
            conn.shutdown();
        }
        std::thread::sleep(StdDuration::from_millis(50));
        let producer = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut publisher =
                    NetPublisher::new(addr, 0, vec!["S".to_string()], test_config());
                publisher.insert(0, Ts(0), row!(1i64)).unwrap();
                publisher.finish().unwrap();
            })
        };
        let mut events = 0;
        for _ in 0..200 {
            let batch = source.poll_partition(0, 16).unwrap();
            events += batch.events.len();
            if batch.status == SourceStatus::Finished {
                break;
            }
        }
        producer.join().unwrap();
        assert_eq!(events, 1, "the restarted producer streams normally");
    }

    #[test]
    fn zero_byte_probe_connection_is_ignored() {
        // A port scanner / health probe connects and closes without
        // sending a byte: the pipeline must shrug, not poison.
        let mut source = tcp_source(&["S"], 1);
        let addr = source.local_addr();
        {
            let probe = addr.connect().unwrap();
            probe.shutdown();
        }
        // Give the reader thread time to observe the clean close.
        std::thread::sleep(StdDuration::from_millis(50));
        let producer = std::thread::spawn(move || {
            let mut publisher = NetPublisher::new(addr, 0, vec!["S".to_string()], test_config());
            publisher.insert(0, Ts(0), row!(1i64)).unwrap();
            publisher.finish().unwrap();
        });
        let mut events = 0;
        for _ in 0..200 {
            let batch = source.poll_partition(0, 16).unwrap();
            events += batch.events.len();
            if batch.status == SourceStatus::Finished {
                break;
            }
        }
        producer.join().unwrap();
        assert_eq!(events, 1, "the real producer still works after a probe");
    }
}
