//! The NEXMark query suite in the paper's SQL dialect.
//!
//! Queries are adapted to the dialect of this engine (windowing TVFs,
//! explicit event-time columns); Q7 — the paper's running example — is in
//! [`crate::paper::PAPER_Q7_SQL`] against the paper's 3-column schema, and
//! here in its full NEXMark form. Absolute prices/rates follow the original
//! benchmark description where practical.

/// Q0: passthrough. Measures raw engine overhead.
pub const Q0: &str = "SELECT auction, bidder, price, dateTime FROM Bid";

/// Q1: currency conversion (dollars to euros at the benchmark's 0.89 rate,
/// in integer arithmetic).
pub const Q1: &str = "\
SELECT auction, bidder, price * 89 / 100 AS price_eur, dateTime
FROM Bid";

/// Q2: selection — bids on a sample of auctions.
pub const Q2: &str = "\
SELECT auction, price FROM Bid WHERE auction % 123 = 0";

/// Q3: local item search — people from a set of states selling in category
/// 10. (A stream-stream join whose state the engine must bound.)
pub const Q3: &str = "\
SELECT P.name, P.city, P.state, A.id
FROM Auction A JOIN Person P ON A.seller = P.id
WHERE A.category = 10 AND P.state IN ('wa', 'az', 'tn')";

/// Q4-style: average bid price per auction category over tumbling windows
/// (simplified from the original closing-price formulation, which needs
/// auction-expiry semantics).
pub const Q4_AVG_PRICE_BY_CATEGORY: &str = "\
SELECT A.category, wend, AVG(B.price)
FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(dateTime),
            dur => INTERVAL '1' MINUTE) B
JOIN Auction A ON B.auction = A.id
GROUP BY A.category, wend";

/// Q5-style: hot items — bid counts per auction over hopping windows.
pub const Q5_HOT_ITEMS: &str = "\
SELECT auction, wend, COUNT(*) AS bids
FROM Hop(data => TABLE(Bid), timecol => DESCRIPTOR(dateTime),
         dur => INTERVAL '2' MINUTE, hopsize => INTERVAL '1' MINUTE)
GROUP BY auction, wend";

/// Q7: highest bid per ten-minute window (the paper's running example), on
/// the full NEXMark `Bid` schema.
pub const Q7: &str = "\
SELECT MaxBid.wstart, MaxBid.wend, Bid.dateTime, Bid.price, Bid.auction
FROM Bid,
  (SELECT MAX(T.price) maxPrice, MAX(T.wstart) wstart, T.wend wend
   FROM Tumble(data => TABLE(Bid), timecol => DESCRIPTOR(dateTime),
               dur => INTERVAL '10' MINUTE) T
   GROUP BY T.wend) MaxBid
WHERE Bid.price = MaxBid.maxPrice AND
      Bid.dateTime >= MaxBid.wend - INTERVAL '10' MINUTE AND
      Bid.dateTime < MaxBid.wend";

/// Q8: monitor new users — people who registered and opened an auction in
/// the same ten-second window.
pub const Q8: &str = "\
SELECT P.id, P.name, P.wstart
FROM
  Tumble(data => TABLE(Person), timecol => DESCRIPTOR(dateTime),
         dur => INTERVAL '10' SECOND) P
JOIN
  Tumble(data => TABLE(Auction), timecol => DESCRIPTOR(dateTime),
         dur => INTERVAL '10' SECOND) A
ON P.id = A.seller AND P.wstart = A.wstart AND P.wend = A.wend";

/// All `(name, sql)` pairs, for suite-level tests and benches.
pub fn all() -> Vec<(&'static str, &'static str)> {
    vec![
        ("q0", Q0),
        ("q1", Q1),
        ("q2", Q2),
        ("q3", Q3),
        ("q4_avg_by_category", Q4_AVG_PRICE_BY_CATEGORY),
        ("q5_hot_items", Q5_HOT_ITEMS),
        ("q7", Q7),
        ("q8", Q8),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_complete() {
        let names: Vec<&str> = all().iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"q7"));
        assert_eq!(names.len(), 8);
        for (_, sql) in all() {
            assert!(sql.to_uppercase().contains("SELECT"));
        }
    }
}
