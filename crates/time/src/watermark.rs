//! Watermarks and multi-input watermark tracking.

use std::fmt;

use serde::{Deserialize, Serialize};

use onesql_types::Ts;

/// A watermark value: the event time up to which the input is believed
/// complete. A watermark of [`Ts::MAX`] marks end-of-stream (the relation
/// will never change again); [`Ts::MIN`] means nothing is known yet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Watermark(pub Ts);

impl Watermark {
    /// The initial watermark, before any progress information.
    pub const MIN: Watermark = Watermark(Ts::MIN);
    /// The final watermark: input complete.
    pub const MAX: Watermark = Watermark(Ts::MAX);

    /// The event-time bound.
    pub fn ts(self) -> Ts {
        self.0
    }

    /// True when this watermark asserts that all data with event timestamp
    /// `<= end_exclusive - 1ms` has arrived, i.e. an event-time interval
    /// `[start, end_exclusive)` is complete.
    ///
    /// Per the paper's definition, a watermark of value `x` asserts all
    /// future records have timestamps strictly greater than `x`, so an
    /// interval ending at `end_exclusive` is complete once `wm >=
    /// end_exclusive` (records at exactly `end_exclusive` belong to the next
    /// interval). This matches Listing 11: at 8:16 the watermark has reached
    /// 8:12 ≥ 8:10, so the `[8:00, 8:10)` window is final.
    pub fn closes(self, end_exclusive: Ts) -> bool {
        self.0 >= end_exclusive
    }

    /// True for the end-of-stream watermark.
    pub fn is_final(self) -> bool {
        self.0 == Ts::MAX
    }

    /// Merge with another watermark from the same input: watermarks are
    /// monotonic, so the max wins.
    pub fn advance_to(&mut self, other: Watermark) -> bool {
        if other.0 > self.0 {
            self.0 = other.0;
            true
        } else {
            false
        }
    }
}

impl fmt::Display for Watermark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WM[{}]", self.0)
    }
}

impl From<Ts> for Watermark {
    fn from(ts: Ts) -> Self {
        Watermark(ts)
    }
}

/// Tracks per-input watermarks for an n-ary operator and exposes the
/// combined watermark (the minimum across inputs).
///
/// This is the "hold back the watermark" strategy from §5 for operators
/// whose output carries event-time attributes from several inputs: the
/// output watermark only advances once *every* input has advanced, which
/// keeps all surviving event-time columns aligned.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WatermarkTracker {
    inputs: Vec<Watermark>,
    /// Last combined watermark emitted downstream; enforced monotonic.
    emitted: Watermark,
}

impl WatermarkTracker {
    /// A tracker over `n` inputs, all starting at [`Watermark::MIN`].
    pub fn new(n: usize) -> WatermarkTracker {
        WatermarkTracker {
            inputs: vec![Watermark::MIN; n],
            emitted: Watermark::MIN,
        }
    }

    /// Number of tracked inputs.
    pub fn arity(&self) -> usize {
        self.inputs.len()
    }

    /// The current combined (minimum) watermark.
    pub fn combined(&self) -> Watermark {
        self.inputs.iter().copied().min().unwrap_or(Watermark::MAX)
    }

    /// The watermark of a single input.
    pub fn input(&self, idx: usize) -> Watermark {
        self.inputs[idx]
    }

    /// Record a watermark observation on input `idx`. Returns
    /// `Some(combined)` iff the combined watermark advanced past what was
    /// previously emitted; the caller should then forward it downstream.
    /// Regressions on a single input are ignored (watermarks are monotonic).
    pub fn observe(&mut self, idx: usize, wm: Watermark) -> Option<Watermark> {
        self.inputs[idx].advance_to(wm);
        let combined = self.combined();
        if combined > self.emitted {
            self.emitted = combined;
            Some(combined)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onesql_types::Duration;

    #[test]
    fn closes_matches_paper_timeline() {
        // Listing 10-12: window [8:00, 8:10) closes when wm >= 8:10.
        let w_805 = Watermark(Ts::hm(8, 5));
        let w_808 = Watermark(Ts::hm(8, 8));
        let w_812 = Watermark(Ts::hm(8, 12));
        let wend = Ts::hm(8, 10);
        assert!(!w_805.closes(wend));
        assert!(!w_808.closes(wend));
        assert!(w_812.closes(wend));
        // Boundary: wm == wend closes the window (events at exactly wend
        // belong to the next window).
        assert!(Watermark(wend).closes(wend));
    }

    #[test]
    fn advance_is_monotonic() {
        let mut w = Watermark(Ts::hm(8, 5));
        assert!(w.advance_to(Watermark(Ts::hm(8, 8))));
        assert!(!w.advance_to(Watermark(Ts::hm(8, 6))));
        assert_eq!(w.ts(), Ts::hm(8, 8));
    }

    #[test]
    fn final_watermark() {
        assert!(Watermark::MAX.is_final());
        assert!(!Watermark(Ts::hm(8, 0)).is_final());
        assert!(Watermark::MAX.closes(Ts::MAX));
    }

    #[test]
    fn tracker_takes_minimum() {
        let mut t = WatermarkTracker::new(2);
        assert_eq!(t.combined(), Watermark::MIN);
        // Left advances alone: combined stays MIN.
        assert_eq!(t.observe(0, Watermark(Ts::hm(8, 10))), None);
        // Right catches up: combined jumps to min(8:10, 8:05) = 8:05.
        assert_eq!(
            t.observe(1, Watermark(Ts::hm(8, 5))),
            Some(Watermark(Ts::hm(8, 5)))
        );
        assert_eq!(t.combined(), Watermark(Ts::hm(8, 5)));
        assert_eq!(t.input(0), Watermark(Ts::hm(8, 10)));
    }

    #[test]
    fn tracker_suppresses_non_advancing_updates() {
        let mut t = WatermarkTracker::new(2);
        t.observe(0, Watermark(Ts::hm(8, 10)));
        t.observe(1, Watermark(Ts::hm(8, 10)));
        // Regression on one input does not move the combined watermark back.
        assert_eq!(t.observe(0, Watermark(Ts::hm(8, 1))), None);
        assert_eq!(t.combined(), Watermark(Ts::hm(8, 10)));
        // Re-observing the same value emits nothing.
        assert_eq!(t.observe(1, Watermark(Ts::hm(8, 10))), None);
    }

    #[test]
    fn single_input_tracker_passes_through() {
        let mut t = WatermarkTracker::new(1);
        assert_eq!(
            t.observe(0, Watermark(Ts::hm(8, 5))),
            Some(Watermark(Ts::hm(8, 5)))
        );
        let next = Ts::hm(8, 5) + Duration::from_minutes(3);
        assert_eq!(t.observe(0, Watermark(next)), Some(Watermark(next)));
    }
}
