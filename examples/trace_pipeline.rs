//! Causal tracing across the wire, end to end: NEXMark Q7 runs as a
//! producer pipeline whose output changelog ships through a `NetSink`;
//! a consumer pipeline's only input is the socket. With `SET trace =
//! 'on'`, both drivers record spans into the process flight recorder,
//! and the v2 OSQW BATCH frames carry the producer's span IDs — so the
//! consumer's ingest spans parent under the producer's emit spans and
//! the two pipelines stitch into ONE trace. `TRACE PIPELINE ... TO`
//! exports it as Chrome trace-event JSON (load in `chrome://tracing`
//! or Perfetto), which this example re-parses to prove it round-trips.
//!
//! Run with: `cargo run --release --example trace_pipeline`

use onesql::connect::{json, register_nexmark_streams, session, NexmarkSource};
use onesql::core::observe;
use onesql::{ChangelogSink, Engine, NetAddr, NetConfig, NetSink, NetSource, StatementResult};
use onesql_nexmark::queries;
use onesql_types::{DataType, Result};

const EVENTS: u64 = 2_000;
const PRODUCER: &str = "q7_producer";
const CONSUMER: &str = "q7_consumer";

fn main() -> Result<()> {
    // The trace knob is ordinary session state: one statement installs
    // the flight recorder at full sampling.
    let mut s = session();
    s.execute("SET trace = 'on'")?;

    // Consumer side binds first; the producer connects lazily.
    let source = NetSource::bind(
        NetAddr::tcp("127.0.0.1:0"),
        vec!["Mid".to_string()],
        NetConfig::default(),
    )?;
    let addr = source.local_addr();

    // The producer "process": Q7 over seeded NEXMark, shipped as the
    // stream `Mid`. Each BATCH frame carries the emitting span's ID.
    let producer = std::thread::spawn(move || -> Result<u64> {
        let mut engine = Engine::new();
        register_nexmark_streams(&mut engine);
        engine.attach_source(Box::new(NexmarkSource::seeded(7, EVENTS)))?;
        engine.attach_sink(Box::new(NetSink::connect(
            addr,
            "Mid",
            0,
            NetConfig::default(),
        )));
        let mut driver = engine.run_pipeline(&format!("{} EMIT STREAM", queries::Q7))?;
        driver.set_label(PRODUCER);
        Ok(driver.run()?.events_out)
    });

    // The consumer "process": Q7's output columns are its input schema.
    let mut engine = Engine::new();
    engine.register_stream(
        "Mid",
        onesql::StreamBuilder::new()
            .column("wstart", DataType::Timestamp)
            .column("wend", DataType::Timestamp)
            .column("btime", DataType::Timestamp)
            .column("price", DataType::Int)
            .column("auction", DataType::Int),
    );
    engine.attach_source(Box::new(source))?;
    let (rendered, sink) = ChangelogSink::in_memory();
    engine.attach_sink(Box::new(sink));
    let mut driver = engine.run_pipeline("SELECT wstart, price, auction FROM Mid EMIT STREAM")?;
    driver.set_label(CONSUMER);
    let consumed = driver.run()?.events_in;
    let shipped = producer.join().expect("producer thread")?;
    s.execute("SET trace = 'off'")?;
    println!(
        "== Q7 over the wire: {shipped} rows shipped, {consumed} consumed, {} rendered lines ==",
        rendered.lock().unwrap().lines().count()
    );

    // SHOW TRACE: the stitched closure from the consumer's side reaches
    // back through the wire-carried parents into the producer.
    let StatementResult::Trace(records) = s.execute(&format!("SHOW TRACE FOR '{CONSUMER}'"))?
    else {
        panic!("expected Trace");
    };
    let wired = records.iter().filter(|r| r.pipeline == PRODUCER).count();
    println!(
        "== SHOW TRACE FOR '{CONSUMER}': {} spans, {wired} stitched in from '{PRODUCER}' ==",
        records.len()
    );
    for record in records
        .iter()
        .rev()
        .take(6)
        .collect::<Vec<_>>()
        .iter()
        .rev()
    {
        println!(
            "{:14} pipeline={:12} span={:#x} parent={:#x} dur={}us",
            record.name,
            record.pipeline,
            record.span,
            record.parent,
            record.end_micros.saturating_sub(record.start_micros),
        );
    }
    assert!(
        wired > 0,
        "no producer spans stitched into the consumer trace"
    );

    // Export the stitched trace as Chrome trace-event JSON and re-parse
    // it: every span is one complete ("ph":"X") event, and both
    // pipelines appear as named processes on the timeline.
    let dir = std::env::temp_dir().join("onesql_trace_example");
    std::fs::create_dir_all(&dir).map_err(|e| onesql_types::Error::exec(format!("mkdir: {e}")))?;
    let path = dir.join(format!("q7-trace-{}.json", std::process::id()));
    let StatementResult::TraceExported { spans, .. } = s.execute(&format!(
        "TRACE PIPELINE {CONSUMER} TO '{}'",
        path.display()
    ))?
    else {
        panic!("expected TraceExported");
    };
    let exported = std::fs::read_to_string(&path)
        .map_err(|e| onesql_types::Error::exec(format!("read export: {e}")))?;
    let json::Json::Array(events) = json::parse(&exported)? else {
        panic!("export is not a JSON array");
    };
    let get = |e: &json::Json, key: &str| -> Option<json::Json> {
        let json::Json::Object(o) = e else {
            return None;
        };
        o.get(key).cloned()
    };
    let complete = events
        .iter()
        .filter(|e| get(e, "ph") == Some(json::Json::String("X".to_string())))
        .count();
    let processes = events
        .iter()
        .filter(|e| get(e, "name") == Some(json::Json::String("process_name".to_string())))
        .count();
    println!(
        "== exported {} -> {} bytes, {complete} complete events, {processes} named processes ==",
        path.display(),
        exported.len()
    );
    assert_eq!(complete, spans, "one complete event per exported span");
    assert_eq!(processes, 2, "both pipelines on the timeline");
    assert!(observe::sample_divisor() >= 1);
    let _ = std::fs::remove_file(&path);
    println!("== done: one stitched trace across two pipelines and a socket ==");
    Ok(())
}
