//! A sink rendering the output changelog in the paper's listing style.
//!
//! Consumes `onesql_exec::emit`'s [`StreamRow`] encoding (Extension 4) and
//! renders one line per revision with the `undo` / `ptime` / `ver`
//! metadata, e.g.:
//!
//! ```text
//! 8:08  +  8:10, 3                      ver=0
//! 8:14  undo  8:10, 3                   ver=1
//! ```

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use onesql_core::connect::Sink;
use onesql_exec::StreamRow;
use onesql_time::Watermark;
use onesql_types::{Error, Result, SchemaRef};

enum Target {
    Writer(Box<dyn Write + Send>),
    Shared(Arc<Mutex<String>>),
}

/// Renders insert/retract output as human-readable changelog lines.
pub struct ChangelogSink {
    name: String,
    target: Target,
    /// Also render watermark advancements as `-- watermark: …` lines.
    show_watermarks: bool,
    columns: Vec<String>,
}

impl ChangelogSink {
    /// Render to any writer.
    pub fn to_writer(writer: impl Write + Send + 'static) -> ChangelogSink {
        ChangelogSink {
            name: "changelog".to_string(),
            target: Target::Writer(Box::new(writer)),
            show_watermarks: false,
            columns: Vec::new(),
        }
    }

    /// Render to a file at `path`.
    pub fn to_file(path: impl AsRef<Path>) -> Result<ChangelogSink> {
        let path = path.as_ref();
        let file = File::create(path)
            .map_err(|e| Error::exec(format!("cannot create '{}': {e}", path.display())))?;
        let mut sink = ChangelogSink::to_writer(BufWriter::new(file));
        sink.name = format!("changelog:{}", path.display());
        Ok(sink)
    }

    /// Render to stderr (handy in examples).
    pub fn to_stderr() -> ChangelogSink {
        ChangelogSink::to_writer(std::io::stderr())
    }

    /// Render into a shared string buffer; returns `(buffer, sink)`.
    pub fn in_memory() -> (Arc<Mutex<String>>, ChangelogSink) {
        let buffer = Arc::new(Mutex::new(String::new()));
        (
            buffer.clone(),
            ChangelogSink {
                name: "changelog:memory".to_string(),
                target: Target::Shared(buffer),
                show_watermarks: false,
                columns: Vec::new(),
            },
        )
    }

    /// Also render watermark advancements.
    pub fn with_watermarks(mut self) -> ChangelogSink {
        self.show_watermarks = true;
        self
    }

    fn emit(&mut self, line: String) -> Result<()> {
        match &mut self.target {
            Target::Writer(w) => writeln!(w, "{line}")
                .map_err(|e| Error::exec(format!("{}: write error: {e}", self.name))),
            Target::Shared(buf) => {
                let mut buf = buf
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                buf.push_str(&line);
                buf.push('\n');
                Ok(())
            }
        }
    }
}

impl Sink for ChangelogSink {
    fn name(&self) -> &str {
        &self.name
    }

    fn bind(&mut self, schema: SchemaRef) -> Result<()> {
        self.columns = schema.names().iter().map(|n| n.to_string()).collect();
        self.emit(format!("-- changelog of ({})", self.columns.join(", ")))
    }

    fn write(&mut self, rows: &[StreamRow]) -> Result<()> {
        for sr in rows {
            let cells: Vec<String> = sr.row.values().iter().map(|v| v.to_string()).collect();
            let tag = if sr.undo { "undo" } else { "+" };
            self.emit(format!(
                "{ptime:>8}  {tag:<4}  {data:<40} ver={ver}",
                ptime = sr.ptime.to_clock_string(),
                data = cells.join(", "),
                ver = sr.ver,
            ))?;
        }
        Ok(())
    }

    fn on_watermark(&mut self, wm: Watermark) -> Result<()> {
        if self.show_watermarks {
            self.emit(format!("-- watermark: {wm}"))?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        if let Target::Writer(w) = &mut self.target {
            w.flush()
                .map_err(|e| Error::exec(format!("{}: flush error: {e}", self.name)))?;
        }
        Ok(())
    }
}
