#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! Event-time semantics: watermarks, watermark generators, and clocks.
//!
//! Implements §3.2 of the paper. A *watermark* is a monotonic function from
//! processing time to event time: observed at processing time `y` with value
//! `x`, it asserts that all future records carry event timestamps `> x`.
//! Watermarks are what let the engine declare event-time groupings complete
//! (Extension 2), gate materialization (`EMIT AFTER WATERMARK`, Extension
//! 5), and free operator state (§5, lesson 1).

pub mod clock;
pub mod generator;
pub mod watermark;

pub use clock::VirtualClock;
pub use generator::{AscendingWatermarks, BoundedOutOfOrderness, NoWatermarks, WatermarkGenerator};
pub use watermark::{Watermark, WatermarkTracker};
