//! Property-based tests of the paper's core invariants.

use proptest::prelude::*;

use onesql_core::{Engine, StreamBuilder};
use onesql_tvr::{retractions_to_upserts, upserts_to_retractions, Bag, Change, Changelog};
use onesql_types::{row, DataType, Duration, Row, Ts};

// ---------------------------------------------------------------------------
// Stream/table duality (§3.1): the two encodings are interconvertible.
// ---------------------------------------------------------------------------

/// Random sequence of small row changes.
fn arb_changes() -> impl Strategy<Value = Vec<(i64, i64)>> {
    // (key in 0..5, diff in {-1, +1}) pairs.
    prop::collection::vec((0i64..5, prop::bool::ANY), 0..60).prop_map(|v| {
        v.into_iter()
            .map(|(k, b)| (k, if b { 1 } else { -1 }))
            .collect()
    })
}

proptest! {
    /// Applying the changelog derived from a snapshot sequence reproduces
    /// every snapshot: tables ⇒ streams ⇒ tables is the identity.
    #[test]
    fn duality_snapshots_round_trip(changes in arb_changes()) {
        // Build a snapshot sequence by applying the changes cumulatively.
        let mut bag = Bag::new();
        let mut snapshots = Vec::new();
        for (i, (key, diff)) in changes.iter().enumerate() {
            bag.update(Change::with_diff(row!(*key), *diff));
            snapshots.push((Ts(i as i64), bag.clone()));
        }
        // Tables -> stream -> tables.
        let log = Changelog::from_snapshots(snapshots.clone());
        for (t, snap) in &snapshots {
            prop_assert_eq!(&log.snapshot_at(*t), snap);
        }
    }

    /// Consolidation is a canonical form: applying a change list and its
    /// consolidation yields the same relation.
    #[test]
    fn consolidation_preserves_semantics(changes in arb_changes()) {
        let list: Vec<Change> = changes
            .iter()
            .map(|(k, d)| Change::with_diff(row!(*k), *d))
            .collect();
        let mut direct = Bag::new();
        direct.apply(list.clone());
        let mut via = Bag::new();
        via.apply(onesql_tvr::change::consolidate(list));
        prop_assert_eq!(direct, via);
    }
}

// ---------------------------------------------------------------------------
// Retraction ⇄ upsert encodings (App. B.2.3) are lossless.
// ---------------------------------------------------------------------------

/// Random upsert-style history over keys 0..4: per key, alternating
/// insert/update/delete ops that respect the unique-key discipline.
fn arb_keyed_history() -> impl Strategy<Value = Vec<Change>> {
    prop::collection::vec((0i64..4, 0i64..100, prop::bool::ANY), 0..40).prop_map(|ops| {
        let mut live: std::collections::BTreeMap<i64, i64> = Default::default();
        let mut out = Vec::new();
        for (key, value, delete) in ops {
            match (live.get(&key).copied(), delete) {
                (Some(old), true) => {
                    out.push(Change::retract(row!(key, old)));
                    live.remove(&key);
                }
                (Some(old), false) => {
                    out.push(Change::retract(row!(key, old)));
                    out.push(Change::insert(row!(key, value)));
                    live.insert(key, value);
                }
                (None, _) => {
                    out.push(Change::insert(row!(key, value)));
                    live.insert(key, value);
                }
            }
        }
        out
    })
}

proptest! {
    #[test]
    fn upsert_encoding_round_trips(history in arb_keyed_history()) {
        let upserts = retractions_to_upserts(&history, &[0]).unwrap();
        // Upsert streams are never longer than retraction streams.
        prop_assert!(upserts.len() <= history.len());
        let back = upserts_to_retractions(&upserts).unwrap();
        let mut direct = Bag::new();
        direct.apply(history);
        let mut via = Bag::new();
        via.apply(back);
        prop_assert_eq!(direct, via);
    }
}

// ---------------------------------------------------------------------------
// Window assignment invariants (Extension 3).
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn tumble_windows_partition_time(
        ts in -1_000_000i64..1_000_000,
        dur in 1i64..10_000,
        offset in -5_000i64..5_000,
    ) {
        let (ws, we) = onesql_exec::window::tumble_window(
            Ts(ts),
            Duration(dur),
            Duration(offset),
        );
        prop_assert!(ws <= Ts(ts) && Ts(ts) < we, "ts must fall in its window");
        prop_assert_eq!(we - ws, Duration(dur));
        // Adjacent instants on either side of a boundary get adjacent windows.
        let (ws2, _) = onesql_exec::window::tumble_window(
            Ts(we.millis()),
            Duration(dur),
            Duration(offset),
        );
        prop_assert_eq!(ws2, we);
    }

    #[test]
    fn hop_windows_cover_and_contain(
        ts in -1_000_000i64..1_000_000,
        dur in 1i64..5_000,
        hop in 1i64..5_000,
    ) {
        let windows = onesql_exec::window::hop_windows(
            Ts(ts),
            Duration(dur),
            Duration(hop),
            Duration::ZERO,
        );
        // Every returned window contains ts; all widths equal dur.
        for (ws, we) in &windows {
            prop_assert!(*ws <= Ts(ts) && Ts(ts) < *we);
            prop_assert_eq!(*we - *ws, Duration(dur));
        }
        // The number of aligned starts in the half-open interval
        // (ts - dur, ts] is floor(dur/hop) or floor(dur/hop) + 1 depending
        // on phase; when hop divides dur it is exactly dur/hop (the paper's
        // dur=10m hop=5m example always yields 2).
        let floor = dur / hop;
        if dur % hop == 0 {
            prop_assert_eq!(windows.len() as i64, floor);
        } else {
            prop_assert!(
                windows.len() as i64 == floor || windows.len() as i64 == floor + 1,
                "got {} windows for dur={dur} hop={hop}",
                windows.len()
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Arrival-order invariance (§3.2): the *final* result of a query over a
// recorded stream does not depend on arrival order, because event time is
// data.
// ---------------------------------------------------------------------------

fn windowed_sum(bids: &[(i64, i64)], order: &[usize]) -> Vec<Row> {
    let mut engine = Engine::new();
    engine.register_stream(
        "Bid",
        StreamBuilder::new()
            .event_time_column("bidtime")
            .column("price", DataType::Int),
    );
    let mut q = engine
        .execute(
            "SELECT wend, SUM(price), COUNT(*) FROM Tumble(data => TABLE(Bid), \
             timecol => DESCRIPTOR(bidtime), dur => INTERVAL '10' MINUTE) GROUP BY wend",
        )
        .unwrap();
    for (i, &idx) in order.iter().enumerate() {
        let (minute, price) = bids[idx];
        q.insert("Bid", Ts(i as i64), row!(Ts::from_minutes(minute), price))
            .unwrap();
    }
    q.finish(Ts(order.len() as i64)).unwrap();
    q.table().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn final_results_independent_of_arrival_order(
        bids in prop::collection::vec((0i64..60, 1i64..100), 1..25),
        seed in 0u64..1000,
    ) {
        let in_order: Vec<usize> = (0..bids.len()).collect();
        // A deterministic shuffle from the seed.
        let mut shuffled = in_order.clone();
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        prop_assert_eq!(
            windowed_sum(&bids, &in_order),
            windowed_sum(&bids, &shuffled)
        );
    }

    /// The streaming windowed aggregate agrees with a batch computation.
    #[test]
    fn streaming_agrees_with_batch(
        bids in prop::collection::vec((0i64..60, 1i64..100), 0..25),
    ) {
        let order: Vec<usize> = (0..bids.len()).collect();
        let streaming = windowed_sum(&bids, &order);

        // Batch: group by window end in plain Rust.
        let mut expected: std::collections::BTreeMap<i64, (i64, i64)> = Default::default();
        for &(minute, price) in &bids {
            let wend = (minute / 10) * 10 + 10;
            let e = expected.entry(wend).or_insert((0, 0));
            e.0 += price;
            e.1 += 1;
        }
        let expected_rows: Vec<Row> = expected
            .into_iter()
            .map(|(wend, (sum, count))| row!(Ts::from_minutes(wend), sum, count))
            .collect();
        prop_assert_eq!(streaming, expected_rows);
    }
}
